//! Trace capture and trace-driven cache replay.
//!
//! The paper's sensitivity studies (WEC size/associativity sweeps, victim
//! and next-line-prefetch ablations) re-run the identical instruction
//! stream through the full timing model once per cache configuration.
//! Almost all of that work is redundant: the *admitted access stream* —
//! the exact sequence of [`wec_core::DataPath::access`] calls the timing
//! model makes — fully determines every cache counter, because all other
//! memory traffic (next-line prefetches, victim/WEC transfers, dirty
//! writebacks, L2 fills) is generated inside the data paths
//! deterministically from it.
//!
//! This crate therefore has two halves:
//!
//! * **Capture** ([`capture`]): a [`TraceRecorder`] attached to a
//!   [`wec_core::Machine`] through the `tap` hook records every admitted
//!   access — cycle, thread unit, PC, address, kind (correct-path
//!   load/store, wrong-path load, wrong-thread load, instruction fetch)
//!   and commit/squash outcome — into per-TU delta/varint encoded streams
//!   ([`stream`]) inside a versioned, checksummed container ([`format`]).
//! * **Replay** ([`replay`]): re-drives fresh L1/WEC/L2 structures from a
//!   trace, merging the per-TU streams back into the machine's global
//!   access order.  At the captured configuration the replayed cache
//!   counters are *identical* to the full-timing run's; at other
//!   geometries it is a standard trace-driven cache simulation
//!   (sim-cache next to sim-outorder), two orders of magnitude cheaper
//!   than re-running the timing model.
//!
//! The admitted stream deliberately includes calls that returned `Retry`:
//! a port-rejected access has no side effects and is re-presented on a
//! later cycle (and recorded again), while an MSHR-full rejection *does*
//! record stats before bouncing — replaying the exact call sequence
//! reproduces both behaviours bit-for-bit.

pub mod capture;
pub mod codec;
pub mod format;
pub mod record;
pub mod replay;
pub mod slab;
pub mod stream;

pub use capture::{capture_run, CaptureMeta, TraceRecorder};
pub use format::{Trace, TraceHeader, FORMAT_VERSION};
pub use record::{TraceKind, TraceRecord};
pub use replay::{
    cache_stat_subset, kv_string, replay, replay_slab, replay_slab_with, ReplayOutcome,
};
pub use slab::{MergedOrder, TraceSlab};

use std::fmt;

/// Errors surfaced by trace encoding, decoding, and replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The byte stream ended mid-value.
    Truncated(&'static str),
    /// A structural inconsistency (bad magic, checksum mismatch, record
    /// count mismatch, unknown kind tag, ...).
    Corrupt(String),
    /// The file declares a format version this build does not read.
    Version(u32),
    /// Filesystem failure (message carries the path).
    Io(String),
    /// The underlying simulator rejected a run or configuration.
    Sim(wec_common::SimError),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Truncated(what) => write!(f, "truncated trace: {what}"),
            TraceError::Corrupt(msg) => write!(f, "corrupt trace: {msg}"),
            TraceError::Version(v) => write!(f, "unsupported trace format version {v}"),
            TraceError::Io(msg) => write!(f, "trace i/o: {msg}"),
            TraceError::Sim(e) => write!(f, "simulation: {e}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<wec_common::SimError> for TraceError {
    fn from(e: wec_common::SimError) -> Self {
        TraceError::Sim(e)
    }
}
