//! Loaded programs and the simulated machine's memory image.
//!
//! [`MemImage`] is the flat, paged physical memory: it holds the committed
//! architectural state.  Caches in the timing model carry tags and metadata
//! only; values are always read from (and committed to) the image, which is
//! what keeps the key invariant — *timing configuration never changes
//! semantics* — trivially checkable via [`MemImage::checksum`].

use std::collections::{BTreeMap, HashMap};

use crate::encode::{decode, encode};
use crate::inst::Inst;
use wec_common::error::{SimError, SimResult};
use wec_common::ids::Addr;

const PAGE_BITS: u32 = 12;
const PAGE_SIZE: u64 = 1 << PAGE_BITS;

/// Paged, sparse physical memory.  Pages must be mapped (via [`alloc`]) before
/// correct-path code may touch them; wrong-execution probes use the `try_*`
/// accessors, which simply report unmapped instead of erroring.
///
/// [`alloc`]: MemImage::alloc
#[derive(Clone, Debug, Default)]
pub struct MemImage {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE as usize]>>,
}

impl MemImage {
    pub fn new() -> Self {
        Self::default()
    }

    /// Map (and zero) every page overlapping `[base, base+len)`.
    pub fn alloc(&mut self, base: Addr, len: u64) {
        if len == 0 {
            return;
        }
        let first = base.0 >> PAGE_BITS;
        let last = (base.0 + len - 1) >> PAGE_BITS;
        for p in first..=last {
            self.pages
                .entry(p)
                .or_insert_with(|| Box::new([0u8; PAGE_SIZE as usize]));
        }
    }

    /// Is the `bytes`-wide access at `addr` fully inside mapped memory?
    pub fn is_mapped(&self, addr: Addr, bytes: u64) -> bool {
        if bytes == 0 {
            return true;
        }
        let first = addr.0 >> PAGE_BITS;
        let last = (addr.0 + bytes - 1) >> PAGE_BITS;
        (first..=last).all(|p| self.pages.contains_key(&p))
    }

    /// Number of mapped pages (each 4 KiB).
    pub fn mapped_pages(&self) -> usize {
        self.pages.len()
    }

    fn page(&self, addr: Addr) -> Option<&[u8; PAGE_SIZE as usize]> {
        self.pages.get(&(addr.0 >> PAGE_BITS)).map(|b| &**b)
    }

    fn page_mut(&mut self, addr: Addr) -> Option<&mut [u8; PAGE_SIZE as usize]> {
        self.pages.get_mut(&(addr.0 >> PAGE_BITS)).map(|b| &mut **b)
    }

    /// Read `bytes` (1..=8) little-endian, zero-extended. Errors on unmapped.
    pub fn read(&self, addr: Addr, bytes: u64) -> SimResult<u64> {
        self.try_read(addr, bytes)
            .ok_or(SimError::UnmappedAccess { addr, what: "load" })
    }

    /// Read that reports unmapped as `None` (wrong-execution probes).
    pub fn try_read(&self, addr: Addr, bytes: u64) -> Option<u64> {
        debug_assert!((1..=8).contains(&bytes));
        let mut v: u64 = 0;
        // The fast path: access within one page.
        let off = (addr.0 & (PAGE_SIZE - 1)) as usize;
        if off as u64 + bytes <= PAGE_SIZE {
            let page = self.page(addr)?;
            for i in 0..bytes as usize {
                v |= (page[off + i] as u64) << (8 * i);
            }
            return Some(v);
        }
        // Page-straddling access (rare).
        for i in 0..bytes {
            let a = addr + i;
            let page = self.page(a)?;
            v |= (page[(a.0 & (PAGE_SIZE - 1)) as usize] as u64) << (8 * i);
        }
        Some(v)
    }

    /// Write `bytes` (1..=8) little-endian. Errors on unmapped.
    pub fn write(&mut self, addr: Addr, bytes: u64, value: u64) -> SimResult<()> {
        debug_assert!((1..=8).contains(&bytes));
        if !self.is_mapped(addr, bytes) {
            return Err(SimError::UnmappedAccess {
                addr,
                what: "store",
            });
        }
        let off = (addr.0 & (PAGE_SIZE - 1)) as usize;
        if off as u64 + bytes <= PAGE_SIZE {
            let page = self.page_mut(addr).unwrap();
            for i in 0..bytes as usize {
                page[off + i] = (value >> (8 * i)) as u8;
            }
            return Ok(());
        }
        for i in 0..bytes {
            let a = addr + i;
            let page = self.page_mut(a).unwrap();
            page[(a.0 & (PAGE_SIZE - 1)) as usize] = (value >> (8 * i)) as u8;
        }
        Ok(())
    }

    /// Read a 64-bit doubleword.
    pub fn read_u64(&self, addr: Addr) -> SimResult<u64> {
        self.read(addr, 8)
    }

    /// Write a 64-bit doubleword.
    pub fn write_u64(&mut self, addr: Addr, value: u64) -> SimResult<()> {
        self.write(addr, 8, value)
    }

    /// Read an `f64` (bit pattern of the doubleword at `addr`).
    pub fn read_f64(&self, addr: Addr) -> SimResult<f64> {
        Ok(f64::from_bits(self.read_u64(addr)?))
    }

    /// Write an `f64`.
    pub fn write_f64(&mut self, addr: Addr, value: f64) -> SimResult<()> {
        self.write_u64(addr, value.to_bits())
    }

    /// FNV-1a checksum over all mapped pages in address order.  Two images
    /// with identical mapped contents (including mapping) have equal sums.
    pub fn checksum(&self) -> u64 {
        let mut keys: Vec<u64> = self.pages.keys().copied().collect();
        keys.sort_unstable();
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |byte: u8| {
            h ^= byte as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        };
        for k in keys {
            for b in k.to_le_bytes() {
                eat(b);
            }
            for &b in self.pages[&k].iter() {
                eat(b);
            }
        }
        h
    }
}

/// A loaded WISA-64 program: decoded text, entry point, initial memory image
/// and label metadata for diagnostics.
#[derive(Clone, Debug)]
pub struct Program {
    /// Decoded instruction stream; the PC is an index into this.
    pub text: Vec<Inst>,
    /// Entry instruction index.
    pub entry: u32,
    /// Initial data image (the loader clones this for each run).
    pub data: MemImage,
    /// Label name → instruction index (diagnostics, tests).
    pub labels: BTreeMap<String, u32>,
    /// Human-readable name (workload analogs set this).
    pub name: String,
}

impl Program {
    pub fn new(name: impl Into<String>) -> Self {
        Program {
            text: Vec::new(),
            entry: 0,
            data: MemImage::new(),
            labels: BTreeMap::new(),
            name: name.into(),
        }
    }

    /// Fetch the instruction at `pc`, or an error if outside the text.
    #[inline]
    pub fn fetch(&self, pc: u32) -> SimResult<Inst> {
        self.text
            .get(pc as usize)
            .copied()
            .ok_or(SimError::PcOutOfRange { pc: pc as u64 })
    }

    /// Label lookup.
    pub fn label(&self, name: &str) -> Option<u32> {
        self.labels.get(name).copied()
    }

    /// Encode the text segment to binary words (the "superthreaded binary"
    /// of the paper's Figure 7).
    pub fn encode_text(&self) -> Vec<u64> {
        self.text.iter().map(encode).collect()
    }

    /// Rebuild a program's text from binary words (labels are lost).
    pub fn decode_text(name: &str, words: &[u64]) -> SimResult<Program> {
        let mut p = Program::new(name);
        p.text = words.iter().map(|&w| decode(w)).collect::<SimResult<_>>()?;
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{AluOp, Inst};
    use crate::reg::Reg;

    #[test]
    fn alloc_then_read_write() {
        let mut m = MemImage::new();
        m.alloc(Addr(0x1000), 0x100);
        assert!(m.is_mapped(Addr(0x1000), 8));
        assert!(!m.is_mapped(Addr(0xfff), 8)); // straddles into unmapped page
        m.write_u64(Addr(0x1008), 0xdead_beef_cafe_f00d).unwrap();
        assert_eq!(m.read_u64(Addr(0x1008)).unwrap(), 0xdead_beef_cafe_f00d);
        // Byte-granular little-endian view.
        assert_eq!(m.read(Addr(0x1008), 1).unwrap(), 0x0d);
        assert_eq!(m.read(Addr(0x100f), 1).unwrap(), 0xde);
    }

    #[test]
    fn unmapped_access_errors_but_try_read_is_none() {
        let m = MemImage::new();
        assert!(matches!(
            m.read_u64(Addr(0x4000)),
            Err(SimError::UnmappedAccess { .. })
        ));
        assert_eq!(m.try_read(Addr(0x4000), 8), None);
        let mut m = MemImage::new();
        assert!(m.write_u64(Addr(0x4000), 1).is_err());
    }

    #[test]
    fn page_straddling_reads_and_writes() {
        let mut m = MemImage::new();
        m.alloc(Addr(0), 2 * PAGE_SIZE);
        let a = Addr(PAGE_SIZE - 4);
        m.write_u64(a, 0x1122_3344_5566_7788).unwrap();
        assert_eq!(m.read_u64(a).unwrap(), 0x1122_3344_5566_7788);
        // Straddle where the second page is unmapped.
        let mut m2 = MemImage::new();
        m2.alloc(Addr(0), PAGE_SIZE);
        assert!(m2.write_u64(a, 1).is_err());
        assert_eq!(m2.try_read(a, 8), None);
    }

    #[test]
    fn f64_roundtrip() {
        let mut m = MemImage::new();
        m.alloc(Addr(0), 64);
        m.write_f64(Addr(16), -3.75).unwrap();
        assert_eq!(m.read_f64(Addr(16)).unwrap(), -3.75);
    }

    #[test]
    fn checksum_detects_changes_and_matches_for_clones() {
        let mut m = MemImage::new();
        m.alloc(Addr(0x2000), 0x1000);
        m.write_u64(Addr(0x2000), 7).unwrap();
        let m2 = m.clone();
        assert_eq!(m.checksum(), m2.checksum());
        let before = m.checksum();
        m.write_u64(Addr(0x2008), 1).unwrap();
        assert_ne!(before, m.checksum());
    }

    #[test]
    fn checksum_depends_on_mapping() {
        let mut a = MemImage::new();
        a.alloc(Addr(0), PAGE_SIZE);
        let mut b = MemImage::new();
        b.alloc(Addr(0), PAGE_SIZE);
        b.alloc(Addr(0x10_0000), PAGE_SIZE);
        assert_ne!(a.checksum(), b.checksum());
    }

    #[test]
    fn program_fetch_and_binary_roundtrip() {
        let mut p = Program::new("t");
        p.text.push(Inst::AluImm {
            op: AluOp::Add,
            rd: Reg(1),
            rs1: Reg(0),
            imm: 5,
        });
        p.text.push(Inst::Halt);
        p.labels.insert("start".into(), 0);
        assert_eq!(p.fetch(1).unwrap(), Inst::Halt);
        assert!(p.fetch(2).is_err());
        assert_eq!(p.label("start"), Some(0));
        let words = p.encode_text();
        let q = Program::decode_text("t2", &words).unwrap();
        assert_eq!(q.text, p.text);
    }
}
