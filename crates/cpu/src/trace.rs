//! Commit tracing: a bounded ring of recently retired instructions.
//!
//! Enabled via [`CoreConfig::commit_trace`]; zero-cost when off.  The
//! machine's `debug_snapshot` appends each core's recent commits, which is
//! usually all that's needed to see *why* a simulation stalled or where a
//! thread was when it was marked wrong.
//!
//! [`CoreConfig::commit_trace`]: crate::config::CoreConfig::commit_trace

use std::collections::VecDeque;

use wec_common::ids::Cycle;
use wec_isa::disasm::disassemble_inst;
use wec_isa::inst::Inst;

/// One retired instruction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CommitRecord {
    pub cycle: Cycle,
    pub seq: u64,
    pub pc: u32,
    pub inst: Inst,
}

/// A bounded ring of the most recent commits.
#[derive(Clone, Debug, Default)]
pub struct CommitTrace {
    ring: VecDeque<CommitRecord>,
    capacity: usize,
}

impl CommitTrace {
    /// `capacity == 0` disables tracing entirely.
    pub fn new(capacity: usize) -> Self {
        CommitTrace {
            ring: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    #[inline]
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Record a retirement (no-op when disabled).
    #[inline]
    pub fn record(&mut self, cycle: Cycle, seq: u64, pc: u32, inst: Inst) {
        if self.capacity == 0 {
            return;
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(CommitRecord {
            cycle,
            seq,
            pc,
            inst,
        });
    }

    /// Oldest-first records currently held.
    pub fn records(&self) -> impl Iterator<Item = &CommitRecord> {
        self.ring.iter()
    }

    pub fn len(&self) -> usize {
        self.ring.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Render the trace with disassembly, one line per commit.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for r in &self.ring {
            let text = disassemble_inst(&r.inst, |t| format!("@{t}"));
            let _ = writeln!(
                out,
                "  [{:>8}] #{:<6} pc={:<5} {text}",
                r.cycle.0, r.seq, r.pc
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = CommitTrace::new(0);
        t.record(Cycle(1), 1, 0, Inst::Nop);
        assert!(t.is_empty());
        assert!(!t.enabled());
    }

    #[test]
    fn ring_keeps_only_the_newest() {
        let mut t = CommitTrace::new(3);
        for k in 0..5 {
            t.record(Cycle(k), k, k as u32, Inst::Nop);
        }
        assert_eq!(t.len(), 3);
        let seqs: Vec<u64> = t.records().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
    }

    #[test]
    fn render_includes_disassembly() {
        let mut t = CommitTrace::new(4);
        t.record(Cycle(7), 9, 3, Inst::Halt);
        t.record(Cycle(8), 10, 4, Inst::Jump { target: 2 });
        let s = t.render();
        assert!(s.contains("halt"), "{s}");
        assert!(s.contains("j @2"), "{s}");
        assert!(s.contains("pc=3"), "{s}");
    }
}
