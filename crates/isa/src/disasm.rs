//! Disassembler: [`Inst`] → the assembler's text syntax.
//!
//! `assemble(disassemble(program)) == program` for any program whose
//! control-flow targets are representable as labels — the disassembler
//! invents `LN` labels for every referenced instruction index, so the
//! round-trip always holds for the text segment (data segments are not
//! reconstructed; see [`disassemble_program`]).

use std::collections::BTreeSet;
use std::fmt::Write as _;

use crate::inst::Inst;
use crate::program::Program;

/// One instruction, using `target_name` to render control-flow targets.
pub fn disassemble_inst(inst: &Inst, mut target_name: impl FnMut(u32) -> String) -> String {
    match *inst {
        Inst::Alu { op, rd, rs1, rs2 } => format!("{} {rd}, {rs1}, {rs2}", op.mnemonic()),
        Inst::AluImm { op, rd, rs1, imm } => {
            format!("{}i {rd}, {rs1}, {imm}", op.mnemonic())
        }
        Inst::Li { rd, imm } => format!("li {rd}, {imm}"),
        Inst::Fpu { op, fd, fs1, fs2 } => format!("{} {fd}, {fs1}, {fs2}", op.mnemonic()),
        Inst::FCmp { op, rd, fs1, fs2 } => format!("{} {rd}, {fs1}, {fs2}", op.mnemonic()),
        Inst::CvtIF { fd, rs } => format!("cvtif {fd}, {rs}"),
        Inst::CvtFI { rd, fs } => format!("cvtfi {rd}, {fs}"),
        Inst::Load {
            kind,
            rd,
            base,
            off,
        } => {
            let m = match kind {
                crate::inst::LoadKind::D => "ld",
                crate::inst::LoadKind::W => "lw",
                crate::inst::LoadKind::B => "lbu",
            };
            format!("{m} {rd}, {off}({base})")
        }
        Inst::FLoad { fd, base, off } => format!("fld {fd}, {off}({base})"),
        Inst::Store {
            kind,
            rs,
            base,
            off,
        } => {
            let m = match kind {
                crate::inst::StoreKind::D => "sd",
                crate::inst::StoreKind::W => "sw",
                crate::inst::StoreKind::B => "sb",
            };
            format!("{m} {rs}, {off}({base})")
        }
        Inst::FStore { fs, base, off } => format!("fsd {fs}, {off}({base})"),
        Inst::Branch {
            cond,
            rs1,
            rs2,
            target,
        } => {
            format!("{} {rs1}, {rs2}, {}", cond.mnemonic(), target_name(target))
        }
        Inst::Jump { target } => format!("j {}", target_name(target)),
        Inst::Jal { rd, target } => format!("jal {rd}, {}", target_name(target)),
        Inst::Jr { rs } => format!("jr {rs}"),
        Inst::Nop => "nop".into(),
        Inst::Halt => "halt".into(),
        Inst::Begin { region } => format!("begin {region}"),
        Inst::Fork { mask, body } => {
            let regs: Vec<String> = (0..32)
                .filter(|b| mask & (1 << b) != 0)
                .map(|b| format!("r{b}"))
                .collect();
            format!("fork {}, {}", regs.join("|"), target_name(body))
        }
        Inst::Abort { seq } => format!("abort {}", target_name(seq)),
        Inst::TsAnnounce { base, off } => format!("tsann {off}({base})"),
        Inst::TsagDone => "tsagdone".into(),
        Inst::ThreadEnd => "thread_end".into(),
    }
}

/// Every instruction index referenced by a control transfer in `text`.
pub fn referenced_targets(text: &[Inst]) -> BTreeSet<u32> {
    let mut targets = BTreeSet::new();
    for inst in text {
        match *inst {
            Inst::Branch { target, .. } | Inst::Jump { target } | Inst::Jal { target, .. } => {
                targets.insert(target);
            }
            Inst::Fork { body, .. } => {
                targets.insert(body);
            }
            Inst::Abort { seq } => {
                targets.insert(seq);
            }
            _ => {}
        }
    }
    targets
}

/// Disassemble a whole text segment into re-assemblable source (`.text`
/// section only — the data segment cannot be reconstructed from code, so
/// callers carry `program.data` separately, exactly as the binary loader
/// does).
pub fn disassemble_program(program: &Program) -> String {
    let targets = referenced_targets(&program.text);
    let name = |t: u32| format!("L{t}");
    let mut out = String::from(".text\n");
    for (pc, inst) in program.text.iter().enumerate() {
        if targets.contains(&(pc as u32)) {
            let _ = writeln!(out, "L{pc}:");
        }
        let _ = writeln!(out, "    {}", disassemble_inst(inst, name));
    }
    // Trailing labels (targets one past the end are invalid anyway, but a
    // fork/branch may reference the last instruction).
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::reg::Reg;
    use crate::ProgramBuilder;

    fn roundtrip(program: &Program) {
        let src = disassemble_program(program);
        let back = assemble("rt", &src).unwrap_or_else(|e| panic!("{e}\n{src}"));
        assert_eq!(back.text, program.text, "source was:\n{src}");
    }

    #[test]
    fn roundtrips_a_superthreaded_loop() {
        let mut b = ProgramBuilder::new("t");
        b.li(Reg(22), 8);
        b.li(Reg(1), 0);
        b.begin(1);
        b.label("body");
        b.mv(Reg(3), Reg(1));
        b.addi(Reg(1), Reg(1), 1);
        b.fork(&[Reg(1)], "body");
        b.tsagdone();
        b.blt(Reg(1), Reg(22), "done");
        b.abort_to("seq");
        b.label("done");
        b.thread_end();
        b.label("seq");
        b.halt();
        roundtrip(&b.build().unwrap());
    }

    #[test]
    fn roundtrips_memory_and_fp() {
        use crate::reg::FReg;
        let mut b = ProgramBuilder::new("t");
        b.ld(Reg(1), Reg(2), -8);
        b.sw(Reg(1), Reg(2), 4);
        b.lbu(Reg(3), Reg(4), 0);
        b.fld(FReg(1), Reg(2), 16);
        b.fsd(FReg(1), Reg(2), 24);
        b.fadd(FReg(2), FReg(1), FReg(1));
        b.fcmp(crate::inst::FCmpOp::Le, Reg(5), FReg(1), FReg(2));
        b.cvt_if(FReg(3), Reg(5));
        b.cvt_fi(Reg(6), FReg(3));
        b.halt();
        roundtrip(&b.build().unwrap());
    }

    #[test]
    fn labels_are_emitted_before_their_targets() {
        let mut b = ProgramBuilder::new("t");
        b.j("end");
        b.nop();
        b.label("end");
        b.halt();
        let p = b.build().unwrap();
        let src = disassemble_program(&p);
        assert!(src.contains("L2:"), "{src}");
        assert!(src.contains("j L2"), "{src}");
    }

    #[test]
    fn fork_register_list_renders() {
        let mut b = ProgramBuilder::new("t");
        b.label("body");
        b.fork(&[Reg(1), Reg(2)], "body");
        b.thread_end();
        let p = b.build().unwrap();
        let src = disassemble_program(&p);
        assert!(src.contains("fork r1|r2, L0"), "{src}");
        roundtrip(&p);
    }
}
