// The host reference implementations intentionally use index-based loops
// so they read line-for-line against the guest assembly they validate.
#![allow(clippy::needless_range_loop, clippy::explicit_counter_loop)]

//! Synthetic analogs of the six SPEC2000 benchmarks the paper evaluates,
//! manually parallelized for the superthreaded execution model exactly as
//! the paper did by hand (§4.2, Tables 1 and 2).
//!
//! We cannot run SPEC binaries — there is no compiler targeting WISA-64 and
//! no SPEC sources here — so each analog reimplements the memory behaviour
//! of the loops the paper parallelized (see each module's docs for the
//! mapping), with sizes scaled so the whole suite simulates in seconds
//! rather than days.  The analogs preserve the *mechanisms* the paper's
//! results rest on:
//!
//! * inner loops whose working data is contiguous across loop instances, so
//!   wrong-thread run-ahead and wrong-path run-ahead touch blocks the next
//!   correct instance needs (the indirect prefetching effect);
//! * working sets larger than the 8 KB direct-mapped L1;
//! * data-dependent branches (hash-chain walks, comparisons) that feed the
//!   wrong-path engine;
//! * cross-iteration dependences carried through target stores where the
//!   original loop had them.
//!
//! [`Bench`] enumerates the suite; [`Bench::build`] produces a ready-to-run
//! [`Workload`].

pub mod datagen;
pub mod equake;
pub mod gzip;
pub mod harness;
pub mod mcf;
pub mod mesa;
pub mod parser;
pub mod vpr;

use wec_common::error::{SimError, SimResult};
use wec_core::config::MachineConfig;
use wec_core::machine::{Machine, RunResult};
use wec_isa::Program;

/// How large to build a workload.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Scale {
    /// Multiplies iteration counts (data sizes stay fixed so cache-relative
    /// behaviour is stable; more units = more passes over the data).
    pub units: u32,
}

impl Scale {
    /// Tiny runs for unit/integration tests (hundreds of microseconds).
    pub const SMOKE: Scale = Scale { units: 1 };
    /// The size used by the experiment harness to regenerate the paper's
    /// tables and figures.
    pub const PAPER: Scale = Scale { units: 4 };
}

/// A built benchmark analog plus its Table 1 / Table 2 metadata.
pub struct Workload {
    /// The SPEC2000 benchmark this models, e.g. `"181.mcf"`.
    pub name: &'static str,
    /// `"SPEC2000/INT"` or `"SPEC2000/FP"` (Table 2).
    pub suite: &'static str,
    /// The paper's input set for this benchmark (Table 2); our analog
    /// scales are calibrated against these labels.
    pub input: &'static str,
    /// The manual transformations of Table 1 this analog's parallelization
    /// uses.
    pub transforms: &'static [&'static str],
    /// The thread-pipelined program.
    pub program: Program,
    /// Address of a self-check output cell: after a run it must equal
    /// `expected_check` (set by each builder) under every configuration.
    pub check_addr: wec_common::ids::Addr,
    pub expected_check: u64,
}

/// The benchmark suite of the paper (§4.2, Table 2).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Bench {
    Vpr,
    Gzip,
    Mcf,
    Parser,
    Equake,
    Mesa,
}

impl Bench {
    pub const ALL: [Bench; 6] = [
        Bench::Vpr,
        Bench::Gzip,
        Bench::Mcf,
        Bench::Parser,
        Bench::Equake,
        Bench::Mesa,
    ];

    /// The SPEC2000 name (Table 2 ordering).
    pub fn name(self) -> &'static str {
        match self {
            Bench::Vpr => "175.vpr",
            Bench::Gzip => "164.gzip",
            Bench::Mcf => "181.mcf",
            Bench::Parser => "197.parser",
            Bench::Equake => "183.equake",
            Bench::Mesa => "177.mesa",
        }
    }

    /// Build the analog at the given scale.
    pub fn build(self, scale: Scale) -> Workload {
        match self {
            Bench::Vpr => vpr::build(scale),
            Bench::Gzip => gzip::build(scale),
            Bench::Mcf => mcf::build(scale),
            Bench::Parser => parser::build(scale),
            Bench::Equake => equake::build(scale),
            Bench::Mesa => mesa::build(scale),
        }
    }
}

/// Run a workload under a machine configuration and verify its self-check
/// cell — the guard every experiment in the harness runs behind, so a
/// timing-model bug that corrupts architectural state can never masquerade
/// as a speedup.
pub fn run_and_verify(w: &Workload, cfg: MachineConfig) -> SimResult<RunResult> {
    let mut m = Machine::new(cfg, &w.program)?;
    let r = m.run()?;
    let got = m.memory().read_u64(w.check_addr)?;
    if got != w.expected_check {
        return Err(SimError::Config(format!(
            "{} self-check mismatch: got {got:#x}, want {:#x}",
            w.name, w.expected_check
        )));
    }
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_six_distinct_benchmarks() {
        let mut names: Vec<&str> = Bench::ALL.iter().map(|b| b.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn scales_ordered() {
        let (a, b) = (Scale::SMOKE, Scale::PAPER);
        assert!(a.units < b.units);
    }
}
