//! Microbenchmarks of the simulator's own building blocks — how fast the
//! simulator simulates (host-side performance, not simulated cycles).

use criterion::{criterion_group, criterion_main, Criterion};
use wec_common::ids::{Addr, Cycle};
use wec_common::SplitMix64;
use wec_core::config::ProcPreset;
use wec_core::dpath::{DataPath, DataPathConfig, SideKind};
use wec_core::machine::Machine;
use wec_cpu::bpred::{Bimodal, Btb};
use wec_isa::program::MemImage;
use wec_isa::reg::Reg;
use wec_isa::ProgramBuilder;
use wec_mem::l2::{L2Config, SharedL2};
use wec_mem::stats::AccessKind;

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("components");
    group.bench_function("dpath wec access (hit-heavy mix)", |b| {
        let mut dp = DataPath::new(DataPathConfig::paper_default(SideKind::Wec)).unwrap();
        let mut l2 = SharedL2::new(L2Config::default()).unwrap();
        let mut rng = SplitMix64::new(1);
        let mut now = Cycle(0);
        b.iter(|| {
            now += 1;
            let addr = Addr(rng.below(64 * 1024) & !7);
            let kind = if rng.chance(0.1) {
                AccessKind::WrongPathLoad
            } else {
                AccessKind::CorrectLoad
            };
            dp.access(addr, kind, now, &mut l2)
        })
    });

    group.bench_function("bimodal predict+update", |b| {
        let mut p = Bimodal::new(2048);
        let mut pc = 0u32;
        b.iter(|| {
            pc = pc.wrapping_add(13);
            let t = p.predict(pc);
            p.update(pc, !t);
            t
        })
    });

    group.bench_function("btb lookup+update", |b| {
        let mut btb = Btb::new(1024, 4);
        let mut pc = 0u32;
        b.iter(|| {
            pc = pc.wrapping_add(7);
            btb.update(pc, pc + 1);
            btb.lookup(pc)
        })
    });

    group.bench_function("memimage read_u64", |b| {
        let mut m = MemImage::new();
        m.alloc(Addr(0), 1 << 20);
        let mut rng = SplitMix64::new(2);
        b.iter(|| m.read_u64(Addr(rng.below(1 << 20) & !7)).unwrap())
    });

    // Whole-machine throughput: simulated cycles per host second on a
    // simple kernel (reported as time per 10k simulated cycles).
    group.bench_function("machine: 10k cycles of a loop kernel", |b| {
        let mut p = ProgramBuilder::new("spin");
        let arr = p.alloc_zeroed_u64s(1024);
        p.la(Reg(1), arr);
        p.li(Reg(2), 1_000_000);
        p.label("loop");
        p.andi(Reg(3), Reg(2), 1023);
        p.slli(Reg(3), Reg(3), 3);
        p.add(Reg(3), Reg(1), Reg(3));
        p.ld(Reg(4), Reg(3), 0);
        p.addi(Reg(4), Reg(4), 1);
        p.sd(Reg(4), Reg(3), 0);
        p.addi(Reg(2), Reg(2), -1);
        p.bne(Reg(2), Reg::ZERO, "loop");
        p.halt();
        let prog = p.build().unwrap();
        b.iter(|| {
            let mut cfg = ProcPreset::WthWpWec.machine(2);
            cfg.max_cycles = 10_000;
            let mut m = Machine::new(cfg, &prog).unwrap();
            // Expected to hit the limit; we are timing simulation speed.
            let _ = m.run();
        })
    });

    group.finish();
}

criterion_group!(benches, bench_cache);
criterion_main!(benches);
