//! Dynamic thread contexts.
//!
//! One [`ThreadCtx`] exists per in-flight loop-iteration thread, living in
//! its thread unit's slot.  Whether a thread is *wrong* is tracked centrally
//! in the machine's wrong-set (it changes when another thread aborts), not
//! here.

use wec_common::ids::{Cycle, ThreadId};

use crate::membuf::MemBuffer;

/// Lifecycle of a thread on its TU.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ThreadState {
    /// Executing its body on the core.
    Running,
    /// Hit `thread_end`; waiting to become the oldest thread so its
    /// write-back stage can start.
    WaitWb,
    /// Write-back in progress (TU busy until it completes).
    WritingBack,
}

/// Per-thread state.
#[derive(Clone, Debug)]
pub struct ThreadCtx {
    pub id: ThreadId,
    pub state: ThreadState,
    pub membuf: MemBuffer,
    /// Set when this thread's `fork` has committed.
    pub forked: bool,
    /// Set when this thread's `abort` has begun taking effect (makes the
    /// commit-retry loop idempotent).
    pub aborted: bool,
    /// When this thread committed `tsagdone` (for the ring-latency check).
    pub tsag_done_at: Option<Cycle>,
}

impl ThreadCtx {
    pub fn new(id: ThreadId) -> Self {
        ThreadCtx {
            id,
            state: ThreadState::Running,
            membuf: MemBuffer::new(),
            forked: false,
            aborted: false,
            tsag_done_at: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_thread_is_running() {
        let t = ThreadCtx::new(ThreadId(4));
        assert_eq!(t.state, ThreadState::Running);
        assert!(!t.forked && !t.aborted);
        assert!(t.tsag_done_at.is_none());
    }
}
