//! The serve daemon: long-running simulation-as-a-service over the
//! experiment harness.
//!
//! `wec_serve` wraps the [`wec_bench`] runner and trace-replay machinery in
//! a std-only HTTP/1.1 daemon (no async runtime, no HTTP library — a
//! [`std::net::TcpListener`], a worker thread pool, and hand-rolled
//! request/response framing in the same house style as
//! [`wec_telemetry::json`]):
//!
//! * [`http`] — the HTTP/1.1 request parser (hard limits, never panics on
//!   wire input) and response/chunked-transfer writers;
//! * [`job`] — the job specification (`POST /jobs` body) and the
//!   `wec-job-record-v1` record every job carries through its life;
//! * [`queue`] — the bounded FIFO between the acceptor and the workers
//!   (full queue ⇒ `503` backpressure, close ⇒ graceful drain);
//! * [`state`] — everything the acceptor, workers and stat readers share:
//!   the job table, the in-flight dedup index (two identical submissions
//!   share one execution), the warm-result memo, and the counters behind
//!   `GET /stats`;
//! * [`worker`] — the worker loop: runs sim jobs through
//!   [`wec_bench::Runner`] (same persistent result store, byte-identical
//!   cache entries) and replay jobs through
//!   [`wec_bench::tracerun::replay_point`], panics become failed jobs;
//! * [`server`] — the accept loop, routing, the `/jobs/<id>/events`
//!   progress stream (chunked, `progress.jsonl` schema), and graceful
//!   drain on SIGTERM / `POST /shutdown`;
//! * [`metrics`] — per-endpoint HTTP request/latency counters and the
//!   `GET /metrics` Prometheus-style exposition;
//! * [`ringbuf`] — the fixed-capacity sample ring behind the dashboard
//!   sparklines, fed by the in-server sampler thread;
//! * [`dashboard`] — `GET /dashboard` (a self-contained HTML page, inline
//!   SVG, zero external dependencies) and its `GET /dashboard/data` feed;
//! * [`predict`] — the sweep-aware next-job predictor behind `--speculate`:
//!   per-client transition history plus sweep-axis adjacency, fully
//!   deterministic (no RNG);
//! * [`spec`] — speculative-execution plumbing: the prefetch budget/TTL
//!   configuration, the parked ready-result index, and the `spec` stats
//!   block surfaced by `/stats` v2 and `/metrics`.
//!
//! Binaries: `wec_serve` (the daemon) and `loadgen` (an open-loop load
//! generator that reports throughput/latency to `BENCH_serve.json`).

pub mod dashboard;
pub mod http;
pub mod job;
pub mod metrics;
pub mod predict;
pub mod queue;
pub mod ringbuf;
pub mod server;
pub mod spec;
pub mod state;
pub mod worker;

pub use job::{JobKind, JobRecord, JobSpec, JobState};
pub use metrics::ServeMetrics;
pub use predict::Predictor;
pub use queue::JobQueue;
pub use ringbuf::{RingBuffer, ServiceSample};
pub use server::Server;
pub use spec::{SpecConfig, SpecStats};
pub use state::{ServeConfig, ServerState, StatsSnapshot, SubmitError};

/// Lock a mutex, recovering the guard if a previous holder panicked.  Worker
/// panics are turned into failed jobs, so shared state stays consistent and
/// a poisoned lock must not take the whole daemon down with it.
pub(crate) fn lock<T>(m: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}
