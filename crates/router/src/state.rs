//! Shared router state: configuration, counters, the composite job-id
//! scheme, live backend scrapes, and the two renderers (`GET /stats` →
//! `wec-router-stats-v1`, `GET /metrics` → Prometheus exposition).
//!
//! The stats document is built from ONE scrape snapshot: the cluster
//! roll-up is computed from exactly the backend documents embedded next
//! to it, so conservation — every cluster counter equals the sum over
//! the embedded ledgers — holds on every scrape by construction, no
//! matter how the backends move between scrapes.  The Prometheus page
//! uses the same discipline: per-backend `completed` series and the
//! cluster total come from one snapshot, so `sum(per-backend) == total`
//! is race-free for an `awk` gate.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use wec_serve::Predictor;
use wec_telemetry::json::{escape_into, Json};
use wec_telemetry::{json, schema};

use crate::client;
use crate::ring::{BackendState, Ring};

/// Bits of a composite id that carry the backend-local job id.
pub const LOCAL_ID_BITS: u32 = 48;
const LOCAL_ID_MASK: u64 = (1 << LOCAL_ID_BITS) - 1;

/// Router-global job id: backend index (1-based, so no composite id
/// collides with a raw local id below 2^48) in the top 16 bits, the
/// backend's own id in the low 48.  Stateless — any router instance
/// decodes any id it or a predecessor handed out, given the same
/// configured backend list.
pub fn compose_id(backend_idx: usize, local: u64) -> Option<u64> {
    if local > LOCAL_ID_MASK || backend_idx >= u16::MAX as usize {
        return None;
    }
    Some(((backend_idx as u64 + 1) << LOCAL_ID_BITS) | local)
}

/// Invert [`compose_id`]: `(backend_idx, local)`, or `None` for ids no
/// backend of this ring could have issued.
pub fn decode_id(rid: u64, n_backends: usize) -> Option<(usize, u64)> {
    let idx = (rid >> LOCAL_ID_BITS) as usize;
    if idx == 0 || idx > n_backends {
        return None;
    }
    Some((idx - 1, rid & LOCAL_ID_MASK))
}

/// Rewrite the `"id":N` of a backend job-record document to the
/// composite id, leaving every other byte untouched.  `None` if the body
/// is not a record (no rewrite to do — result bytes, error objects and
/// attribution reports proxy verbatim) or the id overflows the scheme.
pub fn rewrite_record_id(body: &str, backend_idx: usize) -> Option<String> {
    if !body.starts_with("{\"schema\":\"wec-job-record-v1\"") {
        return None;
    }
    let pat = "\"id\":";
    let start = body.find(pat)? + pat.len();
    let len = body[start..].find(|c: char| !c.is_ascii_digit())?;
    let local: u64 = body[start..start + len].parse().ok()?;
    let rid = compose_id(backend_idx, local)?;
    Some(format!("{}{}{}", &body[..start], rid, &body[start + len..]))
}

/// Everything `wec_router` is configured with.
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// Backend addresses; fixed for the router's life (the ring is
    /// configuration, only health states change at runtime).
    pub backends: Vec<String>,
    /// How often the health thread probes every backend's `/healthz`.
    pub health_interval: Duration,
    /// Consecutive failures before a backend is declared dead.
    pub dead_after: u32,
    /// Extra submit attempts against the owner on a queue-full `503`
    /// before the `503` is passed through to the client.
    pub retries: u32,
    /// Upper bound on one retry wait.  The backend's `Retry-After` is
    /// honored up to this cap — a proxy holding a client connection
    /// cannot sleep the tens of seconds a deep queue may advertise.
    pub backoff_cap: Duration,
    /// Per-exchange timeout for proxied requests, probes and scrapes.
    pub io_timeout: Duration,
    /// Per-read timeout while relaying a `/jobs/<id>/events` stream
    /// (the gap between progress chunks, not the whole stream).
    pub events_timeout: Duration,
    /// Where to write `router.json` on drain (`None` = nowhere).
    pub log_dir: Option<PathBuf>,
    /// Predicted next jobs forwarded as `POST /hints` per demand submit;
    /// 0 disables the predictor entirely.
    pub hint_fanout: usize,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig {
            backends: Vec::new(),
            health_interval: Duration::from_millis(500),
            dead_after: 3,
            retries: 2,
            backoff_cap: Duration::from_secs(1),
            io_timeout: Duration::from_secs(10),
            events_timeout: Duration::from_secs(30),
            log_dir: None,
            hint_fanout: 0,
        }
    }
}

/// Shared by the accept loop, the connection threads, the health thread
/// and the hint threads.
pub struct RouterState {
    pub cfg: RouterConfig,
    pub ring: Ring,
    pub draining: AtomicBool,
    start: Instant,
    /// Requests answered (any endpoint, any status).
    pub requests: AtomicU64,
    /// Submits successfully forwarded to a backend.
    pub proxied: AtomicU64,
    /// Repeat attempts against the same owner after a queue-full `503`.
    pub retries: AtomicU64,
    /// Submits answered by a backend other than the key's primary
    /// rendezvous owner — the owner was dead, draining, or failed during
    /// the exchange and the job re-sharded down the candidate order.
    pub resharded: AtomicU64,
    /// Submits answered `503` by the router (no routable backend, or the
    /// owner's queue-full passed through after the retry budget).
    pub rejected: AtomicU64,
    /// Speculation hints posted to backends / accepted by them.
    pub hints_sent: AtomicU64,
    pub hints_accepted: AtomicU64,
    /// Open connections; drain waits for this to reach zero.
    pub inflight: AtomicU64,
    /// The speculation predictor (`Some` iff `hint_fanout > 0`), fed by
    /// every demand submit, keyed by client IP like the serve-side one.
    pub predictor: Option<Predictor>,
}

/// One backend's row in a scrape snapshot.
pub struct BackendScrape {
    pub id: String,
    pub addr: String,
    pub state: BackendState,
    pub consecutive_failures: u32,
    pub routed: u64,
    /// The backend's own stats document, raw + parsed — present only if
    /// the scrape succeeded AND the document validated (a backend whose
    /// ledger cannot be trusted is embedded as unreachable).
    pub stats: Option<(String, Json)>,
}

impl RouterState {
    pub fn new(cfg: RouterConfig) -> Result<RouterState, String> {
        let ring = Ring::new(&cfg.backends)?;
        let predictor = (cfg.hint_fanout > 0).then(|| Predictor::new(cfg.hint_fanout));
        Ok(RouterState {
            cfg,
            ring,
            draining: AtomicBool::new(false),
            start: Instant::now(),
            requests: AtomicU64::new(0),
            proxied: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            resharded: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            hints_sent: AtomicU64::new(0),
            hints_accepted: AtomicU64::new(0),
            inflight: AtomicU64::new(0),
            predictor,
        })
    }

    pub fn uptime_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }

    /// Scrape every backend's `/stats` live.  Also adopts announced
    /// backend ids, so display identity converges on `--backend-id`
    /// without a separate discovery step.  Scrape failures do NOT touch
    /// health state — the health thread owns transitions; a stats reader
    /// must never flap the ring.
    pub fn scrape_backends(&self) -> Vec<BackendScrape> {
        self.ring
            .backends
            .iter()
            .map(|b| {
                let stats = client::request(&b.addr, "GET", "/stats", None, self.cfg.io_timeout)
                    .ok()
                    .filter(|r| r.status == 200)
                    .and_then(|r| {
                        let text = r.body_utf8().ok()?.to_string();
                        let v = json::parse(&text).ok()?;
                        schema::validate_serve_stats(&v, "scrape").ok()?;
                        Some((text, v))
                    });
                if let Some((_, v)) = &stats {
                    if let Some(id) = v.get("backend_id").and_then(Json::as_str) {
                        b.adopt_id(id);
                    }
                }
                BackendScrape {
                    id: b.id(),
                    addr: b.addr.clone(),
                    state: b.state(),
                    consecutive_failures: b.failures(),
                    routed: b.routed.load(Ordering::SeqCst),
                    stats,
                }
            })
            .collect()
    }

    /// Scrape and render the `wec-router-stats-v1` document.
    pub fn stats_json(&self) -> String {
        self.render_stats_json(&self.scrape_backends())
    }

    /// Render the document from one scrape snapshot (split from
    /// [`RouterState::stats_json`] so tests can inject snapshots).
    pub fn render_stats_json(&self, scrapes: &[BackendScrape]) -> String {
        let sums = ClusterSums::from(scrapes);
        let mut out = format!(
            "{{\"schema\":\"wec-router-stats-v1\",\"uptime_ms\":{},\"draining\":{}",
            self.uptime_ms(),
            self.draining.load(Ordering::SeqCst)
        );
        let _ = write!(
            out,
            ",\"router\":{{\"requests\":{},\"proxied\":{},\"retries\":{},\"resharded\":{},\
             \"rejected\":{},\"hints_sent\":{},\"hints_accepted\":{}}}",
            self.requests.load(Ordering::SeqCst),
            self.proxied.load(Ordering::SeqCst),
            self.retries.load(Ordering::SeqCst),
            self.resharded.load(Ordering::SeqCst),
            self.rejected.load(Ordering::SeqCst),
            self.hints_sent.load(Ordering::SeqCst),
            self.hints_accepted.load(Ordering::SeqCst),
        );
        out.push_str(",\"backends\":[");
        for (i, s) in scrapes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"id\":");
            escape_into(&mut out, &s.id);
            out.push_str(",\"addr\":");
            escape_into(&mut out, &s.addr);
            let _ = write!(
                out,
                ",\"state\":\"{}\",\"consecutive_failures\":{},\"routed\":{}",
                s.state.name(),
                s.consecutive_failures,
                s.routed
            );
            if let Some((raw, _)) = &s.stats {
                out.push_str(",\"stats\":");
                out.push_str(raw);
            }
            out.push('}');
        }
        out.push(']');
        let _ = write!(
            out,
            ",\"cluster\":{{\"backends\":{{\"healthy\":{},\"draining\":{},\"dead\":{}}}",
            sums.healthy, sums.draining, sums.dead
        );
        let _ = write!(
            out,
            ",\"jobs\":{{\"submitted\":{},\"deduped\":{},\"completed\":{},\"failed\":{}}}",
            sums.submitted, sums.deduped, sums.completed, sums.failed
        );
        let _ = write!(
            out,
            ",\"cache\":{{\"cold\":{},\"disk_hits\":{},\"mem_hits\":{},\"spec_hits\":{}}}",
            sums.cold, sums.disk_hits, sums.mem_hits, sums.spec_hits
        );
        if let Some(sp) = &sums.spec {
            let _ = write!(
                out,
                ",\"spec\":{{\"started\":{},\"hit\":{},\"miss\":{},\"waste\":{},\
                 \"cancelled\":{},\"pending\":{}}}",
                sp[0], sp[1], sp[2], sp[3], sp[4], sp[5]
            );
        }
        let _ = write!(
            out,
            ",\"throughput\":{{\"jobs_per_sec\":{:.3}",
            sums.jobs_per_sec
        );
        out.push_str("}}}");
        out
    }

    /// Render the Prometheus exposition from one scrape snapshot.  The
    /// per-backend `completed` series and the cluster totals share the
    /// snapshot, so `sum(wec_router_backend_completed_total) ==
    /// wec_router_jobs_completed_total` holds on every page, and the
    /// speculation ledger conserves (`hit + waste + cancelled + pending
    /// == started`) for the CI gate to check with `awk`.
    pub fn render_prometheus(&self, scrapes: &[BackendScrape]) -> String {
        let sums = ClusterSums::from(scrapes);
        let mut out = String::new();
        fn counter(out: &mut String, name: &str, help: &str, v: u64) {
            let _ = write!(
                out,
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {v}\n"
            );
        }
        counter(
            &mut out,
            "wec_router_requests_total",
            "Requests answered by the router (any endpoint).",
            self.requests.load(Ordering::SeqCst),
        );
        counter(
            &mut out,
            "wec_router_proxied_total",
            "Job submissions successfully forwarded to a backend.",
            self.proxied.load(Ordering::SeqCst),
        );
        counter(
            &mut out,
            "wec_router_retries_total",
            "Submit retries against the same owner after a queue-full 503.",
            self.retries.load(Ordering::SeqCst),
        );
        counter(
            &mut out,
            "wec_router_resharded_total",
            "Submits moved past a failed or draining owner to the next rendezvous candidate.",
            self.resharded.load(Ordering::SeqCst),
        );
        counter(
            &mut out,
            "wec_router_rejected_total",
            "Submits answered 503 by the router.",
            self.rejected.load(Ordering::SeqCst),
        );
        counter(
            &mut out,
            "wec_router_hints_sent_total",
            "Speculation hints posted to backends.",
            self.hints_sent.load(Ordering::SeqCst),
        );
        counter(
            &mut out,
            "wec_router_hints_accepted_total",
            "Speculation hints a backend started a speculation for.",
            self.hints_accepted.load(Ordering::SeqCst),
        );

        out.push_str(
            "# HELP wec_router_backend_up Backend health (1 healthy, 0 draining or dead).\n\
             # TYPE wec_router_backend_up gauge\n",
        );
        for s in scrapes {
            let _ = writeln!(
                out,
                "wec_router_backend_up{{backend=\"{}\",state=\"{}\"}} {}",
                label(&s.id),
                s.state.name(),
                (s.state == BackendState::Healthy) as u32
            );
        }
        out.push_str(
            "# HELP wec_router_backend_routed_total Jobs this router proxied to each backend.\n\
             # TYPE wec_router_backend_routed_total counter\n",
        );
        for s in scrapes {
            let _ = writeln!(
                out,
                "wec_router_backend_routed_total{{backend=\"{}\"}} {}",
                label(&s.id),
                s.routed
            );
        }
        out.push_str(
            "# HELP wec_router_backend_completed_total Completed jobs per scraped backend \
             (same snapshot as the cluster totals below).\n\
             # TYPE wec_router_backend_completed_total counter\n",
        );
        for s in scrapes {
            if let Some((_, v)) = &s.stats {
                let _ = writeln!(
                    out,
                    "wec_router_backend_completed_total{{backend=\"{}\"}} {}",
                    label(&s.id),
                    u64_at(v, &["jobs", "completed"])
                );
            }
        }
        counter(
            &mut out,
            "wec_router_jobs_submitted_total",
            "Cluster-wide submitted jobs (sum over the scraped backend ledgers).",
            sums.submitted,
        );
        counter(
            &mut out,
            "wec_router_jobs_completed_total",
            "Cluster-wide completed jobs (sum over the scraped backend ledgers).",
            sums.completed,
        );
        out.push_str(
            "# HELP wec_router_cache_total Cluster-wide completions by result source.\n\
             # TYPE wec_router_cache_total counter\n",
        );
        for (source, v) in [
            ("cold", sums.cold),
            ("disk", sums.disk_hits),
            ("mem", sums.mem_hits),
            ("spec", sums.spec_hits),
        ] {
            let _ = writeln!(out, "wec_router_cache_total{{source=\"{source}\"}} {v}");
        }
        let sp = sums.spec.unwrap_or([0; 6]);
        for (name, help, v) in [
            ("wec_router_spec_started_total", "Cluster-wide speculations started.", sp[0]),
            ("wec_router_spec_hit_total", "Cluster-wide speculations claimed by demand.", sp[1]),
            ("wec_router_spec_miss_total", "Cluster-wide demand misses the predictor did not cover.", sp[2]),
            ("wec_router_spec_waste_total", "Cluster-wide speculations reclaimed unclaimed.", sp[3]),
            ("wec_router_spec_cancelled_total", "Cluster-wide speculations cancelled before running.", sp[4]),
            ("wec_router_spec_pending_total", "Cluster-wide speculations still in flight.", sp[5]),
        ] {
            counter(&mut out, name, help, v);
        }
        out
    }

    /// Write the drain-time `router.json` if a log dir is configured.
    pub fn write_exit_logs(&self) {
        let Some(dir) = &self.cfg.log_dir else {
            return;
        };
        if let Err(e) = std::fs::create_dir_all(dir)
            .and_then(|()| std::fs::write(dir.join("router.json"), self.stats_json()))
        {
            eprintln!("wec-router: cannot write router.json: {e}");
        }
    }
}

/// Prometheus label escaping (`\` and `"`).
fn label(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn u64_at(v: &Json, path: &[&str]) -> u64 {
    let mut cur = v;
    for p in path {
        match cur.get(p) {
            Some(next) => cur = next,
            None => return 0,
        }
    }
    cur.as_u64().unwrap_or(0)
}

/// The cluster roll-up of one scrape snapshot.
struct ClusterSums {
    healthy: u64,
    draining: u64,
    dead: u64,
    submitted: u64,
    deduped: u64,
    completed: u64,
    failed: u64,
    cold: u64,
    disk_hits: u64,
    mem_hits: u64,
    spec_hits: u64,
    /// `[started, hit, miss, waste, cancelled, pending]`, `Some` iff any
    /// scraped backend carries a `spec` block.
    spec: Option<[u64; 6]>,
    jobs_per_sec: f64,
}

impl ClusterSums {
    fn from(scrapes: &[BackendScrape]) -> ClusterSums {
        let mut s = ClusterSums {
            healthy: 0,
            draining: 0,
            dead: 0,
            submitted: 0,
            deduped: 0,
            completed: 0,
            failed: 0,
            cold: 0,
            disk_hits: 0,
            mem_hits: 0,
            spec_hits: 0,
            spec: None,
            jobs_per_sec: 0.0,
        };
        for b in scrapes {
            match b.state {
                BackendState::Healthy => s.healthy += 1,
                BackendState::Draining => s.draining += 1,
                BackendState::Dead => s.dead += 1,
            }
            let Some((_, v)) = &b.stats else {
                continue;
            };
            s.submitted += u64_at(v, &["jobs", "submitted"]);
            s.deduped += u64_at(v, &["jobs", "deduped"]);
            s.completed += u64_at(v, &["jobs", "completed"]);
            s.failed += u64_at(v, &["jobs", "failed"]);
            s.cold += u64_at(v, &["cache", "cold"]);
            s.disk_hits += u64_at(v, &["cache", "disk_hits"]);
            s.mem_hits += u64_at(v, &["cache", "mem_hits"]);
            s.spec_hits += u64_at(v, &["cache", "spec_hits"]);
            if v.get("spec").is_some() {
                let sp = s.spec.get_or_insert([0; 6]);
                for (i, key) in ["started", "hit", "miss", "waste", "cancelled", "pending"]
                    .iter()
                    .enumerate()
                {
                    sp[i] += u64_at(v, &["spec", key]);
                }
            }
            s.jobs_per_sec += v
                .get("throughput")
                .and_then(|t| t.get("jobs_per_sec"))
                .and_then(Json::as_f64)
                .unwrap_or(0.0);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wec_serve::{JobSpec, ServeConfig, ServerState, SpecConfig};

    fn cfg2() -> RouterConfig {
        RouterConfig {
            backends: vec!["127.0.0.1:8601".to_string(), "127.0.0.1:8602".to_string()],
            ..RouterConfig::default()
        }
    }

    /// A real serve-stats document, produced by the serve crate itself so
    /// the embedded shape can never drift from what backends emit.
    fn serve_doc(speculate: bool, backend_id: Option<&str>) -> (String, Json) {
        let state = ServerState::new(ServeConfig {
            store: None,
            backend_id: backend_id.map(str::to_string),
            spec: speculate.then(SpecConfig::default),
            ..ServeConfig::default()
        })
        .unwrap();
        if speculate {
            // One pending speculation, so the ledger is non-trivial.
            assert!(state.submit_hint(
                JobSpec::parse("{\"bench\": \"181.mcf\"}").unwrap()
            ));
        }
        let text = state.stats_json();
        let v = json::parse(&text).unwrap();
        schema::validate_serve_stats(&v, "test").unwrap();
        (text, v)
    }

    fn scrape(
        id: &str,
        addr: &str,
        state: BackendState,
        stats: Option<(String, Json)>,
    ) -> BackendScrape {
        BackendScrape {
            id: id.to_string(),
            addr: addr.to_string(),
            state,
            consecutive_failures: 0,
            routed: 0,
            stats,
        }
    }

    #[test]
    fn composite_ids_round_trip_and_reject_out_of_range() {
        let rid = compose_id(2, 7).unwrap();
        assert_eq!(decode_id(rid, 3), Some((2, 7)));
        assert_eq!(decode_id(rid, 2), None, "index beyond the ring");
        assert_eq!(decode_id(7, 3), None, "raw local ids never decode");
        assert_eq!(compose_id(0, LOCAL_ID_MASK + 1), None);
        let max = compose_id(0, LOCAL_ID_MASK).unwrap();
        assert_eq!(decode_id(max, 1), Some((0, LOCAL_ID_MASK)));
    }

    #[test]
    fn record_id_rewrite_touches_only_the_id() {
        let body = "{\"schema\":\"wec-job-record-v1\",\"id\":5,\"kind\":\"sim\",\"scale\":1}";
        let out = rewrite_record_id(body, 1).unwrap();
        let rid = compose_id(1, 5).unwrap();
        assert_eq!(
            out,
            format!("{{\"schema\":\"wec-job-record-v1\",\"id\":{rid},\"kind\":\"sim\",\"scale\":1}}")
        );
        assert!(rewrite_record_id("{\"error\":\"nope\"}", 1).is_none());
    }

    #[test]
    fn stats_doc_validates_and_conserves_with_mixed_backends() {
        let state = RouterState::new(cfg2()).unwrap();
        // One speculating backend scraped live, one dead and unscraped.
        let scrapes = vec![
            scrape(
                "node-a",
                "127.0.0.1:8601",
                BackendState::Healthy,
                Some(serve_doc(true, Some("node-a"))),
            ),
            scrape("127.0.0.1:8602", "127.0.0.1:8602", BackendState::Dead, None),
        ];
        let doc = state.render_stats_json(&scrapes);
        let report = schema::validate_router_stats_json(&doc).unwrap();
        assert_eq!(report.backends, 2);
        assert_eq!(report.scraped, 1);
        let v = json::parse(&doc).unwrap();
        assert_eq!(u64_at(&v, &["cluster", "backends", "healthy"]), 1);
        assert_eq!(u64_at(&v, &["cluster", "backends", "dead"]), 1);
        assert_eq!(u64_at(&v, &["cluster", "spec", "pending"]), 1);
        assert_eq!(u64_at(&v, &["cluster", "spec", "started"]), 1);
    }

    #[test]
    fn stats_doc_omits_the_spec_block_without_speculating_backends() {
        let state = RouterState::new(cfg2()).unwrap();
        let scrapes = vec![
            scrape(
                "a",
                "127.0.0.1:8601",
                BackendState::Healthy,
                Some(serve_doc(false, None)),
            ),
            scrape(
                "b",
                "127.0.0.1:8602",
                BackendState::Draining,
                Some(serve_doc(false, None)),
            ),
        ];
        let doc = state.render_stats_json(&scrapes);
        schema::validate_router_stats_json(&doc).unwrap();
        assert!(!doc.contains("\"spec\":{"), "{doc}");
        assert_eq!(
            u64_at(&json::parse(&doc).unwrap(), &["cluster", "backends", "draining"]),
            1
        );
    }

    #[test]
    fn prometheus_page_is_internally_consistent() {
        let state = RouterState::new(cfg2()).unwrap();
        state.proxied.store(4, Ordering::SeqCst);
        let scrapes = vec![
            scrape(
                "node-a",
                "127.0.0.1:8601",
                BackendState::Healthy,
                Some(serve_doc(true, Some("node-a"))),
            ),
            scrape(
                "node-b",
                "127.0.0.1:8602",
                BackendState::Healthy,
                Some(serve_doc(false, Some("node-b"))),
            ),
        ];
        let page = state.render_prometheus(&scrapes);
        assert!(page.contains("wec_router_proxied_total 4"), "{page}");
        assert!(page.contains("wec_router_backend_up{backend=\"node-a\",state=\"healthy\"} 1"));
        // Per-backend completed sums to the cluster total (zero here, but
        // both series must exist for the CI gate).
        assert!(page.contains("wec_router_backend_completed_total{backend=\"node-a\"} 0"));
        assert!(page.contains("wec_router_jobs_completed_total 0"));
        // The spec ledger appears (and conserves) on the same page.
        assert!(page.contains("wec_router_spec_started_total 1"));
        assert!(page.contains("wec_router_spec_pending_total 1"));
        assert!(page.contains("wec_router_spec_hit_total 0"));
    }

    #[test]
    fn predictor_exists_iff_hints_are_enabled() {
        assert!(RouterState::new(cfg2()).unwrap().predictor.is_none());
        let state = RouterState::new(RouterConfig {
            hint_fanout: 3,
            ..cfg2()
        })
        .unwrap();
        assert!(state.predictor.is_some());
    }
}
