//! Property tests for the trace codec: varint/zigzag primitives and the
//! delta + run-length stream encoding round-trip over randomized access
//! patterns (strided runs, pointer chasing, kind mixes, cycle bursts).

use proptest::prelude::*;

use wec_trace::codec::{put_varint, unzigzag, zigzag, Cursor};
use wec_trace::stream::{StreamDecoder, StreamEncoder};
use wec_trace::{Trace, TraceHeader, TraceKind, TraceRecord, FORMAT_VERSION};

/// One generated step: how the next record differs from the previous one.
#[derive(Clone, Debug)]
struct Step {
    cdelta: u64,
    kind: TraceKind,
    /// Signed address step, applied to the per-kind previous address.
    astep: i64,
    pc: u32,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    (
        // Mostly small cycle deltas, occasionally a large idle gap.
        prop_oneof![0u64..4, 0u64..16, 1000u64..100_000],
        proptest::sample::select(TraceKind::ALL.to_vec()),
        // Strides (fixed small), random jumps, and backwards steps.
        prop_oneof![Just(64i64), Just(8i64), -4096i64..4096, Just(0i64)],
        0u32..2048,
    )
        .prop_map(|(cdelta, kind, astep, pc)| Step {
            cdelta,
            kind,
            astep,
            pc,
        })
}

/// Materialize steps into records with non-decreasing cycles and per-kind
/// address chains — the same shape a machine tap produces.  The machine's
/// phase invariant is enforced: within one cycle a store (drained after
/// all TU ticks) can never precede a load/fetch in the same stream, so a
/// phase regression at an unchanged cycle advances the cycle instead.
fn build_records(steps: &[Step], tu: u32) -> Vec<TraceRecord> {
    let mut cycle = 0u64;
    let mut addr = [0x1_0000u64; 5];
    let mut pc = 0x40_0000u32;
    let mut last_was_store = false;
    steps
        .iter()
        .map(|s| {
            let is_store = s.kind == TraceKind::CorrectStore;
            cycle += s.cdelta;
            if s.cdelta == 0 && last_was_store && !is_store {
                cycle += 1;
            }
            last_was_store = is_store;
            let a = &mut addr[s.kind as usize];
            *a = a.wrapping_add(s.astep as u64);
            pc = pc.wrapping_add(s.pc);
            TraceRecord {
                cycle,
                tu,
                pc: match s.kind {
                    TraceKind::InstFetch => *a as u32,
                    TraceKind::CorrectStore => 0,
                    _ => pc,
                },
                addr: *a,
                kind: s.kind,
                squashed: s.kind.access_kind().is_wrong(),
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn varint_round_trips(v in any::<u64>()) {
        let mut buf = Vec::new();
        put_varint(&mut buf, v);
        let mut c = Cursor::new(&buf);
        prop_assert_eq!(c.get_varint("prop").unwrap(), v);
        prop_assert!(c.is_empty());
    }

    #[test]
    fn varint_concatenation_preserves_boundaries(vs in proptest::collection::vec(any::<u64>(), 1..40)) {
        let mut buf = Vec::new();
        for &v in &vs {
            put_varint(&mut buf, v);
        }
        let mut c = Cursor::new(&buf);
        for &v in &vs {
            prop_assert_eq!(c.get_varint("prop").unwrap(), v);
        }
        prop_assert!(c.is_empty());
    }

    #[test]
    fn zigzag_round_trips(v in any::<i64>()) {
        prop_assert_eq!(unzigzag(zigzag(v)), v);
    }

    #[test]
    fn stream_round_trips(steps in proptest::collection::vec(step_strategy(), 0..600)) {
        let records = build_records(&steps, 0);
        let mut enc = StreamEncoder::new();
        for r in &records {
            enc.push(r);
        }
        let stream = enc.finish();
        let got: Vec<TraceRecord> = StreamDecoder::new(&stream, 0)
            .collect::<Result<_, _>>()
            .unwrap();
        prop_assert_eq!(got, records);
    }

    #[test]
    fn container_round_trips_and_merge_orders(
        steps_a in proptest::collection::vec(step_strategy(), 0..200),
        steps_b in proptest::collection::vec(step_strategy(), 0..200),
    ) {
        let (ra, rb) = (build_records(&steps_a, 0), build_records(&steps_b, 1));
        let mut ea = StreamEncoder::new();
        let mut eb = StreamEncoder::new();
        for r in &ra { ea.push(r); }
        for r in &rb { eb.push(r); }
        let trace = Trace {
            header: TraceHeader {
                format_version: FORMAT_VERSION,
                sim_revision: wec_core::SIM_REVISION,
                n_tus: 2,
                scale_units: 1,
                bench: "prop.bench".into(),
                cfg_label: "prop/cfg".into(),
                total_records: (ra.len() + rb.len()) as u64,
            },
            streams: vec![ea.finish(), eb.finish()],
        };
        let back = Trace::from_bytes(&trace.to_bytes()).unwrap();
        prop_assert_eq!(back.verify().unwrap(), trace.header.total_records);

        let merged: Vec<TraceRecord> = back.merged().unwrap().collect::<Result<_, _>>().unwrap();
        prop_assert_eq!(merged.len(), ra.len() + rb.len());
        for w in merged.windows(2) {
            prop_assert!(w[0].order_key() <= w[1].order_key());
        }
        // The merge is stable per stream: each TU's subsequence is intact.
        let sub_a: Vec<TraceRecord> = merged.iter().filter(|r| r.tu == 0).copied().collect();
        let sub_b: Vec<TraceRecord> = merged.iter().filter(|r| r.tu == 1).copied().collect();
        prop_assert_eq!(sub_a, ra);
        prop_assert_eq!(sub_b, rb);
    }
}
