//! Regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! experiments [--scale N] [--only figNN|tableN] [--csv] [--no-cache]
//!             [--run-out DIR] [--live] [--jobs N]
//! experiments [--scale N] [--only bench] [--trace-events] [--profile]
//!             [--sample-interval N] [--attribution] [--telemetry-out DIR]
//!             [--commit-trace N]
//! experiments [--scale N] [--only bench] --capture-trace DIR
//! experiments [--only bench] [--csv] [--no-cache] [--run-out DIR]
//!             [--jobs N] [--attribution] --replay-trace DIR
//! ```
//!
//! Results are memoized on disk (default `target/wec-result-cache`,
//! override with `WEC_RESULT_CACHE`), so a rerun at the same scale and
//! simulator revision replays from the store.  `--no-cache` neither reads
//! nor writes the store.
//!
//! In table mode, `--run-out DIR` streams per-simulation progress lines to
//! `DIR/progress.jsonl` and writes a `DIR/run.json` manifest (totals, cache
//! hit rate, slowest simulations) at the end; `--live` renders a single
//! updating status line on stderr while the sweep runs.  `--jobs N` caps
//! the host worker threads the sweep fans out over (default: the `WEC_JOBS`
//! environment variable, then the machine's available parallelism — set one
//! of them when a `wec_serve` daemon shares the host).
//!
//! Passing `--trace-events`, `--sample-interval N`, `--profile`, or
//! `--attribution` switches the harness into **telemetry mode**: instead of
//! regenerating tables it runs the selected workloads (default `181.mcf`;
//! `--only` substring-filters by benchmark name) on the paper's
//! `wth-wp-wec` machine with the requested instruments on, writes the
//! artifacts (`events.jsonl`, `timeseries.csv`, `histograms.json`,
//! `trace.perfetto.json`, `profile.json`, `attribution.json`) under
//! `--telemetry-out DIR/<bench>/` (default `target/wec-telemetry`), and
//! prints a telemetry summary.  `--attribution` attaches the speculation
//! attribution ledger to every L1D path: per-PC prefetch credit, waste and
//! timeliness, per-set occupancy pressure, and per-TU conservation totals,
//! emitted as a strict `wec-attribution-v1` `attribution.json` (validate
//! with `telemetry_check`).  The ledger is purely observational — cycles,
//! metrics, and cache counters are byte-identical with it on or off.  `--profile`
//! turns on the cycle-loop self-profiler: sampled per-phase wall-clock
//! attribution (fetch/rename, exec, mem, commit/recovery, scheduling,
//! telemetry drain) reported as `profile.json` and, with `--trace-events`,
//! as Perfetto counter tracks.  Telemetry runs always bypass the result
//! cache — artifacts must come from a live simulation (`--no-cache` is
//! therefore rejected as redundant).
//!
//! `--capture-trace DIR` switches into **trace-capture mode**: each
//! selected workload (default all six; `--only` substring-filters) runs
//! once, full-timing, on the paper's `wth-wp-wec` 8-TU machine with the
//! memory-access tap on, writing `DIR/<bench>.wectrace`, golden cache
//! counters under `DIR/golden/`, and a `DIR/capture.json` manifest.
//! `--replay-trace DIR` then re-drives *only the cache hierarchy* from
//! those traces across the 48-point WEC geometry sweep, re-checking each
//! trace at its captured configuration (`--run-out OUT`, default
//! `target/wec-replay`, receives `OUT/golden-check/` — gate with
//! `metricsdiff DIR/golden OUT/golden-check`) and memoizing sweep points
//! in the result store (`--no-cache` replays every point cold).  Replay
//! decodes each trace once into a shared in-memory slab and fans both
//! block decoding and sweep points over `--jobs N` workers (default:
//! `WEC_JOBS`, then available parallelism); every counter, artifact, and
//! memo entry is byte-identical at any job count.  Telemetry instruments
//! cannot combine with replay (replay never runs the core pipeline), and
//! capture is always a live full-timing run (`--jobs` is rejected there).
//! Exception: `--replay-trace` accepts `--attribution` — the ledger rides
//! on the replayed L1D paths, every sweep point is replayed cold (the
//! result store memoizes counters, not ledgers), and each point writes an
//! `.attr.json` next to its `.kv`, including
//! `OUT/golden-check/<bench>.attr.json` at the captured configuration,
//! which must be byte-identical to the full-timing ledger.
//! `--capture-trace` still rejects it: capture records exactly the
//! untraced machine — derive the ledger via `--replay-trace --attribution`
//! or a telemetry-mode run.

use std::sync::Arc;

use wec_bench::experiments;

type TableFn = Box<dyn Fn(&Runner) -> wec_common::table::Table>;
use wec_bench::progress::Progress;
use wec_bench::runner::{Runner, Suite};
use wec_core::config::ProcPreset;
use wec_telemetry::{Phase, TelemetryConfig};
use wec_workloads::{run_and_verify, Bench, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::PAPER;
    let mut scale_set = false;
    let mut only: Option<String> = None;
    let mut csv = false;
    let mut no_cache = false;
    let mut trace_events = false;
    let mut profile = false;
    let mut attribution = false;
    let mut sample_interval = 0u64;
    let mut telemetry_out: Option<std::path::PathBuf> = None;
    let mut commit_trace = 0usize;
    let mut run_out: Option<std::path::PathBuf> = None;
    let mut live = false;
    let mut jobs: Option<usize> = None;
    let mut capture_trace: Option<std::path::PathBuf> = None;
    let mut replay_trace: Option<std::path::PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--capture-trace" => {
                capture_trace = Some(it.next().expect("--capture-trace DIR").into())
            }
            "--replay-trace" => replay_trace = Some(it.next().expect("--replay-trace DIR").into()),
            "--scale" => {
                scale = Scale {
                    units: it.next().and_then(|s| s.parse().ok()).expect("--scale N"),
                };
                scale_set = true;
            }
            "--only" => only = it.next().cloned(),
            "--csv" => csv = true,
            "--no-cache" => no_cache = true,
            "--trace-events" => trace_events = true,
            "--profile" => profile = true,
            "--attribution" => attribution = true,
            "--live" => live = true,
            "--jobs" => {
                let n: usize = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--jobs N (positive integer)");
                assert!(n > 0, "--jobs needs at least one worker");
                jobs = Some(n);
            }
            "--run-out" => run_out = Some(it.next().expect("--run-out DIR").into()),
            "--sample-interval" => {
                sample_interval = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--sample-interval N")
            }
            "--telemetry-out" => {
                telemetry_out = Some(it.next().expect("--telemetry-out DIR").into())
            }
            "--commit-trace" => {
                commit_trace = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--commit-trace N")
            }
            other => panic!("unknown argument {other:?}"),
        }
    }

    let telemetry_mode = trace_events || sample_interval > 0 || profile || attribution;
    if capture_trace.is_some() || replay_trace.is_some() {
        if capture_trace.is_some() && replay_trace.is_some() {
            panic!("--capture-trace and --replay-trace are mutually exclusive: capture is a full-timing run, replay re-drives an existing trace");
        }
        if trace_events
            || sample_interval > 0
            || profile
            || telemetry_out.is_some()
            || commit_trace > 0
        {
            panic!("--trace-events/--profile/--sample-interval/--telemetry-out/--commit-trace cannot combine with trace capture/replay: replay drives only the cache hierarchy (the core pipeline never runs), and capture records exactly the untraced machine — use telemetry mode separately");
        }
        if attribution && capture_trace.is_some() {
            panic!("--attribution cannot combine with --capture-trace: capture records exactly the untraced machine — derive the ledger from the trace with --replay-trace --attribution, or run telemetry mode (--attribution alone) for the full-timing ledger");
        }
        if live {
            panic!("--live renders table-mode sweep progress; trace capture/replay print their own per-workload progress");
        }
        if let Some(dir) = capture_trace {
            if jobs.is_some() {
                panic!("--jobs applies to table-mode sweeps and --replay-trace; capture is one full-timing run per workload and is inherently sequential (WEC_JOBS also has no effect on it)");
            }
            if no_cache {
                panic!("--no-cache has no effect on --capture-trace: capture always runs the simulation live (the result store only memoizes metrics, not traces)");
            }
            if csv {
                panic!("--csv applies to table output; --capture-trace writes binary traces and .kv goldens");
            }
            if run_out.is_some() {
                panic!("--run-out applies to table and replay modes; --capture-trace writes everything under its own DIR");
            }
            wec_bench::tracerun::capture_traces(scale, only.as_deref(), &dir);
        } else if let Some(dir) = replay_trace {
            if scale_set {
                panic!("--replay-trace replays at the scale recorded in each trace; --scale applies to capture/table/telemetry modes");
            }
            let out = run_out.unwrap_or_else(|| std::path::PathBuf::from("target/wec-replay"));
            let n = jobs.unwrap_or_else(wec_bench::runner::default_hosts);
            wec_bench::tracerun::replay_traces(
                &dir,
                &out,
                no_cache,
                csv,
                only.as_deref(),
                n,
                attribution,
            );
        }
        return;
    }
    if telemetry_mode {
        if run_out.is_some() || live {
            panic!("--run-out/--live apply to table mode, not telemetry mode");
        }
        if jobs.is_some() {
            panic!("--jobs applies to table-mode sweeps; telemetry runs each workload once, sequentially");
        }
        if no_cache {
            panic!("telemetry runs always bypass the result cache (artifacts must come from a live simulation) — drop the redundant --no-cache");
        }
        run_telemetry(
            scale,
            only.as_deref(),
            trace_events,
            profile,
            sample_interval,
            attribution,
            telemetry_out,
            commit_trace,
        );
        return;
    }
    if commit_trace > 0 || telemetry_out.is_some() {
        panic!(
            "--commit-trace/--telemetry-out need --trace-events, --sample-interval, --profile, or --attribution"
        );
    }

    eprintln!(
        "building the workload suite (scale units = {})…",
        scale.units
    );
    let t0 = std::time::Instant::now();
    let suite = Suite::build(scale);
    eprintln!(
        "built in {:.1}s; running experiments…",
        t0.elapsed().as_secs_f64()
    );
    let mut runner = if no_cache {
        Runner::without_disk_cache(&suite)
    } else {
        Runner::new(&suite)
    };
    if let Some(dir) = runner.disk_dir() {
        eprintln!("result cache: {}", dir.display());
    }
    if let Some(n) = jobs {
        runner.set_hosts(n);
        eprintln!("sweep workers: {n} (--jobs)");
    }
    let progress = Arc::new(
        Progress::new(run_out.as_deref(), live).expect("cannot create --run-out directory"),
    );
    runner.set_observer(progress.clone());
    if let Some(dir) = progress.run_dir() {
        eprintln!("run artifacts: {}", dir.display());
    }

    let selected: Vec<(&str, TableFn)> = vec![
        (
            "table1",
            Box::new(|r: &Runner| experiments::table1(r.suite())),
        ),
        ("table2", Box::new(experiments::table2)),
        ("table3", Box::new(|_r: &Runner| experiments::table3())),
        ("fig08", Box::new(experiments::fig08)),
        ("fig09", Box::new(experiments::fig09)),
        ("fig10", Box::new(experiments::fig10)),
        ("fig11", Box::new(experiments::fig11)),
        ("fig12", Box::new(experiments::fig12)),
        ("fig13", Box::new(experiments::fig13)),
        ("fig14", Box::new(experiments::fig14)),
        ("fig15", Box::new(experiments::fig15)),
        ("fig16", Box::new(experiments::fig16)),
        ("fig17", Box::new(experiments::fig17)),
        (
            "ablation_mem_latency",
            Box::new(wec_bench::ablations::memory_latency),
        ),
        (
            "ablation_block_size",
            Box::new(wec_bench::ablations::block_size),
        ),
        (
            "ablation_bpred",
            Box::new(wec_bench::ablations::branch_prediction),
        ),
    ];

    let mut tables_run: Vec<String> = Vec::new();
    for (name, f) in &selected {
        if let Some(filter) = &only {
            if !name.contains(filter.as_str()) {
                continue;
            }
        }
        let t = std::time::Instant::now();
        let table = f(&runner);
        tables_run.push(name.to_string());
        if csv {
            println!("# {name}");
            print!("{}", table.to_csv());
        } else {
            print!("{}", table.render());
        }
        progress.finish_live();
        eprintln!(
            "[{name}: {:.1}s, {} simulations cached]",
            t.elapsed().as_secs_f64(),
            runner.simulations()
        );
        println!();
    }
    let wall_s = t0.elapsed().as_secs_f64();
    let c = runner.counters();
    eprintln!(
        "total {wall_s:.1}s, {} distinct simulations ({} cold, {} disk hits, {} mem hits, {:.1}% persistent hit rate)",
        runner.simulations(),
        c.cold(),
        c.disk_hits(),
        c.mem_hits(),
        c.hit_rate() * 100.0
    );
    let manifest = progress
        .write_manifest(&runner, scale.units as u64, wall_s, &tables_run)
        .expect("cannot write run.json");
    if let Some(dir) = progress.run_dir() {
        eprintln!(
            "wrote {} and {} ({} metric points)",
            dir.join("progress.jsonl").display(),
            dir.join("run.json").display(),
            manifest.metrics.len()
        );
    }
}

/// Telemetry mode: run the selected workloads on the paper's `wth-wp-wec`
/// machine with the requested instruments and print what they captured.
#[allow(clippy::too_many_arguments)]
fn run_telemetry(
    scale: Scale,
    only: Option<&str>,
    trace_events: bool,
    profile: bool,
    sample_interval: u64,
    attribution: bool,
    out: Option<std::path::PathBuf>,
    commit_trace: usize,
) {
    let out = out.unwrap_or_else(|| std::path::PathBuf::from("target/wec-telemetry"));
    let benches: Vec<Bench> = match only {
        None => vec![Bench::Mcf],
        Some(filter) => Bench::ALL
            .iter()
            .copied()
            .filter(|b| b.name().contains(filter))
            .collect(),
    };
    if benches.is_empty() {
        panic!("--only {only:?} matches no benchmark (names: 175.vpr 164.gzip 181.mcf 197.parser 183.equake 177.mesa)");
    }

    for bench in benches {
        let w = bench.build(scale);
        let bench_dir = out.join(w.name.replace('.', "_"));
        let mut cfg = ProcPreset::WthWpWec.machine(8);
        cfg.core.commit_trace = commit_trace;
        cfg.attribution = attribution;
        cfg.telemetry = TelemetryConfig {
            trace_events,
            sample_interval,
            profile,
            out_dir: Some(bench_dir.clone()),
        };
        eprintln!(
            "telemetry run: {} (scale units = {}, preset wth-wp-wec, 8 TUs)…",
            w.name, scale.units
        );
        let t = std::time::Instant::now();
        let r = run_and_verify(&w, cfg).expect("telemetry run failed");

        println!("== telemetry: {} ==", w.name);
        println!(
            "cycles {}  instructions {}  ipc {:.3}",
            r.cycles,
            r.metrics.correct_instructions(),
            r.metrics.ipc()
        );
        // Absent when only --attribution is on: the ledger is not a
        // telemetry instrument, so the event/sample machinery stays off.
        if let Some(tel) = &r.telemetry {
            println!("events_total {}  samples {}", tel.events_total, tel.samples);
            for (kind, n) in &tel.events_by_kind {
                println!("  event {kind:<22} {n}");
            }
            for h in &tel.histograms {
                println!(
                    "  hist  {:<22} count {}  p50 {}  p99 {}  max {}",
                    h.name, h.count, h.p50, h.p99, h.max
                );
            }
            if let Some(p) = &tel.profile {
                println!(
                    "  profile: 1-in-{} cycles sampled ({} of {})",
                    p.stride, p.sampled_cycles, p.total_cycles
                );
                let shares = p.shares();
                for phase in Phase::ALL {
                    println!(
                        "  prof  {:<22} {:>5.1}%  {} ns sampled",
                        phase.name(),
                        shares[phase as usize] * 100.0,
                        p.ns[phase as usize]
                    );
                }
            }
            for f in &tel.files {
                println!("  wrote {}", f.display());
            }
        }
        if let Some(report) = &r.attribution {
            assert!(
                report.conserved(),
                "attribution ledger violates conservation on {}",
                w.name
            );
            std::fs::create_dir_all(&bench_dir)
                .unwrap_or_else(|e| panic!("cannot create {}: {e}", bench_dir.display()));
            let path = bench_dir.join("attribution.json");
            std::fs::write(&path, format!("{}\n", report.to_json()))
                .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
            let tot = &report.totals;
            println!(
                "  attr  wec_fills {}  useful {}  wasted {}  victim_rescued {}  still_resident {}",
                tot.wec_fills, tot.useful, tot.wasted, tot.victim_rescued, tot.still_resident
            );
            if let Some(top) = report.top_pcs.first() {
                println!(
                    "  attr  top pc {:#010x}: {} useful, {} wasted, median timeliness {}",
                    top.pc, top.useful, top.wasted, top.median_timeliness
                );
            }
            println!("  wrote {}", path.display());
        }
        eprintln!("[{}: {:.1}s]", w.name, t.elapsed().as_secs_f64());
        println!();
    }
}
