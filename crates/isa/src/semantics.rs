//! Pure value semantics for WISA-64 operations.
//!
//! These functions are total: division by zero and overflow have defined
//! results (RISC-V-style) because the out-of-order core executes instructions
//! speculatively down wrong paths, where any operand garbage is possible and
//! must never crash the simulator.

use crate::inst::{AluOp, BranchCond, FCmpOp, FpuOp};

/// Evaluate an integer ALU operation on 64-bit register values.
///
/// * shifts use only the low 6 bits of the shift amount;
/// * `div`/`rem` by zero produce `u64::MAX` / the dividend (RISC-V);
/// * `i64::MIN / -1` wraps (no trap).
pub fn eval_alu(op: AluOp, a: u64, b: u64) -> u64 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Div => {
            let (a, b) = (a as i64, b as i64);
            if b == 0 {
                u64::MAX
            } else {
                a.wrapping_div(b) as u64
            }
        }
        AluOp::Rem => {
            let (a, b) = (a as i64, b as i64);
            if b == 0 {
                a as u64
            } else {
                a.wrapping_rem(b) as u64
            }
        }
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Sll => a.wrapping_shl(b as u32 & 63),
        AluOp::Srl => a.wrapping_shr(b as u32 & 63),
        AluOp::Sra => ((a as i64).wrapping_shr(b as u32 & 63)) as u64,
        AluOp::Slt => ((a as i64) < (b as i64)) as u64,
        AluOp::Sltu => (a < b) as u64,
    }
}

/// Evaluate a floating-point operation. IEEE-754 semantics; division by zero
/// yields ±inf, 0/0 yields NaN — all representable, never trapping.
pub fn eval_fpu(op: FpuOp, a: f64, b: f64) -> f64 {
    match op {
        FpuOp::Add => a + b,
        FpuOp::Sub => a - b,
        FpuOp::Mul => a * b,
        FpuOp::Div => a / b,
    }
}

/// Evaluate a floating-point comparison (result is 0 or 1).
/// NaN compares false for every predicate, as in IEEE-754.
pub fn eval_fcmp(op: FCmpOp, a: f64, b: f64) -> u64 {
    let r = match op {
        FCmpOp::Eq => a == b,
        FCmpOp::Lt => a < b,
        FCmpOp::Le => a <= b,
    };
    r as u64
}

/// Evaluate a branch condition on integer register values.
pub fn eval_branch(cond: BranchCond, a: u64, b: u64) -> bool {
    match cond {
        BranchCond::Eq => a == b,
        BranchCond::Ne => a != b,
        BranchCond::Lt => (a as i64) < (b as i64),
        BranchCond::Ge => (a as i64) >= (b as i64),
        BranchCond::Ltu => a < b,
        BranchCond::Geu => a >= b,
    }
}

/// Signed integer to double.
#[inline]
pub fn cvt_if(a: u64) -> f64 {
    a as i64 as f64
}

/// Double to signed integer, truncating; NaN and out-of-range saturate
/// (RISC-V `fcvt.l.d` semantics, simplified).
#[inline]
pub fn cvt_fi(a: f64) -> u64 {
    if a.is_nan() {
        0
    } else if a >= i64::MAX as f64 {
        i64::MAX as u64
    } else if a <= i64::MIN as f64 {
        i64::MIN as u64
    } else {
        a as i64 as u64
    }
}

/// Sign-extend the low `bits` bits of `v`.
#[inline]
pub fn sext(v: u64, bits: u32) -> u64 {
    debug_assert!((1..=64).contains(&bits));
    if bits == 64 {
        return v;
    }
    let shift = 64 - bits;
    (((v << shift) as i64) >> shift) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sub_wrap() {
        assert_eq!(eval_alu(AluOp::Add, u64::MAX, 1), 0);
        assert_eq!(eval_alu(AluOp::Sub, 0, 1), u64::MAX);
    }

    #[test]
    fn signed_division_rules() {
        assert_eq!(eval_alu(AluOp::Div, 7, 2), 3);
        assert_eq!(eval_alu(AluOp::Div, (-7i64) as u64, 2), (-3i64) as u64);
        assert_eq!(eval_alu(AluOp::Div, 5, 0), u64::MAX);
        assert_eq!(eval_alu(AluOp::Rem, 7, 0), 7);
        assert_eq!(eval_alu(AluOp::Rem, (-7i64) as u64, 2), (-1i64) as u64);
        // i64::MIN / -1 must not panic.
        let _ = eval_alu(AluOp::Div, i64::MIN as u64, (-1i64) as u64);
        let _ = eval_alu(AluOp::Rem, i64::MIN as u64, (-1i64) as u64);
    }

    #[test]
    fn shift_amounts_masked() {
        assert_eq!(eval_alu(AluOp::Sll, 1, 64), 1); // 64 & 63 == 0
        assert_eq!(eval_alu(AluOp::Sll, 1, 65), 2);
        assert_eq!(eval_alu(AluOp::Srl, u64::MAX, 63), 1);
        assert_eq!(eval_alu(AluOp::Sra, (-8i64) as u64, 2), (-2i64) as u64);
    }

    #[test]
    fn set_less_than_signed_vs_unsigned() {
        let neg1 = (-1i64) as u64;
        assert_eq!(eval_alu(AluOp::Slt, neg1, 0), 1);
        assert_eq!(eval_alu(AluOp::Sltu, neg1, 0), 0);
    }

    #[test]
    fn branch_conditions() {
        let neg1 = (-1i64) as u64;
        assert!(eval_branch(BranchCond::Eq, 4, 4));
        assert!(eval_branch(BranchCond::Ne, 4, 5));
        assert!(eval_branch(BranchCond::Lt, neg1, 0));
        assert!(!eval_branch(BranchCond::Ltu, neg1, 0));
        assert!(eval_branch(BranchCond::Ge, 0, neg1));
        assert!(eval_branch(BranchCond::Geu, neg1, 0));
    }

    #[test]
    fn fp_ops_never_trap() {
        assert!(eval_fpu(FpuOp::Div, 1.0, 0.0).is_infinite());
        assert!(eval_fpu(FpuOp::Div, 0.0, 0.0).is_nan());
        assert_eq!(eval_fpu(FpuOp::Mul, 3.0, 2.0), 6.0);
    }

    #[test]
    fn fcmp_nan_is_false() {
        for op in FCmpOp::ALL {
            assert_eq!(eval_fcmp(op, f64::NAN, 1.0), 0);
        }
        assert_eq!(eval_fcmp(FCmpOp::Le, 2.0, 2.0), 1);
        assert_eq!(eval_fcmp(FCmpOp::Lt, 2.0, 2.0), 0);
    }

    #[test]
    fn conversions_saturate() {
        assert_eq!(cvt_fi(f64::NAN), 0);
        assert_eq!(cvt_fi(1e300), i64::MAX as u64);
        assert_eq!(cvt_fi(-1e300), i64::MIN as u64);
        assert_eq!(cvt_fi(-2.7), (-2i64) as u64);
        assert_eq!(cvt_if((-3i64) as u64), -3.0);
    }

    #[test]
    fn sign_extension() {
        assert_eq!(sext(0xff, 8), u64::MAX);
        assert_eq!(sext(0x7f, 8), 0x7f);
        assert_eq!(sext(0xffff_ffff, 32), u64::MAX);
        assert_eq!(sext(5, 64), 5);
    }
}
