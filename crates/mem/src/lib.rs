//! Cycle-level memory hierarchy for the WEC simulator.
//!
//! The paper's memory system (§4.1): per-thread-unit private L1 instruction
//! and data caches, a unified shared L2, and a 200-cycle round-trip main
//! memory.  This crate provides the generic machinery:
//!
//! * [`cache`] — set-associative / fully-associative tag arrays with true
//!   LRU replacement and write-back state ([`lru`], [`line`](mod@line));
//! * [`ports`] — per-cycle port arbitration (L1 data ports are the paper's
//!   load/store-unit contention point);
//! * [`mshr`] — outstanding-miss tracking so two loads to one in-flight
//!   block produce one refill;
//! * [`l2`] / [`dram`] — the shared second level and the fixed-latency main
//!   memory behind it, both with busy-time queueing;
//! * [`prefetch`] — the tagged next-line prefetch policy used by the
//!   paper's `nlp` comparator configuration and by the WEC's own
//!   hit-triggered next-line prefetch;
//! * [`coherence`] — the update-protocol broadcast bookkeeping of §3.2.2;
//! * [`stats`] — per-cache counters (Figure 17's traffic/miss metrics).
//!
//! A deliberate modeling choice, shared with SimpleScalar: caches hold tags
//! and metadata only.  Architectural values always live in the committed
//! memory image (`wec_isa::MemImage`) plus the speculative store structures,
//! so no timing configuration can ever change computed results.

pub mod cache;
pub mod coherence;
pub mod dram;
pub mod l2;
pub mod line;
pub mod lru;
pub mod mshr;
pub mod ports;
pub mod prefetch;
pub mod stats;

pub use cache::{Cache, CacheGeometry, Evicted};
pub use dram::MainMemory;
pub use l2::SharedL2;
pub use line::{Line, LineFlags};
pub use mshr::{MshrOutcome, Mshrs};
pub use ports::PortSet;
pub use prefetch::TaggedNextLine;
pub use stats::CacheStats;
