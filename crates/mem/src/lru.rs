//! True-LRU recency ordering for a cache set.
//!
//! The paper's caches (L1, L2, WEC, victim cache, prefetch buffer) all use
//! LRU replacement; associativities are small (≤ 32 ways for the
//! fully-associative structures), so a simple recency vector — most recent
//! first — is both exact and fast.

/// Recency order over `n` ways. Way indices are stable; only their order in
/// the recency vector changes.
#[derive(Clone, Debug)]
pub struct LruOrder {
    /// `order[0]` is the most recently used way, `order[n-1]` the LRU way.
    order: Vec<u8>,
}

impl LruOrder {
    /// New order for `ways` ways (initial order: way 0 most recent).
    pub fn new(ways: usize) -> Self {
        assert!((1..=255).contains(&ways));
        LruOrder {
            order: (0..ways as u8).collect(),
        }
    }

    pub fn ways(&self) -> usize {
        self.order.len()
    }

    /// Mark `way` most recently used.
    pub fn touch(&mut self, way: usize) {
        let pos = self
            .order
            .iter()
            .position(|&w| w as usize == way)
            .expect("way out of range");
        let w = self.order.remove(pos);
        self.order.insert(0, w);
    }

    /// The least recently used way (the replacement victim).
    pub fn lru(&self) -> usize {
        *self.order.last().unwrap() as usize
    }

    /// The most recently used way.
    pub fn mru(&self) -> usize {
        self.order[0] as usize
    }

    /// Recency rank of `way` (0 = most recent).
    pub fn rank(&self, way: usize) -> usize {
        self.order
            .iter()
            .position(|&w| w as usize == way)
            .expect("way out of range")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_order() {
        let l = LruOrder::new(4);
        assert_eq!(l.mru(), 0);
        assert_eq!(l.lru(), 3);
        assert_eq!(l.ways(), 4);
    }

    #[test]
    fn touch_moves_to_front() {
        let mut l = LruOrder::new(4);
        l.touch(2);
        assert_eq!(l.mru(), 2);
        assert_eq!(l.lru(), 3);
        l.touch(3);
        assert_eq!(l.mru(), 3);
        assert_eq!(l.lru(), 1);
    }

    #[test]
    fn rank_tracks_recency() {
        let mut l = LruOrder::new(3);
        l.touch(1);
        l.touch(2);
        assert_eq!(l.rank(2), 0);
        assert_eq!(l.rank(1), 1);
        assert_eq!(l.rank(0), 2);
    }

    #[test]
    fn single_way_degenerates() {
        let mut l = LruOrder::new(1);
        l.touch(0);
        assert_eq!(l.lru(), 0);
        assert_eq!(l.mru(), 0);
    }

    #[test]
    fn repeated_touch_sequence_matches_reference() {
        // Reference model: a Vec where touch = move to front.
        let mut l = LruOrder::new(8);
        let mut reference: Vec<usize> = (0..8).collect();
        let seq = [3usize, 1, 4, 1, 5, 2, 6, 5, 3, 7, 0, 0, 2];
        for &w in &seq {
            l.touch(w);
            let pos = reference.iter().position(|&x| x == w).unwrap();
            reference.remove(pos);
            reference.insert(0, w);
            assert_eq!(l.mru(), reference[0]);
            assert_eq!(l.lru(), *reference.last().unwrap());
        }
    }
}
