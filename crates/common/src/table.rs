//! Plain-text table rendering for the experiment harness.
//!
//! Every figure and table of the paper is regenerated as an aligned text
//! table (and optionally CSV) so `cargo bench` / the `experiments` binary can
//! print results that read like the paper's own tables.

use std::fmt::Write as _;

/// Column alignment.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Align {
    Left,
    Right,
}

/// A simple text table: a header row plus data rows, rendered with aligned
/// columns.  Numeric cells are formatted by the caller so the table itself
/// stays dumb and predictable.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    header: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table. The first column is left-aligned, the rest right-aligned
    /// (the common shape: benchmark name + numbers).
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        let aligns = (0..header.len())
            .map(|i| if i == 0 { Align::Left } else { Align::Right })
            .collect();
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            aligns,
            rows: Vec::new(),
        }
    }

    /// Override column alignments (must match column count).
    pub fn with_aligns(mut self, aligns: &[Align]) -> Self {
        assert_eq!(aligns.len(), self.header.len());
        self.aligns = aligns.to_vec();
        self
    }

    /// Append a row; must match the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width {} != header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
    }

    /// Convenience: a row of (&str, numbers formatted to 2 decimals).
    pub fn row_f64(&mut self, label: &str, values: &[f64]) {
        let mut cells = Vec::with_capacity(values.len() + 1);
        cells.push(label.to_string());
        cells.extend(values.iter().map(|v| format!("{v:.2}")));
        self.row(cells);
    }

    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    pub fn title(&self) -> &str {
        &self.title
    }

    /// Value at (row, col) if present.
    pub fn cell(&self, row: usize, col: usize) -> Option<&str> {
        self.rows
            .get(row)
            .and_then(|r| r.get(col))
            .map(|s| s.as_str())
    }

    /// Render with aligned columns, a title line and a rule under the header.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let fmt_row = |cells: &[String], widths: &[usize], aligns: &[Align]| {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                let w = widths[i];
                match aligns[i] {
                    Align::Left => {
                        let _ = write!(line, "{:<w$}", cells[i]);
                    }
                    Align::Right => {
                        let _ = write!(line, "{:>w$}", cells[i]);
                    }
                }
            }
            line
        };
        let header_line = fmt_row(&self.header, &widths, &self.aligns);
        let rule: String = "-".repeat(header_line.len());
        let _ = writeln!(out, "{header_line}");
        let _ = writeln!(out, "{rule}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths, &self.aligns));
        }
        out
    }

    /// Render as CSV (title omitted; header + rows).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.header
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Figure X", &["benchmark", "orig", "wec"]);
        t.row(vec!["mcf".into(), "100".into(), "85".into()]);
        t.row_f64("equake", &[1.0, 1.185]);
        t
    }

    #[test]
    fn render_aligns_columns() {
        let t = sample();
        let s = t.render();
        assert!(s.starts_with("== Figure X =="));
        let lines: Vec<&str> = s.lines().collect();
        // header, rule, two rows (+ title)
        assert_eq!(lines.len(), 5);
        // Rule is as long as the header line.
        assert_eq!(lines[1].len(), lines[2].len());
        // Right alignment of numeric columns: "100" ends where "orig" ends.
        let header = lines[1];
        let row = lines[3];
        assert_eq!(
            header.find("orig").unwrap() + 4,
            row.find("100").unwrap() + 3
        );
    }

    #[test]
    fn cell_lookup() {
        let t = sample();
        assert_eq!(t.cell(0, 0), Some("mcf"));
        assert_eq!(t.cell(1, 2), Some("1.19"));
        assert_eq!(t.cell(5, 0), None);
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(vec!["x,y".into(), "q\"z".into()]);
        let csv = t.to_csv();
        assert_eq!(csv.lines().nth(1).unwrap(), "\"x,y\",\"q\"\"z\"");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
