//! Main-memory latency and bandwidth model.
//!
//! The paper specifies a 200-cycle round-trip memory latency (§4.1).  We
//! model memory as a fixed access latency plus a bandwidth bound: a new
//! request can begin only every `gap` cycles, so bursts of refills queue.

use wec_common::ids::Cycle;
use wec_common::stats::Counter;

/// Fixed-latency, bandwidth-limited main memory.
#[derive(Clone, Debug)]
pub struct MainMemory {
    /// Cycles from request start to data back at the requester.
    latency: u64,
    /// Minimum cycles between request starts (bandwidth bound).
    gap: u64,
    next_start: Cycle,
    /// Requests serviced.
    pub requests: Counter,
    /// Total cycles requests spent queueing for bandwidth.
    pub queue_cycles: Counter,
}

impl MainMemory {
    pub fn new(latency: u64, gap: u64) -> Self {
        assert!(latency >= 1 && gap >= 1);
        MainMemory {
            latency,
            gap,
            next_start: Cycle::ZERO,
            requests: Counter::default(),
            queue_cycles: Counter::default(),
        }
    }

    /// Issue a block transfer at `now`; returns the cycle the data is back.
    pub fn access(&mut self, now: Cycle) -> Cycle {
        let start = now.max(self.next_start);
        self.queue_cycles.add(start.since(now));
        self.next_start = start.plus(self.gap);
        self.requests.inc();
        start.plus(self.latency)
    }

    pub fn latency(&self) -> u64 {
        self.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isolated_access_takes_latency() {
        let mut m = MainMemory::new(200, 4);
        assert_eq!(m.access(Cycle(10)), Cycle(210));
        assert_eq!(m.requests.get(), 1);
        assert_eq!(m.queue_cycles.get(), 0);
    }

    #[test]
    fn back_to_back_requests_queue_for_bandwidth() {
        let mut m = MainMemory::new(200, 4);
        assert_eq!(m.access(Cycle(0)), Cycle(200));
        // Second request in the same cycle must wait for the gap.
        assert_eq!(m.access(Cycle(0)), Cycle(204));
        assert_eq!(m.access(Cycle(0)), Cycle(208));
        assert_eq!(m.queue_cycles.get(), 4 + 8);
    }

    #[test]
    fn spaced_requests_do_not_queue() {
        let mut m = MainMemory::new(100, 4);
        m.access(Cycle(0));
        assert_eq!(m.access(Cycle(50)), Cycle(150));
        assert_eq!(m.queue_cycles.get(), 0);
    }
}
