//! Byte-level primitives for the trace format: LEB128 varints, zigzag
//! signed mapping, and the FNV-1a fold used by every checksum.

use crate::TraceError;

/// Append `v` as an LEB128 varint (7 bits per byte, little-endian groups,
/// high bit = continuation).
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

/// Map a signed delta onto small unsigned values (0, -1, 1, -2, ...).
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// 64-bit FNV-1a over a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Fold one u64 (as 8 LE bytes) into a running FNV-1a hash — the trace's
/// content checksums are built from these.
pub fn fnv_fold(mut h: u64, v: u64) -> u64 {
    for b in v.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// A bounds-checked reader over an encoded byte slice.
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    pub fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    pub fn pos(&self) -> usize {
        self.pos
    }

    pub fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], TraceError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(TraceError::Truncated(what))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    pub fn get_u8(&mut self, what: &'static str) -> Result<u8, TraceError> {
        Ok(self.take(1, what)?[0])
    }

    pub fn get_u32(&mut self, what: &'static str) -> Result<u32, TraceError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    pub fn get_u64(&mut self, what: &'static str) -> Result<u64, TraceError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    pub fn get_varint(&mut self, what: &'static str) -> Result<u64, TraceError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.get_u8(what)?;
            if shift >= 64 || (shift == 63 && b > 1) {
                return Err(TraceError::Corrupt(format!("varint overflow in {what}")));
            }
            v |= ((b & 0x7f) as u64) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: u64) -> u64 {
        let mut buf = Vec::new();
        put_varint(&mut buf, v);
        let mut c = Cursor::new(&buf);
        let got = c.get_varint("test").unwrap();
        assert!(c.is_empty());
        got
    }

    #[test]
    fn varint_edges() {
        for v in [0, 1, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX] {
            assert_eq!(roundtrip(v), v);
        }
    }

    #[test]
    fn zigzag_edges() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn truncated_varint_is_error() {
        let mut c = Cursor::new(&[0x80]);
        assert!(matches!(c.get_varint("t"), Err(TraceError::Truncated("t"))));
    }

    #[test]
    fn fnv_fold_matches_bytes() {
        let v = 0x0123_4567_89ab_cdefu64;
        assert_eq!(fnv_fold(FNV_OFFSET, v), fnv1a(&v.to_le_bytes()));
    }
}
