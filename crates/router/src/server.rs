//! The router's accept loop, request routing, and graceful drain.
//!
//! Same concurrency shape as the serve daemon it fronts: a nonblocking
//! listener polled every 20 ms, one short-lived thread per connection,
//! one request per connection (`Connection: close`).  A background
//! health thread probes every backend's `/healthz` on a fixed interval;
//! connection threads only *read* ring state (plus failure bookkeeping
//! on exchanges they themselves attempted), so routing never blocks on
//! probes.
//!
//! Submit routing walks the rendezvous order for the job's dedup key:
//!
//! 1. the first routable candidate is the owner — identical submissions
//!    from any client converge on it, which is what makes cross-node
//!    dedup hold without backend coordination;
//! 2. a queue-full `503` is retried against the same owner (bounded by
//!    `retries`, waiting out `Retry-After` up to `backoff_cap`) — the
//!    job's warm state lives there, moving it would forfeit dedup;
//! 3. a connect failure, timeout, or `X-Wec-Draining` answer re-shards
//!    to the next candidate in rendezvous order — exactly where every
//!    other router (and this one, after the health thread catches up)
//!    would send the same key.
//!
//! Successful submits feed the speculation predictor; predicted specs
//! are posted as `POST /hints` to the backend that owns *their* hash,
//! from a detached thread, so each backend's speculative lane warms
//! points the router will route to it later.
//!
//! Endpoints:
//!
//! | method    | path                 | answer                                      |
//! |-----------|----------------------|---------------------------------------------|
//! | POST      | `/jobs`              | proxied job record (composite id); `503`    |
//! | GET       | `/jobs/<id>`         | proxied record (composite id)               |
//! | GET       | `/jobs/<id>/...`     | proxied verbatim (`events` streamed)        |
//! | GET, HEAD | `/stats`             | `wec-router-stats-v1` (live cluster scrape) |
//! | GET, HEAD | `/healthz`           | `{"ok":…,"draining":…}`                     |
//! | GET       | `/metrics`           | Prometheus exposition (live cluster scrape) |
//! | POST      | `/shutdown`          | begin graceful drain (writes `router.json`) |

use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use wec_serve::http::{self, Request};
use wec_serve::JobSpec;
use wec_telemetry::json::escape_into;

use crate::client::{self, Response};
use crate::ring::Backend;
use crate::state::{decode_id, rewrite_record_id, RouterConfig, RouterState};

/// Set by the SIGTERM/SIGINT handler; folded into the drain flag by the
/// accept loop (the serve crate's handler stores into its own static, so
/// the router carries its own).
static TERMINATE: AtomicBool = AtomicBool::new(false);

/// Route SIGTERM and SIGINT into a graceful drain.
#[cfg(unix)]
pub fn install_signal_handlers() {
    extern "C" fn on_signal(_signum: i32) {
        TERMINATE.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_signal);
        signal(SIGINT, on_signal);
    }
}

#[cfg(not(unix))]
pub fn install_signal_handlers() {}

fn error_json(msg: &str) -> String {
    let mut out = String::from("{\"error\":");
    escape_into(&mut out, msg);
    out.push('}');
    out
}

/// The router: a bound listener plus its health thread.
pub struct Router {
    listener: TcpListener,
    state: Arc<RouterState>,
    health: Option<JoinHandle<()>>,
    health_stop: Arc<AtomicBool>,
}

impl Router {
    /// Bind `addr` and spawn the health thread.  The first health pass
    /// runs before this returns, so the ring reflects reality (a backend
    /// that is down at startup is already failing toward dead) by the
    /// time the first request lands.
    pub fn bind(addr: &str, cfg: RouterConfig) -> io::Result<Router> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let state = Arc::new(
            RouterState::new(cfg).map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?,
        );
        state
            .ring
            .health_pass(state.cfg.io_timeout, state.cfg.dead_after);
        let health_stop = Arc::new(AtomicBool::new(false));
        let health = spawn_health(&state, &health_stop);
        Ok(Router {
            listener,
            state,
            health,
            health_stop,
        })
    }

    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    pub fn state(&self) -> Arc<RouterState> {
        self.state.clone()
    }

    /// Serve until drained: accept until shutdown is requested and every
    /// open connection has finished, then stop the health thread and
    /// write `router.json`.
    pub fn run(self) -> io::Result<()> {
        loop {
            if TERMINATE.load(Ordering::SeqCst) {
                self.state.draining.store(true, Ordering::SeqCst);
            }
            match self.listener.accept() {
                Ok((stream, peer)) => {
                    let st = self.state.clone();
                    st.inflight.fetch_add(1, Ordering::SeqCst);
                    let _ = std::thread::Builder::new()
                        .name("wec-router-conn".to_string())
                        .spawn(move || {
                            handle_conn(&st, stream, peer);
                            st.inflight.fetch_sub(1, Ordering::SeqCst);
                        });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if self.state.draining.load(Ordering::SeqCst)
                        && self.state.inflight.load(Ordering::SeqCst) == 0
                    {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => {
                    eprintln!("wec-router: accept error: {e}");
                    std::thread::sleep(Duration::from_millis(100));
                }
            }
        }
        self.health_stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.health {
            let _ = h.join();
        }
        self.state.write_exit_logs();
        Ok(())
    }
}

/// The health thread: one pass per interval, sleeping in short slices so
/// drain never waits a full interval.
fn spawn_health(state: &Arc<RouterState>, stop: &Arc<AtomicBool>) -> Option<JoinHandle<()>> {
    let st = state.clone();
    let stop = stop.clone();
    std::thread::Builder::new()
        .name("wec-router-health".to_string())
        .spawn(move || loop {
            let mut slept = Duration::ZERO;
            while slept < st.cfg.health_interval {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                let nap = (st.cfg.health_interval - slept).min(Duration::from_millis(50));
                std::thread::sleep(nap);
                slept += nap;
            }
            st.ring.health_pass(st.cfg.io_timeout, st.cfg.dead_after);
        })
        .ok()
}

fn handle_conn(state: &Arc<RouterState>, stream: TcpStream, peer: SocketAddr) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(state.cfg.io_timeout));
    let _ = stream.set_write_timeout(Some(state.cfg.io_timeout));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut w = BufWriter::new(stream);
    let client_ip = peer.ip().to_string();
    match http::read_request(&mut reader) {
        Ok(req) => {
            state.requests.fetch_add(1, Ordering::SeqCst);
            let _ = route(state, &req, &client_ip, &mut w);
        }
        Err(e) => {
            if let Some(msg) = e.client_message() {
                state.requests.fetch_add(1, Ordering::SeqCst);
                let _ = http::write_json(&mut w, 400, "Bad Request", &error_json(msg));
            }
        }
    }
    let _ = w.flush();
}

fn route<W: Write>(
    state: &Arc<RouterState>,
    req: &Request,
    client_ip: &str,
    w: &mut W,
) -> io::Result<u16> {
    let method = req.method.as_str();
    match req.path.as_str() {
        "/jobs" => match method {
            "POST" => submit(state, req, client_ip, w),
            _ => method_not_allowed(w, "POST"),
        },
        "/stats" => match method {
            "GET" => reply_json(w, 200, "OK", &state.stats_json()),
            "HEAD" => reply_head(w, &state.stats_json()),
            _ => method_not_allowed(w, "GET, HEAD"),
        },
        "/healthz" => {
            let body = format!(
                "{{\"ok\":true,\"draining\":{}}}",
                state.draining.load(Ordering::SeqCst)
            );
            match method {
                "GET" => reply_json(w, 200, "OK", &body),
                "HEAD" => reply_head(w, &body),
                _ => method_not_allowed(w, "GET, HEAD"),
            }
        }
        "/metrics" => match method {
            "GET" => {
                let page = state.render_prometheus(&state.scrape_backends());
                http::write_response(
                    w,
                    200,
                    "OK",
                    "text/plain; version=0.0.4",
                    page.as_bytes(),
                    &[],
                )?;
                Ok(200)
            }
            _ => method_not_allowed(w, "GET"),
        },
        "/shutdown" => match method {
            "POST" => {
                state.draining.store(true, Ordering::SeqCst);
                reply_json(w, 200, "OK", "{\"draining\":true}")
            }
            _ => method_not_allowed(w, "POST"),
        },
        path => match path.strip_prefix("/jobs/") {
            Some(rest) => job_route(state, method, rest, w),
            None => reply_json(w, 404, "Not Found", &error_json("no such endpoint")),
        },
    }
}

fn reply_json<W: Write>(w: &mut W, status: u16, reason: &str, body: &str) -> io::Result<u16> {
    http::write_json(w, status, reason, body)?;
    Ok(status)
}

fn reply_head<W: Write>(w: &mut W, body: &str) -> io::Result<u16> {
    http::write_head_only(w, 200, "OK", "application/json", body.len())?;
    Ok(200)
}

fn method_not_allowed<W: Write>(w: &mut W, allow: &str) -> io::Result<u16> {
    http::write_response(
        w,
        405,
        "Method Not Allowed",
        "application/json",
        error_json("method not allowed").as_bytes(),
        &[("Allow", allow.to_string())],
    )?;
    Ok(405)
}

fn reply_503<W: Write>(
    state: &RouterState,
    w: &mut W,
    msg: &str,
    retry_after: &str,
) -> io::Result<u16> {
    state.rejected.fetch_add(1, Ordering::SeqCst);
    http::write_response(
        w,
        503,
        "Service Unavailable",
        "application/json",
        error_json(msg).as_bytes(),
        &[("Retry-After", retry_after.to_string())],
    )?;
    Ok(503)
}

/// The outcome of trying one backend for a submit.
enum Attempt {
    /// Any response that is not a `503` — forwarded to the client.
    Answered(Response),
    /// Queue-full `503` that survived the retry budget — passed through.
    QueueFull(Response),
    /// The backend said it is draining; re-shard without burning retries.
    Draining,
    /// Transport failure; re-shard and count toward dead.
    Failed,
}

/// Try one backend, retrying queue-full `503`s in place.
fn try_backend(state: &RouterState, backend: &Backend, body: &[u8]) -> Attempt {
    let mut attempt = 0u32;
    loop {
        let resp = match client::request(
            &backend.addr,
            "POST",
            "/jobs",
            Some(body),
            state.cfg.io_timeout,
        ) {
            Ok(r) => r,
            Err(_) => return Attempt::Failed,
        };
        if resp.status != 503 {
            return Attempt::Answered(resp);
        }
        if resp.header("X-Wec-Draining") == Some("true") {
            return Attempt::Draining;
        }
        if attempt >= state.cfg.retries {
            return Attempt::QueueFull(resp);
        }
        attempt += 1;
        state.retries.fetch_add(1, Ordering::SeqCst);
        // Honor the backend's Retry-After up to the configured cap — a
        // proxy holding a live client connection cannot wait out a deep
        // queue's full estimate.
        let hinted = resp
            .header("Retry-After")
            .and_then(|v| v.parse::<u64>().ok())
            .map(Duration::from_secs)
            .unwrap_or(Duration::from_millis(100 * attempt as u64));
        std::thread::sleep(hinted.min(state.cfg.backoff_cap));
    }
}

fn submit<W: Write>(
    state: &Arc<RouterState>,
    req: &Request,
    client_ip: &str,
    w: &mut W,
) -> io::Result<u16> {
    if state.draining.load(Ordering::SeqCst) {
        return reply_503(state, w, "draining, not accepting jobs", "1");
    }
    let body = match req.body_utf8() {
        Ok(b) => b,
        Err(e) => return reply_json(w, 400, "Bad Request", &error_json(&e)),
    };
    // The router validates before routing: a malformed spec has no dedup
    // key to hash, and bouncing it here keeps garbage off the backends.
    let spec = match JobSpec::parse(body) {
        Ok(s) => s,
        Err(e) => return reply_json(w, 400, "Bad Request", &error_json(&e)),
    };
    let key = spec.dedup_key();

    let order = state.ring.candidates(&key);
    let primary = order[0];
    for idx in order {
        let backend = &state.ring.backends[idx];
        if !backend.routable() {
            continue;
        }
        match try_backend(state, backend, req.body.as_slice()) {
            Attempt::Answered(resp) => {
                backend.record_success();
                // Answered by someone other than the key's primary
                // rendezvous owner: the submit was re-sharded (whether
                // the owner failed just now or was already marked down).
                if idx != primary {
                    state.resharded.fetch_add(1, Ordering::SeqCst);
                }
                if resp.status == 200 {
                    backend.routed.fetch_add(1, Ordering::SeqCst);
                    state.proxied.fetch_add(1, Ordering::SeqCst);
                    spawn_hints(state, client_ip, &spec);
                    let body = resp.body_utf8().ok().and_then(|b| rewrite_record_id(b, idx));
                    return match body {
                        Some(b) => reply_json(w, 200, "OK", &b),
                        None => reply_json(
                            w,
                            502,
                            "Bad Gateway",
                            &error_json("backend answered an unrewritable record"),
                        ),
                    };
                }
                // Backend-blamed answers (400 etc.) pass through as-is.
                let reason = if resp.status == 400 { "Bad Request" } else { "Bad Gateway" };
                http::write_response(
                    w,
                    resp.status,
                    reason,
                    resp.header("Content-Type").unwrap_or("application/json"),
                    &resp.body,
                    &[],
                )?;
                return Ok(resp.status);
            }
            Attempt::QueueFull(resp) => {
                // The owner is alive but saturated; moving the key would
                // forfeit dedup, so the backpressure passes through with
                // the backend's own Retry-After.
                backend.record_success();
                if idx != primary {
                    state.resharded.fetch_add(1, Ordering::SeqCst);
                }
                let retry_after = resp.header("Retry-After").unwrap_or("1").to_string();
                return reply_503(state, w, "owner queue full, retry later", &retry_after);
            }
            Attempt::Draining => backend.mark_draining(),
            Attempt::Failed => backend.record_failure(state.cfg.dead_after),
        }
    }
    reply_503(state, w, "no routable backend", "1")
}

/// Fan predicted next jobs out as `POST /hints`, each to the backend
/// that owns *its* rendezvous hash — so every backend's speculative lane
/// warms exactly the points the router would route to it.  Detached:
/// hints are advisory and must never add latency to the demand path.
fn spawn_hints(state: &Arc<RouterState>, client_ip: &str, spec: &JobSpec) {
    let Some(predictor) = &state.predictor else {
        return;
    };
    let predicted = predictor.predict(client_ip, spec);
    if predicted.is_empty() {
        return;
    }
    let st = state.clone();
    let _ = std::thread::Builder::new()
        .name("wec-router-hints".to_string())
        .spawn(move || {
            for p in predicted {
                let Some(idx) = st.ring.owner(&p.dedup_key()) else {
                    continue;
                };
                let addr = st.ring.backends[idx].addr.clone();
                let body = p.to_json();
                st.hints_sent.fetch_add(1, Ordering::SeqCst);
                if let Ok(resp) = client::request(
                    &addr,
                    "POST",
                    "/hints",
                    Some(body.as_bytes()),
                    st.cfg.io_timeout,
                ) {
                    let accepted = resp.status == 200
                        && resp
                            .body_utf8()
                            .map(|b| b.contains("\"accepted\":true"))
                            .unwrap_or(false);
                    if accepted {
                        st.hints_accepted.fetch_add(1, Ordering::SeqCst);
                    }
                }
            }
        });
}

/// `/jobs/<composite-id>` and sub-paths: decode, forward to the owning
/// backend under its local id, and rewrite the id on record-shaped
/// answers.  `events` streams are relayed verbatim.
fn job_route<W: Write>(
    state: &Arc<RouterState>,
    method: &str,
    rest: &str,
    w: &mut W,
) -> io::Result<u16> {
    let mut parts = rest.splitn(2, '/');
    let id_text = parts.next().unwrap_or("");
    let sub = parts.next();
    let decoded = id_text
        .parse::<u64>()
        .ok()
        .and_then(|rid| decode_id(rid, state.ring.backends.len()));
    let Some((idx, local)) = decoded else {
        return reply_json(w, 404, "Not Found", &error_json("no such job"));
    };
    if method != "GET" {
        return method_not_allowed(w, "GET");
    }
    let backend = &state.ring.backends[idx];
    let path = match sub {
        None => format!("/jobs/{local}"),
        Some(s) => format!("/jobs/{local}/{s}"),
    };

    if sub == Some("events") {
        // Verbatim byte relay: the backend's chunked response IS the
        // response.  Nothing has been written yet, so a connect failure
        // can still be answered properly.
        return match client::relay(
            &backend.addr,
            &path,
            w,
            state.cfg.io_timeout,
            state.cfg.events_timeout,
        ) {
            Ok(_) => Ok(200),
            Err(_) => reply_json(w, 502, "Bad Gateway", &error_json("backend unreachable")),
        };
    }

    let resp = match client::request(&backend.addr, "GET", &path, None, state.cfg.io_timeout) {
        Ok(r) => r,
        Err(_) => return reply_json(w, 502, "Bad Gateway", &error_json("backend unreachable")),
    };
    // Record-shaped bodies (the record GET, and 202 answers on result.kv
    // and attribution) get their id rewritten; everything else — result
    // bytes, error objects, attribution reports — passes through
    // untouched, byte-identical to a direct fetch.
    let body = match resp.body_utf8().ok().and_then(|b| rewrite_record_id(b, idx)) {
        Some(b) => b.into_bytes(),
        None => resp.body.clone(),
    };
    let reason = match resp.status {
        200 => "OK",
        202 => "Accepted",
        404 => "Not Found",
        500 => "Internal Server Error",
        _ => "",
    };
    http::write_response(
        w,
        resp.status,
        reason,
        resp.header("Content-Type").unwrap_or("application/json"),
        &body,
        &[],
    )?;
    Ok(resp.status)
}
