//! Open-loop load generator for the serve daemon.
//!
//! ```text
//! loadgen --addr HOST:PORT [--count N] [--rate JOBS_PER_SEC]
//!         [--concurrency N] [--bench NAME] [--scale N] [--spread K]
//!         [--prewarm] [--out BENCH_serve.json] [--min-rate F]
//! ```
//!
//! Sends `--count` `POST /jobs` submissions at a scheduled `--rate`,
//! cycling over `--spread` distinct configurations (side-structure
//! geometry variations of the paper machine), and polls each returned job
//! to a terminal state.  The generator is *open-loop*: request `i` is due
//! at `t0 + i/rate` regardless of how the daemon is keeping up, and
//! latency is measured from that due time — so a daemon that falls behind
//! shows queueing delay instead of hiding it (closed-loop generators
//! coordinate with the victim and under-report).
//!
//! `--prewarm` first submits each distinct configuration once and waits
//! for it (cold sims), so the timed phase measures the dedup/memo path —
//! the serving-throughput number the acceptance gate cares about.
//! Results (throughput, latency percentiles, outcome counts) go to
//! `--out` as a `wec-bench-serve-v1` document and to stdout.  Latency is
//! collected in the same [`wec_telemetry::hist::Log2Histogram`] the
//! daemon's `/metrics` endpoint uses, and the full histogram rides along
//! in the report (`latency_hist`) — so client-observed and
//! server-observed distributions compare bucket for bucket.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use wec_telemetry::hist::Log2Histogram;
use wec_telemetry::json::{self, Json};

fn http(addr: &str, method: &str, path: &str, body: Option<&str>) -> io::Result<(u16, String)> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    stream.set_write_timeout(Some(Duration::from_secs(60)))?;
    let mut stream = stream;
    let mut req = format!("{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n");
    if let Some(b) = body {
        req.push_str(&format!(
            "Content-Type: application/json\r\nContent-Length: {}\r\n",
            b.len()
        ));
    }
    req.push_str("\r\n");
    stream.write_all(req.as_bytes())?;
    if let Some(b) = body {
        stream.write_all(b.as_bytes())?;
    }
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8_lossy(&raw);
    let (head, payload) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no header terminator"))?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
    Ok((status, payload.to_string()))
}

/// Poll `GET /jobs/<id>` until terminal; returns the final state name.
fn poll_terminal(addr: &str, id: u64) -> io::Result<String> {
    loop {
        let (status, body) = http(addr, "GET", &format!("/jobs/{id}"), None)?;
        if status != 200 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("GET /jobs/{id} -> {status}"),
            ));
        }
        let v = json::parse(&body).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let state = v
            .get("state")
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string();
        if state == "done" || state == "failed" {
            return Ok(state);
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn record_id_state(body: &str) -> Option<(u64, String)> {
    let v = json::parse(body).ok()?;
    Some((
        v.get("id")?.as_u64()?,
        v.get("state")?.as_str()?.to_string(),
    ))
}

fn main() {
    let mut addr = None;
    let mut count: usize = 200;
    let mut rate: f64 = 100.0;
    let mut concurrency: usize = 8;
    let mut bench = "181.mcf".to_string();
    let mut scale: u32 = 1;
    let mut spread: usize = 4;
    let mut prewarm = false;
    let mut out = "BENCH_serve.json".to_string();
    let mut min_rate: f64 = 0.0;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |what: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{what} requires a value"))
                .clone()
        };
        match a.as_str() {
            "--addr" => addr = Some(value("--addr")),
            "--count" => count = value("--count").parse().expect("--count N"),
            "--rate" => rate = value("--rate").parse().expect("--rate F"),
            "--concurrency" => {
                concurrency = value("--concurrency").parse().expect("--concurrency N")
            }
            "--bench" => bench = value("--bench"),
            "--scale" => scale = value("--scale").parse().expect("--scale N"),
            "--spread" => spread = value("--spread").parse().expect("--spread K"),
            "--prewarm" => prewarm = true,
            "--out" => out = value("--out"),
            "--min-rate" => min_rate = value("--min-rate").parse().expect("--min-rate F"),
            other => panic!("unknown argument {other:?}"),
        }
    }
    let addr = addr.expect("loadgen requires --addr HOST:PORT");
    assert!(rate > 0.0 && count > 0 && concurrency > 0, "bad load shape");
    assert!(
        (1..=24).contains(&spread),
        "--spread must be 1..=24 distinct configurations"
    );

    // The distinct configuration mix: side-structure entry counts crossed
    // with L1 associativity, the same axes the replay sweeps use.
    const SIDES: [u8; 8] = [8, 16, 32, 64, 2, 4, 24, 128];
    const WAYS: [u8; 3] = [1, 2, 4];
    let bodies: Vec<String> = (0..spread)
        .map(|i| {
            format!(
                "{{\"bench\":\"{bench}\",\"scale\":{scale},\"cfg\":{{\"side_entries\":{},\"l1_ways\":{}}}}}",
                SIDES[i % SIDES.len()],
                WAYS[(i / SIDES.len()) % WAYS.len()]
            )
        })
        .collect();

    if prewarm {
        eprintln!("prewarming {spread} configuration(s) on {bench} at scale {scale}…");
        let t = Instant::now();
        for body in &bodies {
            let (status, resp) = http(&addr, "POST", "/jobs", Some(body)).expect("prewarm POST");
            assert_eq!(status, 200, "prewarm rejected: {resp}");
            let (id, state) = record_id_state(&resp).expect("prewarm: bad record");
            if state != "done" {
                let state = poll_terminal(&addr, id).expect("prewarm poll");
                assert_eq!(state, "done", "prewarm job {id} failed");
            }
        }
        eprintln!("prewarm done in {:.1}s", t.elapsed().as_secs_f64());
    }

    eprintln!(
        "open-loop: {count} jobs at {rate:.0}/s over {concurrency} connections ({spread} distinct cfgs)…"
    );
    let next = AtomicUsize::new(0);
    let completed = AtomicU64::new(0);
    let failed = AtomicU64::new(0);
    let rejected = AtomicU64::new(0);
    let latencies: Mutex<Log2Histogram> = Mutex::new(Log2Histogram::new());
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..concurrency {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    return;
                }
                let due = Duration::from_secs_f64(i as f64 / rate);
                if let Some(wait) = due.checked_sub(t0.elapsed()) {
                    std::thread::sleep(wait);
                }
                let body = &bodies[i % bodies.len()];
                let outcome = http(&addr, "POST", "/jobs", Some(body)).and_then(
                    |(status, resp)| match status {
                        200 => {
                            let (id, state) = record_id_state(&resp).ok_or_else(|| {
                                io::Error::new(io::ErrorKind::InvalidData, "bad record")
                            })?;
                            if state == "done" {
                                Ok("done".to_string())
                            } else {
                                poll_terminal(&addr, id)
                            }
                        }
                        503 => Ok("rejected".to_string()),
                        other => Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("POST /jobs -> {other}: {resp}"),
                        )),
                    },
                );
                match outcome.as_deref() {
                    Ok("done") => {
                        let lat = t0.elapsed().saturating_sub(due);
                        latencies.lock().unwrap().observe(lat.as_micros() as u64);
                        completed.fetch_add(1, Ordering::Relaxed);
                    }
                    Ok("rejected") => {
                        rejected.fetch_add(1, Ordering::Relaxed);
                    }
                    Ok(_) => {
                        failed.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(e) => {
                        eprintln!("loadgen: job {i}: {e}");
                        failed.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    let wall_s = t0.elapsed().as_secs_f64();
    let completed = completed.into_inner();
    let failed = failed.into_inner();
    let rejected = rejected.into_inner();
    let hist = latencies.into_inner().unwrap();
    let jobs_per_sec = completed as f64 / wall_s.max(1e-9);
    // Quantiles off the log2 histogram (good to a factor of two, same
    // resolution the daemon reports); min/max are exact.
    let (p50, p90, p99, max) = (
        hist.quantile(0.50),
        hist.quantile(0.90),
        hist.quantile(0.99),
        hist.max(),
    );

    let doc = format!(
        "{{\n  \"schema\": \"wec-bench-serve-v1\",\n  \"bench\": \"{bench}\",\n  \
         \"scale\": {scale},\n  \"spread\": {spread},\n  \"count\": {count},\n  \
         \"rate\": {rate:.1},\n  \"concurrency\": {concurrency},\n  \"prewarm\": {prewarm},\n  \
         \"wall_s\": {wall_s:.3},\n  \"completed\": {completed},\n  \"failed\": {failed},\n  \
         \"rejected\": {rejected},\n  \"jobs_per_sec\": {jobs_per_sec:.1},\n  \
         \"latency_us\": {{\"p50\": {p50}, \"p90\": {p90}, \"p99\": {p99}, \"max\": {max}}},\n  \
         \"latency_hist\": {}\n}}\n",
        hist.to_json()
    );
    std::fs::write(&out, &doc).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!(
        "{completed}/{count} completed ({failed} failed, {rejected} rejected) in {wall_s:.2}s \
         -> {jobs_per_sec:.1} jobs/s; latency p50 {p50}us p90 {p90}us p99 {p99}us max {max}us"
    );
    println!("wrote {out}");
    if min_rate > 0.0 && (jobs_per_sec < min_rate || failed > 0) {
        eprintln!(
            "FAIL: sustained {jobs_per_sec:.1} jobs/s with {failed} failures \
             (floor {min_rate:.1} jobs/s, 0 failures)"
        );
        std::process::exit(1);
    }
}
