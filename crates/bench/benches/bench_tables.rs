//! Regenerates the paper's Tables 1–3 and benchmarks workload construction
//! (data generation + host reference + program assembly).

use criterion::{criterion_group, criterion_main, Criterion};
use wec_bench::experiments;
use wec_bench::runner::{Runner, Suite};
use wec_workloads::{Bench, Scale};

fn bench(c: &mut Criterion) {
    let suite = Suite::build(Scale::SMOKE);
    let runner = Runner::without_disk_cache(&suite);
    println!("{}", experiments::table1(&suite).render());
    println!("{}", experiments::table2(&runner).render());
    println!("{}", experiments::table3().render());

    let mut group = c.benchmark_group("tables");
    group.sample_size(10);
    group.bench_function("build 181.mcf workload", |b| {
        b.iter(|| Bench::Mcf.build(Scale::SMOKE).program.text.len())
    });
    group.bench_function("build 183.equake workload", |b| {
        b.iter(|| Bench::Equake.build(Scale::SMOKE).program.text.len())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
