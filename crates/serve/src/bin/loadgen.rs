//! Open-loop load generator for the serve daemon.
//!
//! ```text
//! loadgen --addr HOST:PORT [--count N] [--rate JOBS_PER_SEC]
//!         [--concurrency N] [--bench NAME] [--scale N] [--spread K]
//!         [--pattern uniform|sweep-walk] [--prewarm]
//!         [--out BENCH_serve.json] [--min-rate F]
//! ```
//!
//! Sends `--count` `POST /jobs` submissions at a scheduled `--rate`,
//! cycling over `--spread` distinct configurations (side-structure
//! geometry variations of the paper machine), and polls each returned job
//! to a terminal state.  `--pattern sweep-walk` replaces the uniform
//! cycle with per-connection walks along the sorted side-entries axis
//! (each connection pins one `l1_ways`, ping-pongs ±1 along the axis, and
//! takes a deterministic long jump every 7th step) — the access shape the
//! daemon's `--speculate` predictor is built for, so the report's
//! `spec_hit_rate` measures how many demand jobs were answered from
//! already-speculated results (`source:"spec"`).  The generator is *open-loop*: request `i` is due
//! at `t0 + i/rate` regardless of how the daemon is keeping up, and
//! latency is measured from that due time — so a daemon that falls behind
//! shows queueing delay instead of hiding it (closed-loop generators
//! coordinate with the victim and under-report).
//!
//! `--prewarm` first submits each distinct configuration once and waits
//! for it (cold sims), so the timed phase measures the dedup/memo path —
//! the serving-throughput number the acceptance gate cares about.
//! Results (throughput, latency percentiles, outcome counts) go to
//! `--out` as a `wec-bench-serve-v1` document and to stdout.  Latency is
//! collected in the same [`wec_telemetry::hist::Log2Histogram`] the
//! daemon's `/metrics` endpoint uses, and the full histogram rides along
//! in the report (`latency_hist`) — so client-observed and
//! server-observed distributions compare bucket for bucket.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use wec_telemetry::hist::Log2Histogram;
use wec_telemetry::json::{self, Json};

fn http(addr: &str, method: &str, path: &str, body: Option<&str>) -> io::Result<(u16, String)> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    stream.set_write_timeout(Some(Duration::from_secs(60)))?;
    let mut stream = stream;
    let mut req = format!("{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n");
    if let Some(b) = body {
        req.push_str(&format!(
            "Content-Type: application/json\r\nContent-Length: {}\r\n",
            b.len()
        ));
    }
    req.push_str("\r\n");
    stream.write_all(req.as_bytes())?;
    if let Some(b) = body {
        stream.write_all(b.as_bytes())?;
    }
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8_lossy(&raw);
    let (head, payload) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no header terminator"))?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
    Ok((status, payload.to_string()))
}

/// Poll `GET /jobs/<id>` until terminal; returns the final state name and
/// the result source (`cold`/`disk`/`mem`/`spec`, `none` while absent).
fn poll_terminal(addr: &str, id: u64) -> io::Result<(String, String)> {
    loop {
        let (status, body) = http(addr, "GET", &format!("/jobs/{id}"), None)?;
        if status != 200 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("GET /jobs/{id} -> {status}"),
            ));
        }
        let v = json::parse(&body).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let state = v
            .get("state")
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string();
        if state == "done" || state == "failed" || state == "cancelled" {
            let source = v
                .get("source")
                .and_then(Json::as_str)
                .unwrap_or("none")
                .to_string();
            return Ok((state, source));
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn record_id_state(body: &str) -> Option<(u64, String, String)> {
    let v = json::parse(body).ok()?;
    Some((
        v.get("id")?.as_u64()?,
        v.get("state")?.as_str()?.to_string(),
        v.get("source")
            .and_then(Json::as_str)
            .unwrap_or("none")
            .to_string(),
    ))
}

fn main() {
    let mut addr = None;
    let mut count: usize = 200;
    let mut rate: f64 = 100.0;
    let mut concurrency: usize = 8;
    let mut bench = "181.mcf".to_string();
    let mut scale: u32 = 1;
    let mut spread: usize = 4;
    let mut pattern = "uniform".to_string();
    let mut prewarm = false;
    let mut out = "BENCH_serve.json".to_string();
    let mut min_rate: f64 = 0.0;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |what: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{what} requires a value"))
                .clone()
        };
        match a.as_str() {
            "--addr" => addr = Some(value("--addr")),
            "--count" => count = value("--count").parse().expect("--count N"),
            "--rate" => rate = value("--rate").parse().expect("--rate F"),
            "--concurrency" => {
                concurrency = value("--concurrency").parse().expect("--concurrency N")
            }
            "--bench" => bench = value("--bench"),
            "--scale" => scale = value("--scale").parse().expect("--scale N"),
            "--spread" => spread = value("--spread").parse().expect("--spread K"),
            "--pattern" => pattern = value("--pattern"),
            "--prewarm" => prewarm = true,
            "--out" => out = value("--out"),
            "--min-rate" => min_rate = value("--min-rate").parse().expect("--min-rate F"),
            other => panic!("unknown argument {other:?}"),
        }
    }
    let addr = addr.expect("loadgen requires --addr HOST:PORT");
    assert!(rate > 0.0 && count > 0 && concurrency > 0, "bad load shape");
    assert!(
        (1..=24).contains(&spread),
        "--spread must be 1..=24 distinct configurations"
    );
    assert!(
        pattern == "uniform" || pattern == "sweep-walk",
        "--pattern must be uniform or sweep-walk"
    );
    let sweep_walk = pattern == "sweep-walk";

    // The distinct configuration mix: side-structure entry counts crossed
    // with L1 associativity, the same axes the replay sweeps use.
    const SIDES: [u8; 8] = [8, 16, 32, 64, 2, 4, 24, 128];
    const WAYS: [u8; 3] = [1, 2, 4];
    let bodies: Vec<String> = (0..spread)
        .map(|i| {
            format!(
                "{{\"bench\":\"{bench}\",\"scale\":{scale},\"cfg\":{{\"side_entries\":{},\"l1_ways\":{}}}}}",
                SIDES[i % SIDES.len()],
                WAYS[(i / SIDES.len()) % WAYS.len()]
            )
        })
        .collect();

    if prewarm {
        eprintln!("prewarming {spread} configuration(s) on {bench} at scale {scale}…");
        let t = Instant::now();
        for body in &bodies {
            let (status, resp) = http(&addr, "POST", "/jobs", Some(body)).expect("prewarm POST");
            assert_eq!(status, 200, "prewarm rejected: {resp}");
            let (id, state, _source) = record_id_state(&resp).expect("prewarm: bad record");
            if state != "done" {
                let (state, _source) = poll_terminal(&addr, id).expect("prewarm poll");
                assert_eq!(state, "done", "prewarm job {id} failed");
            }
        }
        eprintln!("prewarm done in {:.1}s", t.elapsed().as_secs_f64());
    }

    eprintln!(
        "open-loop: {count} jobs at {rate:.0}/s over {concurrency} connections \
         ({spread} distinct cfgs, {pattern} pattern)…"
    );
    let next = AtomicUsize::new(0);
    let completed = AtomicU64::new(0);
    let failed = AtomicU64::new(0);
    let rejected = AtomicU64::new(0);
    let spec_hits = AtomicU64::new(0);
    let latencies: Mutex<Log2Histogram> = Mutex::new(Log2Histogram::new());
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for tid in 0..concurrency {
            let (addr, bench, bodies) = (&addr, &bench, &bodies);
            let (next, completed, failed, rejected, spec_hits, latencies) =
                (&next, &completed, &failed, &rejected, &spec_hits, &latencies);
            s.spawn(move || {
                // The sweep-walk state: this connection pins one L1
                // associativity and ping-pongs ±1 along the sorted
                // side-entries axis, with a deterministic long jump every
                // 7th step so the predictor's learned-transition table has
                // something non-trivial to earn.
                const WALK_SIDES: [u8; 8] = [2, 4, 8, 16, 24, 32, 64, 128];
                let walk_ways = WAYS[tid % WAYS.len()];
                let mut idx = tid % WALK_SIDES.len();
                let mut dir: isize = 1;
                let mut step: usize = 0;
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= count {
                        return;
                    }
                    let due = Duration::from_secs_f64(i as f64 / rate);
                    if let Some(wait) = due.checked_sub(t0.elapsed()) {
                        std::thread::sleep(wait);
                    }
                    let body = if sweep_walk {
                        let b = format!(
                            "{{\"bench\":\"{bench}\",\"scale\":{scale},\"cfg\":{{\"side_entries\":{},\"l1_ways\":{walk_ways}}}}}",
                            WALK_SIDES[idx]
                        );
                        step += 1;
                        if step % 7 == 0 {
                            idx = (idx + 5) % WALK_SIDES.len();
                        } else {
                            if idx == 0 {
                                dir = 1;
                            } else if idx == WALK_SIDES.len() - 1 {
                                dir = -1;
                            }
                            idx = (idx as isize + dir) as usize;
                        }
                        b
                    } else {
                        bodies[i % bodies.len()].clone()
                    };
                    let outcome = http(addr, "POST", "/jobs", Some(&body)).and_then(
                        |(status, resp)| match status {
                            200 => {
                                let (id, state, source) =
                                    record_id_state(&resp).ok_or_else(|| {
                                        io::Error::new(io::ErrorKind::InvalidData, "bad record")
                                    })?;
                                if state == "done" {
                                    Ok(("done".to_string(), source))
                                } else {
                                    poll_terminal(addr, id)
                                }
                            }
                            503 => Ok(("rejected".to_string(), String::new())),
                            other => Err(io::Error::new(
                                io::ErrorKind::InvalidData,
                                format!("POST /jobs -> {other}: {resp}"),
                            )),
                        },
                    );
                    match &outcome {
                        Ok((state, source)) if state == "done" => {
                            let lat = t0.elapsed().saturating_sub(due);
                            latencies.lock().unwrap().observe(lat.as_micros() as u64);
                            completed.fetch_add(1, Ordering::Relaxed);
                            if source == "spec" {
                                spec_hits.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Ok((state, _)) if state == "rejected" => {
                            rejected.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(_) => {
                            failed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => {
                            eprintln!("loadgen: job {i}: {e}");
                            failed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    let wall_s = t0.elapsed().as_secs_f64();
    let completed = completed.into_inner();
    let failed = failed.into_inner();
    let rejected = rejected.into_inner();
    let spec_hits = spec_hits.into_inner();
    let hist = latencies.into_inner().unwrap();
    let jobs_per_sec = completed as f64 / wall_s.max(1e-9);
    let spec_hit_rate = if completed > 0 {
        spec_hits as f64 / completed as f64
    } else {
        0.0
    };
    // Quantiles off the log2 histogram (good to a factor of two, same
    // resolution the daemon reports); min/max are exact.
    let (p50, p90, p99, max) = (
        hist.quantile(0.50),
        hist.quantile(0.90),
        hist.quantile(0.99),
        hist.max(),
    );

    let doc = format!(
        "{{\n  \"schema\": \"wec-bench-serve-v1\",\n  \"bench\": \"{bench}\",\n  \
         \"scale\": {scale},\n  \"spread\": {spread},\n  \"pattern\": \"{pattern}\",\n  \
         \"count\": {count},\n  \
         \"rate\": {rate:.1},\n  \"concurrency\": {concurrency},\n  \"prewarm\": {prewarm},\n  \
         \"wall_s\": {wall_s:.3},\n  \"completed\": {completed},\n  \"failed\": {failed},\n  \
         \"rejected\": {rejected},\n  \"spec_hits\": {spec_hits},\n  \
         \"spec_hit_rate\": {spec_hit_rate:.4},\n  \"jobs_per_sec\": {jobs_per_sec:.1},\n  \
         \"latency_us\": {{\"p50\": {p50}, \"p90\": {p90}, \"p99\": {p99}, \"max\": {max}}},\n  \
         \"latency_hist\": {}\n}}\n",
        hist.to_json()
    );
    std::fs::write(&out, &doc).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!(
        "{completed}/{count} completed ({failed} failed, {rejected} rejected, \
         {spec_hits} spec hits) in {wall_s:.2}s \
         -> {jobs_per_sec:.1} jobs/s; latency p50 {p50}us p90 {p90}us p99 {p99}us max {max}us"
    );
    println!("wrote {out}");
    if min_rate > 0.0 && (jobs_per_sec < min_rate || failed > 0) {
        eprintln!(
            "FAIL: sustained {jobs_per_sec:.1} jobs/s with {failed} failures \
             (floor {min_rate:.1} jobs/s, 0 failures)"
        );
        std::process::exit(1);
    }
}
