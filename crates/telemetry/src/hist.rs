//! Log2-bucketed histograms: fixed-size, allocation-free observation for
//! hot-path latency measurements.
//!
//! Bucket `i` holds values whose bit length is `i` (bucket 0 holds only the
//! value 0, bucket 1 holds 1, bucket 2 holds 2–3, bucket 3 holds 4–7, …), so
//! `observe` is a `leading_zeros` and an increment — cheap enough to run on
//! every load when telemetry is on, and trivially mergeable across runs.

use std::fmt::Write as _;

/// Number of buckets: one per possible bit length of a `u64` (0..=64).
pub const BUCKETS: usize = 65;

/// A fixed-size log2 histogram with exact count/sum/min/max.
#[derive(Clone, Debug)]
pub struct Log2Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Log2Histogram {
    pub fn new() -> Self {
        Self::default()
    }

    /// Bucket index of a value: its bit length (0 for 0).
    #[inline]
    pub fn bucket_of(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Smallest value a bucket can hold (its label in reports).
    pub fn bucket_floor(index: usize) -> u64 {
        match index {
            0 => 0,
            i => 1u64 << (i - 1),
        }
    }

    #[inline]
    pub fn observe(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observed value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observed value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// Mean of observed values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile: the floor of the first bucket whose cumulative
    /// count reaches `q` (0.0–1.0) of the total, clamped by the exact
    /// min/max.  Good to a factor of two, which is all a log2 histogram
    /// promises.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return Self::bucket_floor(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Render as one JSON object: `{"count":…,"sum":…,"min":…,"max":…,
    /// "buckets":[[floor,count],…]}` (only non-empty buckets listed).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
            self.count,
            self.sum,
            self.min(),
            self.max
        );
        let mut first = true;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "[{},{}]", Self::bucket_floor(i), n);
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_bit_lengths() {
        assert_eq!(Log2Histogram::bucket_of(0), 0);
        assert_eq!(Log2Histogram::bucket_of(1), 1);
        assert_eq!(Log2Histogram::bucket_of(2), 2);
        assert_eq!(Log2Histogram::bucket_of(3), 2);
        assert_eq!(Log2Histogram::bucket_of(4), 3);
        assert_eq!(Log2Histogram::bucket_of(u64::MAX), 64);
        assert_eq!(Log2Histogram::bucket_floor(0), 0);
        assert_eq!(Log2Histogram::bucket_floor(1), 1);
        assert_eq!(Log2Histogram::bucket_floor(5), 16);
    }

    #[test]
    fn observe_tracks_exact_extremes() {
        let mut h = Log2Histogram::new();
        for v in [3, 0, 200, 17] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 220);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 200);
        assert_eq!(h.buckets().iter().sum::<u64>(), 4);
    }

    #[test]
    fn quantiles_bracket_the_data() {
        let mut h = Log2Histogram::new();
        for v in 1..=1000u64 {
            h.observe(v);
        }
        let p50 = h.quantile(0.5);
        assert!((256..=512).contains(&p50), "p50={p50}");
        assert_eq!(h.quantile(1.0), 1000);
        assert!(h.quantile(0.0) >= 1);
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = Log2Histogram::new();
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.to_json().starts_with("{\"count\":0"));
    }

    #[test]
    fn json_lists_only_occupied_buckets() {
        let mut h = Log2Histogram::new();
        h.observe(5);
        h.observe(6);
        h.observe(100);
        assert_eq!(
            h.to_json(),
            "{\"count\":3,\"sum\":111,\"min\":5,\"max\":100,\"buckets\":[[4,2],[64,1]]}"
        );
    }
}
