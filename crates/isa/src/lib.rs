//! WISA-64 — the instruction set of the simulated superthreaded machine.
//!
//! The paper's toolchain compiled C with a SimpleScalar GCC port and ran the
//! resulting PISA binaries on SIMCA.  We have no such toolchain, so this crate
//! defines a compact 64-bit RISC ISA of our own, plus everything needed to
//! write programs for it:
//!
//! * [`reg`] — integer and floating-point register names;
//! * [`inst`] — the instruction enum, including the superthreaded extensions
//!   (`begin`, `fork`, `abort`, `tsannounce`, `tsagdone`, `thread_end`);
//! * [`semantics`] — pure value semantics for ALU/FPU operations, shared by
//!   the out-of-order core and by tests;
//! * [`encode`] — fixed-width 64-bit binary encoding (round-trippable);
//! * [`asm`] — a small text assembler (labels, `.data` directives);
//! * [`disasm`] — the matching disassembler (round-trips through [`asm`]);
//! * [`build`] — a programmatic builder used by the workload crate, mirroring
//!   the paper's *manual* parallelization workflow;
//! * [`program`] — the loaded program: text, initial memory image, metadata.
//!
//! # Thread-pipelining conventions
//!
//! A parallel region is entered by `begin`.  Each dynamic thread executes one
//! loop iteration of the region body, laid out as the paper's four pipeline
//! stages (§2.2): continuation (compute recurrence variables, then `fork` the
//! successor speculatively), TSAG (`tsannounce` each target-store address,
//! then `tsagdone`), computation (the iteration body; stores to announced
//! addresses release their value downstream), and write-back (entered at
//! `thread_end`).  The thread whose iteration satisfies the loop exit
//! condition executes `abort`, which kills (or, with wrong-thread execution
//! enabled, *marks wrong*) every successor thread and continues sequentially
//! at the abort target once all older threads have retired.

pub mod asm;
pub mod build;
pub mod disasm;
pub mod encode;
pub mod inst;
pub mod program;
pub mod reg;
pub mod semantics;

pub use build::ProgramBuilder;
pub use inst::{AluOp, BranchCond, FpuOp, Inst, LoadKind, StoreKind};
pub use program::{MemImage, Program};
pub use reg::{FReg, Reg};
