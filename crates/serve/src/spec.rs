//! The speculation subsystem's knobs, counters, and ready-result index.
//!
//! The paper's wrong-path loads warm the WEC so later correct-path work
//! hits; wec-serve replays that one layer up.  Idle workers pre-execute
//! the sweep points the predictor ([`crate::predict`]) expects next, park
//! the results in the same warm memo / disk store demand jobs use, and a
//! later matching `POST /jobs` is answered as a warm hit byte-identical to
//! an on-demand run.  This module holds the pieces that are not the queue
//! or the predictor: the configuration ([`SpecConfig`]), the stats block
//! surfaced in `/stats` v2 and `/metrics` ([`SpecStats`]), and the
//! ready-result index ([`SpecReady`]) that distinguishes a *speculative*
//! warm hit (credit the prefetcher) from an ordinary memo hit.
//!
//! Every started speculation reaches exactly one terminal account:
//!
//! ```text
//! hit + waste + cancelled + pending == started
//! ```
//!
//! `hit` — demand arrived while the job was queued/running/parked ready;
//! `waste` — the result sat unclaimed past the TTL; `cancelled` — the job
//! was reclaimed before executing (TTL in queue, drain purge) or failed;
//! `pending` — still in flight or parked within TTL.  The invariant is
//! enforced by construction: `pending` is *derived* in the snapshot, so it
//! holds on every scrape, not just quiescent ones.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Duration;

use crate::lock;

/// Tuning for the speculation subsystem (`--speculate` and friends).
#[derive(Clone, Debug)]
pub struct SpecConfig {
    /// Max candidate jobs the predictor enqueues per demand submission.
    pub fanout: usize,
    /// Capacity of the low-priority speculative lane.
    pub queue_cap: usize,
    /// Max speculative jobs running on workers at once.
    pub inflight_max: usize,
    /// How long a queued speculation or an unclaimed ready result may
    /// live before it is reclaimed (cancelled / counted waste).
    pub ttl: Duration,
}

impl Default for SpecConfig {
    fn default() -> SpecConfig {
        SpecConfig {
            fanout: 4,
            queue_cap: 64,
            inflight_max: 2,
            ttl: Duration::from_secs(30),
        }
    }
}

/// Point-in-time speculation counters for [`crate::state::StatsSnapshot`].
/// `pending` is derived (`started - hit - waste - cancelled`), so the
/// conservation invariant holds on every snapshot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpecStats {
    pub started: u64,
    /// Demand submissions answered by a speculation (claimed while
    /// queued/running, or a parked ready result).
    pub hit: u64,
    /// Demand cold-path submissions the predictor failed to anticipate.
    /// Not part of the conservation sum — misses are demand jobs, not
    /// speculations.
    pub miss: u64,
    /// Speculations whose results expired unclaimed.
    pub waste: u64,
    /// Speculations reclaimed before producing a result (queue TTL, drain
    /// purge, execution failure) — plus claims that arrived before the
    /// job left the queue, which convert it to an ordinary demand job.
    pub cancelled: u64,
    /// Started speculations not yet in a terminal account.
    pub pending: u64,
    /// The subset of `hit` answered synchronously from a parked ready
    /// result (`source:"spec"` on the job record).
    pub warm_hits: u64,
    pub queue_depth: u64,
    pub queue_cap: u64,
}

/// Results produced by speculation that no demand has claimed yet:
/// dedup key → server-clock ms at which the result was parked.  A demand
/// submission that finds its key here is a *speculative* warm hit (the
/// record's source is `spec`, not `mem`); an entry that outlives the TTL
/// is reclassified as waste and dropped — the memo entry itself stays, so
/// an even later demand is still an ordinary `mem` hit.
#[derive(Default)]
pub struct SpecReady {
    inner: Mutex<HashMap<String, u64>>,
}

impl SpecReady {
    pub fn new() -> SpecReady {
        SpecReady::default()
    }

    /// Park a freshly completed speculative result at time `now_ms`.
    pub fn publish(&self, key: &str, now_ms: u64) {
        lock(&self.inner).insert(key.to_string(), now_ms);
    }

    /// Claim the parked result for `key`, if any (exactly one claimant
    /// wins).  Returns the park time.
    pub fn claim(&self, key: &str) -> Option<u64> {
        lock(&self.inner).remove(key)
    }

    /// Drop every entry parked at or before `cutoff_ms`; returns how many
    /// were reclaimed (each is one `waste`).
    pub fn reap(&self, cutoff_ms: u64) -> u64 {
        let mut g = lock(&self.inner);
        let before = g.len();
        g.retain(|_, &mut t| t > cutoff_ms);
        (before - g.len()) as u64
    }

    pub fn len(&self) -> usize {
        lock(&self.inner).len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ready_claim_is_exactly_once() {
        let r = SpecReady::new();
        r.publish("sim|x|1|cfg", 100);
        assert_eq!(r.claim("sim|x|1|cfg"), Some(100));
        assert_eq!(r.claim("sim|x|1|cfg"), None, "second claimant loses");
        assert!(r.is_empty());
    }

    #[test]
    fn reap_drops_only_expired_entries() {
        let r = SpecReady::new();
        r.publish("a", 100);
        r.publish("b", 200);
        r.publish("c", 300);
        assert_eq!(r.reap(200), 2, "a and b at/past the cutoff");
        assert_eq!(r.claim("c"), Some(300), "fresh entry survives");
        assert_eq!(r.claim("a"), None);
    }

    #[test]
    fn snapshot_conservation_is_derived() {
        // pending = started - hit - waste - cancelled, computed where the
        // snapshot is built; here just pin the arithmetic shape.
        let started = 10u64;
        let (hit, waste, cancelled) = (4u64, 2u64, 1u64);
        let pending = started.saturating_sub(hit + waste + cancelled);
        assert_eq!(hit + waste + cancelled + pending, started);
    }
}
