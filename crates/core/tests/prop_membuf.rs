//! Property tests: the speculative memory buffer against a byte-level
//! reference model.

use std::collections::BTreeMap;

use proptest::prelude::*;
use wec_common::ids::{Addr, ThreadId};
use wec_core::membuf::{LoadCheck, MemBuffer};

/// Reference: explicit byte maps plus an announced-ranges list.
#[derive(Default)]
struct RefBuf {
    own: BTreeMap<u64, u8>,
    released: BTreeMap<u64, u8>,
    announced: Vec<(u64, u64)>, // (addr, thread)
}

impl RefBuf {
    fn check_load(&self, addr: u64, bytes: u64) -> LoadCheck {
        for &(a, _) in &self.announced {
            if a < addr + bytes && addr < a + 8 {
                let covered = (0..bytes).all(|i| self.own.contains_key(&(addr + i)));
                if !covered {
                    return LoadCheck::Wait;
                }
                break;
            }
        }
        let mut value = 0u64;
        let mut mask = 0u8;
        for i in 0..bytes {
            if let Some(&b) = self
                .own
                .get(&(addr + i))
                .or_else(|| self.released.get(&(addr + i)))
            {
                value |= (b as u64) << (8 * i);
                mask |= 1 << i;
            }
        }
        if mask == 0 {
            LoadCheck::Miss
        } else if u32::from(mask) == (1u32 << bytes) - 1 {
            LoadCheck::Value(value)
        } else {
            LoadCheck::Partial {
                value,
                buffered_mask: mask,
            }
        }
    }
}

#[derive(Debug, Clone)]
enum Op {
    Store { addr: u64, bytes: u64, value: u64 },
    Announce { addr: u64, from: u64 },
    Release { addr: u64, value: u64, from: u64 },
    Void { from: u64 },
    Load { addr: u64, bytes: u64 },
}

fn ops() -> impl Strategy<Value = Op> {
    let addr = (0u64..64).prop_map(|a| a * 4); // overlapping 4-byte-aligned window
    let bytes = proptest::sample::select(vec![1u64, 2, 4, 8]);
    let thread = 0u64..4;
    prop_oneof![
        (addr.clone(), bytes.clone(), any::<u64>()).prop_map(|(addr, bytes, value)| Op::Store {
            addr,
            bytes,
            value
        }),
        (addr.clone(), thread.clone()).prop_map(|(addr, from)| Op::Announce { addr, from }),
        (addr.clone(), any::<u64>(), thread.clone()).prop_map(|(addr, value, from)| Op::Release {
            addr,
            value,
            from
        }),
        thread.prop_map(|from| Op::Void { from }),
        (addr, bytes).prop_map(|(addr, bytes)| Op::Load { addr, bytes }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn membuf_matches_reference(seq in proptest::collection::vec(ops(), 1..200)) {
        let mut buf = MemBuffer::new();
        let mut reference = RefBuf::default();
        for op in seq {
            match op {
                Op::Store { addr, bytes, value } => {
                    buf.record_store(Addr(addr), bytes, value);
                    for i in 0..bytes {
                        reference.own.insert(addr + i, (value >> (8 * i)) as u8);
                    }
                }
                Op::Announce { addr, from } => {
                    buf.announce_upstream(Addr(addr), ThreadId(from));
                    if !reference.announced.contains(&(addr, from)) {
                        reference.announced.push((addr, from));
                    }
                }
                Op::Release { addr, value, from } => {
                    buf.release_upstream(Addr(addr), 8, value, ThreadId(from));
                    reference.announced.retain(|&(a, t)| !(a == addr && t == from));
                    for i in 0..8 {
                        reference.released.insert(addr + i, (value >> (8 * i)) as u8);
                    }
                }
                Op::Void { from } => {
                    buf.void_upstream(ThreadId(from));
                    reference.announced.retain(|&(_, t)| t != from);
                }
                Op::Load { addr, bytes } => {
                    prop_assert_eq!(
                        buf.check_load(Addr(addr), bytes),
                        reference.check_load(addr, bytes),
                        "load {:#x}+{}", addr, bytes
                    );
                }
            }
        }
        // Drain must reproduce the reference's own-store bytes exactly.
        let mut drained: BTreeMap<u64, u8> = BTreeMap::new();
        for (addr, mask, value) in buf.drain_own() {
            wec_core::membuf::apply_word(addr, mask, value, |a, b| {
                drained.insert(a.0, b);
            });
        }
        prop_assert_eq!(drained, reference.own);
    }

    #[test]
    fn own_stores_always_win_over_releases(
        addr in (0u64..32).prop_map(|a| a * 8),
        own_val in any::<u64>(),
        rel_val in any::<u64>(),
    ) {
        let mut buf = MemBuffer::new();
        buf.release_upstream(Addr(addr), 8, rel_val, ThreadId(0));
        buf.record_store(Addr(addr), 8, own_val);
        prop_assert_eq!(buf.check_load(Addr(addr), 8), LoadCheck::Value(own_val));
    }
}
