//! Shape invariants of the reproduction: the orderings that constitute the
//! paper's claims must hold on the live simulator (SMOKE scale, generous
//! margins — these guard the *direction* of every headline result).

use wec_bench::runner::{CfgKey, Runner, Suite};
use wec_core::config::ProcPreset;
use wec_workloads::Scale;

fn avg_cycles(runner: &Runner, key: CfgKey) -> f64 {
    let n = runner.suite().workloads.len();
    // Equal-importance average of speedups vs orig 8TU.
    let base = CfgKey::paper(ProcPreset::Orig, 8);
    let mut sum = 0.0;
    for i in 0..n {
        let b = runner.metrics(i, base).cycles as f64;
        let c = runner.metrics(i, key).cycles as f64;
        sum += b / c;
    }
    sum / n as f64
}

#[test]
fn headline_orderings_hold() {
    let suite = Suite::build(Scale::SMOKE);
    let runner = Runner::without_disk_cache(&suite);
    let keys: Vec<CfgKey> = [
        ProcPreset::Orig,
        ProcPreset::Vc,
        ProcPreset::WthWp,
        ProcPreset::WthWpVc,
        ProcPreset::WthWpWec,
        ProcPreset::Nlp,
    ]
    .iter()
    .map(|&p| CfgKey::paper(p, 8))
    .collect();
    runner.warm_all_benches(&keys);

    let wec = avg_cycles(&runner, CfgKey::paper(ProcPreset::WthWpWec, 8));
    let vc = avg_cycles(&runner, CfgKey::paper(ProcPreset::Vc, 8));
    let wth_wp = avg_cycles(&runner, CfgKey::paper(ProcPreset::WthWp, 8));
    let wth_wp_vc = avg_cycles(&runner, CfgKey::paper(ProcPreset::WthWpVc, 8));
    let nlp = avg_cycles(&runner, CfgKey::paper(ProcPreset::Nlp, 8));

    // The paper's central claims, as inequalities on average speedup:
    assert!(wec > 1.02, "wth-wp-wec must clearly beat orig: {wec:.4}");
    assert!(
        wec > vc,
        "the WEC must beat a plain victim cache ({wec:.4} vs {vc:.4})"
    );
    assert!(
        wec > wth_wp,
        "the WEC must add value over bare wrong execution ({wec:.4} vs {wth_wp:.4})"
    );
    assert!(
        wec >= wth_wp_vc - 1e-9,
        "the WEC must match or beat wrong execution + victim cache ({wec:.4} vs {wth_wp_vc:.4})"
    );
    assert!(
        wec > nlp,
        "the WEC must beat next-line prefetching ({wec:.4} vs {nlp:.4})"
    );
}

#[test]
fn victim_cache_benefit_collapses_at_higher_associativity() {
    // The Figure 12 claim.
    let suite = Suite::build(Scale::SMOKE);
    let runner = Runner::without_disk_cache(&suite);
    let mut vc_dm = CfgKey::paper(ProcPreset::Vc, 8);
    vc_dm.l1_ways = 1;
    let mut vc_4w = CfgKey::paper(ProcPreset::Vc, 8);
    vc_4w.l1_ways = 4;
    let mut orig_4w = CfgKey::paper(ProcPreset::Orig, 8);
    orig_4w.l1_ways = 4;
    let mut wec_4w = CfgKey::paper(ProcPreset::WthWpWec, 8);
    wec_4w.l1_ways = 4;
    runner.warm_all_benches(&[
        vc_dm,
        vc_4w,
        orig_4w,
        wec_4w,
        CfgKey::paper(ProcPreset::Orig, 8),
    ]);

    let n = suite.workloads.len();
    let (mut vc_gain_dm, mut vc_gain_4w, mut wec_gain_4w) = (0.0, 0.0, 0.0);
    for i in 0..n {
        let base_dm = runner.metrics(i, CfgKey::paper(ProcPreset::Orig, 8)).cycles as f64;
        let base_4w = runner.metrics(i, orig_4w).cycles as f64;
        vc_gain_dm += base_dm / runner.metrics(i, vc_dm).cycles as f64;
        vc_gain_4w += base_4w / runner.metrics(i, vc_4w).cycles as f64;
        wec_gain_4w += base_4w / runner.metrics(i, wec_4w).cycles as f64;
    }
    let (vc_gain_dm, vc_gain_4w, wec_gain_4w) = (
        vc_gain_dm / n as f64,
        vc_gain_4w / n as f64,
        wec_gain_4w / n as f64,
    );
    assert!(
        vc_gain_4w < vc_gain_dm,
        "vc gain should shrink at 4-way ({vc_gain_4w:.4} vs {vc_gain_dm:.4})"
    );
    assert!(
        wec_gain_4w > vc_gain_4w + 0.01,
        "the WEC must retain an edge at 4-way ({wec_gain_4w:.4} vs {vc_gain_4w:.4})"
    );
}

#[test]
fn small_wec_beats_large_victim_cache() {
    // The Figure 15 claim: wec-4 > vc-16.
    let suite = Suite::build(Scale::SMOKE);
    let runner = Runner::without_disk_cache(&suite);
    let mut wec4 = CfgKey::paper(ProcPreset::WthWpWec, 8);
    wec4.side_entries = 4;
    let mut vc16 = CfgKey::paper(ProcPreset::Vc, 8);
    vc16.side_entries = 16;
    runner.warm_all_benches(&[wec4, vc16, CfgKey::paper(ProcPreset::Orig, 8)]);
    let a = avg_cycles(&runner, wec4);
    let b = avg_cycles(&runner, vc16);
    assert!(a > b, "4-entry WEC ({a:.4}) must beat 16-entry vc ({b:.4})");
}
