//! Cycle-loop self-profiling: coarse, sampled wall-clock attribution of
//! where the *host* spends its time inside the simulated cycle loop.
//!
//! The machine's cycle loop is partitioned into named [`Phase`]s
//! (fetch/rename, exec, mem, commit/recovery, scheduler, telemetry drain).
//! Timing every cycle would distort exactly the loop being measured, so the
//! profiler samples: every [`CycleProfiler::stride`]-th cycle runs through
//! the instrumented path and charges each phase with `Instant` lap times;
//! all other cycles run the uninstrumented path.  Phase shares are stable
//! under sampling because consecutive cycles do similar work; absolute
//! totals are estimates scaled by the sampling ratio.
//!
//! The instrumented and uninstrumented paths share one generic body via
//! [`PhaseSink`]: the [`NoProf`] sink has unit marks and empty laps, so the
//! un-profiled instantiation compiles to exactly the pre-profiling code and
//! the zero-cost-when-off guarantee holds by construction.

use std::fmt::Write as _;
use std::time::Instant;

/// A section of the simulated cycle loop, in host-wall-clock terms.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Instruction fetch, decode and rename (`dispatch` + `fetch`).
    FetchRename = 0,
    /// Wakeup, select and execute (`complete` + `issue`).
    Exec = 1,
    /// The wrong-path memory engine (speculative load issue).
    Mem = 2,
    /// In-order commit, branch recovery and pipeline flushes.
    CommitRecovery = 3,
    /// The machine-level scheduler: forks, kills, write-back, bus.
    Sched = 4,
    /// Draining the gated telemetry buffers and interval sampling.
    Telemetry = 5,
}

/// Number of [`Phase`] variants (array sizes below).
pub const PHASE_COUNT: usize = 6;

impl Phase {
    pub const ALL: [Phase; PHASE_COUNT] = [
        Phase::FetchRename,
        Phase::Exec,
        Phase::Mem,
        Phase::CommitRecovery,
        Phase::Sched,
        Phase::Telemetry,
    ];

    /// Stable snake-case name used in `profile.json` and Perfetto tracks.
    pub fn name(self) -> &'static str {
        match self {
            Phase::FetchRename => "fetch_rename",
            Phase::Exec => "exec",
            Phase::Mem => "mem",
            Phase::CommitRecovery => "commit_recovery",
            Phase::Sched => "sched",
            Phase::Telemetry => "telemetry",
        }
    }
}

/// Receiver for phase lap times.  The cycle loop is written once, generic
/// over the sink; monomorphization gives an instrumented and an untouched
/// copy of the loop.
pub trait PhaseSink {
    /// Lap-timer state ( `()` when not timing, so it costs nothing).
    type Mark;
    fn mark() -> Self::Mark;
    /// Charge the time since `mark` to `phase` and restart the lap timer.
    fn lap(&mut self, mark: &mut Self::Mark, phase: Phase);
}

/// The do-nothing sink: the un-profiled cycle path.
pub struct NoProf;

impl PhaseSink for NoProf {
    type Mark = ();
    #[inline(always)]
    fn mark() {}
    #[inline(always)]
    fn lap(&mut self, _mark: &mut (), _phase: Phase) {}
}

/// Nanoseconds accumulated per phase over one (or more) sampled cycles.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseNs {
    pub ns: [u64; PHASE_COUNT],
}

impl PhaseSink for PhaseNs {
    type Mark = Instant;
    #[inline]
    fn mark() -> Instant {
        Instant::now()
    }
    #[inline]
    fn lap(&mut self, mark: &mut Instant, phase: Phase) {
        let now = Instant::now();
        self.ns[phase as usize] += now.duration_since(*mark).as_nanos() as u64;
        *mark = now;
    }
}

/// Stride-sampled accumulator owned by the machine while profiling is on.
pub struct CycleProfiler {
    stride: u64,
    sampled_cycles: u64,
    ns: [u64; PHASE_COUNT],
    /// Cumulative `(cycle, ns-per-phase)` snapshots taken every
    /// [`Self::CHECKPOINT_EVERY`] sampled cycles; they become the Perfetto
    /// counter tracks.
    checkpoints: Vec<(u64, [u64; PHASE_COUNT])>,
}

impl CycleProfiler {
    /// Default sampling stride: one cycle in 64 is timed.
    pub const DEFAULT_STRIDE: u64 = 64;
    /// Sampled cycles between Perfetto counter checkpoints.
    pub const CHECKPOINT_EVERY: u64 = 256;

    pub fn new(stride: u64) -> CycleProfiler {
        CycleProfiler {
            stride: stride.max(1),
            sampled_cycles: 0,
            ns: [0; PHASE_COUNT],
            checkpoints: Vec::new(),
        }
    }

    /// Should `cycle` run through the instrumented path?
    #[inline]
    pub fn due(&self, cycle: u64) -> bool {
        cycle.is_multiple_of(self.stride)
    }

    /// Fold one instrumented cycle's lap times in.
    pub fn record(&mut self, cycle: u64, laps: &PhaseNs) {
        for (acc, &ns) in self.ns.iter_mut().zip(laps.ns.iter()) {
            *acc += ns;
        }
        self.sampled_cycles += 1;
        if self.sampled_cycles.is_multiple_of(Self::CHECKPOINT_EVERY) {
            self.checkpoints.push((cycle, self.ns));
        }
    }

    /// Close the profile over a run of `total_cycles` machine cycles.
    pub fn report(&self, total_cycles: u64) -> ProfileReport {
        ProfileReport {
            stride: self.stride,
            sampled_cycles: self.sampled_cycles,
            total_cycles,
            ns: self.ns,
            checkpoints: self.checkpoints.clone(),
        }
    }
}

/// The finished per-phase attribution, exported as `profile.json` and
/// summarized on the run result.
#[derive(Clone, Debug, Default)]
pub struct ProfileReport {
    pub stride: u64,
    pub sampled_cycles: u64,
    pub total_cycles: u64,
    /// Wall nanoseconds charged to each phase across the sampled cycles.
    pub ns: [u64; PHASE_COUNT],
    /// Cumulative `(cycle, ns)` snapshots for counter tracks.
    pub checkpoints: Vec<(u64, [u64; PHASE_COUNT])>,
}

impl ProfileReport {
    /// Total sampled wall time across all phases.
    pub fn wall_ns_sampled(&self) -> u64 {
        self.ns.iter().sum()
    }

    /// Fraction of the sampled wall time spent in each phase (all zero for
    /// an empty profile).
    pub fn shares(&self) -> [f64; PHASE_COUNT] {
        let total = self.wall_ns_sampled();
        let mut out = [0.0; PHASE_COUNT];
        if total > 0 {
            for (o, &ns) in out.iter_mut().zip(self.ns.iter()) {
                *o = ns as f64 / total as f64;
            }
        }
        out
    }

    /// Serialize as the `profile.json` document (`wec-profile-v1`).
    pub fn to_json(&self) -> String {
        let shares = self.shares();
        let mut out = String::from("{\"schema\":\"wec-profile-v1\"");
        let _ = write!(
            out,
            ",\"stride\":{},\"sampled_cycles\":{},\"total_cycles\":{},\"wall_ns_sampled\":{}",
            self.stride,
            self.sampled_cycles,
            self.total_cycles,
            self.wall_ns_sampled()
        );
        out.push_str(",\"phases\":{");
        for (i, phase) in Phase::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"ns\":{},\"share\":{:.6}}}",
                phase.name(),
                self.ns[i],
                shares[i]
            );
        }
        out.push_str("}}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noprof_is_inert_and_phasens_accumulates() {
        let mut none = NoProf;
        none.lap(&mut NoProf::mark(), Phase::Exec);

        let mut ns = PhaseNs::default();
        let mut mark = PhaseNs::mark();
        std::hint::black_box(0u64);
        ns.lap(&mut mark, Phase::Exec);
        ns.lap(&mut mark, Phase::Mem);
        assert!(ns.ns.iter().filter(|&&n| n > 0).count() >= 1);
    }

    #[test]
    fn profiler_samples_on_stride_and_checkpoints() {
        let mut p = CycleProfiler::new(4);
        assert!(p.due(0));
        assert!(!p.due(3));
        assert!(p.due(8));
        let mut laps = PhaseNs::default();
        laps.ns[Phase::Exec as usize] = 10;
        for cycle in 0..(CycleProfiler::CHECKPOINT_EVERY * 2) {
            p.record(cycle * 4, &laps);
        }
        let r = p.report(CycleProfiler::CHECKPOINT_EVERY * 8);
        assert_eq!(r.sampled_cycles, CycleProfiler::CHECKPOINT_EVERY * 2);
        assert_eq!(r.ns[Phase::Exec as usize], 10 * r.sampled_cycles);
        assert_eq!(r.checkpoints.len(), 2);
        assert!((r.shares()[Phase::Exec as usize] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn report_json_is_parseable_and_complete() {
        let mut p = CycleProfiler::new(CycleProfiler::DEFAULT_STRIDE);
        let laps = PhaseNs {
            ns: [1, 2, 3, 4, 5, 6],
        };
        p.record(0, &laps);
        let text = p.report(64).to_json();
        let v = crate::json::parse(&text).unwrap();
        assert_eq!(v.get("schema").unwrap().as_str(), Some("wec-profile-v1"));
        assert_eq!(v.get("wall_ns_sampled").unwrap().as_u64(), Some(21));
        let phases = v.get("phases").unwrap();
        for ph in Phase::ALL {
            assert!(phases.get(ph.name()).is_some(), "missing {}", ph.name());
        }
    }

    #[test]
    fn empty_profile_has_zero_shares() {
        let r = CycleProfiler::new(64).report(0);
        assert_eq!(r.shares(), [0.0; PHASE_COUNT]);
        assert!(r.to_json().contains("\"share\":0.000000"));
    }
}
