//! The live dashboard: `GET /dashboard` (one self-contained HTML page) and
//! `GET /dashboard/data` (the `wec-dashboard-data-v1` JSON it refreshes
//! from).
//!
//! The page carries zero external dependencies — no CDN, no framework, no
//! webfont — so it renders from a cold server on an air-gapped box.  All
//! charts are inline SVG drawn by ~100 lines of hand-written script from
//! the data document: sparklines over the ring-buffer samples (queue
//! depth, jobs/s, dedup hit rate, kcycles/s), per-endpoint latency
//! histogram strips straight off the log2 buckets, and a drill-down table
//! of recent jobs linking to the existing `/jobs/<id>/events` stream.
//! Colors follow the repo's chart palette (light and dark via
//! `prefers-color-scheme`); text always wears ink tokens, never series
//! colors.

use std::fmt::Write as _;

use wec_telemetry::json::escape_into;

use crate::state::{render_stats_json, ServerState};

/// The `wec-dashboard-data-v1` document: one consistent stats snapshot,
/// the sampler's ring buffer, per-endpoint latency digests, and slim rows
/// for the most recent jobs (full records carry ~1300 metrics each; the
/// drill-down links fetch those on demand).
pub fn dashboard_data_json(state: &ServerState) -> String {
    let snap = state.snapshot();
    let mut out = String::with_capacity(8 * 1024);
    out.push_str("{\"schema\":\"wec-dashboard-data-v1\"");
    let _ = write!(out, ",\"now_ms\":{}", snap.uptime_ms);
    out.push_str(",\"stats\":");
    out.push_str(&render_stats_json(&snap, state.backend_id()));
    out.push_str(",\"samples\":[");
    for (i, s) in state.samples.snapshot().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&s.to_json());
    }
    out.push_str("],\"http\":[");
    for (i, l) in state.metrics.endpoint_latencies().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"endpoint\":\"{}\",\"count\":{},\"mean_us\":{:.1},\"p50_us\":{},\"p99_us\":{},\"max_us\":{},\"buckets\":[",
            l.endpoint, l.count, l.mean_us, l.p50_us, l.p99_us, l.max_us
        );
        for (j, (floor, n)) in l.buckets.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{floor},{n}]");
        }
        out.push_str("]}");
    }
    out.push_str("],\"jobs\":[");
    for (i, r) in state.recent_jobs(50).iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"id\":{},\"kind\":\"{}\",\"bench\":", r.id, r.kind);
        escape_into(&mut out, &r.bench);
        out.push_str(",\"cfg\":");
        escape_into(&mut out, &r.cfg);
        let _ = write!(
            out,
            ",\"state\":\"{}\",\"source\":\"{}\",\"submissions\":{},\"worker\":{},\"dur_ms\":{},\"sim_cycles\":{},\"has_attr\":{}",
            r.state.name(),
            r.source,
            r.submissions,
            r.worker,
            r.dur_ms,
            r.sim_cycles,
            r.attr.is_some()
        );
        if r.speculative {
            out.push_str(",\"speculative\":true");
        }
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// The dashboard page, byte-for-byte.  Everything inline: styles, script,
/// SVG — served with `Content-Type: text/html`.
pub const DASHBOARD_HTML: &str = r##"<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>wec-serve dashboard</title>
<style>
:root {
  color-scheme: light;
  --surface-1: #fcfcfb;
  --page: #f9f9f7;
  --ink-1: #0b0b0b;
  --ink-2: #52514e;
  --ink-muted: #898781;
  --grid: #e1e0d9;
  --baseline: #c3c2b7;
  --series-1: #2a78d6;
  --good: #0ca30c;
  --critical: #d03b3b;
  --ring: rgba(11,11,11,0.10);
}
@media (prefers-color-scheme: dark) {
  :root {
    color-scheme: dark;
    --surface-1: #1a1a19;
    --page: #0d0d0d;
    --ink-1: #ffffff;
    --ink-2: #c3c2b7;
    --ink-muted: #898781;
    --grid: #2c2c2a;
    --baseline: #383835;
    --series-1: #3987e5;
    --ring: rgba(255,255,255,0.10);
  }
}
* { box-sizing: border-box; margin: 0; }
body {
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  background: var(--page); color: var(--ink-1);
  padding: 16px; font-size: 14px;
}
h1 { font-size: 18px; font-weight: 600; }
header { display: flex; align-items: baseline; gap: 12px; margin-bottom: 14px; flex-wrap: wrap; }
#conn { color: var(--ink-muted); font-size: 12px; }
#drain { font-size: 12px; font-weight: 600; display: none; color: var(--critical); }
.cards { display: grid; grid-template-columns: repeat(auto-fill, minmax(150px, 1fr)); gap: 10px; margin-bottom: 14px; }
.card, .panel {
  background: var(--surface-1); border: 1px solid var(--ring);
  border-radius: 6px; padding: 10px 12px;
}
.card .label { color: var(--ink-2); font-size: 12px; }
.card .value { font-size: 22px; margin-top: 2px; }
.card .sub { color: var(--ink-muted); font-size: 11px; margin-top: 2px; }
.sparks { display: grid; grid-template-columns: repeat(auto-fill, minmax(260px, 1fr)); gap: 10px; margin-bottom: 14px; }
.panel h2 { font-size: 13px; font-weight: 600; color: var(--ink-2); margin-bottom: 6px; }
.panel .now { float: right; color: var(--ink-1); font-weight: 600; font-size: 13px; }
.panel svg { display: block; width: 100%; }
table { border-collapse: collapse; width: 100%; font-variant-numeric: tabular-nums; }
th { text-align: left; color: var(--ink-2); font-size: 12px; font-weight: 600;
     border-bottom: 1px solid var(--grid); padding: 4px 8px 4px 0; }
td { border-bottom: 1px solid var(--grid); padding: 4px 8px 4px 0; font-size: 13px; }
td.num, th.num { text-align: right; }
a { color: var(--series-1); text-decoration: none; }
a:hover { text-decoration: underline; }
.state-done { color: var(--good); font-weight: 600; }
.state-failed { color: var(--critical); font-weight: 600; }
.state-running, .state-queued { color: var(--ink-2); }
.state-cancelled { color: var(--ink-muted); }
section { margin-bottom: 14px; }
.empty { color: var(--ink-muted); font-size: 12px; padding: 8px 0; }
</style>
</head>
<body>
<header>
  <h1>wec-serve</h1>
  <span id="uptime" class="card-sub" style="color: var(--ink-2)"></span>
  <span id="drain">draining — not accepting jobs</span>
  <span id="conn">connecting…</span>
</header>

<div class="cards" id="cards"></div>

<div class="sparks">
  <div class="panel"><h2>Queue depth <span class="now" id="now-queue"></span></h2><svg id="spark-queue" height="48"></svg></div>
  <div class="panel"><h2>Jobs / s <span class="now" id="now-jps"></span></h2><svg id="spark-jps" height="48"></svg></div>
  <div class="panel"><h2>Dedup hit rate <span class="now" id="now-dedup"></span></h2><svg id="spark-dedup" height="48"></svg></div>
  <div class="panel"><h2>Sim kcycles / s <span class="now" id="now-kcps"></span></h2><svg id="spark-kcps" height="48"></svg></div>
  <div class="panel" id="spec-spark-panel" style="display:none"><h2>Spec hit rate <span class="now" id="now-spec"></span></h2><svg id="spark-spec" height="48"></svg></div>
</div>

<section class="panel">
  <h2>HTTP latency by endpoint (log2 buckets, µs)</h2>
  <table id="http-table">
    <thead><tr><th>endpoint</th><th class="num">requests</th><th class="num">mean</th>
      <th class="num">p50</th><th class="num">p99</th><th class="num">max</th><th>distribution</th></tr></thead>
    <tbody></tbody>
  </table>
  <div class="empty" id="http-empty">No requests observed yet.</div>
</section>

<section class="panel">
  <h2>Recent jobs</h2>
  <table id="jobs-table">
    <thead><tr><th>id</th><th>kind</th><th>bench</th><th>cfg</th><th>state</th><th>source</th>
      <th class="num">subs</th><th class="num">dur ms</th><th class="num">sim cycles</th><th>events</th><th>attr</th></tr></thead>
    <tbody></tbody>
  </table>
  <div class="empty" id="jobs-empty">No jobs submitted yet.</div>
</section>

<section class="panel" id="attr-panel" style="display:none">
  <h2>Speculation attribution <span class="now" id="attr-title"></span></h2>
  <div id="attr-summary" class="empty"></div>
  <table id="attr-pcs">
    <thead><tr><th>wrong-path PC</th><th class="num">useful</th><th class="num">wasted</th>
      <th class="num">median fill→hit cycles</th><th class="num">pollution bytes</th></tr></thead>
    <tbody></tbody>
  </table>
  <h2 style="margin-top:10px">Per-set pressure (L1 sets, left→right)</h2>
  <div id="attr-heat"></div>
</section>

<script>
"use strict";
const REFRESH_MS = 1000;
const SVG = "http://www.w3.org/2000/svg";

function fmt(v, digits) {
  if (v >= 1000000) return (v / 1000000).toFixed(1) + "M";
  if (v >= 10000) return (v / 1000).toFixed(1) + "k";
  return Number(v).toFixed(digits === undefined ? 0 : digits);
}

function el(tag, text, cls) {
  const e = document.createElement(tag);
  if (text !== undefined) e.textContent = text;
  if (cls) e.className = cls;
  return e;
}

function card(label, value, sub) {
  const c = el("div", undefined, "card");
  c.appendChild(el("div", label, "label"));
  c.appendChild(el("div", value, "value"));
  if (sub) c.appendChild(el("div", sub, "sub"));
  return c;
}

// One single-series sparkline: 2px line, hairline mid-grid, direct label
// of the latest value beside the title (never a number on every point).
function sparkline(svg, values) {
  const w = svg.clientWidth || 260, h = 48, pad = 3;
  svg.setAttribute("viewBox", "0 0 " + w + " " + h);
  while (svg.firstChild) svg.removeChild(svg.firstChild);
  const grid = document.createElementNS(SVG, "line");
  grid.setAttribute("x1", 0); grid.setAttribute("x2", w);
  grid.setAttribute("y1", h / 2); grid.setAttribute("y2", h / 2);
  grid.setAttribute("stroke", getComputedStyle(document.documentElement).getPropertyValue("--grid"));
  grid.setAttribute("stroke-width", 1);
  svg.appendChild(grid);
  if (values.length < 2) return;
  const max = Math.max(...values, 1e-9);
  const pts = values.map((v, i) => {
    const x = pad + (i / (values.length - 1)) * (w - 2 * pad);
    const y = h - pad - (v / max) * (h - 2 * pad);
    return x.toFixed(1) + "," + y.toFixed(1);
  });
  const line = document.createElementNS(SVG, "polyline");
  line.setAttribute("points", pts.join(" "));
  line.setAttribute("fill", "none");
  line.setAttribute("stroke", getComputedStyle(document.documentElement).getPropertyValue("--series-1"));
  line.setAttribute("stroke-width", 2);
  line.setAttribute("stroke-linejoin", "round");
  svg.appendChild(line);
}

// A latency strip: one thin bar per occupied log2 bucket, height scaled to
// the endpoint's own modal bucket, 2px surface gaps between bars.
function bucketStrip(buckets) {
  const h = 22, bw = 7, gap = 2;
  const svg = document.createElementNS(SVG, "svg");
  const w = Math.max(buckets.length * (bw + gap), 1);
  svg.setAttribute("viewBox", "0 0 " + w + " " + h);
  svg.setAttribute("width", w); svg.setAttribute("height", h);
  const max = Math.max(...buckets.map(b => b[1]), 1);
  const color = getComputedStyle(document.documentElement).getPropertyValue("--series-1");
  buckets.forEach((b, i) => {
    const bh = Math.max(2, Math.round((b[1] / max) * (h - 2)));
    const r = document.createElementNS(SVG, "rect");
    r.setAttribute("x", i * (bw + gap)); r.setAttribute("y", h - bh);
    r.setAttribute("width", bw); r.setAttribute("height", bh);
    r.setAttribute("rx", 1);
    r.setAttribute("fill", color);
    const t = document.createElementNS(SVG, "title");
    t.textContent = "≥ " + b[0] + " µs: " + b[1] + " requests";
    r.appendChild(t);
    svg.appendChild(r);
  });
  return svg;
}

function render(d) {
  const s = d.stats;
  document.getElementById("uptime").textContent =
    "up " + (s.uptime_ms / 1000).toFixed(0) + "s · " +
    s.busy_workers + "/" + s.workers + " workers busy";
  document.getElementById("drain").style.display = s.draining ? "inline" : "none";

  const cards = document.getElementById("cards");
  cards.replaceChildren(
    card("completed", fmt(s.jobs.completed),
         "cold " + s.cache.cold + " · disk " + s.cache.disk_hits + " · mem " + s.cache.mem_hits),
    card("submitted", fmt(s.jobs.submitted), "deduped " + s.jobs.deduped),
    card("queue", s.queue.depth + " / " + s.queue.cap, "rejected " + s.queue.rejected),
    card("failed", fmt(s.jobs.failed)),
    card("jobs / s", s.throughput.jobs_per_sec.toFixed(1),
         "utilization " + (s.throughput.utilization * 100).toFixed(0) + "%"));
  if (s.spec) {
    cards.appendChild(card("spec hits", fmt(s.spec.hit),
      "started " + s.spec.started + " · waste " + s.spec.waste +
      " · pending " + s.spec.pending));
  }

  const by = k => d.samples.map(x => x[k]);
  const last = (a, f) => a.length ? f(a[a.length - 1]) : "";
  sparkline(document.getElementById("spark-queue"), by("queue_depth"));
  sparkline(document.getElementById("spark-jps"), by("jobs_per_sec"));
  sparkline(document.getElementById("spark-dedup"), by("dedup_hit_rate"));
  sparkline(document.getElementById("spark-kcps"), by("kcycles_per_sec"));
  document.getElementById("now-queue").textContent = last(by("queue_depth"), v => fmt(v));
  document.getElementById("now-jps").textContent = last(by("jobs_per_sec"), v => v.toFixed(1));
  document.getElementById("now-dedup").textContent = last(by("dedup_hit_rate"), v => (v * 100).toFixed(0) + "%");
  document.getElementById("now-kcps").textContent = last(by("kcycles_per_sec"), v => fmt(v));
  if (s.spec) {
    document.getElementById("spec-spark-panel").style.display = "block";
    const shr = by("spec_hit_rate").map(v => v === undefined ? 0 : v);
    sparkline(document.getElementById("spark-spec"), shr);
    document.getElementById("now-spec").textContent = last(shr, v => (v * 100).toFixed(0) + "%");
  }

  const htbody = document.querySelector("#http-table tbody");
  htbody.replaceChildren(...d.http.map(r => {
    const tr = el("tr");
    tr.appendChild(el("td", r.endpoint));
    tr.appendChild(el("td", fmt(r.count), "num"));
    tr.appendChild(el("td", fmt(r.mean_us, 1), "num"));
    tr.appendChild(el("td", fmt(r.p50_us), "num"));
    tr.appendChild(el("td", fmt(r.p99_us), "num"));
    tr.appendChild(el("td", fmt(r.max_us), "num"));
    const td = el("td");
    td.appendChild(bucketStrip(r.buckets));
    tr.appendChild(td);
    return tr;
  }));
  document.getElementById("http-empty").style.display = d.http.length ? "none" : "block";

  const jtbody = document.querySelector("#jobs-table tbody");
  jtbody.replaceChildren(...d.jobs.map(j => {
    const tr = el("tr");
    const idtd = el("td");
    const a = el("a", "#" + j.id);
    a.href = "/jobs/" + j.id;
    idtd.appendChild(a);
    tr.appendChild(idtd);
    tr.appendChild(el("td", j.kind));
    tr.appendChild(el("td", j.bench));
    tr.appendChild(el("td", j.cfg));
    tr.appendChild(el("td", j.state, "state-" + j.state));
    tr.appendChild(el("td", j.speculative ? j.source + " ·spec" : j.source));
    tr.appendChild(el("td", String(j.submissions), "num"));
    tr.appendChild(el("td", fmt(j.dur_ms), "num"));
    tr.appendChild(el("td", fmt(j.sim_cycles), "num"));
    const etd = el("td");
    const ea = el("a", "events");
    ea.href = "/jobs/" + j.id + "/events";
    etd.appendChild(ea);
    tr.appendChild(etd);
    const atd = el("td");
    if (j.has_attr) {
      const aa = el("a", "ledger");
      aa.href = "#attr-panel";
      aa.addEventListener("click", () => showAttr(j.id));
      atd.appendChild(aa);
    }
    tr.appendChild(atd);
    return tr;
  }));
  document.getElementById("jobs-empty").style.display = d.jobs.length ? "none" : "block";
}

// One per-set heat strip: a 1×N row of cells, intensity scaled to the
// array's own maximum (each counter gets its own scale; absolute values
// live in the tooltips, never as a number per cell).
function heatStrip(label, values) {
  const wrap = el("div");
  wrap.appendChild(el("div", label, "label"));
  const h = 14, max = Math.max(...values, 1);
  const svg = document.createElementNS(SVG, "svg");
  svg.setAttribute("viewBox", "0 0 " + values.length + " 1");
  svg.setAttribute("preserveAspectRatio", "none");
  svg.setAttribute("width", "100%"); svg.setAttribute("height", h);
  svg.style.display = "block"; svg.style.marginBottom = "4px";
  const color = getComputedStyle(document.documentElement).getPropertyValue("--series-1").trim();
  values.forEach((v, i) => {
    const r = document.createElementNS(SVG, "rect");
    r.setAttribute("x", i); r.setAttribute("y", 0);
    r.setAttribute("width", 1); r.setAttribute("height", 1);
    r.setAttribute("fill", color);
    r.setAttribute("fill-opacity", (0.08 + 0.92 * (v / max)).toFixed(3));
    const t = document.createElementNS(SVG, "title");
    t.textContent = label + " set " + i + ": " + v;
    r.appendChild(t);
    svg.appendChild(r);
  });
  wrap.appendChild(svg);
  return wrap;
}

async function showAttr(id) {
  try {
    const res = await fetch("/jobs/" + id + "/attribution", { cache: "no-store" });
    if (!res.ok) throw new Error("HTTP " + res.status);
    const a = await res.json();
    document.getElementById("attr-panel").style.display = "block";
    document.getElementById("attr-title").textContent = "job #" + id;
    const t = a.totals;
    document.getElementById("attr-summary").textContent =
      "fills " + t.wec_fills + " · useful " + t.useful + " · wasted " + t.wasted +
      " · victim rescued " + t.victim_rescued + " · still resident " + t.still_resident;
    const tbody = document.querySelector("#attr-pcs tbody");
    tbody.replaceChildren(...a.top_pcs.map(p => {
      const tr = el("tr");
      tr.appendChild(el("td", "0x" + p.pc.toString(16).padStart(8, "0")));
      tr.appendChild(el("td", fmt(p.useful), "num"));
      tr.appendChild(el("td", fmt(p.wasted), "num"));
      tr.appendChild(el("td", fmt(p.median_timeliness), "num"));
      tr.appendChild(el("td", fmt(p.pollution_bytes), "num"));
      return tr;
    }));
    const heat = document.getElementById("attr-heat");
    heat.replaceChildren(
      heatStrip("L1 demand accesses", a.sets.l1_accesses),
      heatStrip("L1 demand misses", a.sets.l1_misses),
      heatStrip("speculative side fills", a.sets.side_fills),
      heatStrip("side hits", a.sets.side_hits),
      heatStrip("victim transfers", a.sets.victim_transfers));
  } catch (e) {
    document.getElementById("attr-panel").style.display = "block";
    document.getElementById("attr-summary").textContent = "failed to load ledger: " + e.message;
  }
}

async function tick() {
  try {
    const res = await fetch("/dashboard/data", { cache: "no-store" });
    if (!res.ok) throw new Error("HTTP " + res.status);
    render(await res.json());
    document.getElementById("conn").textContent = "live · refreshes every " + (REFRESH_MS / 1000) + "s";
  } catch (e) {
    document.getElementById("conn").textContent = "disconnected (" + e.message + ") — retrying";
  } finally {
    setTimeout(tick, REFRESH_MS);
  }
}
tick();
</script>
</body>
</html>
"##;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{ServeConfig, ServerState};

    #[test]
    fn page_is_self_contained() {
        for forbidden in ["http://", "https://", "src=\"/", "@import", "cdn"] {
            // The SVG namespace constant is the one legitimate URL.
            let hits = DASHBOARD_HTML.matches(forbidden).count();
            if forbidden == "http://" {
                assert_eq!(hits, 1, "only the SVG xmlns may be a URL");
            } else {
                assert_eq!(hits, 0, "external reference {forbidden:?} in page");
            }
        }
        assert!(DASHBOARD_HTML.contains("/dashboard/data"));
        assert!(DASHBOARD_HTML.contains("prefers-color-scheme"));
        // The speculation sparkline ships with the page but stays hidden
        // until the stats document carries a spec block.
        assert!(DASHBOARD_HTML.contains("spec-spark-panel"));
        assert!(DASHBOARD_HTML.contains("if (s.spec)"));
    }

    #[test]
    fn data_document_is_valid_json_with_embedded_stats() {
        let s = ServerState::new(ServeConfig {
            workers: 2,
            queue_cap: 4,
            store: None,
            log_dir: None,
            ..ServeConfig::default()
        })
        .unwrap();
        s.metrics
            .observe_request(crate::metrics::endpoint_index("/stats"), 200, 42);
        let doc = dashboard_data_json(&s);
        let v = wec_telemetry::json::parse(&doc).unwrap();
        assert_eq!(
            v.get("schema").unwrap().as_str(),
            Some("wec-dashboard-data-v1")
        );
        let stats = v.get("stats").unwrap();
        assert_eq!(
            stats.get("schema").unwrap().as_str(),
            Some("wec-serve-stats-v1")
        );
    }
}
