//! The experiment harness: regenerates every table and figure of the
//! paper's evaluation section (§5) from the simulator.
//!
//! * [`runner`] — workload suite construction, a configuration key that
//!   spans every parameter the paper sweeps, and a cached, host-parallel
//!   simulation runner (every run is guarded by the workload self-check);
//! * [`experiments`] — one function per table/figure, each returning a
//!   [`wec_common::table::Table`] whose rows mirror the paper's plots;
//! * [`ablations`] — the §7 future-work sensitivity studies (memory
//!   latency, block size, branch prediction accuracy).
//!
//! `cargo run --release -p wec-bench --bin experiments` prints everything;
//! the Criterion benches under `benches/` regenerate individual figures.

pub mod ablations;
pub mod experiments;
pub mod runner;

pub use runner::{CfgKey, Runner, Suite};
