//! The sensitivity studies the paper's conclusion (§7) names as future
//! work: memory latency, cache block size, and branch prediction accuracy
//! versus the WEC's benefit.  Each table reports the `wth-wp-wec` relative
//! speedup over `orig` when only the named parameter changes.

use wec_common::stats::relative_speedup_pct;
use wec_common::table::Table;
use wec_core::config::ProcPreset;
use wec_cpu::bpred::BpredKind;

use crate::runner::{CfgKey, Runner};

fn speedup_sweep<K: Clone>(
    runner: &Runner,
    title: &str,
    variants: &[(String, K)],
    mut apply: impl FnMut(&mut CfgKey, &K),
) -> Table {
    let suite = runner.suite();
    let mut keys = Vec::new();
    for (_, v) in variants {
        for preset in [ProcPreset::Orig, ProcPreset::WthWpWec] {
            let mut k = CfgKey::paper(preset, 8);
            apply(&mut k, v);
            keys.push(k);
        }
    }
    runner.warm_all_benches(&keys);

    let mut header = vec!["benchmark".to_string()];
    header.extend(variants.iter().map(|(n, _)| n.clone()));
    let hdr: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(title, &hdr);
    let mut sums = vec![0.0; variants.len()];
    for (i, w) in suite.workloads.iter().enumerate() {
        let mut vals = Vec::new();
        for (col, (_, v)) in variants.iter().enumerate() {
            let mut base = CfgKey::paper(ProcPreset::Orig, 8);
            apply(&mut base, v);
            let mut wec = CfgKey::paper(ProcPreset::WthWpWec, 8);
            apply(&mut wec, v);
            let b = runner.metrics(i, base).cycles;
            let c = runner.metrics(i, wec).cycles;
            let s = relative_speedup_pct(b, c);
            sums[col] += s;
            vals.push(s);
        }
        t.row_f64(w.name, &vals);
    }
    let n = suite.workloads.len() as f64;
    let avgs: Vec<f64> = sums.into_iter().map(|s| s / n).collect();
    t.row_f64("average", &avgs);
    t
}

/// §7 ablation: round-trip memory latency (the paper fixed it at 200).
pub fn memory_latency(runner: &Runner) -> Table {
    let variants: Vec<(String, u16)> = [88u16, 188, 388]
        .iter()
        .map(|&l| (format!("{}-cycle round trip", l + 12), l))
        .collect();
    speedup_sweep(
        runner,
        "Ablation A — wth-wp-wec speedup over orig vs memory latency (%)",
        &variants,
        |k, &l| k.mem_latency = l,
    )
}

/// §7 ablation: L1 block size (the paper fixed it at 64 bytes).
pub fn block_size(runner: &Runner) -> Table {
    let variants: Vec<(String, u16)> = [32u16, 64, 128]
        .iter()
        .map(|&b| (format!("{b}B blocks"), b))
        .collect();
    speedup_sweep(
        runner,
        "Ablation B — wth-wp-wec speedup over orig vs L1 block size (%)",
        &variants,
        |k, &b| k.l1_block = b,
    )
}

/// §7 ablation: branch prediction accuracy.  Less accurate prediction means
/// more wrong-path execution — the paper conjectures a relationship between
/// accuracy and WEC benefit; this measures it.
pub fn branch_prediction(runner: &Runner) -> Table {
    let variants: Vec<(String, BpredKind)> = vec![
        ("static-taken".into(), BpredKind::StaticTaken),
        ("bimodal (paper)".into(), BpredKind::Bimodal),
        ("gshare".into(), BpredKind::Gshare),
    ];
    speedup_sweep(
        runner,
        "Ablation C — wth-wp-wec speedup over orig vs branch predictor (%)",
        &variants,
        |k, &b| k.bpred = b,
    )
}

/// All three §7 ablations.
pub fn all(runner: &Runner) -> Vec<Table> {
    vec![
        memory_latency(runner),
        block_size(runner),
        branch_prediction(runner),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Suite;
    use wec_workloads::Scale;

    #[test]
    fn ablation_tables_have_a_row_per_benchmark_plus_average() {
        // One tiny point to keep the test fast: shrink the sweep by running
        // only the block-size table at SMOKE scale.
        let suite = Suite::build(Scale::SMOKE);
        let runner = Runner::without_disk_cache(&suite);
        let t = block_size(&runner);
        assert_eq!(t.n_rows(), 7);
    }
}
