//! The per-thread-unit out-of-order superscalar core.
//!
//! Each thread unit of the superthreaded architecture is an out-of-order
//! core in the style of SimpleScalar's `sim-outorder` (the paper's base
//! simulator): branch-predicted fetch, ROB-based register renaming with
//! *value-carrying* speculative execution, a load/store queue with
//! store-to-load forwarding, a pooled set of functional units, and in-order
//! commit.
//!
//! Value-carrying speculation matters here: the paper's wrong-path loads
//! compute real effective addresses from real (possibly wrong-path) operand
//! values, so the core genuinely executes down predicted paths rather than
//! replaying an oracle trace.  When a branch resolves as mispredicted, the
//! core squashes younger instructions — and, when wrong-path execution is
//! enabled, hands squashed loads whose address is known to the
//! [`wrongpath::WrongPathEngine`], which keeps issuing them to the memory
//! system exactly as §3.1.1 describes.
//!
//! The core is connected to the rest of the machine (caches, memory buffer,
//! ring, fork/abort logic) through the [`env::CoreEnv`] trait; `wec-core`
//! implements it for real thread units, and [`env::MockEnv`] provides a
//! flat-latency implementation for unit tests.

pub mod bpred;
pub mod config;
pub mod core;
pub mod env;
pub mod exec;
pub mod regs;
pub mod rob;
pub mod trace;
pub mod wrongpath;

pub use config::CoreConfig;
pub use core::{Core, CoreStats};
pub use env::{CoreEnv, MemIssue, MockEnv, StaOutcome};
