//! A minimal JSON parser and escaper.
//!
//! The workspace carries no serde; the telemetry crate hand-rolls its JSON
//! output, and this module provides the matching reader so tests and the CI
//! smoke job can validate emitted artifacts without new dependencies.  It
//! parses the full JSON grammar (objects, arrays, strings with escapes,
//! numbers, booleans, null); numbers are kept as `f64`, which is exact for
//! the integer ranges telemetry emits (cycles and addresses fit 2^53 in
//! practice for any run this simulator completes).

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Num(n) => Some(n),
            _ => None,
        }
    }

    /// The value as a non-negative integer (rejects fractions).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n >= 0.0 && n.fract() == 0.0 {
            Some(n as u64)
        } else {
            None
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub fn is_object(&self) -> bool {
        matches!(self, Json::Obj(_))
    }
}

/// Parse one complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

/// Append `s` as a JSON string literal (quotes included).
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {:?}", other.map(|c| c as char))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let start = self.pos;
                    self.pos += 1;
                    while self.bytes.get(self.pos).is_some_and(|&b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a":[1,2.5,-3],"b":{"c":"x\ny","d":true,"e":null}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[0].as_u64(), Some(1));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("b").unwrap().get("e"), Some(&Json::Null));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("{}extra").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nope").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn escape_round_trips() {
        let nasty = "a\"b\\c\nd\te\u{1}f";
        let mut lit = String::new();
        escape_into(&mut lit, nasty);
        let back = parse(&lit).unwrap();
        assert_eq!(back.as_str(), Some(nasty));
    }

    #[test]
    fn u64_rejects_fractions_and_negatives() {
        assert_eq!(parse("4096").unwrap().as_u64(), Some(4096));
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("-2").unwrap().as_u64(), None);
    }
}
