//! The parallel replay engine's contract, end to end: one captured
//! trace, swept at `jobs = 1` and `jobs = 8`, is byte-identical point by
//! point — and both match the full-timing run at the captured
//! configuration — with the drift verdict rendered by the same diff
//! engine `metricsdiff` uses (zero drift, not merely "close").

use std::collections::BTreeMap;

use wec_bench::diff::{diff, MetricSet, Policy};
use wec_bench::tracerun::{capture_key, replay_sweep, sweep_keys};
use wec_bench::CfgKey;
use wec_trace::{cache_stat_subset, capture_run, kv_string, CaptureMeta, TraceSlab};
use wec_workloads::{Bench, Scale};

/// Render sweep results as a diff-engine input: one point per sweep
/// label, every counter as an exact integer-valued metric.
fn metric_set(source: &str, keys: &[CfgKey], results: &[(Vec<(String, u64)>, bool)]) -> MetricSet {
    let points = keys
        .iter()
        .zip(results)
        .map(|(key, (subset, _))| {
            let metrics = subset
                .iter()
                .map(|(k, v)| (k.clone(), *v as f64))
                .collect::<BTreeMap<String, f64>>();
            (key.label(), metrics)
        })
        .collect();
    MetricSet {
        source: source.to_string(),
        points,
    }
}

#[test]
fn replay_parallel_equivalence() {
    // One full-timing capture on the paper machine (the configuration
    // every sweep replays from).
    let w = Bench::Mcf.build(Scale::SMOKE);
    let base = capture_key();
    let meta = CaptureMeta {
        bench: w.name.to_string(),
        scale_units: Scale::SMOKE.units,
        cfg_label: base.label(),
    };
    let (full, trace) = capture_run(&w, base.build(), &meta).unwrap();

    // One shared slab (decoded on 8 threads), swept serially and with 8
    // workers.  No result store: every point replays live both times.
    let slab = TraceSlab::build(&trace, 8).unwrap();
    assert_eq!(slab.records(), trace.header.total_records);
    let keys = sweep_keys();
    let serial = replay_sweep(&slab, &keys, None, 1);
    let parallel = replay_sweep(&slab, &keys, None, 8);

    // Every sweep point byte-identical down to the rendered kv artifact.
    for ((key, a), b) in keys.iter().zip(&serial).zip(&parallel) {
        assert!(a.1 && b.1, "uncached sweep replayed a point warm");
        assert_eq!(
            kv_string(&a.0),
            kv_string(&b.0),
            "jobs=1 vs jobs=8 drifted at {}",
            key.label()
        );
    }

    // The same verdict through the diff engine, both directions.
    let set1 = metric_set("replay jobs=1", &keys, &serial);
    let set8 = metric_set("replay jobs=8", &keys, &parallel);
    let policy = Policy::default();
    assert!(diff(&set1, &set8, &policy).clean());
    assert!(diff(&set8, &set1, &policy).clean());

    // Full timing joins the comparison at the captured configuration —
    // the one point where replay must reproduce the timing model exactly.
    let golden = cache_stat_subset(&full.stats);
    let idx = keys
        .iter()
        .position(|k| *k == base)
        .expect("the sweep always contains the capture point");
    assert_eq!(kv_string(&golden), kv_string(&serial[idx].0));
    assert_eq!(kv_string(&golden), kv_string(&parallel[idx].0));
    let timing = MetricSet {
        source: "full timing".to_string(),
        points: BTreeMap::from([(
            base.label(),
            golden
                .iter()
                .map(|(k, v)| (k.clone(), *v as f64))
                .collect::<BTreeMap<String, f64>>(),
        )]),
    };
    let replay_at_base = MetricSet {
        source: "replay jobs=8".to_string(),
        points: BTreeMap::from([(base.label(), set8.points[&base.label()].clone())]),
    };
    assert!(diff(&timing, &replay_at_base, &policy).clean());
    assert!(diff(&replay_at_base, &timing, &policy).clean());
}
