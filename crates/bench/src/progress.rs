//! Sweep observability: streams `progress.jsonl`, renders a live TTY
//! status line, and writes the final `run.json` manifest.
//!
//! [`Progress`] implements [`RunObserver`], so the runner reports every
//! simulation start/finish into it from whichever host thread did the work.
//! All mutable state sits behind one mutex; timestamps are taken *inside*
//! the lock from a single monotonic clock, which keeps `t_ms` non-decreasing
//! across lines (the progress schema checks this).

use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Instant;

use wec_telemetry::report::{ProgressWriter, RunManifest, SlowPoint};

use crate::runner::{CacheSource, CfgKey, RunObserver, Runner};

/// How many of the slowest simulations the manifest keeps.
const SLOWEST_KEPT: usize = 10;

/// Host identity for run manifests (best effort).
pub fn host_id() -> String {
    std::env::var("HOSTNAME")
        .ok()
        .filter(|h| !h.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

struct Inner {
    writer: Option<ProgressWriter>,
    /// Points resolved so far (cold + disk), and cold-run aggregates.
    resolved: u64,
    running: u64,
    cold_sim_cycles: u64,
    cold_wall_ms: u64,
    slowest: Vec<SlowPoint>,
    last: String,
}

/// The sweep-level observer wired into [`Runner::set_observer`].
pub struct Progress {
    t0: Instant,
    live: bool,
    run_dir: Option<PathBuf>,
    inner: Mutex<Inner>,
}

impl Progress {
    /// `run_dir` (if given) receives `progress.jsonl` now and `run.json` at
    /// [`Progress::write_manifest`]; `live` turns on the single-line TTY
    /// renderer on stderr.
    pub fn new(run_dir: Option<&Path>, live: bool) -> io::Result<Progress> {
        let writer = match run_dir {
            Some(dir) => Some(ProgressWriter::create(&dir.join("progress.jsonl"))?),
            None => None,
        };
        Ok(Progress {
            t0: Instant::now(),
            live,
            run_dir: run_dir.map(Path::to_path_buf),
            inner: Mutex::new(Inner {
                writer,
                resolved: 0,
                running: 0,
                cold_sim_cycles: 0,
                cold_wall_ms: 0,
                slowest: Vec::new(),
                last: String::new(),
            }),
        })
    }

    fn render_live(&self, inner: &Inner) {
        if !self.live {
            return;
        }
        let line = format!(
            "\r[{:7.1}s] {} done, {} running | {:.0} kcycles/s cold | last: {}",
            self.t0.elapsed().as_secs_f64(),
            inner.resolved,
            inner.running,
            if inner.cold_wall_ms == 0 {
                0.0
            } else {
                inner.cold_sim_cycles as f64 / inner.cold_wall_ms as f64
            },
            inner.last,
        );
        // Pad so a shorter line fully overwrites a longer predecessor.
        eprint!("{line:<100}");
        let _ = io::stderr().flush();
    }

    /// Finish the live line (call once before normal stderr output resumes).
    pub fn finish_live(&self) {
        if self.live {
            eprintln!();
        }
    }

    /// Aggregate everything the runner resolved into a `run.json` manifest
    /// and write it (when a run directory was configured).  Returns the
    /// manifest either way so callers can print from it.
    pub fn write_manifest(
        &self,
        runner: &Runner,
        scale: u64,
        wall_s: f64,
        tables: &[String],
    ) -> io::Result<RunManifest> {
        let inner = self.inner.lock().unwrap();
        let counters = runner.counters();
        let mut metrics: Vec<(String, Vec<(String, u64)>)> = runner
            .snapshot()
            .into_iter()
            .map(|(bench, key, m)| {
                let kv: Vec<(String, u64)> = m
                    .to_kv()
                    .lines()
                    .filter_map(|l| l.split_once(' '))
                    .map(|(k, v)| (k.to_string(), v.trim().parse().unwrap_or(0)))
                    .collect();
                (format!("{bench}|{}", key.label()), kv)
            })
            .collect();
        metrics.sort_by(|a, b| a.0.cmp(&b.0));
        let mut slowest = inner.slowest.clone();
        slowest.sort_by_key(|p| std::cmp::Reverse(p.dur_ms));
        slowest.truncate(SLOWEST_KEPT);
        let manifest = RunManifest {
            scale,
            host: host_id(),
            sim_revision: wec_core::SIM_REVISION as u64,
            wall_s,
            cold: counters.cold(),
            disk_hits: counters.disk_hits(),
            mem_hits: counters.mem_hits(),
            cold_sim_cycles: inner.cold_sim_cycles,
            cold_wall_ms: inner.cold_wall_ms,
            slowest,
            tables: tables.to_vec(),
            metrics,
        };
        if let Some(dir) = &self.run_dir {
            manifest.write_to(&dir.join("run.json"))?;
        }
        Ok(manifest)
    }

    /// The run directory, if artifacts are being written.
    pub fn run_dir(&self) -> Option<&Path> {
        self.run_dir.as_deref()
    }
}

impl RunObserver for Progress {
    fn sim_started(&self, bench: &'static str, key: &CfgKey, worker: usize) {
        let mut inner = self.inner.lock().unwrap();
        let t_ms = self.t0.elapsed().as_millis() as u64;
        let cfg = key.label();
        if let Some(w) = inner.writer.as_mut() {
            // Progress output is best-effort; a full disk must not kill the
            // sweep that is busy filling the result cache.
            let _ = w.start(t_ms, bench, &cfg, worker);
        }
        inner.running += 1;
        inner.last = format!("{bench} {cfg}");
        self.render_live(&inner);
    }

    fn sim_finished(
        &self,
        bench: &'static str,
        key: &CfgKey,
        worker: usize,
        src: CacheSource,
        dur_ms: u64,
        sim_cycles: u64,
    ) {
        let mut inner = self.inner.lock().unwrap();
        let t_ms = self.t0.elapsed().as_millis() as u64;
        let cfg = key.label();
        if let Some(w) = inner.writer.as_mut() {
            let _ = w.finish(t_ms, bench, &cfg, worker, src.name(), dur_ms, sim_cycles);
        }
        if src == CacheSource::Cold {
            inner.running = inner.running.saturating_sub(1);
            inner.cold_sim_cycles += sim_cycles;
            inner.cold_wall_ms += dur_ms;
        }
        inner.resolved += 1;
        inner.slowest.push(SlowPoint {
            bench: bench.to_string(),
            cfg,
            cache: src.name(),
            dur_ms,
        });
        // Keep the slowest list bounded without sorting per event.
        if inner.slowest.len() > SLOWEST_KEPT * 8 {
            inner.slowest.sort_by_key(|p| std::cmp::Reverse(p.dur_ms));
            inner.slowest.truncate(SLOWEST_KEPT);
        }
        self.render_live(&inner);
    }
}
