//! Metric-drift detection between two experiment runs.
//!
//! A [`MetricSet`] is a flat map of `point -> metric -> value`, loadable from
//! three source shapes:
//!
//! * a `run.json` manifest (its `"metrics"` subtree),
//! * a result-cache directory of `.kv` snapshots (one point per file),
//! * a single `.kv` file (one anonymous point).
//!
//! [`diff`] compares two sets under a [`Policy`]: integer-valued metrics must
//! match exactly (simulator counters are deterministic), fractional values
//! compare under a relative epsilon.  The [`DiffReport`] renders as Markdown
//! for humans and JSON for CI, and `clean()` drives the process exit code.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use wec_telemetry::json::{self, Json};

/// `point -> metric -> value` with a human-readable provenance string.
pub struct MetricSet {
    pub source: String,
    pub points: BTreeMap<String, BTreeMap<String, f64>>,
}

fn bad(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn parse_kv(text: &str) -> BTreeMap<String, f64> {
    text.lines()
        .filter_map(|l| l.split_once(' '))
        .filter_map(|(k, v)| v.trim().parse::<f64>().ok().map(|v| (k.to_string(), v)))
        .collect()
}

impl MetricSet {
    /// Load from a `run.json`, a `.kv` snapshot, or a cache directory.
    pub fn load(path: &Path) -> io::Result<MetricSet> {
        let source = path.display().to_string();
        if path.is_dir() {
            let mut points = BTreeMap::new();
            for entry in fs::read_dir(path)? {
                let p = entry?.path();
                if p.extension().and_then(|e| e.to_str()) != Some("kv") {
                    continue;
                }
                let stem = p
                    .file_stem()
                    .and_then(|s| s.to_str())
                    .unwrap_or("point")
                    .to_string();
                points.insert(stem, parse_kv(&fs::read_to_string(&p)?));
            }
            if points.is_empty() {
                return Err(bad(format!("{source}: no .kv snapshots in directory")));
            }
            return Ok(MetricSet { source, points });
        }
        let text = fs::read_to_string(path)?;
        if path.extension().and_then(|e| e.to_str()) == Some("kv") {
            let mut points = BTreeMap::new();
            points.insert("point".to_string(), parse_kv(&text));
            return Ok(MetricSet { source, points });
        }
        Self::from_run_json(&source, &text)
    }

    fn from_run_json(source: &str, text: &str) -> io::Result<MetricSet> {
        let root = json::parse(text).map_err(|e| bad(format!("{source}: {e}")))?;
        let metrics = root
            .get("metrics")
            .ok_or_else(|| bad(format!("{source}: no \"metrics\" object (not a run.json?)")))?;
        let Json::Obj(fields) = metrics else {
            return Err(bad(format!("{source}: \"metrics\" is not an object")));
        };
        let mut points = BTreeMap::new();
        for (label, v) in fields {
            let Json::Obj(kv) = v else {
                return Err(bad(format!("{source}: metrics[{label}] is not an object")));
            };
            let mut map = BTreeMap::new();
            for (k, val) in kv {
                let n = val
                    .as_f64()
                    .ok_or_else(|| bad(format!("{source}: {label}.{k} is not a number")))?;
                map.insert(k.clone(), n);
            }
            points.insert(label.clone(), map);
        }
        if points.is_empty() {
            return Err(bad(format!("{source}: \"metrics\" is empty")));
        }
        Ok(MetricSet {
            source: source.to_string(),
            points,
        })
    }
}

/// Per-metric comparison policy.
pub struct Policy {
    /// Relative tolerance for non-integer values (integers compare exact).
    pub rel_epsilon: f64,
    /// Metric names excluded from comparison entirely.
    pub ignore: BTreeSet<String>,
}

impl Default for Policy {
    fn default() -> Policy {
        Policy {
            rel_epsilon: 1e-6,
            ignore: BTreeSet::new(),
        }
    }
}

/// One detected discrepancy.
pub struct Drift {
    pub point: String,
    pub metric: String,
    pub kind: DriftKind,
}

pub enum DriftKind {
    /// Point present in A, absent in B.
    MissingPoint,
    /// Point present in B, absent in A.
    ExtraPoint,
    /// Metric present in A's point, absent in B's.
    Missing,
    /// Metric present in B's point, absent in A's.
    Extra,
    /// Values differ beyond tolerance.
    Changed { a: f64, b: f64, rel: f64 },
}

impl DriftKind {
    fn describe(&self) -> String {
        match self {
            DriftKind::MissingPoint => "point missing in B".to_string(),
            DriftKind::ExtraPoint => "point only in B".to_string(),
            DriftKind::Missing => "metric missing in B".to_string(),
            DriftKind::Extra => "metric only in B".to_string(),
            DriftKind::Changed { a, b, rel } => {
                format!("{a} -> {b} (rel {rel:.3e})")
            }
        }
    }

    fn tag(&self) -> &'static str {
        match self {
            DriftKind::MissingPoint => "missing_point",
            DriftKind::ExtraPoint => "extra_point",
            DriftKind::Missing => "missing_metric",
            DriftKind::Extra => "extra_metric",
            DriftKind::Changed { .. } => "changed",
        }
    }
}

/// Outcome of [`diff`]: all drifts plus comparison totals.
pub struct DiffReport {
    pub a_source: String,
    pub b_source: String,
    pub points_compared: u64,
    pub metrics_compared: u64,
    pub drifts: Vec<Drift>,
}

impl DiffReport {
    /// True when the two sets agree under the policy.
    pub fn clean(&self) -> bool {
        self.drifts.is_empty()
    }

    pub fn to_markdown(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "# Metric drift report");
        let _ = writeln!(s);
        let _ = writeln!(s, "- A: `{}`", self.a_source);
        let _ = writeln!(s, "- B: `{}`", self.b_source);
        let _ = writeln!(
            s,
            "- Compared {} metrics across {} points",
            self.metrics_compared, self.points_compared
        );
        let _ = writeln!(s);
        if self.clean() {
            let _ = writeln!(s, "**No drift detected.**");
            return s;
        }
        let _ = writeln!(s, "**{} drift(s) detected.**", self.drifts.len());
        let _ = writeln!(s);
        let _ = writeln!(s, "| point | metric | drift |");
        let _ = writeln!(s, "|---|---|---|");
        for d in &self.drifts {
            let _ = writeln!(
                s,
                "| {} | {} | {} |",
                d.point,
                if d.metric.is_empty() { "*" } else { &d.metric },
                d.kind.describe()
            );
        }
        s
    }

    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\"schema\":\"wec-metricsdiff-v1\",\"a\":");
        json::escape_into(&mut s, &self.a_source);
        s.push_str(",\"b\":");
        json::escape_into(&mut s, &self.b_source);
        let _ = write!(
            s,
            ",\"points_compared\":{},\"metrics_compared\":{},\"clean\":{},\"drifts\":[",
            self.points_compared,
            self.metrics_compared,
            self.clean()
        );
        for (i, d) in self.drifts.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("{\"point\":");
            json::escape_into(&mut s, &d.point);
            s.push_str(",\"metric\":");
            json::escape_into(&mut s, &d.metric);
            let _ = write!(s, ",\"kind\":\"{}\"", d.kind.tag());
            if let DriftKind::Changed { a, b, rel } = &d.kind {
                let _ = write!(s, ",\"a\":{a},\"b\":{b},\"rel\":{rel:.6e}");
            }
            s.push('}');
        }
        s.push_str("]}\n");
        s
    }
}

fn is_integral(v: f64) -> bool {
    v.fract() == 0.0 && v.abs() < 2f64.powi(53)
}

/// Compare two values under the policy; `None` means they agree.
fn compare(a: f64, b: f64, policy: &Policy) -> Option<DriftKind> {
    if a == b {
        return None;
    }
    if is_integral(a) && is_integral(b) {
        // Simulator counters are integers and deterministic: exact or drift.
        let denom = a.abs().max(b.abs()).max(1.0);
        return Some(DriftKind::Changed {
            a,
            b,
            rel: (a - b).abs() / denom,
        });
    }
    let denom = a.abs().max(b.abs()).max(f64::MIN_POSITIVE);
    let rel = (a - b).abs() / denom;
    if rel <= policy.rel_epsilon {
        return None;
    }
    Some(DriftKind::Changed { a, b, rel })
}

/// Diff two metric sets under `policy`.
pub fn diff(a: &MetricSet, b: &MetricSet, policy: &Policy) -> DiffReport {
    let mut drifts = Vec::new();
    let mut points_compared = 0u64;
    let mut metrics_compared = 0u64;
    for (point, am) in &a.points {
        let Some(bm) = b.points.get(point) else {
            drifts.push(Drift {
                point: point.clone(),
                metric: String::new(),
                kind: DriftKind::MissingPoint,
            });
            continue;
        };
        points_compared += 1;
        for (metric, &av) in am {
            if policy.ignore.contains(metric) {
                continue;
            }
            let Some(&bv) = bm.get(metric) else {
                drifts.push(Drift {
                    point: point.clone(),
                    metric: metric.clone(),
                    kind: DriftKind::Missing,
                });
                continue;
            };
            metrics_compared += 1;
            if let Some(kind) = compare(av, bv, policy) {
                drifts.push(Drift {
                    point: point.clone(),
                    metric: metric.clone(),
                    kind,
                });
            }
        }
        for metric in bm.keys() {
            if !policy.ignore.contains(metric) && !am.contains_key(metric) {
                drifts.push(Drift {
                    point: point.clone(),
                    metric: metric.clone(),
                    kind: DriftKind::Extra,
                });
            }
        }
    }
    for point in b.points.keys() {
        if !a.points.contains_key(point) {
            drifts.push(Drift {
                point: point.clone(),
                metric: String::new(),
                kind: DriftKind::ExtraPoint,
            });
        }
    }
    DiffReport {
        a_source: a.source.clone(),
        b_source: b.source.clone(),
        points_compared,
        metrics_compared,
        drifts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(name: &str, points: &[(&str, &[(&str, f64)])]) -> MetricSet {
        MetricSet {
            source: name.to_string(),
            points: points
                .iter()
                .map(|(p, kv)| {
                    (
                        p.to_string(),
                        kv.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
                    )
                })
                .collect(),
        }
    }

    #[test]
    fn identical_sets_are_clean() {
        let a = set("a", &[("p1", &[("cycles", 100.0), ("forks", 3.0)])]);
        let b = set("b", &[("p1", &[("cycles", 100.0), ("forks", 3.0)])]);
        let r = diff(&a, &b, &Policy::default());
        assert!(r.clean());
        assert_eq!(r.points_compared, 1);
        assert_eq!(r.metrics_compared, 2);
    }

    #[test]
    fn integers_compare_exact() {
        // A one-count difference in a large counter is far below any
        // reasonable relative epsilon, but must still be flagged.
        let a = set("a", &[("p1", &[("cycles", 1_000_000_000.0)])]);
        let b = set("b", &[("p1", &[("cycles", 1_000_000_001.0)])]);
        let policy = Policy {
            rel_epsilon: 1e-3,
            ..Policy::default()
        };
        let r = diff(&a, &b, &policy);
        assert_eq!(r.drifts.len(), 1);
        assert!(matches!(r.drifts[0].kind, DriftKind::Changed { .. }));
    }

    #[test]
    fn fractions_compare_relative() {
        let a = set("a", &[("p1", &[("rate", 0.5)])]);
        let b = set("b", &[("p1", &[("rate", 0.5 + 1e-9)])]);
        assert!(diff(&a, &b, &Policy::default()).clean());
        let c = set("c", &[("p1", &[("rate", 0.51)])]);
        assert!(!diff(&a, &c, &Policy::default()).clean());
    }

    #[test]
    fn missing_and_extra_are_reported() {
        let a = set("a", &[("p1", &[("cycles", 1.0), ("gone", 2.0)])]);
        let b = set(
            "b",
            &[("p1", &[("cycles", 1.0), ("new", 3.0)]), ("p2", &[])],
        );
        let r = diff(&a, &b, &Policy::default());
        let tags: Vec<&str> = r.drifts.iter().map(|d| d.kind.tag()).collect();
        assert!(tags.contains(&"missing_metric"));
        assert!(tags.contains(&"extra_metric"));
        assert!(tags.contains(&"extra_point"));
        let a2 = set("a2", &[("p1", &[]), ("p9", &[])]);
        let r2 = diff(&a2, &b, &Policy::default());
        assert!(r2
            .drifts
            .iter()
            .any(|d| matches!(d.kind, DriftKind::MissingPoint)));
    }

    #[test]
    fn ignored_metrics_do_not_drift() {
        let a = set("a", &[("p1", &[("cycles", 1.0), ("wall_ms", 10.0)])]);
        let b = set("b", &[("p1", &[("cycles", 1.0), ("wall_ms", 99.0)])]);
        let mut policy = Policy::default();
        policy.ignore.insert("wall_ms".to_string());
        assert!(diff(&a, &b, &policy).clean());
    }

    #[test]
    fn run_json_loader_reads_metrics_subtree() {
        let text = "{\"schema\":\"wec-run-manifest-v1\",\"metrics\":{\"gzip|orig\":{\"cycles\":42,\"forks\":0}}}";
        let set = MetricSet::from_run_json("mem", text).unwrap();
        assert_eq!(set.points["gzip|orig"]["cycles"], 42.0);
        assert!(MetricSet::from_run_json("mem", "{\"x\":1}").is_err());
    }
}
