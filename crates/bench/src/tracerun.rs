//! Trace capture and trace-driven replay sweeps — the `--capture-trace` /
//! `--replay-trace` modes of the `experiments` binary.
//!
//! Capture runs each selected workload once on the paper's `wth-wp-wec`
//! 8-TU machine with the memory-access tap attached, writing into the
//! capture directory:
//!
//! * `<bench>.wectrace` — the compressed access trace;
//! * `golden/<bench>.kv` — the full-timing run's cache counters (the
//!   exact key subset replay emits), for drift gating with `metricsdiff`;
//! * `capture.json` — a manifest of what was captured at which revision.
//!
//! Replay re-drives *only* the cache hierarchy from those traces across
//! the WEC geometry sweep ([`sweep_keys`]: side-structure entries × L1
//! associativity × side-structure kind), so a 48-point geometry sweep
//! reuses one timing run per benchmark instead of 48.  Each trace is
//! decoded **once** into a shared [`TraceSlab`] (block decoding fanned
//! over the job pool), then the sweep's points — embarrassingly parallel,
//! each worker owning a fresh L1/WEC/L2 hierarchy — are fanned across
//! the same pool ([`replay_sweep`]).  Every replayed trace is first
//! re-checked at the captured configuration against the goldens
//! (`golden-check/<bench>.kv` must diff clean), and every sweep point is
//! memoized in the persistent result store keyed by the trace identity,
//! the configuration label and the simulator revision — job count never
//! changes a counter or a memo key.

use std::path::{Path, PathBuf};
use std::time::Instant;

use wec_common::table::Table;
use wec_core::config::ProcPreset;
use wec_telemetry::attr::AttributionReport;
use wec_trace::{
    cache_stat_subset, capture_run, kv_string, replay_slab, replay_slab_with, CaptureMeta, Trace,
    TraceSlab,
};
use wec_workloads::{Bench, Scale};

use crate::runner::{default_disk_dir, fnv1a, CfgKey};

/// TU count every capture uses (the §5.2 paper machine).
pub const CAPTURE_TUS: usize = 8;

/// One replayed sweep point: its golden counter subset, whether it
/// replayed cold, and its attribution ledger when the ledger was on.
type PointOutcome = (Vec<(String, u64)>, bool, Option<AttributionReport>);

/// The fixed full-timing configuration every capture runs.  Geometry
/// sweeps replay from this one timing run, so the capture point never
/// varies; replay refuses traces captured under any other label.
pub fn capture_key() -> CfgKey {
    CfgKey::paper(ProcPreset::WthWpWec, CAPTURE_TUS)
}

/// The replay sweep: every side-structure geometry of interest — entry
/// counts from a quarter to 16× the paper's 8, the three L1
/// associativities the evaluation contrasts, under both the WEC and the
/// victim-cache side structure (48 points per benchmark).
pub fn sweep_keys() -> Vec<CfgKey> {
    let mut keys = Vec::new();
    for preset in [ProcPreset::WthWpWec, ProcPreset::WthWpVc] {
        for side in [2u8, 4, 8, 16, 24, 32, 64, 128] {
            for ways in [1u8, 2, 4] {
                let mut k = capture_key();
                k.preset = preset;
                k.side_entries = side;
                k.l1_ways = ways;
                keys.push(k);
            }
        }
    }
    keys
}

fn selected(only: Option<&str>) -> Vec<Bench> {
    match only {
        None => Bench::ALL.to_vec(),
        Some(f) => Bench::ALL
            .iter()
            .copied()
            .filter(|b| b.name().contains(f))
            .collect(),
    }
}

/// `"181.mcf"` → `"181_mcf"`, the artifact file stem.
fn stem_of(bench: &str) -> String {
    bench.replace('.', "_")
}

/// Capture mode: one full-timing traced run per selected benchmark.
pub fn capture_traces(scale: Scale, only: Option<&str>, dir: &Path) {
    let benches = selected(only);
    if benches.is_empty() {
        panic!("--only {only:?} matches no benchmark");
    }
    let key = capture_key();
    std::fs::create_dir_all(dir.join("golden"))
        .unwrap_or_else(|e| panic!("cannot create {}: {e}", dir.display()));
    eprintln!(
        "capturing {} workload(s) at scale {} on {} …",
        benches.len(),
        scale.units,
        key.label()
    );
    let t0 = Instant::now();
    let mut entries = String::new();
    for bench in benches {
        let w = bench.build(scale);
        let meta = CaptureMeta {
            bench: w.name.to_string(),
            scale_units: scale.units,
            cfg_label: key.label(),
        };
        let t = Instant::now();
        let (result, trace) = capture_run(&w, key.build(), &meta)
            .unwrap_or_else(|e| panic!("capture of {} failed: {e}", w.name));
        let stem = stem_of(w.name);
        let path = dir.join(format!("{stem}.wectrace"));
        trace
            .write_to(&path)
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        let golden = kv_string(&cache_stat_subset(&result.stats));
        let golden_path = dir.join("golden").join(format!("{stem}.kv"));
        std::fs::write(&golden_path, golden)
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", golden_path.display()));
        let payload = trace.encoded_bytes();
        let records = trace.header.total_records;
        println!(
            "captured {:<12} {:>9} records, {:>9} bytes ({:.3} bytes/record), {} cycles [{:.1}s]",
            w.name,
            records,
            payload,
            payload as f64 / records.max(1) as f64,
            result.cycles,
            t.elapsed().as_secs_f64()
        );
        if !entries.is_empty() {
            entries.push_str(",\n");
        }
        entries.push_str(&format!(
            "    {{\"bench\": \"{}\", \"file\": \"{stem}.wectrace\", \"records\": {records}, \
             \"payload_bytes\": {payload}, \"identity\": \"{:016x}\"}}",
            w.name,
            trace.identity()
        ));
    }
    let manifest = format!(
        "{{\n  \"schema\": \"wec-capture-v1\",\n  \"scale_units\": {},\n  \
         \"sim_revision\": {},\n  \"n_tus\": {CAPTURE_TUS},\n  \"cfg_label\": \"{}\",\n  \
         \"traces\": [\n{entries}\n  ]\n}}\n",
        scale.units,
        wec_core::SIM_REVISION,
        key.label()
    );
    let manifest_path = dir.join("capture.json");
    std::fs::write(&manifest_path, manifest)
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", manifest_path.display()));
    eprintln!(
        "capture done in {:.1}s: traces + goldens + capture.json under {}",
        t0.elapsed().as_secs_f64(),
        dir.display()
    );
}

/// Parse a `.kv` snapshot back into sorted counter pairs; `None` on any
/// malformed line (the cache entry is then recomputed).
fn parse_kv_u64(text: &str) -> Option<Vec<(String, u64)>> {
    let mut out = Vec::new();
    for line in text.lines() {
        let (k, v) = line.split_once(' ')?;
        out.push((k.to_string(), v.trim().parse().ok()?));
    }
    out.sort();
    Some(out)
}

/// Sum every counter whose key ends with `suffix` (e.g. all per-TU
/// `.l1d.demand_misses`).
fn sum(subset: &[(String, u64)], suffix: &str) -> u64 {
    subset
        .iter()
        .filter(|(k, _)| k.ends_with(suffix))
        .map(|(_, v)| v)
        .sum()
}

/// Replay one sweep point, memoized in `cache_dir` by (trace identity,
/// configuration label, simulator revision).  Returns the cache-counter
/// subset and whether it was replayed cold.  Shared with the serve
/// daemon's replay jobs, so a point replayed by a sweep is warm for the
/// server and vice versa; the memo write is atomic ([`crate::store`])
/// because daemon workers race on shared keys.
pub fn replay_point(
    slab: &TraceSlab,
    key: CfgKey,
    cache_dir: Option<&Path>,
) -> (Vec<(String, u64)>, bool) {
    let id = format!(
        "trace|{:016x}|{}|rev{}",
        slab.identity(),
        key.label(),
        wec_core::SIM_REVISION
    );
    let path = cache_dir.map(|d| d.join(format!("trace_{:016x}.kv", fnv1a(id.as_bytes()))));
    if let Some(p) = &path {
        if let Some(subset) = std::fs::read_to_string(p)
            .ok()
            .and_then(|t| parse_kv_u64(&t))
        {
            return (subset, false);
        }
    }
    let outcome = replay_slab(slab, &key.build()).unwrap_or_else(|e| {
        panic!(
            "replay of {} at {} failed: {e}",
            slab.header().bench,
            key.label()
        )
    });
    let subset = cache_stat_subset(&outcome.stats);
    if let Some(p) = &path {
        crate::store::atomic_write_best_effort(p, &kv_string(&subset));
    }
    (subset, true)
}

/// Replay one sweep point cold with the speculation attribution ledger on
/// the L1D paths.  Never consults or feeds the result store — the store
/// memoizes cache counters, not ledgers — so the counters come back
/// byte-identical to [`replay_point`]'s while the report captures per-PC
/// credit and per-set pressure for this geometry.  Shared with the serve
/// daemon's attribution-enabled replay jobs.
pub fn replay_point_attr(slab: &TraceSlab, key: CfgKey) -> (Vec<(String, u64)>, AttributionReport) {
    let outcome = replay_slab_with(slab, &key.build(), true).unwrap_or_else(|e| {
        panic!(
            "replay of {} at {} failed: {e}",
            slab.header().bench,
            key.label()
        )
    });
    let report = outcome
        .attribution
        .expect("attribution requested but replay returned no report");
    assert!(
        report.conserved(),
        "attribution ledger violates conservation on {} at {}",
        slab.header().bench,
        key.label()
    );
    (cache_stat_subset(&outcome.stats), report)
}

/// One replayed point: the cache-counter subset and whether it was
/// replayed cold (vs answered from the result store).
pub type PointResult = (Vec<(String, u64)>, bool);

/// Replay every key of a sweep against one shared slab, fanning points
/// across `jobs` worker threads (1 = inline).  Points are independent —
/// each worker builds its own L1/WEC/L2 hierarchy and only reads the
/// slab — so results are identical at any job count; they come back in
/// `keys` order regardless of completion order.  Memoization goes
/// through [`replay_point`], whose store writes are atomic, so
/// concurrent workers (or concurrent sweeps) never publish a torn entry.
pub fn replay_sweep(
    slab: &TraceSlab,
    keys: &[CfgKey],
    cache_dir: Option<&Path>,
    jobs: usize,
) -> Vec<PointResult> {
    fan_points(keys, jobs, |key| replay_point(slab, key, cache_dir))
}

/// Fan one closure over every sweep key with `jobs` workers (1 = inline),
/// returning results in `keys` order regardless of completion order.
fn fan_points<T: Send + Sync>(
    keys: &[CfgKey],
    jobs: usize,
    point: impl Fn(CfgKey) -> T + Sync,
) -> Vec<T> {
    let jobs = jobs.max(1).min(keys.len().max(1));
    if jobs <= 1 {
        return keys.iter().map(|key| point(*key)).collect();
    }
    let slots: Vec<std::sync::OnceLock<T>> = (0..keys.len())
        .map(|_| std::sync::OnceLock::new())
        .collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some(key) = keys.get(i) else {
                    return;
                };
                let _ = slots[i].set(point(*key));
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("replay pool exited with an unfilled slot")
        })
        .collect()
}

/// Replay mode: golden-check every trace at the captured configuration,
/// then sweep [`sweep_keys`] over it with `jobs` workers, printing one
/// table per benchmark.  `jobs` caps both the slab decoder pool and the
/// sweep-point pool; results and memo entries are identical at any count.
/// With `attribution` on, every point replays cold through
/// [`replay_point_attr`] (the result store is bypassed — it memoizes
/// counters, not ledgers) and each `.kv` gains a sibling `.attr.json`,
/// including `golden-check/<bench>.attr.json` at the captured
/// configuration, byte-identical to the full-timing ledger.
pub fn replay_traces(
    dir: &Path,
    out: &Path,
    no_cache: bool,
    csv: bool,
    only: Option<&str>,
    jobs: usize,
    attribution: bool,
) {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("cannot read --replay-trace {}: {e}", dir.display()))
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("wectrace"))
        .collect();
    files.sort();
    if files.is_empty() {
        panic!(
            "no .wectrace files in {} (run experiments --capture-trace first)",
            dir.display()
        );
    }
    let base = capture_key();
    let keys = sweep_keys();
    let jobs = jobs.max(1);
    let cache_dir = if no_cache || attribution {
        None
    } else {
        Some(default_disk_dir())
    };
    if let Some(d) = &cache_dir {
        eprintln!("replay result cache: {}", d.display());
    }
    if attribution {
        eprintln!("attribution ledger on: every point replays cold (ledgers are not memoized)");
    }
    eprintln!("replay jobs: {jobs}");
    std::fs::create_dir_all(out.join("golden-check"))
        .unwrap_or_else(|e| panic!("cannot create {}: {e}", out.display()));

    let t0 = Instant::now();
    let (mut traces_replayed, mut records_driven, mut cold_points, mut cached_points) =
        (0u64, 0u64, 0u64, 0u64);
    for path in &files {
        let trace = Trace::read_from(path)
            .unwrap_or_else(|e| panic!("cannot load {}: {e}", path.display()));
        let h = &trace.header;
        if let Some(f) = only {
            if !h.bench.contains(f) {
                continue;
            }
        }
        if h.sim_revision != wec_core::SIM_REVISION {
            panic!(
                "{}: captured at simulator revision {} but this binary is revision {} — recapture",
                path.display(),
                h.sim_revision,
                wec_core::SIM_REVISION
            );
        }
        if h.cfg_label != base.label() {
            panic!(
                "{}: captured at {} but replay sweeps assume the paper base {} — recapture",
                path.display(),
                h.cfg_label,
                base.label()
            );
        }
        let stem = stem_of(&h.bench);
        eprintln!(
            "replaying {} ({} records, scale {})…",
            h.bench, h.total_records, h.scale_units
        );
        let slab = TraceSlab::build(&trace, jobs)
            .unwrap_or_else(|e| panic!("cannot decode {}: {e}", path.display()));

        // Golden check: the captured configuration must reproduce the
        // full-timing counters exactly (gated by `metricsdiff
        // <capture>/golden <out>/golden-check`).  With attribution on the
        // same cold replay also yields the captured-config ledger, which
        // must match the full-timing run's byte for byte.
        let golden_subset = if attribution {
            let (subset, report) = replay_point_attr(&slab, base);
            let attr_path = out.join("golden-check").join(format!("{stem}.attr.json"));
            std::fs::write(&attr_path, format!("{}\n", report.to_json()))
                .unwrap_or_else(|e| panic!("cannot write {}: {e}", attr_path.display()));
            subset
        } else {
            replay_point(&slab, base, None).0
        };
        records_driven += h.total_records;
        let check_path = out.join("golden-check").join(format!("{stem}.kv"));
        std::fs::write(&check_path, kv_string(&golden_subset))
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", check_path.display()));

        let point_dir = out.join(&stem);
        std::fs::create_dir_all(&point_dir)
            .unwrap_or_else(|e| panic!("cannot create {}: {e}", point_dir.display()));
        let mut table = Table::new(
            format!(
                "replay sweep: {} (scale {}, {} points)",
                h.bench,
                h.scale_units,
                keys.len()
            ),
            &["config", "l1d_miss%", "side_hits", "l2_misses"],
        );
        let results: Vec<PointOutcome> = if attribution {
            fan_points(&keys, jobs, |key| {
                let (subset, report) = replay_point_attr(&slab, key);
                (subset, true, Some(report))
            })
        } else {
            replay_sweep(&slab, &keys, cache_dir.as_deref(), jobs)
                .into_iter()
                .map(|(subset, cold)| (subset, cold, None))
                .collect()
        };
        for (key, (subset, cold, report)) in keys.iter().zip(results) {
            if cold {
                cold_points += 1;
                records_driven += h.total_records;
            } else {
                cached_points += 1;
            }
            let label = format!(
                "{}/side{}/{}w",
                key.preset.name(),
                key.side_entries,
                key.l1_ways
            );
            let point_stem = format!(
                "{}_side{:03}_{}w",
                key.preset.name(),
                key.side_entries,
                key.l1_ways
            );
            let kv_path = point_dir.join(format!("{point_stem}.kv"));
            std::fs::write(&kv_path, kv_string(&subset))
                .unwrap_or_else(|e| panic!("cannot write {}: {e}", kv_path.display()));
            if let Some(report) = &report {
                let attr_path = point_dir.join(format!("{point_stem}.attr.json"));
                std::fs::write(&attr_path, format!("{}\n", report.to_json()))
                    .unwrap_or_else(|e| panic!("cannot write {}: {e}", attr_path.display()));
            }
            let accesses = sum(&subset, ".l1d.demand_accesses");
            let misses = sum(&subset, ".l1d.demand_misses");
            table.row(vec![
                label,
                format!("{:.2}", 100.0 * misses as f64 / accesses.max(1) as f64),
                sum(&subset, ".l1d.side_hits").to_string(),
                subset
                    .iter()
                    .find(|(k, _)| k == "l2.demand_misses")
                    .map_or(0, |(_, v)| *v)
                    .to_string(),
            ]);
        }
        if csv {
            println!("# replay_{stem}");
            print!("{}", table.to_csv());
        } else {
            print!("{}", table.render());
        }
        println!();
        traces_replayed += 1;
    }
    if traces_replayed == 0 {
        panic!(
            "--only {only:?} matches no captured trace in {}",
            dir.display()
        );
    }
    let wall = t0.elapsed().as_secs_f64();
    eprintln!(
        "replayed {traces_replayed} trace(s), {} sweep points ({cold_points} cold, \
         {cached_points} cached) in {wall:.1}s; goldens re-checked under {}",
        cold_points + cached_points,
        out.join("golden-check").display()
    );
    if wall > 0.0 && records_driven > 0 {
        eprintln!(
            "replay throughput: {:.0} records/s driven cold",
            records_driven as f64 / wall
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_48_distinct_points() {
        let keys = sweep_keys();
        assert_eq!(keys.len(), 48);
        let labels: std::collections::HashSet<String> = keys.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), 48, "sweep labels collide");
        // The captured base point is part of the sweep, so the golden
        // configuration is always re-checked by the sweep itself too.
        assert!(keys.contains(&capture_key()));
    }

    #[test]
    fn kv_round_trips_through_parse() {
        let pairs = vec![("a.b".to_string(), 3u64), ("z".to_string(), 9)];
        assert_eq!(parse_kv_u64(&kv_string(&pairs)).unwrap(), pairs);
        assert!(parse_kv_u64("a.b notanumber\n").is_none());
    }

    #[test]
    fn suffix_sum_aggregates_per_tu_counters() {
        let subset = vec![
            ("tu0.l1d.demand_misses".to_string(), 3u64),
            ("tu1.l1d.demand_misses".to_string(), 4),
            ("tu0.l1i.demand_misses".to_string(), 100),
            ("l2.demand_misses".to_string(), 7),
        ];
        assert_eq!(sum(&subset, ".l1d.demand_misses"), 7);
    }
}
