//! Property tests: the set-associative cache against an executable
//! reference model (a per-set most-recent-first list).

use proptest::prelude::*;
use wec_common::ids::Addr;
use wec_mem::cache::{Cache, CacheGeometry};
use wec_mem::line::LineFlags;

/// Reference model: per set, a most-recent-first vector of (tag, dirty).
struct RefCache {
    sets: u64,
    ways: usize,
    block: u64,
    data: Vec<Vec<(u64, bool)>>,
}

impl RefCache {
    fn new(geom: CacheGeometry) -> Self {
        RefCache {
            sets: geom.sets,
            ways: geom.ways,
            block: geom.block_bytes,
            data: (0..geom.sets).map(|_| Vec::new()).collect(),
        }
    }

    fn locate(&self, a: Addr) -> (usize, u64) {
        (
            a.set_index(self.block, self.sets),
            a.tag(self.block, self.sets),
        )
    }

    fn contains(&self, a: Addr) -> bool {
        let (s, t) = self.locate(a);
        self.data[s].iter().any(|&(tag, _)| tag == t)
    }

    fn touch(&mut self, a: Addr) -> bool {
        let (s, t) = self.locate(a);
        if let Some(pos) = self.data[s].iter().position(|&(tag, _)| tag == t) {
            let e = self.data[s].remove(pos);
            self.data[s].insert(0, e);
            true
        } else {
            false
        }
    }

    /// Returns the evicted block address, if any.
    fn insert(&mut self, a: Addr, dirty: bool) -> Option<(Addr, bool)> {
        let (s, t) = self.locate(a);
        if let Some(pos) = self.data[s].iter().position(|&(tag, _)| tag == t) {
            self.data[s].remove(pos);
            self.data[s].insert(0, (t, dirty));
            return None;
        }
        let evicted = if self.data[s].len() == self.ways {
            let (tag, d) = self.data[s].pop().unwrap();
            Some((Addr((tag * self.sets + s as u64) * self.block), d))
        } else {
            None
        };
        self.data[s].insert(0, (t, dirty));
        evicted
    }

    fn take(&mut self, a: Addr) -> bool {
        let (s, t) = self.locate(a);
        if let Some(pos) = self.data[s].iter().position(|&(tag, _)| tag == t) {
            self.data[s].remove(pos);
            true
        } else {
            false
        }
    }
}

#[derive(Debug, Clone)]
enum Op {
    Insert(u64, bool),
    Touch(u64),
    Take(u64),
    Contains(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Addresses in a window that exercises conflicts: a few hundred blocks.
    let addr = 0u64..(1 << 14);
    prop_oneof![
        (addr.clone(), any::<bool>()).prop_map(|(a, d)| Op::Insert(a, d)),
        addr.clone().prop_map(Op::Touch),
        addr.clone().prop_map(Op::Take),
        addr.prop_map(Op::Contains),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cache_matches_reference_model(
        ops in proptest::collection::vec(op_strategy(), 1..400),
        ways in proptest::sample::select(vec![1usize, 2, 4]),
    ) {
        let geom = CacheGeometry::from_capacity(4 * 1024, ways, 64).unwrap();
        let mut cache = Cache::new(geom);
        let mut reference = RefCache::new(geom);
        for op in ops {
            match op {
                Op::Insert(a, dirty) => {
                    let a = Addr(a);
                    let flags = LineFlags { dirty, ..LineFlags::DEMAND };
                    let got = cache.insert(a, flags);
                    let want = reference.insert(a, dirty);
                    prop_assert_eq!(got.map(|e| (e.addr, e.flags.dirty)), want);
                }
                Op::Touch(a) => {
                    let a = Addr(a);
                    let got = cache.touch(a).is_some();
                    let want = reference.touch(a);
                    prop_assert_eq!(got, want);
                }
                Op::Take(a) => {
                    let a = Addr(a);
                    prop_assert_eq!(cache.take(a).is_some(), reference.take(a));
                }
                Op::Contains(a) => {
                    let a = Addr(a);
                    prop_assert_eq!(cache.contains(a), reference.contains(a));
                }
            }
            prop_assert!(cache.check_no_duplicate_tags());
            prop_assert!(cache.valid_lines() <= geom.sets as usize * geom.ways);
        }
    }

    #[test]
    fn fully_associative_never_exceeds_capacity(
        addrs in proptest::collection::vec(0u64..(1 << 16), 1..200),
        entries in 1usize..=16,
    ) {
        let mut c = Cache::new(CacheGeometry::fully_associative(entries, 64));
        for a in addrs {
            c.insert(Addr(a), LineFlags::WRONG);
            prop_assert!(c.valid_lines() <= entries);
            prop_assert!(c.contains(Addr(a)), "just-inserted block must be resident");
        }
    }

    #[test]
    fn eviction_reconstructs_a_real_block_address(
        addrs in proptest::collection::vec(0u64..(1 << 15), 1..200),
    ) {
        let geom = CacheGeometry::from_capacity(2 * 1024, 2, 64).unwrap();
        let mut c = Cache::new(geom);
        let mut inserted: Vec<Addr> = Vec::new();
        for a in addrs {
            let a = Addr(a).block_base(64);
            if let Some(ev) = c.insert(a, LineFlags::DEMAND) {
                prop_assert!(
                    inserted.contains(&ev.addr),
                    "evicted {:?} was never inserted", ev.addr
                );
            }
            if !inserted.contains(&a) {
                inserted.push(a);
            }
        }
    }
}
