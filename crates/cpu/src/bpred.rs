//! Branch prediction: bimodal direction predictor, branch target buffer and
//! return-address stack.
//!
//! The paper's thread units use a 1024-entry 4-way BTB (§4.1); SimpleScalar's
//! default direction predictor is bimodal (2-bit saturating counters), which
//! we match.  The prediction quality directly controls how much wrong-path
//! execution happens, so these structures are faithful rather than idealized.

/// 2-bit saturating-counter direction predictor indexed by PC.
#[derive(Clone, Debug)]
pub struct Bimodal {
    counters: Vec<u8>,
}

impl Bimodal {
    /// `entries` must be a power of two.
    pub fn new(entries: usize) -> Self {
        assert!(entries.is_power_of_two());
        // Initialize to weakly-taken: loops predict well immediately.
        Bimodal {
            counters: vec![2; entries],
        }
    }

    #[inline]
    fn index(&self, pc: u32) -> usize {
        pc as usize & (self.counters.len() - 1)
    }

    /// Predict the direction of the branch at `pc`.
    #[inline]
    pub fn predict(&self, pc: u32) -> bool {
        self.counters[self.index(pc)] >= 2
    }

    /// Train with the resolved outcome.
    #[inline]
    pub fn update(&mut self, pc: u32, taken: bool) {
        let idx = self.index(pc);
        let c = &mut self.counters[idx];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }
}

/// Gshare: global history xored into the PC index of a 2-bit counter
/// table.  More accurate than bimodal on correlated branches — used by the
/// branch-prediction-accuracy ablation the paper's §7 calls for.
#[derive(Clone, Debug)]
pub struct Gshare {
    counters: Vec<u8>,
    history: u64,
    history_bits: u32,
}

impl Gshare {
    pub fn new(entries: usize, history_bits: u32) -> Self {
        assert!(entries.is_power_of_two());
        assert!(history_bits <= 16);
        Gshare {
            counters: vec![2; entries],
            history: 0,
            history_bits,
        }
    }

    #[inline]
    fn index(&self, pc: u32) -> usize {
        let h = self.history & ((1 << self.history_bits) - 1);
        (pc as usize ^ (h as usize)) & (self.counters.len() - 1)
    }

    #[inline]
    pub fn predict(&self, pc: u32) -> bool {
        self.counters[self.index(pc)] >= 2
    }

    /// Train and shift the outcome into the global history.
    #[inline]
    pub fn update(&mut self, pc: u32, taken: bool) {
        let idx = self.index(pc);
        let c = &mut self.counters[idx];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
        self.history = (self.history << 1) | taken as u64;
    }
}

/// Which direction predictor a core uses (the ablation knob).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BpredKind {
    /// Always predict taken (the accuracy floor).
    StaticTaken,
    /// 2-bit saturating counters (SimpleScalar's default; the paper's).
    Bimodal,
    /// Gshare with 12 bits of global history.
    Gshare,
}

/// A direction predictor of any configured kind.
#[derive(Clone, Debug)]
pub enum DirectionPredictor {
    StaticTaken,
    Bimodal(Bimodal),
    Gshare(Gshare),
}

impl DirectionPredictor {
    pub fn new(kind: BpredKind, entries: usize) -> Self {
        match kind {
            BpredKind::StaticTaken => DirectionPredictor::StaticTaken,
            BpredKind::Bimodal => DirectionPredictor::Bimodal(Bimodal::new(entries)),
            BpredKind::Gshare => DirectionPredictor::Gshare(Gshare::new(entries, 12)),
        }
    }

    #[inline]
    pub fn predict(&self, pc: u32) -> bool {
        match self {
            DirectionPredictor::StaticTaken => true,
            DirectionPredictor::Bimodal(b) => b.predict(pc),
            DirectionPredictor::Gshare(g) => g.predict(pc),
        }
    }

    #[inline]
    pub fn update(&mut self, pc: u32, taken: bool) {
        match self {
            DirectionPredictor::StaticTaken => {}
            DirectionPredictor::Bimodal(b) => b.update(pc, taken),
            DirectionPredictor::Gshare(g) => g.update(pc, taken),
        }
    }
}

/// Set-associative branch target buffer with round-robin-free true LRU
/// (small ways, so a recency scan is fine).
#[derive(Clone, Debug)]
pub struct Btb {
    sets: usize,
    ways: usize,
    /// (tag, target, last-use stamp); `u64::MAX` stamp = invalid.
    entries: Vec<(u32, u32, u64)>,
    stamp: u64,
}

impl Btb {
    pub fn new(entries: usize, ways: usize) -> Self {
        assert!(ways >= 1 && entries.is_multiple_of(ways));
        let sets = entries / ways;
        assert!(sets.is_power_of_two());
        Btb {
            sets,
            ways,
            entries: vec![(0, 0, u64::MAX); entries],
            stamp: 0,
        }
    }

    #[inline]
    fn set_range(&self, pc: u32) -> std::ops::Range<usize> {
        let set = pc as usize & (self.sets - 1);
        set * self.ways..(set + 1) * self.ways
    }

    /// Look up the predicted target for the control instruction at `pc`.
    pub fn lookup(&mut self, pc: u32) -> Option<u32> {
        self.stamp += 1;
        let stamp = self.stamp;
        let range = self.set_range(pc);
        for e in &mut self.entries[range] {
            if e.2 != u64::MAX && e.0 == pc {
                e.2 = stamp;
                return Some(e.1);
            }
        }
        None
    }

    /// Install or update the target for `pc`.
    pub fn update(&mut self, pc: u32, target: u32) {
        self.stamp += 1;
        let stamp = self.stamp;
        let range = self.set_range(pc);
        let set = &mut self.entries[range];
        // Existing entry?
        if let Some(e) = set.iter_mut().find(|e| e.2 != u64::MAX && e.0 == pc) {
            e.1 = target;
            e.2 = stamp;
            return;
        }
        // Invalid way, else LRU way.
        let victim = set.iter().position(|e| e.2 == u64::MAX).unwrap_or_else(|| {
            set.iter()
                .enumerate()
                .min_by_key(|(_, e)| e.2)
                .map(|(i, _)| i)
                .unwrap()
        });
        set[victim] = (pc, target, stamp);
    }
}

/// Return-address stack for `jal`/`jr ra` pairs.
#[derive(Clone, Debug)]
pub struct Ras {
    stack: Vec<u32>,
    depth: usize,
    /// Pushes dropped because the stack was full (overwrites oldest).
    pub overflows: u64,
}

impl Ras {
    pub fn new(depth: usize) -> Self {
        Ras {
            stack: Vec::with_capacity(depth),
            depth,
            overflows: 0,
        }
    }

    pub fn push(&mut self, return_pc: u32) {
        if self.stack.len() == self.depth {
            self.stack.remove(0);
            self.overflows += 1;
        }
        self.stack.push(return_pc);
    }

    pub fn pop(&mut self) -> Option<u32> {
        self.stack.pop()
    }

    pub fn depth_used(&self) -> usize {
        self.stack.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bimodal_learns_a_loop_branch() {
        let mut b = Bimodal::new(16);
        // Taken 9 times, not-taken once (loop exit), repeatedly.
        let pc = 5;
        let mut mispredicts = 0;
        for _ in 0..10 {
            for i in 0..10 {
                let taken = i != 9;
                if b.predict(pc) != taken {
                    mispredicts += 1;
                }
                b.update(pc, taken);
            }
        }
        // Bimodal mispredicts ~1 per loop exit; far fewer than 50%.
        assert!(mispredicts <= 21, "mispredicts {mispredicts}");
    }

    #[test]
    fn bimodal_counters_saturate() {
        let mut b = Bimodal::new(2);
        for _ in 0..10 {
            b.update(0, true);
        }
        assert!(b.predict(0));
        b.update(0, false);
        assert!(b.predict(0)); // still taken after one not-taken (strong state)
        b.update(0, false);
        assert!(!b.predict(0));
    }

    #[test]
    fn btb_hits_after_install() {
        let mut btb = Btb::new(16, 4);
        assert_eq!(btb.lookup(100), None);
        btb.update(100, 7);
        assert_eq!(btb.lookup(100), Some(7));
        btb.update(100, 9);
        assert_eq!(btb.lookup(100), Some(9));
    }

    #[test]
    fn btb_evicts_lru_within_set() {
        let mut btb = Btb::new(4, 2); // 2 sets × 2 ways
                                      // All these PCs map to set 0 (even PCs).
        btb.update(0, 1);
        btb.update(4, 2);
        btb.lookup(0); // make pc=0 recent
        btb.update(8, 3); // evicts pc=4
        assert_eq!(btb.lookup(0), Some(1));
        assert_eq!(btb.lookup(4), None);
        assert_eq!(btb.lookup(8), Some(3));
    }

    #[test]
    fn ras_lifo_and_overflow() {
        let mut r = Ras::new(2);
        r.push(10);
        r.push(20);
        r.push(30); // drops 10
        assert_eq!(r.overflows, 1);
        assert_eq!(r.pop(), Some(30));
        assert_eq!(r.pop(), Some(20));
        assert_eq!(r.pop(), None);
    }
}

#[cfg(test)]
mod gshare_tests {
    use super::*;

    #[test]
    fn gshare_learns_a_correlated_pattern() {
        // Alternating taken/not-taken defeats bimodal but not gshare.
        let mut g = Gshare::new(1024, 12);
        let mut bi = Bimodal::new(1024);
        let (mut g_miss, mut b_miss) = (0, 0);
        for i in 0..2000 {
            let taken = i % 2 == 0;
            if g.predict(77) != taken {
                g_miss += 1;
            }
            if bi.predict(77) != taken {
                b_miss += 1;
            }
            g.update(77, taken);
            bi.update(77, taken);
        }
        assert!(g_miss < 50, "gshare missed {g_miss}");
        assert!(
            b_miss > 500,
            "bimodal should thrash on alternation: {b_miss}"
        );
    }

    #[test]
    fn predictor_kinds_dispatch() {
        let mut s = DirectionPredictor::new(BpredKind::StaticTaken, 16);
        assert!(s.predict(1));
        s.update(1, false);
        assert!(s.predict(1), "static never learns");
        let mut b = DirectionPredictor::new(BpredKind::Bimodal, 16);
        b.update(3, false);
        b.update(3, false);
        assert!(!b.predict(3));
        let mut g = DirectionPredictor::new(BpredKind::Gshare, 16);
        g.update(3, true);
        let _ = g.predict(3);
    }
}
