//! A tiny deterministic pseudo-random number generator.
//!
//! The simulator itself must be bit-for-bit deterministic for a given seed, so
//! everything inside the timing model uses this self-contained SplitMix64
//! rather than an external RNG whose stream could change across versions.
//! (Workload *data* generation, which is less version-sensitive, uses the
//! `rand` crate in `wec-workloads`.)

/// SplitMix64: the classic 64-bit mixer by Sebastiano Vigna.  Passes BigCrush
/// when used as a stream; more than good enough for workload shuffling and
/// synthetic address generation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.  Equal seeds give equal streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. `bound` must be nonzero.
    /// Uses the widening-multiply trick; bias is negligible for our bounds.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform value in `[lo, hi)`.
    #[inline]
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi);
        lo + self.below(hi - lo)
    }

    /// Uniform f64 in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            assert!(r.below(13) < 13);
        }
        // Every residue appears for a small bound.
        let mut seen = [false; 13];
        let mut r = SplitMix64::new(8);
        for _ in 0..10_000 {
            seen[r.below(13) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn range_is_inclusive_exclusive() {
        let mut r = SplitMix64::new(9);
        for _ in 0..10_000 {
            let v = r.range(5, 8);
            assert!((5..8).contains(&v));
        }
    }

    #[test]
    fn unit_f64_in_half_open_interval() {
        let mut r = SplitMix64::new(10);
        for _ in 0..10_000 {
            let x = r.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn unit_f64_roughly_uniform() {
        let mut r = SplitMix64::new(11);
        let mean: f64 = (0..100_000).map(|_| r.unit_f64()).sum::<f64>() / 100_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SplitMix64::new(12);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        // And it actually moved something.
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn chance_extremes() {
        let mut r = SplitMix64::new(13);
        assert!((0..100).all(|_| !r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }
}
