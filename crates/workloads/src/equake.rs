//! `183.equake` analog — sparse matrix-vector products (the `smvp` kernel).
//!
//! equake spends its time in a CSR sparse matrix-vector multiply inside a
//! time-stepping loop; the paper parallelized those loops (MinneSPEC large,
//! 21.3% parallelized) and saw the *largest* wth-wp-wec gains of the suite
//! (up to 39.2% in Figure 9).  The reason maps directly onto this analog:
//! the CSR `val`/`colidx` arrays are consumed contiguously across row
//! windows, so wrong threads running ahead into the next window prefetch
//! exactly the blocks the next region demand-misses on, and the indirect
//! `x[col[j]]` accesses give the L1 plenty of misses to hide.
//!
//! Shape: per time step, parallel regions cover the rows in windows (one
//! thread per row: `y[r] = Σ val[j]·x[col[j]]`), then a sequential update
//! recombines `y` into `x` (a damped relaxation) and folds a checksum.
//!
//! Table 1 transformations: loop unrolling (row inner products), statement
//! reordering.

use wec_isa::reg::FReg;
use wec_isa::reg::Reg;
use wec_isa::ProgramBuilder;

use crate::datagen::{csr_pattern, permutation_cycle, rng_for};
use crate::harness::{
    counted_continuation, counted_exit, emit_chase_reduce, emit_checksum_reduce_reps,
    emit_sta_loop, IND, INV, MY, T0, T1, T2, T3, T4,
};
use crate::{Scale, Workload};

/// Rows/columns (power of two so run-ahead row indices can be masked).
const ROWS: usize = 1024;
/// Average nonzeros per row.
const NNZ_PER_ROW: usize = 7;
/// Rows per parallel region.
const WINDOW: usize = 64;
/// Sequential time integration: a few streaming scans over y plus an
/// unstructured-mesh chase (sized to Table 2's 21.3% parallel fraction).
const SCAN_REPS: u32 = 12;
const MESH_PERM: usize = 8192;
const MESH_STEPS: i64 = 4096;
const MESH_REPS: u32 = 8;

struct HostData {
    rowptr: Vec<u64>,
    colidx: Vec<u64>,
    val: Vec<f64>,
    x0: Vec<f64>,
    /// Time-integration chase permutation (unstructured mesh traversal).
    perm: Vec<u64>,
}

fn generate() -> HostData {
    let mut rng = rng_for("183.equake", 11);
    let (rowptr, colidx) = csr_pattern(&mut rng, ROWS, ROWS, NNZ_PER_ROW);
    let val: Vec<f64> = (0..colidx.len())
        .map(|j| 0.25 + (j % 31) as f64 * 0.03125)
        .collect();
    let x0: Vec<f64> = (0..ROWS).map(|i| 1.0 + (i % 17) as f64 * 0.125).collect();
    let perm = permutation_cycle(&mut rng, MESH_PERM);
    HostData {
        rowptr,
        colidx,
        val,
        x0,
        perm,
    }
}

/// Host reference: `steps` time steps of y = A·x; x = 0.5·x + 0.25·y,
/// checksum folded over the bit patterns of y each step.
fn reference(d: &HostData, steps: u32) -> u64 {
    let mut x = d.x0.clone();
    let mut y = vec![0f64; ROWS];
    let mut check = 0u64;
    for _ in 0..steps {
        for r in 0..ROWS {
            let mut acc = 0f64;
            for j in d.rowptr[r] as usize..d.rowptr[r + 1] as usize {
                acc += d.val[j] * x[d.colidx[j] as usize];
            }
            y[r] = acc;
        }
        let bits: Vec<u64> = y.iter().map(|v| v.to_bits()).collect();
        check = crate::harness::checksum_reduce_reps_reference(check, &bits, SCAN_REPS);
        check = crate::harness::chase_reduce_reference(check, &d.perm, MESH_STEPS, MESH_REPS);
        for r in 0..ROWS {
            x[r] = 0.5 * x[r] + 0.25 * y[r];
        }
    }
    check
}

pub fn build(scale: Scale) -> Workload {
    let steps = scale.units;
    let d = generate();
    let expected_check = reference(&d, steps);

    let mut b = ProgramBuilder::new("183.equake");
    let rowptr = b.alloc_u64s(&d.rowptr);
    let colidx = b.alloc_u64s(&d.colidx);
    let val = b.alloc_f64s(&d.val);
    let x = b.alloc_f64s(&d.x0);
    let y = b.alloc_zeroed_u64s(ROWS as u64);
    let perm_scaled = crate::harness::scaled_perm(&d.perm);
    let perm_base = b.alloc_u64s(&perm_scaled);
    let consts = b.alloc_f64s(&[0.5, 0.25]);
    let _slack = b.alloc_bytes(16 * 1024, 64);
    let check = b.alloc_zeroed_u64s(1);

    let (rpr, cir, valr, xr, yr, maskr, stepr, boundr, nstepr, winr) = (
        INV[0], INV[1], INV[2], INV[3], INV[4], INV[5], INV[6], INV[7], INV[8], INV[9],
    );
    b.la(rpr, rowptr);
    b.la(cir, colidx);
    b.la(valr, val);
    b.la(xr, x);
    b.la(yr, y);
    let permr = Reg(26);
    b.la(permr, perm_base);
    b.li(maskr, (ROWS - 1) as i64);
    b.li(nstepr, steps as i64);
    b.li(stepr, 0);

    let (facc, fv, fx, fhalf, fquarter) = (FReg(1), FReg(2), FReg(3), FReg(4), FReg(5));

    b.label("eq_step");
    b.li(winr, 0);
    b.label("eq_win");
    b.slli(IND, winr, WINDOW.trailing_zeros() as i32);
    b.addi(boundr, IND, WINDOW as i32);
    emit_sta_loop(
        &mut b,
        "eq_r",
        1,
        &[IND],
        counted_continuation,
        |_| {},
        |b| {
            // r = my & mask; j in rowptr[r]..rowptr[r+1]
            b.and(T0, MY, maskr);
            b.slli(T1, T0, 3);
            b.add(T1, rpr, T1);
            b.ld(T2, T1, 0); // j
            b.ld(T3, T1, 8); // jend
                             // facc = 0.0
            b.cvt_if(facc, Reg::ZERO);
            b.label("eq_dot");
            b.bge(T2, T3, "eq_dot_end");
            b.slli(T4, T2, 3);
            b.add(T1, valr, T4);
            b.fld(fv, T1, 0); // val[j]
            b.add(T1, cir, T4);
            b.ld(T1, T1, 0); // col[j]
            b.slli(T1, T1, 3);
            b.add(T1, xr, T1);
            b.fld(fx, T1, 0); // x[col[j]]
            b.fmul(fv, fv, fx);
            b.fadd(facc, facc, fv);
            b.addi(T2, T2, 1);
            b.j("eq_dot");
            b.label("eq_dot_end");
            // y[r] = facc
            b.and(T0, MY, maskr);
            b.slli(T0, T0, 3);
            b.add(T0, yr, T0);
            b.fsd(facc, T0, 0);
        },
        counted_exit(boundr),
    );
    b.addi(winr, winr, 1);
    b.li(T0, (ROWS / WINDOW) as i64);
    b.blt(winr, T0, "eq_win");

    // Sequential time integration: streaming scans over y, the mesh chase,
    // then relax x.
    emit_checksum_reduce_reps(&mut b, "eq", yr, ROWS as i64, SCAN_REPS, check);
    emit_chase_reduce(&mut b, "eq_mesh", permr, MESH_STEPS, MESH_REPS, check);
    b.la(T0, consts);
    b.fld(fhalf, T0, 0);
    b.fld(fquarter, T0, 8);
    b.mv(T0, xr);
    b.mv(T1, yr);
    b.li(T2, ROWS as i64);
    b.label("eq_relax");
    b.fld(fx, T0, 0);
    b.fld(fv, T1, 0);
    b.fmul(fx, fx, fhalf);
    b.fmul(fv, fv, fquarter);
    b.fadd(fx, fx, fv);
    b.fsd(fx, T0, 0);
    b.addi(T0, T0, 8);
    b.addi(T1, T1, 8);
    b.addi(T2, T2, -1);
    b.bne(T2, Reg::ZERO, "eq_relax");

    b.addi(stepr, stepr, 1);
    b.blt(stepr, nstepr, "eq_step");
    b.halt();

    Workload {
        name: "183.equake",
        suite: "SPEC2000/FP",
        input: "MinneSPEC large",
        transforms: &["loop unrolling", "statement reordering"],
        program: b.build().unwrap(),
        check_addr: check,
        expected_check,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_and_verify;
    use wec_core::config::ProcPreset;

    #[test]
    fn csr_rowptr_monotone() {
        let d = generate();
        assert!(d.rowptr.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(d.rowptr.len(), ROWS + 1);
    }

    #[test]
    fn self_check_passes_under_orig_and_wec() {
        let w = build(Scale::SMOKE);
        for preset in [ProcPreset::Orig, ProcPreset::WthWpWec] {
            run_and_verify(&w, preset.machine(4))
                .unwrap_or_else(|e| panic!("{}: {e}", preset.name()));
        }
    }
}
