//! Observability layer for the WEC simulator.
//!
//! The paper's argument rests on *when* wrong-execution loads land in the
//! WEC and when the correct path hits them (§4–§5); end-of-run aggregates
//! cannot answer that.  This crate provides the four instruments the rest of
//! the workspace reports through:
//!
//! * **Structured event trace** ([`sink::EventSink`], [`event::TraceEvent`]) —
//!   a runtime-gated, zero-cost-when-off stream of typed, cycle-stamped
//!   events (wrong-load issue, WEC fill, WEC correct-path hit, victim
//!   transfer, next-line prefetch, L1/L2 miss, thread lifecycle, pipeline
//!   flush, commits) serialized as JSONL.
//! * **Interval time-series** ([`sampler::TimeSeries`]) — per-N-cycle
//!   snapshots of machine/cache counters (IPC, miss rates, WEC occupancy)
//!   as CSV.
//! * **Latency histograms** ([`hist::Log2Histogram`]) — log2-bucketed,
//!   allocation-free observation of load-to-fill latency, WEC
//!   fill-to-first-hit distance, and wrong-thread lifetime.
//! * **Perfetto export** ([`perfetto::PerfettoTrace`]) — a Chrome
//!   trace-event JSON file rendering thread-unit occupancy spans and cache
//!   events on one timeline, loadable at <https://ui.perfetto.dev>.
//!
//! Simulator components own small gated buffers ([`event::CacheTrace`],
//! [`event::FlushTrace`]) that the machine drains once per cycle; when
//! telemetry is off every hook reduces to one predictable branch, keeping
//! metrics byte-identical to untraced runs.
//!
//! The crate depends only on `wec-common` and hand-rolls its JSON (the
//! workspace carries no serde); [`json`]/[`schema`] provide the matching
//! parser and JSONL validator used by tests and CI.

pub mod attr;
pub mod event;
pub mod hist;
pub mod json;
pub mod perfetto;
pub mod profile;
pub mod report;
pub mod sampler;
pub mod schema;
pub mod sink;

pub use attr::{AttrProbe, AttrTotals, AttributionReport, FillOrigin};
pub use event::{CacheEvent, CacheTrace, FlushRec, FlushTrace, TraceEvent};
pub use hist::Log2Histogram;
pub use perfetto::PerfettoTrace;
pub use profile::{CycleProfiler, NoProf, Phase, PhaseNs, PhaseSink, ProfileReport};
pub use report::{ProgressWriter, RunManifest, SlowPoint};
pub use sampler::TimeSeries;
pub use sink::EventSink;

use std::path::PathBuf;

/// Runtime telemetry switches, carried inside the machine configuration.
/// Everything defaults to off, in which case the simulator's behaviour and
/// metrics are byte-identical to a build without telemetry.
#[derive(Clone, Debug, Default)]
pub struct TelemetryConfig {
    /// Record the structured event trace (JSONL) and the Perfetto export.
    pub trace_events: bool,
    /// Snapshot machine counters every N cycles into the time-series
    /// (0 = off).
    pub sample_interval: u64,
    /// Where to write `events.jsonl` / `timeseries.csv` /
    /// `histograms.json` / `trace.perfetto.json` / `profile.json` at the
    /// end of a run.  `None` keeps everything in memory (summaries only).
    pub out_dir: Option<PathBuf>,
    /// Sampled per-phase wall-clock attribution of the cycle loop
    /// ([`profile::CycleProfiler`]); exported as `profile.json` and, when
    /// the event trace is also on, as Perfetto counter tracks.
    pub profile: bool,
}

impl TelemetryConfig {
    /// Is any instrument on?
    pub fn enabled(&self) -> bool {
        self.trace_events || self.sample_interval > 0 || self.profile
    }
}

/// One histogram, summarized for the end-of-run report.
#[derive(Clone, Debug)]
pub struct HistSummary {
    pub name: &'static str,
    pub count: u64,
    pub p50: u64,
    pub p99: u64,
    pub max: u64,
}

/// What a telemetry-enabled run produced (attached to the run result).
#[derive(Clone, Debug, Default)]
pub struct TelemetrySummary {
    pub events_total: u64,
    /// Event count per kind name, sorted by name.
    pub events_by_kind: Vec<(&'static str, u64)>,
    /// Rows captured by the interval sampler.
    pub samples: u64,
    pub histograms: Vec<HistSummary>,
    /// Files written (empty when `out_dir` was `None`).
    pub files: Vec<PathBuf>,
    /// Cycle-loop self-profile (`None` unless profiling was on).
    pub profile: Option<ProfileReport>,
}

impl TelemetrySummary {
    /// Count for one event kind (0 when absent).
    pub fn kind_count(&self, name: &str) -> u64 {
        self.events_by_kind
            .iter()
            .find(|(k, _)| *k == name)
            .map(|&(_, n)| n)
            .unwrap_or(0)
    }
}
