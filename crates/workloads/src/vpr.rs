//! `175.vpr` analog — placement cost evaluation with a serializing total.
//!
//! vpr's placement phase evaluates cell swaps: each evaluation reads a few
//! cell coordinates and net endpoints, computes a bounding-box cost delta
//! (an arithmetic-heavy, instruction-level-parallel computation), and folds
//! it into the running placement cost.  The paper parallelized these loops
//! (SPEC test input, 8.6% parallelized — the smallest fraction in Table 2)
//! and Figure 8 shows vpr *losing* performance as thread units are added:
//! the iterations are short, and the running-cost recurrence serializes
//! them, so superthreading overhead dominates.
//!
//! The analog reproduces exactly that: short bodies of ILP-rich arithmetic
//! over two cells and four net endpoints, with the running cost carried
//! across iterations through a **target store** (announced in TSAG,
//! released when the store executes) — the run-time dependence mechanism of
//! §2.2 — plus a long sequential annealing-bookkeeping phase.
//!
//! Table 1 transformations: statement reordering to increase overlap.

use wec_isa::reg::Reg;
use wec_isa::ProgramBuilder;

use crate::datagen::{permutation_cycle, rng_for};
use crate::harness::{
    counted_continuation, counted_exit, emit_chase_reduce, emit_checksum_reduce, emit_sta_loop,
    IND, INV, MY, T0, T1, T2, T3, T4, T5, T6, T7,
};
use crate::{Scale, Workload};
use rand::RngExt;

/// Cells on the placement grid (power of two).
const CELLS: usize = 2048;
/// Swap evaluations per pass (power of two).
const SWAPS: usize = 128;
/// Evaluations per parallel region.
const WINDOW: usize = 16;
/// Sequential annealing-bookkeeping chase (sized to Table 2's 8.6%
/// parallel fraction).
const ANNEAL_PERM: usize = 8192;
const ANNEAL_STEPS: i64 = 4096;
const ANNEAL_REPS: u32 = 5;

struct HostData {
    /// Packed (x, y) per cell: x in low 32 bits, y in high 32.
    cells: Vec<u64>,
    /// Swap candidates: cell index pairs.
    sa: Vec<u64>,
    sb: Vec<u64>,
    /// Four net-endpoint cell indices per swap.
    nets: Vec<u64>,
    /// Annealing-phase chase permutation.
    perm: Vec<u64>,
}

fn generate() -> HostData {
    let mut rng = rng_for("175.vpr", 13);
    let cells: Vec<u64> = (0..CELLS)
        .map(|_| {
            let x = rng.random_range(0..256u64);
            let y = rng.random_range(0..256u64);
            x | (y << 32)
        })
        .collect();
    let sa: Vec<u64> = (0..SWAPS)
        .map(|_| rng.random_range(0..CELLS as u64))
        .collect();
    let sb: Vec<u64> = (0..SWAPS)
        .map(|_| rng.random_range(0..CELLS as u64))
        .collect();
    let nets: Vec<u64> = (0..SWAPS * 4)
        .map(|_| rng.random_range(0..CELLS as u64))
        .collect();
    let perm = permutation_cycle(&mut rng, ANNEAL_PERM);
    HostData {
        cells,
        sa,
        sb,
        nets,
        perm,
    }
}

fn absdiff(a: u64, b: u64) -> u64 {
    a.abs_diff(b)
}

/// The swap-cost kernel both host and guest compute.
fn swap_cost(d: &HostData, s: usize) -> u64 {
    let ca = d.cells[d.sa[s] as usize];
    let cb = d.cells[d.sb[s] as usize];
    let (xa, ya) = (ca & 0xffff_ffff, ca >> 32);
    let (xb, yb) = (cb & 0xffff_ffff, cb >> 32);
    let mut cost = absdiff(xa, xb)
        .wrapping_mul(3)
        .wrapping_add(absdiff(ya, yb));
    for e in 0..4 {
        let cn = d.cells[d.nets[s * 4 + e] as usize];
        let (xn, yn) = (cn & 0xffff_ffff, cn >> 32);
        cost = cost
            .wrapping_add(absdiff(xa, xn))
            .wrapping_add(absdiff(yn, yb));
    }
    cost
}

/// Host reference: running total over swaps (the serializing recurrence),
/// per-pass checksum over the total and an annealing scan.
fn reference(d: &HostData, passes: u32) -> u64 {
    let mut check = 0u64;
    for pass in 0..passes {
        let mut total = pass as u64;
        for s in 0..SWAPS {
            total = total.wrapping_add(swap_cost(d, s));
        }
        check = crate::harness::checksum_reduce_reference(check, &[total]);
        check = crate::harness::chase_reduce_reference(check, &d.perm, ANNEAL_STEPS, ANNEAL_REPS);
    }
    check
}

pub fn build(scale: Scale) -> Workload {
    let passes = 2 * scale.units;
    let d = generate();
    let expected_check = reference(&d, passes);

    let mut b = ProgramBuilder::new("175.vpr");
    let cells = b.alloc_u64s(&d.cells);
    let sa = b.alloc_u64s(&d.sa);
    let sb = b.alloc_u64s(&d.sb);
    let nets = b.alloc_u64s(&d.nets);
    let total_cell = b.alloc_zeroed_u64s(1);
    let perm_scaled = crate::harness::scaled_perm(&d.perm);
    let perm_base = b.alloc_u64s(&perm_scaled);
    let _slack = b.alloc_bytes(16 * 1024, 64);
    let check = b.alloc_zeroed_u64s(1);

    let (cellr, sar, sbr, netr, totr, maskr, passr, winr, boundr, npassr) = (
        INV[0], INV[1], INV[2], INV[3], INV[4], INV[5], INV[6], INV[7], INV[8], INV[9],
    );
    b.la(cellr, cells);
    b.la(sar, sa);
    b.la(sbr, sb);
    b.la(netr, nets);
    b.la(totr, total_cell);
    let permr = Reg(26);
    b.la(permr, perm_base);
    b.li(maskr, (SWAPS - 1) as i64);
    b.li(npassr, passes as i64);
    b.li(passr, 0);

    // |a - b| into `dst` using `tmp` (dst != tmp, dst != b).
    fn emit_absdiff(b: &mut ProgramBuilder, dst: Reg, a: Reg, rhs: Reg, tmp: Reg, tag: &str) {
        b.sub(dst, a, rhs);
        b.bge(a, rhs, tag);
        b.sub(dst, rhs, a);
        b.label(tag);
        let _ = tmp;
    }

    b.label("vp_pass");
    // total = pass (sequential init of the recurrence cell)
    b.sd(passr, totr, 0);
    b.li(winr, 0);
    b.label("vp_win");
    b.slli(IND, winr, WINDOW.trailing_zeros() as i32);
    b.addi(boundr, IND, WINDOW as i32);
    emit_sta_loop(
        &mut b,
        "vp_r",
        1,
        &[IND],
        counted_continuation,
        |b| {
            // The running total is a cross-iteration dependence: announce it.
            b.tsannounce(totr, 0);
        },
        |b| {
            // The running total is read first: the whole evaluation
            // serializes on the upstream release, which is why vpr shows
            // the worst thread-level parallelism of the suite (Figure 8).
            b.ld(SC1, totr, 0); // waits for the upstream release
                                // s = my & mask
            b.and(T0, MY, maskr);
            // ca (T1), cb (T2)
            b.slli(T1, T0, 3);
            b.add(T2, sar, T1);
            b.ld(T2, T2, 0);
            b.slli(T2, T2, 3);
            b.add(T2, cellr, T2);
            b.ld(T1, T2, 0); // ca (reuse T1)
            b.slli(T2, T0, 3);
            b.add(T2, sbr, T2);
            b.ld(T2, T2, 0);
            b.slli(T2, T2, 3);
            b.add(T2, cellr, T2);
            b.ld(T2, T2, 0); // cb
                             // xa/ya, xb/yb
            b.srli(T3, T1, 32); // ya
            b.andi(T1, T1, -1); // xa = low 32: mask via shift pair
            b.slli(T1, T1, 32);
            b.srli(T1, T1, 32);
            b.srli(T4, T2, 32); // yb
            b.slli(T2, T2, 32);
            b.srli(T2, T2, 32); // xb
                                // cost = |xa-xb|*3 + |ya-yb|  (T5)
            emit_absdiff(b, T5, T1, T2, T6, "vp_ad0");
            b.slli(T6, T5, 1);
            b.add(T5, T5, T6);
            emit_absdiff(b, T6, T3, T4, T7, "vp_ad1");
            b.add(T5, T5, T6);
            // four net endpoints
            for e in 0..4 {
                b.slli(T6, T0, 5); // s*32
                b.add(T6, netr, T6);
                b.ld(T6, T6, 8 * e); // net cell index
                b.slli(T6, T6, 3);
                b.add(T6, cellr, T6);
                b.ld(T6, T6, 0); // cn
                b.srli(T7, T6, 32); // yn
                b.slli(T6, T6, 32);
                b.srli(T6, T6, 32); // xn
                emit_absdiff(b, SC0, T1, T6, SC1, &format!("vp_adx{e}"));
                b.add(T5, T5, SC0);
                emit_absdiff(b, SC0, T7, T4, SC1, &format!("vp_ady{e}"));
                b.add(T5, T5, SC0);
            }
            // total += cost  — the serializing target store.
            b.add(T6, SC1, T5);
            b.sd(T6, totr, 0); // releases downstream
        },
        counted_exit(boundr),
    );
    b.addi(winr, winr, 1);
    b.li(T0, (SWAPS / WINDOW) as i64);
    b.blt(winr, T0, "vp_win");
    // Sequential annealing bookkeeping: checksum the total, then chase the
    // bookkeeping permutation.
    emit_checksum_reduce(&mut b, "vp", totr, 1, check);
    emit_chase_reduce(&mut b, "vp_anneal", permr, ANNEAL_STEPS, ANNEAL_REPS, check);
    b.addi(passr, passr, 1);
    b.blt(passr, npassr, "vp_pass");
    b.halt();

    Workload {
        name: "175.vpr",
        suite: "SPEC2000/INT",
        input: "SPEC test",
        transforms: &["statement reordering"],
        program: b.build().unwrap(),
        check_addr: check,
        expected_check,
    }
}

const SC0: Reg = Reg(13);
const SC1: Reg = Reg(14);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_and_verify;
    use wec_core::config::ProcPreset;

    #[test]
    fn swap_cost_is_symmetric_in_magnitude() {
        let d = generate();
        // Not a deep property — just pin the kernel so accidental edits to
        // the guest code that diverge from the host reference are caught by
        // a cheap host-side canary too.
        let c0 = swap_cost(&d, 0);
        let c1 = swap_cost(&d, 1);
        assert_ne!(c0, c1);
    }

    #[test]
    fn self_check_passes_under_orig_and_wec() {
        let w = build(Scale::SMOKE);
        for preset in [ProcPreset::Orig, ProcPreset::WthWpWec] {
            run_and_verify(&w, preset.machine(4))
                .unwrap_or_else(|e| panic!("{}: {e}", preset.name()));
        }
    }
}
