//! The reorder buffer.
//!
//! Entries carry their operand values (renamed from the RAT at dispatch,
//! filled in by wakeup broadcasts), their computed result, and — for memory
//! operations — the effective address and issue state the load/store queue
//! logic in the core works on.  Entries are identified by monotonically
//! increasing sequence numbers, so age comparison is just `<`.

use std::collections::VecDeque;

use wec_common::ids::{Addr, Cycle};
use wec_isa::inst::Inst;

use crate::regs::Rat;

/// A renamed source operand.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SrcState {
    /// Value available.
    Ready(u64),
    /// Waiting on the ROB entry with this sequence number.
    Waiting(u64),
}

/// Pipeline stage of a ROB entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// Not yet issued (operands may still be pending).
    Waiting,
    /// In a functional unit or the memory system; completes at `done_at`.
    Executing,
    /// Result available; eligible for commit when it reaches the head.
    Done,
}

/// One in-flight instruction.
#[derive(Clone, Debug)]
pub struct RobEntry {
    pub seq: u64,
    pub pc: u32,
    pub inst: Inst,
    pub stage: Stage,
    pub srcs: [SrcState; 2],
    /// Register result (f64 as bits); for branches, unused.
    pub result: u64,
    pub done_at: Cycle,
    /// Effective address once computed (loads, stores, tsannounce).
    pub eff_addr: Option<Addr>,
    /// Store data value once known.
    pub store_data: Option<u64>,
    /// Load has been sent to the memory system (or forwarded).
    pub mem_issued: bool,
    /// Load was satisfied by store-to-load forwarding.
    pub forwarded: bool,
    /// Fetch-time prediction (conditional branches and `jr`).
    pub predicted_taken: bool,
    pub predicted_target: u32,
    /// Execute-time resolution (applied when the entry completes).
    pub resolved_taken: bool,
    pub resolved_target: u32,
    /// RAT snapshot for recovery (conditional branches and `jr`).
    pub checkpoint: Option<Box<Rat>>,
}

impl RobEntry {
    pub fn new(seq: u64, pc: u32, inst: Inst) -> Self {
        RobEntry {
            seq,
            pc,
            inst,
            stage: Stage::Waiting,
            srcs: [SrcState::Ready(0), SrcState::Ready(0)],
            result: 0,
            done_at: Cycle::ZERO,
            eff_addr: None,
            store_data: None,
            mem_issued: false,
            forwarded: false,
            predicted_taken: false,
            predicted_target: u32::MAX,
            resolved_taken: false,
            resolved_target: u32::MAX,
            checkpoint: None,
        }
    }

    /// Are all operands available?
    #[inline]
    pub fn srcs_ready(&self) -> bool {
        self.srcs
            .iter()
            .all(|s| matches!(s, SrcState::Ready(_)))
    }

    /// Value of source slot `i` (must be ready).
    #[inline]
    pub fn src_val(&self, i: usize) -> u64 {
        match self.srcs[i] {
            SrcState::Ready(v) => v,
            SrcState::Waiting(seq) => panic!("source {i} still waiting on #{seq}"),
        }
    }
}

/// The reorder buffer proper.
pub struct Rob {
    entries: VecDeque<RobEntry>,
    capacity: usize,
}

impl Rob {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1);
        Rob {
            entries: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Memory operations currently in flight (the LSQ occupancy).
    pub fn mem_count(&self) -> usize {
        self.entries.iter().filter(|e| e.inst.is_mem()).count()
    }

    pub fn push(&mut self, entry: RobEntry) {
        debug_assert!(!self.is_full());
        debug_assert!(self
            .entries
            .back()
            .map(|b| b.seq < entry.seq)
            .unwrap_or(true));
        self.entries.push_back(entry);
    }

    pub fn head(&self) -> Option<&RobEntry> {
        self.entries.front()
    }

    pub fn pop_head(&mut self) -> Option<RobEntry> {
        self.entries.pop_front()
    }

    pub fn get_mut(&mut self, seq: u64) -> Option<&mut RobEntry> {
        self.entries.iter_mut().find(|e| e.seq == seq)
    }

    /// Entry by position (0 = oldest). O(1).
    pub fn at(&self, idx: usize) -> &RobEntry {
        &self.entries[idx]
    }

    /// Mutable entry by position (0 = oldest). O(1).
    pub fn at_mut(&mut self, idx: usize) -> &mut RobEntry {
        &mut self.entries[idx]
    }

    pub fn iter(&self) -> impl Iterator<Item = &RobEntry> {
        self.entries.iter()
    }

    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut RobEntry> {
        self.entries.iter_mut()
    }

    /// Remove every entry younger than `seq` and return them oldest-first
    /// (misprediction recovery; the core sifts squashed loads for the
    /// wrong-path engine).
    pub fn squash_younger(&mut self, seq: u64) -> Vec<RobEntry> {
        let keep = self.entries.iter().take_while(|e| e.seq <= seq).count();
        self.entries.split_off(keep).into()
    }

    /// Drop everything (full flush).
    pub fn clear(&mut self) -> Vec<RobEntry> {
        std::mem::take(&mut self.entries).into()
    }

    /// Wakeup: deliver `value` from producer `seq` to every waiting source.
    pub fn broadcast(&mut self, seq: u64, value: u64) {
        for e in &mut self.entries {
            for s in &mut e.srcs {
                if *s == SrcState::Waiting(seq) {
                    *s = SrcState::Ready(value);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(seq: u64) -> RobEntry {
        RobEntry::new(seq, seq as u32, Inst::Nop)
    }

    #[test]
    fn fifo_order_and_capacity() {
        let mut rob = Rob::new(2);
        rob.push(entry(1));
        assert!(!rob.is_full());
        rob.push(entry(2));
        assert!(rob.is_full());
        assert_eq!(rob.head().unwrap().seq, 1);
        assert_eq!(rob.pop_head().unwrap().seq, 1);
        assert_eq!(rob.len(), 1);
    }

    #[test]
    fn broadcast_wakes_waiting_sources() {
        let mut rob = Rob::new(4);
        let mut e = entry(1);
        e.srcs = [SrcState::Waiting(7), SrcState::Ready(5)];
        rob.push(e);
        rob.broadcast(7, 99);
        let e = rob.head().unwrap();
        assert!(e.srcs_ready());
        assert_eq!(e.src_val(0), 99);
        assert_eq!(e.src_val(1), 5);
    }

    #[test]
    fn broadcast_ignores_other_producers() {
        let mut rob = Rob::new(4);
        let mut e = entry(1);
        e.srcs = [SrcState::Waiting(7), SrcState::Ready(0)];
        rob.push(e);
        rob.broadcast(8, 1);
        assert!(!rob.head().unwrap().srcs_ready());
    }

    #[test]
    fn squash_younger_splits_by_age() {
        let mut rob = Rob::new(8);
        for s in 1..=5 {
            rob.push(entry(s));
        }
        let squashed = rob.squash_younger(3);
        assert_eq!(squashed.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![4, 5]);
        assert_eq!(rob.len(), 3);
        assert_eq!(rob.iter().last().unwrap().seq, 3);
    }

    #[test]
    fn mem_count_tracks_lsq_occupancy() {
        use wec_isa::inst::{LoadKind, StoreKind};
        use wec_isa::reg::Reg;
        let mut rob = Rob::new(8);
        rob.push(entry(1));
        let mut l = entry(2);
        l.inst = Inst::Load {
            kind: LoadKind::D,
            rd: Reg(1),
            base: Reg(2),
            off: 0,
        };
        rob.push(l);
        let mut s = entry(3);
        s.inst = Inst::Store {
            kind: StoreKind::D,
            rs: Reg(1),
            base: Reg(2),
            off: 0,
        };
        rob.push(s);
        assert_eq!(rob.mem_count(), 2);
    }

    #[test]
    #[should_panic(expected = "still waiting")]
    fn src_val_panics_if_pending() {
        let mut e = entry(1);
        e.srcs[0] = SrcState::Waiting(9);
        e.src_val(0);
    }
}
