//! Register names for WISA-64.
//!
//! 32 integer registers (`r0` hardwired to zero) and 32 floating-point
//! registers.  The assembler also accepts conventional aliases (`zero`, `sp`,
//! `a0`…) mapped onto the numbered registers.

use std::fmt;

/// Number of integer registers.
pub const NUM_IREGS: usize = 32;
/// Number of floating-point registers.
pub const NUM_FREGS: usize = 32;

/// An integer register. `Reg(0)` always reads zero; writes to it are dropped.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u8);

impl Reg {
    pub const ZERO: Reg = Reg(0);
    /// Stack pointer by convention (`sp`).
    pub const SP: Reg = Reg(29);
    /// Link register written by `jal` (`ra`).
    pub const RA: Reg = Reg(31);

    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Parse `rN` or an alias. Returns `None` for anything else.
    pub fn parse(s: &str) -> Option<Reg> {
        match s {
            "zero" => return Some(Reg(0)),
            "sp" => return Some(Reg::SP),
            "ra" => return Some(Reg::RA),
            _ => {}
        }
        let n: u8 = s.strip_prefix('r')?.parse().ok()?;
        (n < NUM_IREGS as u8).then_some(Reg(n))
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A floating-point register holding an `f64`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FReg(pub u8);

impl FReg {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Parse `fN`.
    pub fn parse(s: &str) -> Option<FReg> {
        let n: u8 = s.strip_prefix('f')?.parse().ok()?;
        (n < NUM_FREGS as u8).then_some(FReg(n))
    }
}

impl fmt::Display for FReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

impl fmt::Debug for FReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_numbered() {
        assert_eq!(Reg::parse("r0"), Some(Reg(0)));
        assert_eq!(Reg::parse("r31"), Some(Reg(31)));
        assert_eq!(Reg::parse("r32"), None);
        assert_eq!(Reg::parse("x1"), None);
        assert_eq!(FReg::parse("f7"), Some(FReg(7)));
        assert_eq!(FReg::parse("f32"), None);
        assert_eq!(FReg::parse("r7"), None);
    }

    #[test]
    fn parse_aliases() {
        assert_eq!(Reg::parse("zero"), Some(Reg::ZERO));
        assert_eq!(Reg::parse("sp"), Some(Reg(29)));
        assert_eq!(Reg::parse("ra"), Some(Reg(31)));
    }

    #[test]
    fn display_roundtrips_through_parse() {
        for n in 0..NUM_IREGS as u8 {
            let r = Reg(n);
            assert_eq!(Reg::parse(&r.to_string()), Some(r));
        }
        for n in 0..NUM_FREGS as u8 {
            let r = FReg(n);
            assert_eq!(FReg::parse(&r.to_string()), Some(r));
        }
    }
}
