//! The bounded job queue between the acceptor and the worker pool.
//!
//! A plain `Mutex` + `Condvar` FIFO with a hard capacity:
//! [`JobQueue::push`] never blocks (a full queue is the `503` backpressure
//! signal, not a stall), [`JobQueue::pop`] blocks until work arrives or
//! the queue is closed.  Closing is how drain works: the acceptor closes
//! after the last job is accounted for, every worker drains what remains
//! and then sees `None`.
//!
//! When speculation is enabled ([`JobQueue::with_spec`]) the queue grows a
//! second, strictly lower-priority lane.  `pop` always prefers the demand
//! lane; the speculative lane is drained only when demand is empty *and*
//! fewer than `spec_budget` speculative jobs are currently running — so
//! prefetch work can never crowd demand out of the worker pool.  A demand
//! submission that finds its key already parked in the speculative lane
//! [`promote`](JobQueue::promote)s it into the demand lane in one lock
//! hold, which is how demand-vs-speculation races collapse to exactly one
//! execution.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

use crate::lock;

struct Inner {
    items: VecDeque<u64>,
    /// Low-priority speculative lane; always empty when speculation is off.
    spec: VecDeque<u64>,
    /// Speculative jobs currently held by workers (bounded by
    /// `spec_budget`).
    spec_running: usize,
    closed: bool,
}

/// Bounded multi-producer multi-consumer FIFO of job ids.
pub struct JobQueue {
    inner: Mutex<Inner>,
    ready: Condvar,
    cap: usize,
    spec_cap: usize,
    spec_budget: usize,
}

/// Why a push was refused.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PushError {
    /// At capacity — the caller should answer `503` with `Retry-After`.
    Full,
    /// Draining — no new work is accepted.
    Closed,
}

/// Which lane a [`JobQueue::pop`] drew from.  Workers must call
/// [`JobQueue::spec_done`] after finishing a `Spec` job to release its
/// slot in the in-flight speculation budget.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Popped {
    Demand(u64),
    Spec(u64),
}

impl Popped {
    pub fn id(self) -> u64 {
        match self {
            Popped::Demand(id) | Popped::Spec(id) => id,
        }
    }
}

/// Outcome of [`JobQueue::promote`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Promote {
    /// Moved from the speculative lane to the demand lane.
    Promoted,
    /// Found in the speculative lane but the demand lane is full; the job
    /// stays speculative and will run when an idle worker reaches it.
    LeftInSpec,
    /// Not queued speculatively (already popped, or never speculative).
    NotFound,
}

impl JobQueue {
    pub fn new(cap: usize) -> JobQueue {
        JobQueue::with_spec(cap, 0, 0)
    }

    /// A queue with a speculative lane of capacity `spec_cap`, at most
    /// `spec_budget` speculative jobs running at once.
    pub fn with_spec(cap: usize, spec_cap: usize, spec_budget: usize) -> JobQueue {
        JobQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                spec: VecDeque::new(),
                spec_running: 0,
                closed: false,
            }),
            ready: Condvar::new(),
            cap: cap.max(1),
            spec_cap,
            spec_budget,
        }
    }

    pub fn cap(&self) -> usize {
        self.cap
    }

    pub fn spec_cap(&self) -> usize {
        self.spec_cap
    }

    /// Demand-lane depth only, so backpressure and `/stats` are unchanged
    /// by speculation.
    pub fn depth(&self) -> usize {
        lock(&self.inner).items.len()
    }

    pub fn spec_depth(&self) -> usize {
        lock(&self.inner).spec.len()
    }

    /// Enqueue on the demand lane without blocking; on success returns the
    /// new demand depth.
    pub fn push(&self, id: u64) -> Result<usize, PushError> {
        let mut g = lock(&self.inner);
        if g.closed {
            return Err(PushError::Closed);
        }
        if g.items.len() >= self.cap {
            return Err(PushError::Full);
        }
        g.items.push_back(id);
        let depth = g.items.len();
        drop(g);
        self.ready.notify_one();
        Ok(depth)
    }

    /// Enqueue on the speculative lane without blocking.
    pub fn push_spec(&self, id: u64) -> Result<usize, PushError> {
        let mut g = lock(&self.inner);
        if g.closed {
            return Err(PushError::Closed);
        }
        if g.spec.len() >= self.spec_cap {
            return Err(PushError::Full);
        }
        g.spec.push_back(id);
        let depth = g.spec.len();
        drop(g);
        self.ready.notify_one();
        Ok(depth)
    }

    /// Dequeue, blocking until work is runnable.  Demand always wins; the
    /// speculative lane is served only when demand is empty and the
    /// in-flight speculation budget has room.  `None` once the queue is
    /// closed *and* both lanes are empty — the worker-pool shutdown
    /// signal.
    pub fn pop(&self) -> Option<Popped> {
        let mut g = lock(&self.inner);
        loop {
            if let Some(id) = g.items.pop_front() {
                return Some(Popped::Demand(id));
            }
            if g.spec_running < self.spec_budget {
                if let Some(id) = g.spec.pop_front() {
                    g.spec_running += 1;
                    return Some(Popped::Spec(id));
                }
            }
            if g.closed && g.spec.is_empty() {
                return None;
            }
            g = self.ready.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Release one slot of the in-flight speculation budget (a `Spec` pop
    /// finished executing).
    pub fn spec_done(&self) {
        let mut g = lock(&self.inner);
        g.spec_running = g.spec_running.saturating_sub(1);
        drop(g);
        self.ready.notify_all();
    }

    /// Move a still-queued speculative job to the demand lane (a demand
    /// submission claimed it).  One lock hold, so the job can never be
    /// popped twice.
    pub fn promote(&self, id: u64) -> Promote {
        let mut g = lock(&self.inner);
        let Some(pos) = g.spec.iter().position(|&x| x == id) else {
            return Promote::NotFound;
        };
        if g.items.len() >= self.cap {
            return Promote::LeftInSpec;
        }
        g.spec.remove(pos);
        g.items.push_back(id);
        drop(g);
        self.ready.notify_one();
        Promote::Promoted
    }

    /// Remove a still-queued speculative job (TTL reclamation / drain
    /// purge).  Returns false if it was already popped or promoted.
    pub fn remove_spec(&self, id: u64) -> bool {
        let mut g = lock(&self.inner);
        match g.spec.iter().position(|&x| x == id) {
            Some(pos) => {
                g.spec.remove(pos);
                true
            }
            None => false,
        }
    }

    /// Ids currently parked in the speculative lane, front first.
    pub fn spec_items(&self) -> Vec<u64> {
        lock(&self.inner).spec.iter().copied().collect()
    }

    /// Stop accepting pushes; wake every blocked popper.
    pub fn close(&self) {
        lock(&self.inner).closed = true;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_capacity() {
        let q = JobQueue::new(2);
        assert_eq!(q.push(1), Ok(1));
        assert_eq!(q.push(2), Ok(2));
        assert_eq!(q.push(3), Err(PushError::Full));
        assert_eq!(q.depth(), 2);
        assert_eq!(q.pop(), Some(Popped::Demand(1)));
        assert_eq!(q.push(3), Ok(2), "capacity freed by pop");
        assert_eq!(q.pop(), Some(Popped::Demand(2)));
        assert_eq!(q.pop(), Some(Popped::Demand(3)));
    }

    #[test]
    fn close_drains_then_releases_workers() {
        let q = std::sync::Arc::new(JobQueue::new(8));
        q.push(1).unwrap();
        q.close();
        assert_eq!(q.push(2), Err(PushError::Closed));
        assert_eq!(
            q.pop(),
            Some(Popped::Demand(1)),
            "closing never drops queued work"
        );
        assert_eq!(q.pop(), None);

        // A popper blocked before close wakes up with `None`.
        let q2 = q.clone();
        let h = std::thread::spawn(move || q2.pop());
        assert_eq!(h.join().unwrap(), None);
    }

    #[test]
    fn spec_lane_is_disabled_without_with_spec() {
        let q = JobQueue::new(4);
        assert_eq!(q.push_spec(9), Err(PushError::Full), "zero spec capacity");
        assert_eq!(q.spec_depth(), 0);
    }

    #[test]
    fn demand_always_preempts_the_spec_lane() {
        let q = JobQueue::with_spec(4, 4, 2);
        q.push_spec(100).unwrap();
        q.push_spec(101).unwrap();
        q.push(1).unwrap();
        assert_eq!(q.pop(), Some(Popped::Demand(1)), "demand first");
        assert_eq!(q.pop(), Some(Popped::Spec(100)));
        q.push(2).unwrap();
        assert_eq!(
            q.pop(),
            Some(Popped::Demand(2)),
            "demand preempts even with spec queued"
        );
        assert_eq!(q.pop(), Some(Popped::Spec(101)));
    }

    #[test]
    fn spec_budget_bounds_inflight_speculation() {
        let q = std::sync::Arc::new(JobQueue::with_spec(4, 4, 1));
        q.push_spec(100).unwrap();
        q.push_spec(101).unwrap();
        assert_eq!(q.pop(), Some(Popped::Spec(100)));
        // Budget exhausted: a blocked popper must not draw 101 until
        // spec_done, but a demand push still gets through.
        let q2 = q.clone();
        let h = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(30));
        q.push(1).unwrap();
        assert_eq!(h.join().unwrap(), Some(Popped::Demand(1)));
        let q3 = q.clone();
        let h = std::thread::spawn(move || q3.pop());
        std::thread::sleep(std::time::Duration::from_millis(30));
        q.spec_done();
        assert_eq!(h.join().unwrap(), Some(Popped::Spec(101)));
    }

    #[test]
    fn promote_moves_spec_work_to_the_demand_lane_once() {
        let q = JobQueue::with_spec(1, 4, 1);
        q.push_spec(100).unwrap();
        q.push_spec(101).unwrap();
        assert_eq!(q.promote(100), Promote::Promoted);
        assert_eq!(q.promote(100), Promote::NotFound, "already promoted");
        assert_eq!(q.promote(101), Promote::LeftInSpec, "demand lane full");
        assert_eq!(q.pop(), Some(Popped::Demand(100)));
        assert_eq!(q.pop(), Some(Popped::Spec(101)));
        assert_eq!(q.promote(101), Promote::NotFound, "already popped");
    }

    #[test]
    fn remove_spec_reclaims_queued_speculation() {
        let q = JobQueue::with_spec(4, 4, 1);
        q.push_spec(100).unwrap();
        q.push_spec(101).unwrap();
        assert_eq!(q.spec_items(), vec![100, 101]);
        assert!(q.remove_spec(100));
        assert!(!q.remove_spec(100), "second reclaim is a no-op");
        assert_eq!(q.spec_depth(), 1);
        assert_eq!(q.pop(), Some(Popped::Spec(101)));
    }

    #[test]
    fn close_drains_the_spec_lane_too() {
        let q = JobQueue::with_spec(4, 4, 2);
        q.push_spec(100).unwrap();
        q.close();
        assert_eq!(q.push_spec(101), Err(PushError::Closed));
        assert_eq!(q.pop(), Some(Popped::Spec(100)));
        assert_eq!(q.pop(), None);
    }
}
