//! Regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! experiments [--scale N] [--only figNN|tableN] [--csv] [--no-cache]
//! ```
//!
//! Results are memoized on disk (default `target/wec-result-cache`,
//! override with `WEC_RESULT_CACHE`), so a rerun at the same scale and
//! simulator revision replays from the store.  `--no-cache` neither reads
//! nor writes the store.

use wec_bench::experiments;

type TableFn = Box<dyn Fn(&Runner) -> wec_common::table::Table>;
use wec_bench::runner::{Runner, Suite};
use wec_workloads::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::PAPER;
    let mut only: Option<String> = None;
    let mut csv = false;
    let mut no_cache = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                scale = Scale {
                    units: it.next().and_then(|s| s.parse().ok()).expect("--scale N"),
                }
            }
            "--only" => only = it.next().cloned(),
            "--csv" => csv = true,
            "--no-cache" => no_cache = true,
            other => panic!("unknown argument {other:?}"),
        }
    }

    eprintln!(
        "building the workload suite (scale units = {})…",
        scale.units
    );
    let t0 = std::time::Instant::now();
    let suite = Suite::build(scale);
    eprintln!(
        "built in {:.1}s; running experiments…",
        t0.elapsed().as_secs_f64()
    );
    let runner = if no_cache {
        Runner::without_disk_cache(&suite)
    } else {
        Runner::new(&suite)
    };
    if let Some(dir) = runner.disk_dir() {
        eprintln!("result cache: {}", dir.display());
    }

    let selected: Vec<(&str, TableFn)> = vec![
        (
            "table1",
            Box::new(|r: &Runner| experiments::table1(r.suite())),
        ),
        ("table2", Box::new(experiments::table2)),
        ("table3", Box::new(|_r: &Runner| experiments::table3())),
        ("fig08", Box::new(experiments::fig08)),
        ("fig09", Box::new(experiments::fig09)),
        ("fig10", Box::new(experiments::fig10)),
        ("fig11", Box::new(experiments::fig11)),
        ("fig12", Box::new(experiments::fig12)),
        ("fig13", Box::new(experiments::fig13)),
        ("fig14", Box::new(experiments::fig14)),
        ("fig15", Box::new(experiments::fig15)),
        ("fig16", Box::new(experiments::fig16)),
        ("fig17", Box::new(experiments::fig17)),
        (
            "ablation_mem_latency",
            Box::new(wec_bench::ablations::memory_latency),
        ),
        (
            "ablation_block_size",
            Box::new(wec_bench::ablations::block_size),
        ),
        (
            "ablation_bpred",
            Box::new(wec_bench::ablations::branch_prediction),
        ),
    ];

    for (name, f) in &selected {
        if let Some(filter) = &only {
            if !name.contains(filter.as_str()) {
                continue;
            }
        }
        let t = std::time::Instant::now();
        let table = f(&runner);
        if csv {
            println!("# {name}");
            print!("{}", table.to_csv());
        } else {
            print!("{}", table.render());
        }
        eprintln!(
            "[{name}: {:.1}s, {} simulations cached]",
            t.elapsed().as_secs_f64(),
            runner.simulations()
        );
        println!();
    }
    eprintln!(
        "total {:.1}s, {} distinct simulations",
        t0.elapsed().as_secs_f64(),
        runner.simulations()
    );
}
