//! The experiment harness: regenerates every table and figure of the
//! paper's evaluation section (§5) from the simulator.
//!
//! * [`runner`] — workload suite construction, a configuration key that
//!   spans every parameter the paper sweeps, and a cached, host-parallel
//!   simulation runner (every run is guarded by the workload self-check);
//! * [`experiments`] — one function per table/figure, each returning a
//!   [`wec_common::table::Table`] whose rows mirror the paper's plots;
//! * [`ablations`] — the §7 future-work sensitivity studies (memory
//!   latency, block size, branch prediction accuracy);
//! * [`progress`] — sweep observability: `progress.jsonl` streaming, a live
//!   status line, and the `run.json` manifest;
//! * [`diff`] — metric-drift detection between two runs (the `metricsdiff`
//!   binary's engine);
//! * [`tracerun`] — trace capture and trace-driven replay sweeps (the
//!   `--capture-trace` / `--replay-trace` modes);
//! * [`store`] — atomic publish protocol for the shared persistent result
//!   store (safe under concurrent sweeps and the serve daemon).
//!
//! `cargo run --release -p wec-bench --bin experiments` prints everything;
//! the Criterion benches under `benches/` regenerate individual figures.

pub mod ablations;
pub mod diff;
pub mod experiments;
pub mod progress;
pub mod runner;
pub mod store;
pub mod tracerun;

pub use diff::{diff, DiffReport, MetricSet, Policy};
pub use progress::Progress;
pub use runner::{CacheSource, CfgKey, RunObserver, Runner, Suite};
