//! Stress/race regression test for parallel replay memoization: several
//! threads sweep *overlapping* point sets against one shared [`TraceSlab`]
//! and one result store directory.  Racing threads must never tear a memo
//! entry (the store's atomic temp+rename publish), every thread must see
//! identical counters for every point, and each point must end up stored
//! exactly once — the same guarantee the store's two-writer unit test
//! proves at the file layer, here exercised through the whole replay path.

use std::collections::BTreeMap;

use wec_bench::tracerun::{capture_key, replay_point, sweep_keys};
use wec_trace::{capture_run, CaptureMeta, TraceSlab};
use wec_workloads::{Bench, Scale};

/// Labelled counter subsets one thread observed, in replay order.
type ThreadResults = Vec<(String, Vec<(String, u64)>)>;

#[test]
fn overlapping_sweeps_share_one_store_without_tearing() {
    let w = Bench::Gzip.build(Scale::SMOKE);
    let base = capture_key();
    let meta = CaptureMeta {
        bench: w.name.to_string(),
        scale_units: Scale::SMOKE.units,
        cfg_label: base.label(),
    };
    let (_full, trace) = capture_run(&w, base.build(), &meta).unwrap();
    let slab = TraceSlab::build(&trace, 4).unwrap();

    // A small overlapping point set: every thread replays all of it, but
    // rotated to a different starting offset, so at any moment several
    // threads race on the same memo key while others race on different
    // ones — reads, replays, and atomic publishes interleave freely.
    let keys: Vec<_> = sweep_keys().into_iter().take(8).collect();
    let dir = std::env::temp_dir().join(format!("wec-replay-race-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();

    const THREADS: usize = 4;
    let per_thread: Vec<ThreadResults> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let (slab, keys, dir) = (&slab, &keys, &dir);
                s.spawn(move || {
                    (0..keys.len())
                        .map(|i| {
                            let key = keys[(i + t) % keys.len()];
                            (key.label(), replay_point(slab, key, Some(dir)).0)
                        })
                        .collect()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Every thread observed identical counters for every point — a torn
    // or interleaved memo entry would parse into a divergent subset.
    let mut agreed: BTreeMap<String, Vec<(String, u64)>> = BTreeMap::new();
    for results in &per_thread {
        for (label, subset) in results {
            assert!(!subset.is_empty(), "{label}: empty counter subset");
            match agreed.get(label) {
                None => {
                    agreed.insert(label.clone(), subset.clone());
                }
                Some(first) => assert_eq!(first, subset, "{label}: threads disagree"),
            }
        }
    }
    assert_eq!(agreed.len(), keys.len());

    // Each point stored exactly once, no temp litter left behind.
    let mut stored: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    stored.sort();
    assert_eq!(
        stored.len(),
        keys.len(),
        "expected one .kv per point, found {stored:?}"
    );
    for name in &stored {
        assert!(
            name.starts_with("trace_") && name.ends_with(".kv"),
            "unexpected store entry {name:?}"
        );
    }

    // Warm reload: the published entries answer every point without a
    // replay, byte-identical to what the racing threads computed.
    for key in &keys {
        let (subset, cold) = replay_point(&slab, *key, Some(&dir));
        assert!(!cold, "{}: store entry not reused", key.label());
        assert_eq!(&subset, &agreed[&key.label()]);
    }
    std::fs::remove_dir_all(&dir).ok();
}
