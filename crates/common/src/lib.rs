//! Shared infrastructure for the WEC superthreaded-architecture simulator.
//!
//! This crate deliberately has no dependencies: it provides the small, widely
//! shared vocabulary the rest of the workspace is written in terms of —
//! typed identifiers ([`ids`]), statistics counters ([`stats`]), deterministic
//! pseudo-random numbers ([`rng`]), plain-text table rendering for the
//! experiment harness ([`table`]) and the common error type ([`error`]).

pub mod error;
pub mod ids;
pub mod rng;
pub mod stats;
pub mod table;

pub use error::SimError;
pub use ids::{Addr, Cycle, ThreadId, TuId};
pub use rng::SplitMix64;
