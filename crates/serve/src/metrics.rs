//! Serve-layer metrics: per-endpoint HTTP counters and latency histograms,
//! plus the `GET /metrics` Prometheus-style text exposition.
//!
//! Two sources feed one page.  Job/queue/worker counters come from
//! [`StatsSnapshot`] — the same single-mutex snapshot behind `GET /stats`,
//! so `/metrics` and `stats.json` reconcile *exactly* (cold + disk + mem ==
//! completed in every scrape; CI asserts it).  HTTP request counts and
//! latency live here, in [`ServeMetrics`]: one short-held mutex around a
//! small vector of `(endpoint, status) → count` cells and one
//! [`Log2Histogram`] per endpoint — the same telemetry histograms the
//! simulator uses for load-to-fill latencies, so client (loadgen) and
//! server distributions are directly comparable bucket for bucket.
//!
//! The exposition follows the Prometheus text format: `# HELP`/`# TYPE`
//! headers, `_total` counters, gauges, and log2 histograms rendered as
//! cumulative `_bucket{le="..."}` series where `le` is the largest value a
//! log2 bucket can hold (`2^i − 1`), finished by `+Inf`, `_sum` and
//! `_count`.

use std::fmt::Write as _;
use std::sync::Mutex;

use wec_telemetry::hist::Log2Histogram;

use crate::lock;
use crate::state::StatsSnapshot;

/// Endpoint label values, fixed and finite so the exposition can never
/// grow unbounded label cardinality from hostile paths.
pub const ENDPOINTS: &[&str] = &[
    "submit",
    "job",
    "job_result",
    "job_events",
    "job_attribution",
    "stats",
    "healthz",
    "metrics",
    "dashboard",
    "dashboard_data",
    "shutdown",
    "hint",
    "other",
];

/// Map a request path to its endpoint label index in [`ENDPOINTS`].
/// Unknown paths all fold into `other` (bounded cardinality).
pub fn endpoint_index(path: &str) -> usize {
    let label = match path {
        "/jobs" => "submit",
        "/stats" => "stats",
        "/healthz" => "healthz",
        "/metrics" => "metrics",
        "/dashboard" => "dashboard",
        "/dashboard/data" => "dashboard_data",
        "/shutdown" => "shutdown",
        "/hints" => "hint",
        p => match p.strip_prefix("/jobs/") {
            Some(rest) => match rest.split_once('/').map(|(_, sub)| sub) {
                None => "job",
                Some("result.kv") => "job_result",
                Some("events") => "job_events",
                Some("attribution") => "job_attribution",
                Some(_) => "other",
            },
            None => "other",
        },
    };
    ENDPOINTS.iter().position(|e| *e == label).unwrap_or(0)
}

/// Job-duration source labels (`wec_bench::CacheSource` names plus the
/// speculation subsystem's `spec` — speculative executions and
/// speculative warm answers).
const JOB_SOURCES: &[&str] = &["cold", "disk", "mem", "spec"];

fn source_index(source: &str) -> usize {
    JOB_SOURCES.iter().position(|s| *s == source).unwrap_or(0)
}

struct MetricsInner {
    /// `(endpoint index, status, count)` cells, created on first use.  A
    /// linear scan over at most |ENDPOINTS| × |distinct statuses| entries —
    /// a handful — beats a map here.
    requests: Vec<(usize, u16, u64)>,
    /// Response latency per endpoint, microseconds.
    latency_us: Vec<Log2Histogram>,
    /// Submit-to-claim wait per cold job, milliseconds.
    queue_wait_ms: Log2Histogram,
    /// Execution duration per completed job, by cache source, milliseconds.
    job_dur_ms: Vec<Log2Histogram>,
}

/// The HTTP/latency side of the serve metrics (job counters live in
/// `ServerState::counts`; see the module docs for why).
pub struct ServeMetrics {
    inner: Mutex<MetricsInner>,
}

impl Default for ServeMetrics {
    fn default() -> ServeMetrics {
        ServeMetrics {
            inner: Mutex::new(MetricsInner {
                requests: Vec::new(),
                latency_us: vec![Log2Histogram::new(); ENDPOINTS.len()],
                queue_wait_ms: Log2Histogram::new(),
                job_dur_ms: vec![Log2Histogram::new(); JOB_SOURCES.len()],
            }),
        }
    }
}

/// One endpoint's latency digest for `GET /dashboard/data`.
pub struct EndpointLatency {
    pub endpoint: &'static str,
    pub count: u64,
    pub mean_us: f64,
    pub p50_us: u64,
    pub p99_us: u64,
    pub max_us: u64,
    /// `(bucket floor, count)` pairs, non-empty buckets only.
    pub buckets: Vec<(u64, u64)>,
}

impl ServeMetrics {
    pub fn new() -> ServeMetrics {
        ServeMetrics::default()
    }

    /// Count one answered request and its wall latency.
    pub fn observe_request(&self, endpoint: usize, status: u16, dur_us: u64) {
        let endpoint = endpoint.min(ENDPOINTS.len() - 1);
        let mut g = lock(&self.inner);
        match g
            .requests
            .iter_mut()
            .find(|(e, s, _)| *e == endpoint && *s == status)
        {
            Some(cell) => cell.2 += 1,
            None => g.requests.push((endpoint, status, 1)),
        }
        g.latency_us[endpoint].observe(dur_us);
    }

    /// Record how long a cold job sat queued before a worker claimed it.
    pub fn observe_queue_wait(&self, wait_ms: u64) {
        lock(&self.inner).queue_wait_ms.observe(wait_ms);
    }

    /// Record one completed job's execution duration by cache source.
    pub fn observe_job(&self, source: &str, dur_ms: u64) {
        let mut g = lock(&self.inner);
        g.job_dur_ms[source_index(source)].observe(dur_ms);
    }

    /// Mean execution milliseconds across every observed job, all sources
    /// (the `Retry-After` fallback when the sampler has no rate yet).
    pub fn mean_job_duration_ms(&self) -> f64 {
        let g = lock(&self.inner);
        let (mut sum, mut count) = (0u64, 0u64);
        for h in &g.job_dur_ms {
            sum += h.sum();
            count += h.count();
        }
        if count == 0 {
            0.0
        } else {
            sum as f64 / count as f64
        }
    }

    /// Total requests answered (all endpoints, all statuses).
    pub fn requests_total(&self) -> u64 {
        lock(&self.inner).requests.iter().map(|(_, _, n)| n).sum()
    }

    /// Per-endpoint latency digests for the dashboard, ordered as
    /// [`ENDPOINTS`], endpoints that saw no traffic skipped.
    pub fn endpoint_latencies(&self) -> Vec<EndpointLatency> {
        let g = lock(&self.inner);
        ENDPOINTS
            .iter()
            .enumerate()
            .filter(|(i, _)| !g.latency_us[*i].is_empty())
            .map(|(i, name)| {
                let h = &g.latency_us[i];
                EndpointLatency {
                    endpoint: name,
                    count: h.count(),
                    mean_us: h.mean(),
                    p50_us: h.quantile(0.5),
                    p99_us: h.quantile(0.99),
                    max_us: h.max(),
                    buckets: h
                        .buckets()
                        .iter()
                        .enumerate()
                        .filter(|(_, &n)| n > 0)
                        .map(|(b, &n)| (Log2Histogram::bucket_floor(b), n))
                        .collect(),
                }
            })
            .collect()
    }

    /// The full `GET /metrics` page for one stats snapshot.  A configured
    /// `backend_id` leads the page as an info-style gauge so a router
    /// aggregating N backends can attribute every scrape; `None` keeps the
    /// page byte-identical to a single-node build.
    pub fn render_prometheus(&self, snap: &StatsSnapshot, backend_id: Option<&str>) -> String {
        let mut out = String::with_capacity(4096);

        if let Some(b) = backend_id {
            gauge_help(
                &mut out,
                "wec_serve_backend_info",
                "Static backend identity for aggregated scrapes (value always 1).",
            );
            let _ = writeln!(out, "wec_serve_backend_info{{backend=\"{b}\"}} 1");
        }
        gauge_help(
            &mut out,
            "wec_serve_uptime_seconds",
            "Seconds since the daemon started.",
        );
        let _ = writeln!(
            out,
            "wec_serve_uptime_seconds {}",
            fmt_f64(snap.uptime_ms as f64 / 1000.0)
        );
        gauge_help(
            &mut out,
            "wec_serve_workers",
            "Configured simulation worker threads.",
        );
        let _ = writeln!(out, "wec_serve_workers {}", snap.workers);
        gauge_help(
            &mut out,
            "wec_serve_busy_workers",
            "Workers currently executing a job.",
        );
        let _ = writeln!(out, "wec_serve_busy_workers {}", snap.busy);
        gauge_help(
            &mut out,
            "wec_serve_draining",
            "1 once graceful drain has begun, else 0.",
        );
        let _ = writeln!(
            out,
            "wec_serve_draining {}",
            if snap.draining { 1 } else { 0 }
        );
        gauge_help(&mut out, "wec_serve_queue_depth", "Jobs waiting in queue.");
        let _ = writeln!(out, "wec_serve_queue_depth {}", snap.queue_depth);
        gauge_help(
            &mut out,
            "wec_serve_queue_cap",
            "Queue capacity (full queue answers 503).",
        );
        let _ = writeln!(out, "wec_serve_queue_cap {}", snap.queue_cap);
        gauge_help(
            &mut out,
            "wec_serve_outstanding_jobs",
            "Jobs accepted and not yet terminal.",
        );
        let _ = writeln!(out, "wec_serve_outstanding_jobs {}", snap.outstanding);

        counter_help(
            &mut out,
            "wec_serve_jobs_submitted_total",
            "Job submissions accepted (including deduplicated ones).",
        );
        let _ = writeln!(out, "wec_serve_jobs_submitted_total {}", snap.submitted);
        counter_help(
            &mut out,
            "wec_serve_jobs_deduped_total",
            "Submissions answered by an already in-flight identical job.",
        );
        let _ = writeln!(out, "wec_serve_jobs_deduped_total {}", snap.deduped);
        counter_help(
            &mut out,
            "wec_serve_jobs_completed_total",
            "Jobs completed, by cache source (sums to jobs completed).",
        );
        let _ = writeln!(
            out,
            "wec_serve_jobs_completed_total{{source=\"cold\"}} {}",
            snap.cold
        );
        let _ = writeln!(
            out,
            "wec_serve_jobs_completed_total{{source=\"disk\"}} {}",
            snap.disk_hits
        );
        let _ = writeln!(
            out,
            "wec_serve_jobs_completed_total{{source=\"mem\"}} {}",
            snap.mem_hits
        );
        if let Some(sp) = &snap.spec {
            // Demand answered synchronously from a speculatively parked
            // result; keeps the by-source split summing to `completed`.
            let _ = writeln!(
                out,
                "wec_serve_jobs_completed_total{{source=\"spec\"}} {}",
                sp.warm_hits
            );
        }
        counter_help(
            &mut out,
            "wec_serve_jobs_failed_total",
            "Jobs that ended in a failure record.",
        );
        let _ = writeln!(out, "wec_serve_jobs_failed_total {}", snap.failed);
        counter_help(
            &mut out,
            "wec_serve_jobs_rejected_total",
            "Submissions refused with 503 (queue full or draining).",
        );
        let _ = writeln!(out, "wec_serve_jobs_rejected_total {}", snap.rejected);
        counter_help(
            &mut out,
            "wec_serve_worker_busy_ms_total",
            "Total worker-occupied milliseconds (utilization numerator).",
        );
        let _ = writeln!(out, "wec_serve_worker_busy_ms_total {}", snap.busy_ms);
        counter_help(
            &mut out,
            "wec_serve_sim_cycles_total",
            "Simulated cycles across all completed jobs.",
        );
        let _ = writeln!(out, "wec_serve_sim_cycles_total {}", snap.sim_cycles);

        // Speculation-ledger aggregates.  Always rendered (zero with
        // attribution off) so scrapers see a stable series set; the four
        // outcome counters plus still_resident sum to the fill counter in
        // every scrape — the ledger's conservation law, aggregated.
        counter_help(
            &mut out,
            "wec_serve_attr_fills_total",
            "Side-structure fills observed by attribution-enabled jobs.",
        );
        let _ = writeln!(out, "wec_serve_attr_fills_total {}", snap.attr_fills);
        counter_help(
            &mut out,
            "wec_serve_attr_useful_total",
            "Speculative fills later hit by a correct-path access.",
        );
        let _ = writeln!(out, "wec_serve_attr_useful_total {}", snap.attr_useful);
        counter_help(
            &mut out,
            "wec_serve_attr_wasted_total",
            "Speculative fills evicted or squashed before any correct-path hit.",
        );
        let _ = writeln!(out, "wec_serve_attr_wasted_total {}", snap.attr_wasted);
        counter_help(
            &mut out,
            "wec_serve_attr_victim_rescued_total",
            "Victim transfers re-referenced from the side structure.",
        );
        let _ = writeln!(
            out,
            "wec_serve_attr_victim_rescued_total {}",
            snap.attr_victim_rescued
        );
        counter_help(
            &mut out,
            "wec_serve_attr_still_resident_total",
            "Side-structure lines still live at the end of their job.",
        );
        let _ = writeln!(
            out,
            "wec_serve_attr_still_resident_total {}",
            snap.attr_still_resident
        );

        // Speculative-prefetch accounting, only with --speculate (a
        // speculation-free daemon's page stays byte-identical).  The four
        // counters plus the pending gauge conserve in every scrape:
        // hit + waste + cancelled + pending == started.
        if let Some(sp) = &snap.spec {
            counter_help(
                &mut out,
                "wec_serve_spec_started_total",
                "Speculative jobs the predictor enqueued.",
            );
            let _ = writeln!(out, "wec_serve_spec_started_total {}", sp.started);
            counter_help(
                &mut out,
                "wec_serve_spec_hit_total",
                "Speculations claimed by a matching demand submission.",
            );
            let _ = writeln!(out, "wec_serve_spec_hit_total {}", sp.hit);
            counter_help(
                &mut out,
                "wec_serve_spec_miss_total",
                "Cold demand submissions the predictor failed to anticipate.",
            );
            let _ = writeln!(out, "wec_serve_spec_miss_total {}", sp.miss);
            counter_help(
                &mut out,
                "wec_serve_spec_waste_total",
                "Speculative results that expired unclaimed.",
            );
            let _ = writeln!(out, "wec_serve_spec_waste_total {}", sp.waste);
            counter_help(
                &mut out,
                "wec_serve_spec_cancelled_total",
                "Speculations reclaimed before producing a served result.",
            );
            let _ = writeln!(out, "wec_serve_spec_cancelled_total {}", sp.cancelled);
            gauge_help(
                &mut out,
                "wec_serve_spec_pending",
                "Started speculations not yet hit, wasted, or cancelled.",
            );
            let _ = writeln!(out, "wec_serve_spec_pending {}", sp.pending);
            gauge_help(
                &mut out,
                "wec_serve_spec_queue_depth",
                "Jobs waiting in the low-priority speculative lane.",
            );
            let _ = writeln!(out, "wec_serve_spec_queue_depth {}", sp.queue_depth);
            gauge_help(
                &mut out,
                "wec_serve_spec_queue_cap",
                "Speculative lane capacity.",
            );
            let _ = writeln!(out, "wec_serve_spec_queue_cap {}", sp.queue_cap);
        }

        let g = lock(&self.inner);
        counter_help(
            &mut out,
            "wec_serve_http_requests_total",
            "HTTP requests answered, by endpoint and status.",
        );
        // Cells accrue in first-seen order; sort for a stable page.
        let mut cells = g.requests.clone();
        cells.sort_unstable();
        for (e, status, n) in &cells {
            let _ = writeln!(
                out,
                "wec_serve_http_requests_total{{endpoint=\"{}\",status=\"{status}\"}} {n}",
                ENDPOINTS[*e]
            );
        }

        histogram_help(
            &mut out,
            "wec_serve_http_request_duration_us",
            "Request wall time in microseconds, by endpoint.",
        );
        for (i, name) in ENDPOINTS.iter().enumerate() {
            let h = &g.latency_us[i];
            if h.is_empty() {
                continue;
            }
            write_hist_series(
                &mut out,
                "wec_serve_http_request_duration_us",
                &format!("endpoint=\"{name}\""),
                h,
            );
        }

        histogram_help(
            &mut out,
            "wec_serve_queue_wait_ms",
            "Milliseconds a cold job sat queued before a worker claimed it.",
        );
        if !g.queue_wait_ms.is_empty() {
            write_hist_series(&mut out, "wec_serve_queue_wait_ms", "", &g.queue_wait_ms);
        }

        histogram_help(
            &mut out,
            "wec_serve_job_duration_ms",
            "Completed-job execution milliseconds, by cache source.",
        );
        for (i, name) in JOB_SOURCES.iter().enumerate() {
            let h = &g.job_dur_ms[i];
            if h.is_empty() {
                continue;
            }
            write_hist_series(
                &mut out,
                "wec_serve_job_duration_ms",
                &format!("source=\"{name}\""),
                h,
            );
        }
        out
    }
}

/// Format a float for the exposition: plain decimal, never NaN/inf.
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "0".to_string()
    }
}

fn counter_help(out: &mut String, name: &str, help: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} counter");
}

fn gauge_help(out: &mut String, name: &str, help: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} gauge");
}

fn histogram_help(out: &mut String, name: &str, help: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} histogram");
}

/// One labelled histogram as cumulative Prometheus `_bucket` series.  Each
/// occupied log2 bucket contributes a `le` at the largest value it can
/// hold (`2^i − 1`); `+Inf`, `_sum` and `_count` close the family.
fn write_hist_series(out: &mut String, name: &str, labels: &str, h: &Log2Histogram) {
    let mut cumulative = 0u64;
    for (i, &n) in h.buckets().iter().enumerate() {
        if n == 0 {
            continue;
        }
        cumulative += n;
        // Largest value bucket i can hold: 2^i − 1 (bucket 0 holds only 0).
        let le = if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i).wrapping_sub(1)
        };
        let sep = if labels.is_empty() { "" } else { "," };
        let _ = writeln!(
            out,
            "{name}_bucket{{{labels}{sep}le=\"{le}\"}} {cumulative}"
        );
    }
    let sep = if labels.is_empty() { "" } else { "," };
    let _ = writeln!(
        out,
        "{name}_bucket{{{labels}{sep}le=\"+Inf\"}} {cumulative}"
    );
    let brace = if labels.is_empty() {
        String::new()
    } else {
        format!("{{{labels}}}")
    };
    let _ = writeln!(out, "{name}_sum{brace} {}", h.sum());
    let _ = writeln!(out, "{name}_count{brace} {}", h.count());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap() -> StatsSnapshot {
        StatsSnapshot {
            uptime_ms: 2500,
            workers: 4,
            busy: 2,
            busy_ms: 1200,
            draining: false,
            queue_depth: 1,
            queue_cap: 64,
            outstanding: 3,
            submitted: 10,
            deduped: 2,
            completed: 7,
            failed: 1,
            rejected: 0,
            cold: 4,
            disk_hits: 1,
            mem_hits: 2,
            sim_cycles: 123456,
            attr_fills: 10,
            attr_useful: 4,
            attr_wasted: 5,
            attr_victim_rescued: 1,
            attr_still_resident: 0,
            spec: None,
        }
    }

    #[test]
    fn endpoints_classify_without_unbounded_labels() {
        assert_eq!(ENDPOINTS[endpoint_index("/jobs")], "submit");
        assert_eq!(ENDPOINTS[endpoint_index("/jobs/17")], "job");
        assert_eq!(
            ENDPOINTS[endpoint_index("/jobs/17/result.kv")],
            "job_result"
        );
        assert_eq!(ENDPOINTS[endpoint_index("/jobs/17/events")], "job_events");
        assert_eq!(
            ENDPOINTS[endpoint_index("/jobs/17/attribution")],
            "job_attribution"
        );
        assert_eq!(ENDPOINTS[endpoint_index("/jobs/17/bogus")], "other");
        assert_eq!(ENDPOINTS[endpoint_index("/stats")], "stats");
        assert_eq!(ENDPOINTS[endpoint_index("/healthz")], "healthz");
        assert_eq!(ENDPOINTS[endpoint_index("/metrics")], "metrics");
        assert_eq!(ENDPOINTS[endpoint_index("/dashboard")], "dashboard");
        assert_eq!(
            ENDPOINTS[endpoint_index("/dashboard/data")],
            "dashboard_data"
        );
        assert_eq!(ENDPOINTS[endpoint_index("/shutdown")], "shutdown");
        assert_eq!(ENDPOINTS[endpoint_index("/etc/passwd")], "other");
        assert_eq!(ENDPOINTS[endpoint_index("/")], "other");
    }

    #[test]
    fn exposition_counters_match_the_snapshot_exactly() {
        let m = ServeMetrics::new();
        m.observe_request(endpoint_index("/stats"), 200, 120);
        m.observe_request(endpoint_index("/stats"), 200, 80);
        m.observe_request(endpoint_index("/jobs"), 503, 40);
        let page = m.render_prometheus(&snap(), None);
        for needle in [
            "wec_serve_jobs_submitted_total 10\n",
            "wec_serve_jobs_deduped_total 2\n",
            "wec_serve_jobs_completed_total{source=\"cold\"} 4\n",
            "wec_serve_jobs_completed_total{source=\"disk\"} 1\n",
            "wec_serve_jobs_completed_total{source=\"mem\"} 2\n",
            "wec_serve_jobs_failed_total 1\n",
            "wec_serve_busy_workers 2\n",
            "wec_serve_queue_depth 1\n",
            "wec_serve_sim_cycles_total 123456\n",
            "wec_serve_attr_fills_total 10\n",
            "wec_serve_attr_useful_total 4\n",
            "wec_serve_attr_wasted_total 5\n",
            "wec_serve_attr_victim_rescued_total 1\n",
            "wec_serve_attr_still_resident_total 0\n",
            "wec_serve_http_requests_total{endpoint=\"submit\",status=\"503\"} 1\n",
            "wec_serve_http_requests_total{endpoint=\"stats\",status=\"200\"} 2\n",
        ] {
            assert!(page.contains(needle), "missing {needle:?} in:\n{page}");
        }
        // cold + disk + mem == completed, straight off the snapshot.
        assert_eq!(4 + 1 + 2, snap().completed);
        // No speculation series without --speculate.
        assert!(!page.contains("wec_serve_spec_"), "spec series leaked");
    }

    #[test]
    fn spec_series_render_and_conserve_when_speculation_is_on() {
        use crate::spec::SpecStats;
        let m = ServeMetrics::new();
        m.observe_job("spec", 12);
        let mut s = snap();
        s.completed = 8;
        s.spec = Some(SpecStats {
            started: 10,
            hit: 4,
            miss: 3,
            waste: 2,
            cancelled: 1,
            pending: 3,
            warm_hits: 1,
            queue_depth: 5,
            queue_cap: 64,
        });
        let page = m.render_prometheus(&s, None);
        for needle in [
            "wec_serve_spec_started_total 10\n",
            "wec_serve_spec_hit_total 4\n",
            "wec_serve_spec_miss_total 3\n",
            "wec_serve_spec_waste_total 2\n",
            "wec_serve_spec_cancelled_total 1\n",
            "wec_serve_spec_pending 3\n",
            "wec_serve_spec_queue_depth 5\n",
            "wec_serve_spec_queue_cap 64\n",
            "wec_serve_jobs_completed_total{source=\"spec\"} 1\n",
            "wec_serve_job_duration_ms_count{source=\"spec\"} 1\n",
        ] {
            assert!(page.contains(needle), "missing {needle:?} in:\n{page}");
        }
        // The conservation invariant and the by-source completion split.
        let sp = s.spec.unwrap();
        assert_eq!(sp.hit + sp.waste + sp.cancelled + sp.pending, sp.started);
        assert_eq!(s.cold + s.disk_hits + s.mem_hits + sp.warm_hits, s.completed);
    }

    #[test]
    fn histogram_series_are_cumulative_and_closed_by_inf() {
        let m = ServeMetrics::new();
        // Bucket 3 (4..=7) twice, bucket 7 (64..=127) once.
        m.observe_request(endpoint_index("/stats"), 200, 5);
        m.observe_request(endpoint_index("/stats"), 200, 6);
        m.observe_request(endpoint_index("/stats"), 200, 100);
        let page = m.render_prometheus(&snap(), None);
        let pfx = "wec_serve_http_request_duration_us";
        assert!(page.contains(&format!("{pfx}_bucket{{endpoint=\"stats\",le=\"7\"}} 2\n")));
        assert!(page.contains(&format!(
            "{pfx}_bucket{{endpoint=\"stats\",le=\"127\"}} 3\n"
        )));
        assert!(page.contains(&format!(
            "{pfx}_bucket{{endpoint=\"stats\",le=\"+Inf\"}} 3\n"
        )));
        assert!(page.contains(&format!("{pfx}_sum{{endpoint=\"stats\"}} 111\n")));
        assert!(page.contains(&format!("{pfx}_count{{endpoint=\"stats\"}} 3\n")));
    }

    #[test]
    fn page_has_no_duplicate_series_and_no_nan() {
        let m = ServeMetrics::new();
        m.observe_request(endpoint_index("/jobs"), 200, 10);
        m.observe_queue_wait(3);
        m.observe_job("cold", 250);
        m.observe_job("mem", 0);
        let page = m.render_prometheus(&snap(), None);
        let mut seen = std::collections::HashSet::new();
        for line in page.lines() {
            if line.starts_with('#') || line.is_empty() {
                continue;
            }
            let (series, value) = line.rsplit_once(' ').expect("name value");
            let v: f64 = value.parse().expect("numeric value");
            assert!(v.is_finite(), "non-finite value in {line:?}");
            assert!(
                seen.insert(series.to_string()),
                "duplicate series {series:?}"
            );
        }
    }
}
