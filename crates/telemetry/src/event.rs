//! Typed trace events and the per-component gated buffers that feed them.
//!
//! Hot simulator components (the L1 data path, the shared L2, the core's
//! recovery path) do not know their thread-unit id and must not pay for
//! telemetry when it is off.  They own a [`CacheTrace`] / [`FlushTrace`]
//! whose `push` is one predictable branch when disabled; the machine drains
//! the buffers once per cycle, tags TU ids, and turns them into full
//! [`TraceEvent`]s for the sink.

use std::fmt::Write as _;

use crate::json::escape_into;

/// One fully-attributed trace event (the JSONL schema; see `schema`).
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// A wrong-execution load issued to the data path.
    WrongLoadIssue {
        tu: u32,
        addr: u64,
        /// `true` for a wrong-*thread* load, `false` for a wrong-*path* load.
        wrong_thread: bool,
    },
    /// A wrong-execution miss filled the Wrong Execution Cache.
    WecFill { tu: u32, addr: u64 },
    /// A correct-path L1 miss hit the side structure (WEC / victim cache /
    /// prefetch buffer) — the paper's indirect-prefetch payoff event.
    WecHit {
        tu: u32,
        addr: u64,
        wrong_fetched: bool,
        prefetched: bool,
    },
    /// A displaced L1 victim parked in the side structure.
    VictimTransfer { tu: u32, addr: u64 },
    /// A next-line prefetch was issued into the side structure.
    NextLinePrefetch { tu: u32, addr: u64 },
    /// A correct-path L1 miss that also missed the side structure and went
    /// to the L2.
    L1Miss { tu: u32, addr: u64, wrong: bool },
    /// An L2 miss that went to main memory.
    L2Miss { addr: u64, wrong: bool },
    /// Branch-misprediction recovery flushed the pipeline.
    PipelineFlush {
        tu: u32,
        pc: u32,
        new_pc: u32,
        squashed: u32,
    },
    /// A committed instruction (surfaced from the per-core commit trace).
    Commit {
        tu: u32,
        seq: u64,
        pc: u32,
        op: String,
    },
    /// A parallel region began.
    Begin { region: u16, head: u64 },
    /// A fork was scheduled (or deferred) onto a TU.
    Fork {
        parent: u64,
        child: u64,
        tu: u32,
        deferred: bool,
    },
    /// A thread began executing.
    ThreadStart { id: u64, tu: u32 },
    /// A correct thread aborted its successors.
    Abort { id: u64 },
    /// A thread was marked wrong and kept running.
    MarkedWrong { id: u64 },
    /// A thread was killed outright.
    Killed { id: u64, tu: u32 },
    /// A wrong thread died (own abort / thread-end / write-back squash).
    WrongDied { id: u64 },
    /// A thread entered its write-back stage.
    WbStart { id: u64, words: u64 },
    /// A thread fully retired.
    Retired { id: u64, tu: u32 },
    /// The machine resumed sequential execution.
    Sequential { tu: u32 },
}

impl TraceEvent {
    /// The `"type"` field value in the JSONL schema.
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::WrongLoadIssue { .. } => "wrong_load_issue",
            TraceEvent::WecFill { .. } => "wec_fill",
            TraceEvent::WecHit { .. } => "wec_hit",
            TraceEvent::VictimTransfer { .. } => "victim_transfer",
            TraceEvent::NextLinePrefetch { .. } => "next_line_prefetch",
            TraceEvent::L1Miss { .. } => "l1_miss",
            TraceEvent::L2Miss { .. } => "l2_miss",
            TraceEvent::PipelineFlush { .. } => "pipeline_flush",
            TraceEvent::Commit { .. } => "commit",
            TraceEvent::Begin { .. } => "begin",
            TraceEvent::Fork { .. } => "fork",
            TraceEvent::ThreadStart { .. } => "thread_start",
            TraceEvent::Abort { .. } => "abort",
            TraceEvent::MarkedWrong { .. } => "marked_wrong",
            TraceEvent::Killed { .. } => "killed",
            TraceEvent::WrongDied { .. } => "wrong_died",
            TraceEvent::WbStart { .. } => "wb_start",
            TraceEvent::Retired { .. } => "retired",
            TraceEvent::Sequential { .. } => "sequential",
        }
    }

    /// Append this event as one JSONL line (`{"cycle":…,"type":…,…}\n`).
    pub fn write_jsonl(&self, cycle: u64, out: &mut String) {
        let _ = write!(out, "{{\"cycle\":{cycle},\"type\":\"{}\"", self.name());
        match *self {
            TraceEvent::WrongLoadIssue {
                tu,
                addr,
                wrong_thread,
            } => {
                let _ = write!(
                    out,
                    ",\"tu\":{tu},\"addr\":{addr},\"wrong_thread\":{wrong_thread}"
                );
            }
            TraceEvent::WecFill { tu, addr }
            | TraceEvent::VictimTransfer { tu, addr }
            | TraceEvent::NextLinePrefetch { tu, addr } => {
                let _ = write!(out, ",\"tu\":{tu},\"addr\":{addr}");
            }
            TraceEvent::WecHit {
                tu,
                addr,
                wrong_fetched,
                prefetched,
            } => {
                let _ = write!(
                    out,
                    ",\"tu\":{tu},\"addr\":{addr},\"wrong_fetched\":{wrong_fetched},\"prefetched\":{prefetched}"
                );
            }
            TraceEvent::L1Miss { tu, addr, wrong } => {
                let _ = write!(out, ",\"tu\":{tu},\"addr\":{addr},\"wrong\":{wrong}");
            }
            TraceEvent::L2Miss { addr, wrong } => {
                let _ = write!(out, ",\"addr\":{addr},\"wrong\":{wrong}");
            }
            TraceEvent::PipelineFlush {
                tu,
                pc,
                new_pc,
                squashed,
            } => {
                let _ = write!(
                    out,
                    ",\"tu\":{tu},\"pc\":{pc},\"new_pc\":{new_pc},\"squashed\":{squashed}"
                );
            }
            TraceEvent::Commit {
                tu,
                seq,
                pc,
                ref op,
            } => {
                let _ = write!(out, ",\"tu\":{tu},\"seq\":{seq},\"pc\":{pc},\"op\":");
                escape_into(out, op);
            }
            TraceEvent::Begin { region, head } => {
                let _ = write!(out, ",\"region\":{region},\"head\":{head}");
            }
            TraceEvent::Fork {
                parent,
                child,
                tu,
                deferred,
            } => {
                let _ = write!(
                    out,
                    ",\"parent\":{parent},\"child\":{child},\"tu\":{tu},\"deferred\":{deferred}"
                );
            }
            TraceEvent::ThreadStart { id, tu }
            | TraceEvent::Killed { id, tu }
            | TraceEvent::Retired { id, tu } => {
                let _ = write!(out, ",\"id\":{id},\"tu\":{tu}");
            }
            TraceEvent::Abort { id }
            | TraceEvent::MarkedWrong { id }
            | TraceEvent::WrongDied { id } => {
                let _ = write!(out, ",\"id\":{id}");
            }
            TraceEvent::WbStart { id, words } => {
                let _ = write!(out, ",\"id\":{id},\"words\":{words}");
            }
            TraceEvent::Sequential { tu } => {
                let _ = write!(out, ",\"tu\":{tu}");
            }
        }
        out.push_str("}\n");
    }
}

/// A cache-side event, recorded without TU attribution (the data path does
/// not know which TU it belongs to; the machine tags it at drain time).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheEvent {
    /// Wrong-execution fill into the side structure (the WEC rule).
    WecFill,
    /// Correct-path L1 miss served by the side structure.
    SideHit {
        wrong_fetched: bool,
        prefetched: bool,
    },
    /// L1 victim parked in the side structure.
    VictimTransfer,
    /// Next-line prefetch issued into the side structure.
    NextLinePrefetch,
    /// Miss to the next level (`wrong` = wrong-execution access).
    MissToNext { wrong: bool },
}

/// Gated buffer of `(cycle, event, block address)` records owned by one
/// cache structure.  `push` is a no-op (one branch) when disabled.
#[derive(Clone, Debug, Default)]
pub struct CacheTrace {
    enabled: bool,
    buf: Vec<(u64, CacheEvent, u64)>,
}

impl CacheTrace {
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    #[inline]
    pub fn push(&mut self, cycle: u64, ev: CacheEvent, addr: u64) {
        if self.enabled {
            self.buf.push((cycle, ev, addr));
        }
    }

    /// Remove and return everything recorded since the last drain.
    pub fn drain(&mut self) -> std::vec::Drain<'_, (u64, CacheEvent, u64)> {
        self.buf.drain(..)
    }

    /// Remove and return the events stamped at or before `now`, in cycle
    /// order, keeping later-stamped ones buffered.  A shared structure (the
    /// L2) records at the request's arrival time, which can run ahead of
    /// the cycle doing the draining; holding those back keeps the merged
    /// event stream non-decreasing in cycle.
    pub fn drain_until(&mut self, now: u64) -> Vec<(u64, CacheEvent, u64)> {
        let (mut ready, later): (Vec<_>, Vec<_>) =
            self.buf.drain(..).partition(|&(c, _, _)| c <= now);
        self.buf = later;
        ready.sort_by_key(|&(c, _, _)| c);
        ready
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// One pipeline-flush record from a core's branch-recovery path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlushRec {
    pub cycle: u64,
    /// PC of the mispredicted branch.
    pub pc: u32,
    /// Redirect target.
    pub new_pc: u32,
    /// Squashed ROB entries.
    pub squashed: u32,
}

/// Gated buffer of pipeline flushes owned by one core.
#[derive(Clone, Debug, Default)]
pub struct FlushTrace {
    enabled: bool,
    buf: Vec<FlushRec>,
}

impl FlushTrace {
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    #[inline]
    pub fn push(&mut self, rec: FlushRec) {
        if self.enabled {
            self.buf.push(rec);
        }
    }

    pub fn drain(&mut self) -> std::vec::Drain<'_, FlushRec> {
        self.buf.drain(..)
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_traces_record_nothing() {
        let mut t = CacheTrace::default();
        t.push(1, CacheEvent::WecFill, 0x40);
        assert!(t.is_empty());
        let mut f = FlushTrace::default();
        f.push(FlushRec {
            cycle: 1,
            pc: 2,
            new_pc: 3,
            squashed: 4,
        });
        assert!(f.is_empty());
    }

    #[test]
    fn enabled_traces_drain_in_order() {
        let mut t = CacheTrace::default();
        t.set_enabled(true);
        t.push(1, CacheEvent::WecFill, 0x40);
        t.push(
            2,
            CacheEvent::SideHit {
                wrong_fetched: true,
                prefetched: false,
            },
            0x40,
        );
        let got: Vec<_> = t.drain().collect();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0, 1);
        assert!(t.is_empty());
    }

    #[test]
    fn jsonl_lines_are_self_describing() {
        let mut s = String::new();
        TraceEvent::WecFill {
            tu: 3,
            addr: 0x1000,
        }
        .write_jsonl(77, &mut s);
        assert_eq!(
            s,
            "{\"cycle\":77,\"type\":\"wec_fill\",\"tu\":3,\"addr\":4096}\n"
        );
        let mut s = String::new();
        TraceEvent::Commit {
            tu: 0,
            seq: 9,
            pc: 5,
            op: "addi @\"x\"".into(),
        }
        .write_jsonl(1, &mut s);
        assert!(s.contains("\"op\":\"addi @\\\"x\\\"\""), "{s}");
    }
}
