//! Replay: re-drive the cache hierarchy from a captured trace.
//!
//! Builds fresh per-TU L1 data/instruction paths (with whatever WEC /
//! victim / next-line-prefetch side structure the target configuration
//! selects) and a fresh shared L2, then presents the merged record stream
//! through [`DataPath::access`] in the machine's global order.  Nothing
//! else is needed: prefetch issue, victim/WEC transfers, dirty
//! writebacks, MSHR merging, and L2/DRAM timing are all regenerated
//! inside the data paths from the call sequence, so at the captured
//! configuration every cache counter comes out identical to the
//! full-timing run.

use wec_common::ids::{Addr, Cycle};
use wec_common::stats::StatSet;
use wec_core::{DataPath, MachineConfig};
use wec_mem::l2::SharedL2;
use wec_mem::stats::AccessKind;
use wec_telemetry::attr::AttributionReport;

use crate::format::Trace;
use crate::record::TraceKind;
use crate::slab::TraceSlab;
use crate::TraceError;

/// Counters produced by one replay.
pub struct ReplayOutcome {
    /// Records driven through the hierarchy.
    pub records: u64,
    /// Cache counters under the same keys the full-timing run emits:
    /// `tu{i}.l1d.*`, `tu{i}.l1i.*`, `l2.*`.
    pub stats: StatSet,
    /// Speculation attribution ledger (`None` unless the replay was asked
    /// for it; see [`replay_slab_with`]).  At the captured configuration
    /// this is byte-identical to the full-timing run's report.
    pub attribution: Option<AttributionReport>,
}

/// Replay `trace` against the cache geometry of `cfg` (core/scheduler
/// fields of `cfg` are ignored — only `l1d`, `l1i`, `l2`, `n_tus`
/// matter).  `cfg.n_tus` must match the captured TU count.
pub fn replay(trace: &Trace, cfg: &MachineConfig) -> Result<ReplayOutcome, TraceError> {
    let n_tus = trace.header.n_tus as usize;
    if cfg.n_tus != n_tus {
        return Err(TraceError::Corrupt(format!(
            "trace captured {n_tus} TUs but replay config has {}",
            cfg.n_tus
        )));
    }
    let mut l1d = Vec::with_capacity(n_tus);
    let mut l1i = Vec::with_capacity(n_tus);
    for _ in 0..n_tus {
        l1d.push(DataPath::new(cfg.l1d)?);
        l1i.push(DataPath::new(cfg.l1i)?);
    }
    let mut l2 = SharedL2::new(cfg.l2)?;
    let mut records = 0u64;
    for rec in trace.merged()? {
        let rec = rec?;
        let tu = rec.tu as usize;
        if tu >= n_tus {
            return Err(TraceError::Corrupt(format!(
                "record for TU {tu} out of range"
            )));
        }
        let dp = if rec.kind == TraceKind::InstFetch {
            &mut l1i[tu]
        } else {
            &mut l1d[tu]
        };
        // The result is deliberately ignored: Retry outcomes were re-
        // presented (and re-recorded) by the capturing run, so the stream
        // already contains every attempt.
        let _ = dp.access(
            Addr(rec.addr),
            rec.kind.access_kind(),
            Cycle(rec.cycle),
            &mut l2,
        );
        records += 1;
    }
    let mut stats = StatSet::new();
    for i in 0..n_tus {
        l1d[i].stats.dump(&mut stats, &format!("tu{i}.l1d"));
        l1i[i].stats.dump(&mut stats, &format!("tu{i}.l1i"));
    }
    l2.stats.dump(&mut stats, "l2");
    Ok(ReplayOutcome {
        records,
        stats,
        attribution: None,
    })
}

/// Records per batch in the slab replay loop.  Batching keeps the hot
/// loop's working set (a few contiguous array windows plus the scratch
/// vectors below) resident while amortizing the per-batch precompute.
const REPLAY_BATCH: usize = 4096;

/// Replay a decoded [`TraceSlab`] against the cache geometry of `cfg`.
///
/// Semantically identical to [`replay`] on the trace the slab was built
/// from — same accesses, same global order, byte-identical counters —
/// but the decode and k-way merge were paid once at slab construction,
/// and the loop streams batches out of the merged structure-of-arrays:
/// per batch it first resolves TU routing and access kinds over the
/// contiguous `tus`/`kinds` arrays, then drives the probes.  A sweep
/// replays one shared slab at many geometries without re-decoding.
pub fn replay_slab(slab: &TraceSlab, cfg: &MachineConfig) -> Result<ReplayOutcome, TraceError> {
    replay_slab_with(slab, cfg, false)
}

/// [`replay_slab`] with an optional speculation attribution ledger riding
/// on the L1D paths (instruction fetch carries no speculation, exactly as
/// in the full-timing machine).  The attribution probes observe the same
/// access stream, PCs, and cycles the timing run saw, so at the captured
/// configuration the resulting report is byte-identical to full timing —
/// and the cache counters are byte-identical either way.
pub fn replay_slab_with(
    slab: &TraceSlab,
    cfg: &MachineConfig,
    attribution: bool,
) -> Result<ReplayOutcome, TraceError> {
    let n_tus = slab.header().n_tus as usize;
    if cfg.n_tus != n_tus {
        return Err(TraceError::Corrupt(format!(
            "trace captured {n_tus} TUs but replay config has {}",
            cfg.n_tus
        )));
    }
    let mut l1d = Vec::with_capacity(n_tus);
    let mut l1i = Vec::with_capacity(n_tus);
    for _ in 0..n_tus {
        let mut dp = DataPath::new(cfg.l1d)?;
        if attribution {
            dp.enable_attribution();
        }
        l1d.push(dp);
        l1i.push(DataPath::new(cfg.l1i)?);
    }
    let mut l2 = SharedL2::new(cfg.l2)?;

    let m = slab.merged();
    let mut akinds: Vec<AccessKind> = Vec::with_capacity(REPLAY_BATCH);
    let mut start = 0usize;
    while start < m.len() {
        let end = usize::min(start + REPLAY_BATCH, m.len());
        let tus = &m.tus[start..end];
        let kinds = &m.kinds[start..end];
        let cycles = &m.cycles[start..end];
        let addrs = &m.addrs[start..end];

        // Precompute pass over the contiguous arrays: bounds-check TU
        // routing and resolve access kinds for the whole batch.
        if let Some(&bad) = tus.iter().find(|&&tu| tu as usize >= n_tus) {
            return Err(TraceError::Corrupt(format!(
                "record for TU {bad} out of range"
            )));
        }
        akinds.clear();
        akinds.extend(kinds.iter().map(|k| k.access_kind()));

        // Probe pass.  As in `replay`, results are ignored: Retry
        // outcomes were re-presented by the capturing run.
        let pcs = &m.pcs[start..end];
        for i in 0..tus.len() {
            let tu = tus[i] as usize;
            let dp = if kinds[i] == TraceKind::InstFetch {
                &mut l1i[tu]
            } else {
                &mut l1d[tu]
            };
            if attribution {
                dp.attr_note_pc(pcs[i]);
            }
            let _ = dp.access(Addr(addrs[i]), akinds[i], Cycle(cycles[i]), &mut l2);
        }
        start = end;
    }

    let mut stats = StatSet::new();
    for i in 0..n_tus {
        l1d[i].stats.dump(&mut stats, &format!("tu{i}.l1d"));
        l1i[i].stats.dump(&mut stats, &format!("tu{i}.l1i"));
    }
    l2.stats.dump(&mut stats, "l2");
    let attribution = attribution
        .then(|| AttributionReport::from_probes(l1d.iter().filter_map(|dp| dp.attr.as_deref())));
    Ok(ReplayOutcome {
        records: m.len() as u64,
        stats,
        attribution,
    })
}

/// Extract the cache-counter subset of a full-timing run's stats — the
/// exact key set [`replay`] emits — sorted by key.  Comparing this
/// against a replay at the captured configuration must show zero drift.
pub fn cache_stat_subset(stats: &StatSet) -> Vec<(String, u64)> {
    let mut out: Vec<(String, u64)> = stats
        .iter()
        .filter(|(k, _)| is_cache_key(k))
        .map(|(k, v)| (k.to_string(), v))
        .collect();
    out.sort();
    out
}

fn is_cache_key(key: &str) -> bool {
    if key.strip_prefix("l2.").is_some_and(|r| !r.is_empty()) {
        return true;
    }
    let Some(rest) = key.strip_prefix("tu") else {
        return false;
    };
    let digits = rest.chars().take_while(char::is_ascii_digit).count();
    if digits == 0 {
        return false;
    }
    rest[digits..].starts_with(".l1d.") || rest[digits..].starts_with(".l1i.")
}

/// Render counter pairs as the workspace's `.kv` format (one `key value`
/// per line, sorted input expected) — loadable by `metricsdiff`.
pub fn kv_string(pairs: &[(String, u64)]) -> String {
    let mut out = String::new();
    for (k, v) in pairs {
        out.push_str(k);
        out.push(' ');
        out.push_str(&v.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_key_filter() {
        assert!(is_cache_key("l2.demand_accesses"));
        assert!(is_cache_key("tu0.l1d.demand_misses"));
        assert!(is_cache_key("tu12.l1i.ifetch_accesses"));
        assert!(!is_cache_key("tu0.core.committed"));
        assert!(!is_cache_key("machine.l1d.demand_accesses"));
        assert!(!is_cache_key("l2_other"));
        assert!(!is_cache_key("tux.l1d.demand_misses"));
        assert!(!is_cache_key("l2."));
    }

    #[test]
    fn kv_renders_lines() {
        let pairs = vec![("a.b".to_string(), 1u64), ("c.d".to_string(), 2u64)];
        assert_eq!(kv_string(&pairs), "a.b 1\nc.d 2\n");
    }
}
