//! `177.mesa` analog — the vertex-transform pipeline.
//!
//! mesa (OpenGL software rendering) streams vertices through 4×4 matrix
//! transforms and lighting — floating-point dense, regular, sequential
//! memory traffic.  The paper parallelized its hot loops (SPEC test input,
//! 17.3% parallelized); mesa shows the suite's largest L1 miss *reduction*
//! under the WEC (up to 73%, Figure 17) because its streaming accesses make
//! nearly every wrong-execution fetch useful to the next window.
//!
//! The analog: blocks of 4 vertices (x,y,z,w as f64) per thread, each
//! transformed by a region-invariant 4×4 matrix and written to an output
//! stream; windows advance through the vertex buffer, so run-ahead threads
//! prefetch the next window's vertices.  A sequential "lighting" pass scales
//! the outputs and folds the checksum.
//!
//! Table 1 transformations: loop unrolling (the 4×4 product is fully
//! unrolled), statement reordering.

use wec_isa::reg::{FReg, Reg};
use wec_isa::ProgramBuilder;

use crate::datagen::rng_for;
use crate::harness::{
    counted_continuation, counted_exit, emit_checksum_reduce_reps, emit_sta_loop, IND, INV, MY, T0,
    T1, T2,
};
use crate::{Scale, Workload};
use rand::RngExt;

/// Vertices (power of two).
const VERTS: usize = 1024;
/// Vertices per thread.
const BLOCK: usize = 4;
/// Threads per region.
const WINDOW: usize = 32;
/// Sequential rasterization scans per frame over the output stream (sized
/// to Table 2's 17.3% parallel fraction).
const SCAN_REPS: u32 = 6;

struct HostData {
    verts: Vec<f64>,   // 4 per vertex
    matrix: [f64; 16], // row-major
}

fn generate() -> HostData {
    let mut rng = rng_for("177.mesa", 17);
    let verts: Vec<f64> = (0..VERTS * 4)
        .map(|_| (rng.random_range(0..1000u64) as f64) * 0.01 - 5.0)
        .collect();
    let mut matrix = [0f64; 16];
    for (i, m) in matrix.iter_mut().enumerate() {
        *m = ((i * 7 + 3) % 11) as f64 * 0.125 - 0.5;
    }
    HostData { verts, matrix }
}

/// Host reference: `passes` frames of out = M·v for every vertex, then a
/// sequential lighting scale folded into the running checksum.  The output
/// feeds the next frame's input (out becomes in), keeping passes distinct.
fn reference(d: &HostData, passes: u32) -> u64 {
    let mut vin = d.verts.clone();
    let mut vout = vec![0f64; VERTS * 4];
    let mut check = 0u64;
    for _ in 0..passes {
        for v in 0..VERTS {
            for row in 0..4 {
                let mut acc = 0f64;
                for col in 0..4 {
                    acc += d.matrix[row * 4 + col] * vin[v * 4 + col];
                }
                vout[v * 4 + row] = acc;
            }
        }
        let bits: Vec<u64> = vout.iter().map(|x| x.to_bits()).collect();
        check = crate::harness::checksum_reduce_reps_reference(check, &bits, SCAN_REPS);
        // Lighting: damp the outputs back into the input buffer.
        for i in 0..VERTS * 4 {
            vin[i] = vout[i] * 0.125;
        }
    }
    check
}

pub fn build(scale: Scale) -> Workload {
    let passes = 2 * scale.units;
    let d = generate();
    let expected_check = reference(&d, passes);
    let threads = VERTS / BLOCK;

    let mut b = ProgramBuilder::new("177.mesa");
    let vin = b.alloc_f64s(&d.verts);
    let vout = b.alloc_zeroed_u64s((VERTS * 4) as u64);
    let mat = b.alloc_f64s(&d.matrix);
    let consts = b.alloc_f64s(&[0.125]);
    let _slack = b.alloc_bytes(16 * 1024, 64);
    let check = b.alloc_zeroed_u64s(1);

    let (vinr, voutr, matr, maskr, passr, winr, boundr, npassr) = (
        INV[0], INV[1], INV[2], INV[3], INV[4], INV[5], INV[6], INV[7],
    );
    b.la(vinr, vin);
    b.la(voutr, vout);
    b.la(matr, mat);
    b.li(maskr, (threads - 1) as i64);
    b.li(npassr, passes as i64);
    b.li(passr, 0);

    // The matrix lives in f16..f31 for the whole program (region snapshot
    // hands it to every thread).
    for i in 0..16u8 {
        b.fld(FReg(16 + i), matr, 8 * i as i32);
    }
    let (fx, fy, fz, fw, facc, ft) = (FReg(1), FReg(2), FReg(3), FReg(4), FReg(5), FReg(6));

    b.label("ms_pass");
    b.li(winr, 0);
    b.label("ms_win");
    b.slli(IND, winr, WINDOW.trailing_zeros() as i32);
    b.addi(boundr, IND, WINDOW as i32);
    emit_sta_loop(
        &mut b,
        "ms_r",
        1,
        &[IND],
        counted_continuation,
        |_| {},
        |b| {
            // t = my & mask; vertex block base = t*BLOCK*32 bytes
            b.and(T0, MY, maskr);
            b.slli(T0, T0, (BLOCK * 32).trailing_zeros() as i32);
            b.add(T1, vinr, T0);
            b.add(T2, voutr, T0);
            for _v in 0..BLOCK {
                b.fld(fx, T1, 0);
                b.fld(fy, T1, 8);
                b.fld(fz, T1, 16);
                b.fld(fw, T1, 24);
                for row in 0..4u8 {
                    let m = 16 + row * 4;
                    b.fpu(wec_isa::inst::FpuOp::Mul, facc, FReg(m), fx);
                    b.fpu(wec_isa::inst::FpuOp::Mul, ft, FReg(m + 1), fy);
                    b.fadd(facc, facc, ft);
                    b.fpu(wec_isa::inst::FpuOp::Mul, ft, FReg(m + 2), fz);
                    b.fadd(facc, facc, ft);
                    b.fpu(wec_isa::inst::FpuOp::Mul, ft, FReg(m + 3), fw);
                    b.fadd(facc, facc, ft);
                    b.fsd(facc, T2, 8 * row as i32);
                }
                b.addi(T1, T1, 32);
                b.addi(T2, T2, 32);
            }
        },
        counted_exit(boundr),
    );
    b.addi(winr, winr, 1);
    b.li(T0, (threads / WINDOW) as i64);
    b.blt(winr, T0, "ms_win");
    // Sequential rasterization scans over vout, then the lighting damp.
    emit_checksum_reduce_reps(&mut b, "ms", voutr, (VERTS * 4) as i64, SCAN_REPS, check);
    b.la(T0, consts);
    b.fld(ft, T0, 0);
    b.mv(T0, vinr);
    b.mv(T1, voutr);
    b.li(T2, (VERTS * 4) as i64);
    b.label("ms_light");
    b.fld(fx, T1, 0);
    b.fmul(fx, fx, ft);
    b.fsd(fx, T0, 0);
    b.addi(T0, T0, 8);
    b.addi(T1, T1, 8);
    b.addi(T2, T2, -1);
    b.bne(T2, Reg::ZERO, "ms_light");
    b.addi(passr, passr, 1);
    b.blt(passr, npassr, "ms_pass");
    b.halt();

    Workload {
        name: "177.mesa",
        suite: "SPEC2000/FP",
        input: "SPEC test",
        transforms: &["loop unrolling", "statement reordering"],
        program: b.build().unwrap(),
        check_addr: check,
        expected_check,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_and_verify;
    use wec_core::config::ProcPreset;

    #[test]
    fn reference_changes_across_passes() {
        let d = generate();
        assert_ne!(reference(&d, 1), reference(&d, 2));
    }

    #[test]
    fn self_check_passes_under_orig_and_wec() {
        let w = build(Scale::SMOKE);
        for preset in [ProcPreset::Orig, ProcPreset::WthWpWec] {
            run_and_verify(&w, preset.machine(4))
                .unwrap_or_else(|e| panic!("{}: {e}", preset.name()));
        }
    }
}
