//! Edge-case tests of the out-of-order pipeline against the mock
//! environment: long-latency units, indirect jumps, memory ordering,
//! and resource-limit stalls.

use std::sync::Arc;

use wec_common::ids::Cycle;
use wec_cpu::config::CoreConfig;
use wec_cpu::core::Core;
use wec_cpu::env::MockEnv;
use wec_isa::reg::{FReg, Reg};
use wec_isa::{Program, ProgramBuilder};

fn run(program: Program, cfg: CoreConfig) -> (Core, MockEnv, u64) {
    let data = program.data.clone();
    let entry = program.entry;
    let mut core = Core::new(cfg, Arc::new(program));
    let mut env = MockEnv::new(data);
    core.start(entry, Cycle(0));
    let mut cycle = 0u64;
    while core.is_running() && !env.halted {
        core.tick(&mut env, Cycle(cycle));
        cycle += 1;
        assert!(cycle < 1_000_000, "runaway program");
    }
    (core, env, cycle)
}

#[test]
fn division_pipeline_and_result() {
    let mut b = ProgramBuilder::new("div");
    let out = b.alloc_zeroed_u64s(3);
    b.li(Reg(1), 1000);
    b.li(Reg(2), 7);
    b.div(Reg(3), Reg(1), Reg(2));
    b.rem(Reg(4), Reg(1), Reg(2));
    b.li(Reg(5), 0);
    b.div(Reg(6), Reg(1), Reg(5)); // division by zero: defined result
    b.la(Reg(7), out);
    b.sd(Reg(3), Reg(7), 0);
    b.sd(Reg(4), Reg(7), 8);
    b.sd(Reg(6), Reg(7), 16);
    b.halt();
    let (_, env, cycles) = run(b.build().unwrap(), CoreConfig::default());
    assert_eq!(env.mem.read_u64(out).unwrap(), 142);
    assert_eq!(env.mem.read_u64(out + 8).unwrap(), 6);
    assert_eq!(env.mem.read_u64(out + 16).unwrap(), u64::MAX);
    // The 20-cycle divider latency must be visible.
    assert!(cycles >= 20, "divide finished too fast: {cycles}");
}

#[test]
fn indirect_jump_through_btb_not_ras() {
    // jr through a non-RA register: first encounter stalls fetch until
    // resolution, later encounters hit the BTB.
    let mut b = ProgramBuilder::new("jr");
    let out = b.alloc_zeroed_u64s(1);
    let (i, acc, tgt) = (Reg(1), Reg(2), Reg(5));
    b.li(i, 20);
    b.li(acc, 0);
    b.label("loop");
    // Compute the same target every time (the label index of "hop").
    b.li(tgt, 0); // patched below via label arithmetic
    b.label("patch_me");
    b.jr(tgt);
    b.label("hop");
    b.addi(acc, acc, 3);
    b.addi(i, i, -1);
    b.bne(i, Reg::ZERO, "loop");
    b.la(Reg(6), out);
    b.sd(acc, Reg(6), 0);
    b.halt();
    let mut prog = b.build().unwrap();
    // Point the li at the "hop" instruction index.
    let hop = prog.label("hop").unwrap() as i64;
    let li_idx = prog.label("patch_me").unwrap() as usize - 1;
    prog.text[li_idx] = wec_isa::Inst::Li { rd: tgt, imm: hop };
    let (core, env, _) = run(prog, CoreConfig::default());
    assert_eq!(env.mem.read_u64(out).unwrap(), 60);
    assert_eq!(core.stats.indirect_jumps.get(), 20);
    // After the BTB learns the target, later jrs predict correctly.
    assert!(core.stats.mispredicted_indirect.get() <= 2);
}

#[test]
fn partial_overlap_store_blocks_load_until_commit() {
    // A 1-byte store inside a doubleword, then a full doubleword load:
    // forwarding is impossible (partial overlap), so the load must wait for
    // the store to commit — and must still see the merged bytes.
    let mut b = ProgramBuilder::new("ovl");
    let cell = b.alloc_u64s(&[0x1111_1111_1111_1111]);
    let out = b.alloc_zeroed_u64s(1);
    b.la(Reg(1), cell);
    b.li(Reg(2), 0xAB);
    b.sb(Reg(2), Reg(1), 2);
    b.ld(Reg(3), Reg(1), 0);
    b.la(Reg(4), out);
    b.sd(Reg(3), Reg(4), 0);
    b.halt();
    let (_, env, _) = run(b.build().unwrap(), CoreConfig::default());
    assert_eq!(env.mem.read_u64(out).unwrap(), 0x1111_1111_11AB_1111);
}

#[test]
fn tiny_rob_still_executes_correctly() {
    let mut cfg = CoreConfig::with_width(2);
    cfg.rob_size = 4;
    cfg.lsq_size = 4;
    let mut b = ProgramBuilder::new("tiny");
    let out = b.alloc_zeroed_u64s(1);
    let (i, acc) = (Reg(1), Reg(2));
    b.li(i, 30);
    b.li(acc, 0);
    b.label("loop");
    b.add(acc, acc, i);
    b.addi(i, i, -1);
    b.bne(i, Reg::ZERO, "loop");
    b.la(Reg(3), out);
    b.sd(acc, Reg(3), 0);
    b.halt();
    let (core, env, _) = run(b.build().unwrap(), cfg);
    assert_eq!(env.mem.read_u64(out).unwrap(), (1..=30u64).sum::<u64>());
    assert!(
        core.stats.rob_full_stalls.get() > 0,
        "4-entry ROB never filled?"
    );
}

#[test]
fn fp_divide_and_compare_chain() {
    let mut b = ProgramBuilder::new("fpdiv");
    let xs = b.alloc_f64s(&[81.0, 3.0]);
    let out = b.alloc_zeroed_u64s(2);
    b.la(Reg(1), xs);
    b.fld(FReg(1), Reg(1), 0);
    b.fld(FReg(2), Reg(1), 8);
    b.fpu(wec_isa::inst::FpuOp::Div, FReg(3), FReg(1), FReg(2)); // 27
    b.fpu(wec_isa::inst::FpuOp::Div, FReg(3), FReg(3), FReg(2)); // 9
    b.fcmp(wec_isa::inst::FCmpOp::Lt, Reg(2), FReg(2), FReg(3)); // 3 < 9
    b.la(Reg(3), out);
    b.fsd(FReg(3), Reg(3), 0);
    b.sd(Reg(2), Reg(3), 8);
    b.halt();
    let (_, env, _) = run(b.build().unwrap(), CoreConfig::default());
    assert_eq!(env.mem.read_f64(out).unwrap(), 9.0);
    assert_eq!(env.mem.read_u64(out + 8).unwrap(), 1);
}

#[test]
fn fetch_crosses_icache_block_boundaries() {
    // A straight-line run of >8 instructions spans fetch blocks; all commit.
    let mut b = ProgramBuilder::new("straight");
    let out = b.alloc_zeroed_u64s(1);
    b.li(Reg(1), 0);
    for k in 1..=20 {
        b.addi(Reg(1), Reg(1), k);
    }
    b.la(Reg(2), out);
    b.sd(Reg(1), Reg(2), 0);
    b.halt();
    let (core, env, _) = run(b.build().unwrap(), CoreConfig::with_width(4));
    assert_eq!(
        env.mem.read_u64(out).unwrap(),
        (1..=20i64).sum::<i64>() as u64
    );
    assert_eq!(core.stats.committed.get(), 24);
}

#[test]
fn deep_call_chain_overflows_ras_gracefully() {
    // Recursion depth 12 > RAS depth 8: mispredicted returns, correct result.
    let mut b = ProgramBuilder::new("recurse");
    let out = b.alloc_zeroed_u64s(1);
    let sp = Reg::SP;
    let stack = b.alloc_zeroed_u64s(64);
    b.la(sp, stack + 64 * 8);
    b.li(Reg(1), 12); // n
    b.jal(Reg::RA, "f");
    b.la(Reg(4), out);
    b.sd(Reg(2), Reg(4), 0);
    b.halt();
    // f(n): returns n + f(n-1); f(0) = 7.
    b.label("f");
    b.bne(Reg(1), Reg::ZERO, "rec");
    b.li(Reg(2), 7);
    b.jr(Reg::RA);
    b.label("rec");
    b.addi(sp, sp, -16);
    b.sd(Reg::RA, sp, 0);
    b.sd(Reg(1), sp, 8);
    b.addi(Reg(1), Reg(1), -1);
    b.jal(Reg::RA, "f");
    b.ld(Reg(1), sp, 8);
    b.ld(Reg::RA, sp, 0);
    b.addi(sp, sp, 16);
    b.add(Reg(2), Reg(2), Reg(1));
    b.jr(Reg::RA);
    let (_, env, _) = run(b.build().unwrap(), CoreConfig::default());
    assert_eq!(env.mem.read_u64(out).unwrap(), 7 + (1..=12u64).sum::<u64>());
}

#[test]
fn wrong_path_engine_respects_queue_capacity() {
    let mut cfg = CoreConfig::with_width(2);
    cfg.wrong_path_loads = true;
    cfg.wrong_path_queue = 2;
    // A flip branch with a large burst of wrong-path loads.
    let mut b = ProgramBuilder::new("wpcap");
    let arr = b.alloc_u64s(&vec![1u64; 256]);
    let (i, flag, base) = (Reg(1), Reg(2), Reg(3));
    b.la(base, arr);
    b.li(i, 40);
    b.label("loop");
    b.slti(flag, i, 20);
    b.bne(flag, Reg::ZERO, "low");
    for k in 0..12 {
        b.ld(Reg(10 + k), base, k as i32 * 8);
    }
    b.j("next");
    b.label("low");
    for k in 0..12 {
        b.ld(Reg(10 + k), base, 1024 + k as i32 * 8);
    }
    b.label("next");
    b.addi(i, i, -1);
    b.bne(i, Reg::ZERO, "loop");
    b.halt();
    let (core, _, _) = run(b.build().unwrap(), cfg);
    assert!(
        core.wp_engine.dropped.get() > 0,
        "a 2-entry queue should overflow on 12-load bursts"
    );
}
