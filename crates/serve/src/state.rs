//! Shared daemon state: the job table, dedup index, warm memo and stats.
//!
//! One [`ServerState`] is shared by the acceptor, every worker and every
//! stat reader.  Three layers keep repeated work from re-simulating:
//!
//! 1. the **in-flight dedup index** — a second `POST /jobs` with the same
//!    (kind, bench, scale, configuration) while the first is still queued
//!    or running lands on the *same* job (one execution, both submitters
//!    poll one id);
//! 2. the **warm memo** — once a job completes, identical submissions are
//!    answered synchronously from memory (`source: "mem"`), which is what
//!    makes the warm-path throughput target cheap;
//! 3. the **persistent result store** — the same on-disk `.kv` store the
//!    `experiments` sweeps use ([`wec_bench::runner::default_disk_dir`]),
//!    so daemon and CLI warm each other across restarts, and a served
//!    result is byte-identical to a direct run's cache entry.
//!
//! With `--speculate` a fourth layer sits in front of all three: the
//! predictor ([`crate::predict`]) turns each demand submission into
//! candidate *next* jobs, idle workers pre-execute them through the same
//! `complete()` path, and [`crate::spec::SpecReady`] marks which parked
//! memo entries were produced ahead of demand so the first claimant is
//! counted (and labeled `source:"spec"`) as a speculative warm hit.
//!
//! Lock ordering: `inflight` may be held while taking a job slot's lock
//! (submission); a slot's lock is never held while taking `inflight`
//! (completion releases the slot first).  Exception: a *speculative*
//! job's completion takes `inflight` first — demand claims always hold
//! `inflight`, so claimed-ness is frozen while the completion decides
//! whether it is answering a waiting claimant (normal accounting) or
//! parking an unclaimed result (speculation accounting), which is what
//! makes every started speculation reach exactly one terminal account.
//! Counters that must stay mutually consistent for `GET /stats` live
//! under one mutex, so a snapshot never observes `completed` without its
//! cache-source increment.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use wec_bench::runner::{default_disk_dir, default_hosts};
use wec_bench::Suite;
use wec_telemetry::report::progress_finish_line;
use wec_trace::{Trace, TraceSlab};
use wec_workloads::{Bench, Scale};

use crate::job::{JobAttr, JobRecord, JobSpec, JobState};
use crate::lock;
use crate::metrics::ServeMetrics;
use crate::predict::Predictor;
use crate::queue::{JobQueue, Promote, PushError};
use crate::ringbuf::{RingBuffer, ServiceSample};
use crate::spec::{SpecConfig, SpecReady, SpecStats};

/// Daemon configuration (flags of the `wec_serve` binary).
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Simulation worker threads.
    pub workers: usize,
    /// Queue capacity; a full queue answers `503` + `Retry-After`.
    pub queue_cap: usize,
    /// Persistent result store directory (`None` = in-memory only).
    pub store: Option<PathBuf>,
    /// Where to write `jobs.jsonl` + `access.jsonl` (live) and
    /// `stats.json` (at drain).
    pub log_dir: Option<PathBuf>,
    /// Socket read/write timeout per request.
    pub io_timeout: Duration,
    /// Upper bound on one `/jobs/<id>/events` stream's lifetime.
    pub events_timeout: Duration,
    /// Ring-buffer sampling interval (zero disables the sampler thread).
    pub sample_interval: Duration,
    /// Ring-buffer capacity (retained history = `ring_cap` samples).
    pub ring_cap: usize,
    /// Attach the speculation attribution ledger to replay jobs.  Such
    /// jobs always replay cold (ledgers are not memoized on disk), embed
    /// their conservation summary in the job record, and serve the full
    /// `wec-attribution-v1` document at `GET /jobs/<id>/attribution`.
    pub attribution: bool,
    /// Speculative job prefetch (`--speculate`); `None` keeps every
    /// artifact byte-identical to a speculation-free build.
    pub spec: Option<SpecConfig>,
    /// Stable identity of this daemon in a sharded cluster
    /// (`--backend-id`).  When set it is stamped into every job record,
    /// the stats document, and `/metrics`, so a router aggregating N
    /// backends can attribute every line; `None` keeps all artifacts
    /// byte-identical to a single-node build.
    pub backend_id: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: default_hosts(),
            queue_cap: 64,
            store: Some(default_disk_dir()),
            log_dir: None,
            io_timeout: Duration::from_secs(10),
            events_timeout: Duration::from_secs(600),
            sample_interval: Duration::from_secs(1),
            ring_cap: 512,
            attribution: false,
            spec: None,
            backend_id: None,
        }
    }
}

/// One job's shared slot: its record, its progress-event lines, and (until
/// a worker claims it) its spec.  The condvar is notified on every change.
#[derive(Debug)]
pub struct JobSlot {
    pub inner: Mutex<JobInner>,
    pub cv: Condvar,
}

#[derive(Debug)]
pub struct JobInner {
    pub record: JobRecord,
    /// `progress.jsonl`-schema lines, streamed by `/jobs/<id>/events`.
    pub events: Vec<String>,
    /// Taken by the executing worker.
    pub spec: Option<JobSpec>,
}

impl JobSlot {
    fn new(record: JobRecord, events: Vec<String>, spec: Option<JobSpec>) -> Arc<JobSlot> {
        Arc::new(JobSlot {
            inner: Mutex::new(JobInner {
                record,
                events,
                spec,
            }),
            cv: Condvar::new(),
        })
    }

    /// Append one progress line and wake streamers.
    pub fn push_event(&self, line: String) {
        lock(&self.inner).events.push(line);
        self.cv.notify_all();
    }

    /// A point-in-time copy of the record.
    pub fn record(&self) -> JobRecord {
        lock(&self.inner).record.clone()
    }

    /// Block until the job reaches a terminal state (true) or `timeout`
    /// elapses (false).
    pub fn wait_terminal(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut g = lock(&self.inner);
        loop {
            if g.record.state.terminal() {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = self
                .cv
                .wait_timeout(g, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            g = guard;
        }
    }
}

/// A completed result, kept for warm (`mem`) answers.
struct MemoEntry {
    metrics: Arc<Vec<(String, u64)>>,
    sim_cycles: u64,
    attr: Option<Arc<JobAttr>>,
}

/// How a worker resolved a job.
pub struct Outcome {
    /// `"cold"` / `"disk"` / `"mem"` — [`wec_bench::CacheSource`] names.
    pub source: &'static str,
    pub metrics: Arc<Vec<(String, u64)>>,
    pub sim_cycles: u64,
    pub dur_ms: u64,
    /// Speculation attribution ledger (attribution-enabled replay jobs).
    pub attr: Option<Arc<JobAttr>>,
}

/// Why a submission was refused (both answer `503`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SubmitError {
    QueueFull,
    Draining,
}

/// Counters that must stay mutually consistent under one lock (the
/// `wec-serve-stats-v1` invariants, e.g. cache sources summing to
/// `completed`, are checked by CI against live snapshots).
#[derive(Default)]
struct Counts {
    submitted: u64,
    deduped: u64,
    completed: u64,
    failed: u64,
    rejected: u64,
    cold: u64,
    disk_hits: u64,
    mem_hits: u64,
    /// Simulated cycles across completed jobs (feeds kcycles/s sampling).
    sim_cycles: u64,
    /// Speculation-ledger aggregates across attribution-enabled jobs
    /// (warm answers re-count, exactly like `sim_cycles`).
    attr_fills: u64,
    attr_useful: u64,
    attr_wasted: u64,
    attr_victim_rescued: u64,
    attr_still_resident: u64,
    /// Speculation accounting (all zero when speculation is off).  Every
    /// started speculation lands in exactly one of hit / waste /
    /// cancelled; `pending` is derived at snapshot time so the
    /// conservation invariant holds on every scrape.
    spec_started: u64,
    spec_hit: u64,
    spec_miss: u64,
    spec_waste: u64,
    spec_cancelled: u64,
    /// The subset of `spec_hit` answered synchronously from a parked
    /// ready result (the v2 `cache.spec_hits` bucket).
    spec_warm_hits: u64,
}

impl Counts {
    fn add_attr(&mut self, a: &JobAttr) {
        self.attr_fills += a.wec_fills;
        self.attr_useful += a.useful;
        self.attr_wasted += a.wasted;
        self.attr_victim_rescued += a.victim_rescued;
        self.attr_still_resident += a.still_resident;
    }
}

/// A point-in-time copy of everything `GET /stats`, `GET /metrics` and the
/// sampler report.  All job counters are read under the single `counts`
/// mutex, so the source split always sums to `completed` — the exposition
/// and the stats document reconcile exactly because they render the *same*
/// snapshot type.
#[derive(Clone, Copy, Debug)]
pub struct StatsSnapshot {
    /// Milliseconds since daemon start, clamped to ≥ 1 (rate denominators).
    pub uptime_ms: u64,
    pub workers: u64,
    pub busy: u64,
    pub busy_ms: u64,
    pub draining: bool,
    pub queue_depth: u64,
    pub queue_cap: u64,
    pub outstanding: u64,
    pub submitted: u64,
    pub deduped: u64,
    pub completed: u64,
    pub failed: u64,
    pub rejected: u64,
    pub cold: u64,
    pub disk_hits: u64,
    pub mem_hits: u64,
    pub sim_cycles: u64,
    pub attr_fills: u64,
    pub attr_useful: u64,
    pub attr_wasted: u64,
    pub attr_victim_rescued: u64,
    pub attr_still_resident: u64,
    /// Speculation counters; `None` when speculation is off, and the
    /// renderers emit v1 documents with no speculation series at all.
    pub spec: Option<SpecStats>,
}

/// Everything the acceptor, workers and stat readers share.
pub struct ServerState {
    pub cfg: ServeConfig,
    pub queue: JobQueue,
    /// Set by `POST /shutdown` or SIGTERM; refuses new jobs, drains.
    pub draining: AtomicBool,
    t0: Instant,
    next_id: AtomicU64,
    jobs: Mutex<HashMap<u64, Arc<JobSlot>>>,
    /// Dedup key → live job id.
    inflight: Mutex<HashMap<String, u64>>,
    memo: Mutex<HashMap<String, Arc<MemoEntry>>>,
    /// Built workload suites, one per (bench, scale) ever requested.
    suites: Mutex<HashMap<(&'static str, u32), Arc<Suite>>>,
    /// Decoded capture traces, one slab per path ever requested — replay
    /// jobs for the same trace share one decode and merge.
    traces: Mutex<HashMap<PathBuf, Arc<TraceSlab>>>,
    counts: Mutex<Counts>,
    /// Jobs accepted into the queue and not yet terminal (drain barrier).
    outstanding: AtomicU64,
    /// Workers currently executing a job (stats gauge).
    pub busy: AtomicU64,
    /// Total worker-occupied milliseconds (utilization numerator).
    pub busy_ms: AtomicU64,
    jobs_log: Mutex<Option<std::fs::File>>,
    access_log: Mutex<Option<std::fs::File>>,
    /// HTTP request/latency counters and job-duration histograms.
    pub metrics: ServeMetrics,
    /// The sampler's time-series (the dashboard's sparklines).
    pub samples: RingBuffer<ServiceSample>,
    /// Tells the sampler thread to exit during drain.
    pub sampler_stop: AtomicBool,
    /// Speculative results produced ahead of demand and not yet claimed.
    spec_ready: SpecReady,
    /// The next-job predictor (`Some` iff `cfg.spec` is).
    predictor: Option<Predictor>,
    /// `cfg.backend_id` as a shared slice, stamped into every record.
    backend_id: Option<Arc<str>>,
}

impl ServerState {
    pub fn new(cfg: ServeConfig) -> std::io::Result<Arc<ServerState>> {
        let (jobs_log, access_log) = match &cfg.log_dir {
            None => (None, None),
            Some(dir) => {
                std::fs::create_dir_all(dir)?;
                let open = |name: &str| {
                    std::fs::OpenOptions::new()
                        .create(true)
                        .append(true)
                        .open(dir.join(name))
                };
                (Some(open("jobs.jsonl")?), Some(open("access.jsonl")?))
            }
        };
        let queue = match &cfg.spec {
            None => JobQueue::new(cfg.queue_cap),
            Some(sc) => JobQueue::with_spec(cfg.queue_cap, sc.queue_cap, sc.inflight_max),
        };
        let predictor = cfg.spec.as_ref().map(|sc| Predictor::new(sc.fanout));
        let backend_id = cfg.backend_id.as_deref().map(Arc::from);
        let ring_cap = cfg.ring_cap;
        Ok(Arc::new(ServerState {
            cfg,
            queue,
            draining: AtomicBool::new(false),
            t0: Instant::now(),
            next_id: AtomicU64::new(1),
            jobs: Mutex::new(HashMap::new()),
            inflight: Mutex::new(HashMap::new()),
            memo: Mutex::new(HashMap::new()),
            suites: Mutex::new(HashMap::new()),
            traces: Mutex::new(HashMap::new()),
            counts: Mutex::new(Counts::default()),
            outstanding: AtomicU64::new(0),
            busy: AtomicU64::new(0),
            busy_ms: AtomicU64::new(0),
            jobs_log: Mutex::new(jobs_log),
            access_log: Mutex::new(access_log),
            metrics: ServeMetrics::new(),
            samples: RingBuffer::new(ring_cap),
            sampler_stop: AtomicBool::new(false),
            spec_ready: SpecReady::new(),
            predictor,
            backend_id,
        }))
    }

    /// Milliseconds since daemon start — the time base of every record
    /// field and progress line (one monotonic clock, so every stream is
    /// time-ordered).
    pub fn now_ms(&self) -> u64 {
        self.t0.elapsed().as_millis() as u64
    }

    /// A fresh record stamped with this daemon's backend identity.
    fn new_record(&self, id: u64, spec: &JobSpec, submit_t_ms: u64) -> JobRecord {
        let mut record = JobRecord::new(id, spec, submit_t_ms);
        record.backend_id = self.backend_id.clone();
        record
    }

    pub fn job(&self, id: u64) -> Option<Arc<JobSlot>> {
        lock(&self.jobs).get(&id).cloned()
    }

    /// Jobs accepted and not yet terminal (the drain barrier: the queue
    /// depth alone misses jobs popped but not yet finished).
    pub fn outstanding(&self) -> u64 {
        self.outstanding.load(Ordering::SeqCst)
    }

    /// Submit one job.  Returns the (possibly shared) slot; the caller
    /// renders its record.
    pub fn submit(&self, spec: JobSpec) -> Result<Arc<JobSlot>, SubmitError> {
        self.submit_with_client(spec, "anon")
    }

    /// Submit one demand job on behalf of `client` (the peer address —
    /// the predictor's per-client history key).  When speculation is on,
    /// an accepted submission also reaps stale speculations and enqueues
    /// the predictor's candidates for this client's likely next asks.
    pub fn submit_with_client(
        &self,
        spec: JobSpec,
        client: &str,
    ) -> Result<Arc<JobSlot>, SubmitError> {
        let speculating = self.predictor.is_some();
        let to_predict = if speculating { Some(spec.clone()) } else { None };
        let out = self.submit_demand(spec);
        if let (Ok(_), Some(spec)) = (&out, to_predict) {
            self.reap_stale();
            if let Some(p) = &self.predictor {
                for cand in p.predict(client, &spec) {
                    self.spec_submit(cand);
                }
            }
        }
        out
    }

    fn submit_demand(&self, spec: JobSpec) -> Result<Arc<JobSlot>, SubmitError> {
        if self.draining.load(Ordering::SeqCst) {
            return Err(SubmitError::Draining);
        }
        let key = spec.dedup_key();
        let now = self.now_ms();
        // The index lock is held across the whole decision so two racing
        // identical submissions cannot both miss it and double-execute —
        // and so a speculative job's claimed-ness is decided exactly once
        // (its completion also holds this lock).
        let mut inflight = lock(&self.inflight);
        if let Some(slot) = inflight.get(&key).and_then(|id| self.job(*id)) {
            let (id, first_claim) = {
                let mut g = lock(&slot.inner);
                let first_claim = g.record.speculative && g.record.submissions == 0;
                g.record.submissions += 1;
                (g.record.id, first_claim)
            };
            // For the first demand claim of a speculation still in
            // flight: if it is still parked in the low-priority lane,
            // promote it to the demand lane — the speculation saved
            // nothing, so it converts to an ordinary demand job
            // (cancelled).  If it already reached a worker (or the demand
            // lane is full), the prefetch is genuinely ahead of demand: a
            // hit.
            let promoted = first_claim && self.queue.promote(id) == Promote::Promoted;
            let mut c = lock(&self.counts);
            c.submitted += 1;
            if first_claim {
                if promoted {
                    c.spec_cancelled += 1;
                } else {
                    c.spec_hit += 1;
                }
            } else {
                c.deduped += 1;
            }
            return Ok(slot.clone());
        }
        if let Some(entry) = lock(&self.memo).get(&key).cloned() {
            // Warm hit: answer synchronously with a terminal record.  A
            // result parked by speculation and claimed here for the first
            // time is credited to the prefetcher (`source:"spec"`); the
            // bytes served are the same memo entry either way.
            let spec_claim = self.spec_ready.claim(&key).is_some();
            let source: &'static str = if spec_claim { "spec" } else { "mem" };
            let id = self.next_id.fetch_add(1, Ordering::SeqCst);
            let mut record = self.new_record(id, &spec, now);
            record.state = JobState::Done;
            record.source = source;
            record.start_t_ms = now;
            record.finish_t_ms = now;
            record.sim_cycles = entry.sim_cycles;
            record.metrics = entry.metrics.clone();
            record.attr = entry.attr.clone();
            let line = progress_finish_line(
                now,
                &record.bench,
                &record.cfg,
                0,
                source,
                0,
                entry.sim_cycles,
            );
            let slot = JobSlot::new(record.clone(), vec![line], None);
            lock(&self.jobs).insert(id, slot.clone());
            {
                let mut c = lock(&self.counts);
                c.submitted += 1;
                c.completed += 1;
                if spec_claim {
                    c.spec_hit += 1;
                    c.spec_warm_hits += 1;
                } else {
                    c.mem_hits += 1;
                }
                c.sim_cycles += entry.sim_cycles;
                if let Some(a) = &entry.attr {
                    c.add_attr(a);
                }
            }
            self.metrics.observe_job(source, 0);
            self.log_record(&record);
            return Ok(slot);
        }
        // Cold path: queue for a worker.
        let id = self.next_id.fetch_add(1, Ordering::SeqCst);
        let record = self.new_record(id, &spec, now);
        let slot = JobSlot::new(record, Vec::new(), Some(spec));
        lock(&self.jobs).insert(id, slot.clone());
        self.outstanding.fetch_add(1, Ordering::SeqCst);
        match self.queue.push(id) {
            Ok(_) => {
                inflight.insert(key, id);
                let mut c = lock(&self.counts);
                c.submitted += 1;
                if self.predictor.is_some() {
                    // The predictor failed to anticipate this demand.
                    c.spec_miss += 1;
                }
                Ok(slot)
            }
            Err(e) => {
                self.outstanding.fetch_sub(1, Ordering::SeqCst);
                lock(&self.jobs).remove(&id);
                lock(&self.counts).rejected += 1;
                Err(match e {
                    PushError::Full => SubmitError::QueueFull,
                    PushError::Closed => SubmitError::Draining,
                })
            }
        }
    }

    /// Enqueue one predicted job on the speculative lane.  Silently a
    /// no-op if the key is already in flight, memoized, or the lane is
    /// full — speculation never generates errors, only missed chances.
    /// Returns whether a speculation was actually started.
    fn spec_submit(&self, spec: JobSpec) -> bool {
        if self.draining.load(Ordering::SeqCst) {
            return false;
        }
        let key = spec.dedup_key();
        let now = self.now_ms();
        let mut inflight = lock(&self.inflight);
        if inflight.contains_key(&key) || lock(&self.memo).contains_key(&key) {
            return false;
        }
        let id = self.next_id.fetch_add(1, Ordering::SeqCst);
        let mut record = self.new_record(id, &spec, now);
        record.speculative = true;
        record.submissions = 0;
        let slot = JobSlot::new(record, Vec::new(), Some(spec));
        lock(&self.jobs).insert(id, slot);
        self.outstanding.fetch_add(1, Ordering::SeqCst);
        match self.queue.push_spec(id) {
            Ok(_) => {
                inflight.insert(key, id);
                lock(&self.counts).spec_started += 1;
                true
            }
            Err(_) => {
                self.outstanding.fetch_sub(1, Ordering::SeqCst);
                lock(&self.jobs).remove(&id);
                false
            }
        }
    }

    /// A routing-tier speculation hint (`POST /hints`): enqueue `spec` on
    /// the low-priority lane exactly as a locally predicted candidate
    /// would be.  Returns whether a speculation was started — `false`
    /// when speculation is off, the daemon is draining, the point is
    /// already in flight or memoized, or the lane is full.  Hints share
    /// the local ledger (`started`, then hit/waste/cancelled/pending), so
    /// cluster-level conservation needs no extra counters.
    pub fn submit_hint(&self, spec: JobSpec) -> bool {
        if self.cfg.spec.is_none() {
            return false;
        }
        self.spec_submit(spec)
    }

    /// Record a job's terminal outcome: fill the record, publish the memo,
    /// release the dedup entry, count it, log it, wake every waiter.
    pub fn complete(&self, slot: &Arc<JobSlot>, dedup_key: &str, res: Result<Outcome, String>) {
        // `speculative` is set once at creation and never cleared, so this
        // unlocked-then-locked peek cannot misroute.
        if self.cfg.spec.is_some() && lock(&slot.inner).record.speculative {
            return self.complete_speculative(slot, dedup_key, res);
        }
        let now = self.now_ms();
        let record = {
            let mut g = lock(&slot.inner);
            g.record.finish_t_ms = now;
            match &res {
                Ok(o) => {
                    g.record.state = JobState::Done;
                    g.record.source = o.source;
                    g.record.dur_ms = o.dur_ms;
                    g.record.sim_cycles = o.sim_cycles;
                    g.record.metrics = o.metrics.clone();
                    g.record.attr = o.attr.clone();
                }
                Err(e) => {
                    g.record.state = JobState::Failed;
                    g.record.error = e.clone();
                }
            }
            g.record.clone()
        };
        if let Ok(o) = &res {
            // Memo before dedup release: a racing submission sees either
            // the in-flight entry or the memo, never neither.
            lock(&self.memo).insert(
                dedup_key.to_string(),
                Arc::new(MemoEntry {
                    metrics: o.metrics.clone(),
                    sim_cycles: o.sim_cycles,
                    attr: o.attr.clone(),
                }),
            );
        }
        lock(&self.inflight).remove(dedup_key);
        {
            let mut c = lock(&self.counts);
            match &res {
                Ok(o) => {
                    c.completed += 1;
                    c.sim_cycles += o.sim_cycles;
                    if let Some(a) = &o.attr {
                        c.add_attr(a);
                    }
                    match o.source {
                        "disk" => c.disk_hits += 1,
                        "mem" => c.mem_hits += 1,
                        _ => c.cold += 1,
                    }
                }
                Err(_) => c.failed += 1,
            }
        }
        if let Ok(o) = &res {
            self.metrics.observe_job(o.source, o.dur_ms);
        }
        self.outstanding.fetch_sub(1, Ordering::SeqCst);
        self.log_record(&record);
        slot.cv.notify_all();
    }

    /// Terminal accounting for a job the predictor started.  Takes the
    /// dedup index lock *first* (claims always hold it), so "did demand
    /// claim this before it finished?" has exactly one answer — a claimed
    /// speculation completes like any demand job, an unclaimed one parks
    /// its result in the memo and the ready index without touching the
    /// demand counters.
    fn complete_speculative(
        &self,
        slot: &Arc<JobSlot>,
        dedup_key: &str,
        res: Result<Outcome, String>,
    ) {
        let now = self.now_ms();
        let mut inflight = lock(&self.inflight);
        let (record, claimed) = {
            let mut g = lock(&slot.inner);
            let claimed = g.record.submissions > 0;
            g.record.finish_t_ms = now;
            match &res {
                Ok(o) => {
                    g.record.state = JobState::Done;
                    g.record.source = if claimed { o.source } else { "spec" };
                    g.record.dur_ms = o.dur_ms;
                    g.record.sim_cycles = o.sim_cycles;
                    g.record.metrics = o.metrics.clone();
                    g.record.attr = o.attr.clone();
                }
                Err(e) => {
                    g.record.state = JobState::Failed;
                    g.record.error = e.clone();
                }
            }
            (g.record.clone(), claimed)
        };
        if let Ok(o) = &res {
            lock(&self.memo).insert(
                dedup_key.to_string(),
                Arc::new(MemoEntry {
                    metrics: o.metrics.clone(),
                    sim_cycles: o.sim_cycles,
                    attr: o.attr.clone(),
                }),
            );
            if !claimed {
                self.spec_ready.publish(dedup_key, now);
            }
        }
        inflight.remove(dedup_key);
        drop(inflight);
        {
            let mut c = lock(&self.counts);
            match &res {
                Ok(o) => {
                    c.sim_cycles += o.sim_cycles;
                    if let Some(a) = &o.attr {
                        c.add_attr(a);
                    }
                    if claimed {
                        // A waiting demand submission is being answered:
                        // normal demand accounting.
                        c.completed += 1;
                        match o.source {
                            "disk" => c.disk_hits += 1,
                            "mem" => c.mem_hits += 1,
                            _ => c.cold += 1,
                        }
                    }
                }
                Err(_) => {
                    if claimed {
                        c.failed += 1;
                    } else {
                        // Nobody was waiting; a failed speculation is
                        // reclaimed, not a served failure.
                        c.spec_cancelled += 1;
                    }
                }
            }
        }
        if let Ok(o) = &res {
            let source = if claimed { o.source } else { "spec" };
            self.metrics.observe_job(source, o.dur_ms);
        }
        self.outstanding.fetch_sub(1, Ordering::SeqCst);
        self.log_record(&record);
        slot.cv.notify_all();
    }

    /// Reclaim expired speculation: queued unclaimed jobs older than the
    /// TTL are cancelled, parked ready results older than the TTL are
    /// reclassified as waste (their memo entries stay — a later demand is
    /// simply an ordinary `mem` hit).  Called on every demand submission
    /// and from the drain loop; a no-op when speculation is off.
    pub fn reap_stale(&self) {
        let Some(sc) = &self.cfg.spec else { return };
        let ttl_ms = sc.ttl.as_millis() as u64;
        let now = self.now_ms();
        self.reap_older_than(now, now.saturating_sub(ttl_ms));
    }

    /// Reclaim *all* pending speculation immediately (the drain barrier:
    /// queued speculations would otherwise hold `outstanding` up forever
    /// once the demand stream stops).
    pub fn purge_speculation(&self) {
        if self.cfg.spec.is_some() {
            let now = self.now_ms();
            self.reap_older_than(now, now);
        }
    }

    fn reap_older_than(&self, now: u64, cutoff_ms: u64) {
        let wasted = self.spec_ready.reap(cutoff_ms);
        if wasted > 0 {
            lock(&self.counts).spec_waste += wasted;
        }
        // The dedup index lock serializes reaping against claims, so a
        // job is either claimed (skipped here) or cancelled, never both.
        let mut inflight = lock(&self.inflight);
        for id in self.queue.spec_items() {
            let Some(slot) = self.job(id) else { continue };
            let (record, key) = {
                let mut g = lock(&slot.inner);
                if !g.record.speculative
                    || g.record.submissions > 0
                    || g.record.submit_t_ms > cutoff_ms
                    || !self.queue.remove_spec(id)
                {
                    continue;
                }
                g.record.state = JobState::Cancelled;
                g.record.finish_t_ms = now;
                let key = g.spec.take().map(|s| s.dedup_key());
                (g.record.clone(), key)
            };
            if let Some(key) = key {
                inflight.remove(&key);
            }
            lock(&self.counts).spec_cancelled += 1;
            self.outstanding.fetch_sub(1, Ordering::SeqCst);
            self.log_record(&record);
            slot.cv.notify_all();
        }
    }

    /// The built suite for one (bench, scale) — a single-workload suite,
    /// so the runner's store filenames match a direct `experiments` run
    /// of the same point byte for byte.
    pub fn suite_for(&self, bench: Bench, scale: Scale) -> Arc<Suite> {
        let mut g = lock(&self.suites);
        g.entry((bench.name(), scale.units))
            .or_insert_with(|| {
                Arc::new(Suite {
                    scale,
                    workloads: vec![bench.build(scale)],
                })
            })
            .clone()
    }

    /// The decoded slab for the trace at `path`, revision-checked against
    /// this binary.  Decoded once (block decode fanned over the worker
    /// count) and shared by every replay job that names the same path.
    pub fn trace_for(&self, path: &Path) -> Result<Arc<TraceSlab>, String> {
        if let Some(t) = lock(&self.traces).get(path) {
            return Ok(t.clone());
        }
        let trace =
            Trace::read_from(path).map_err(|e| format!("cannot load {}: {e}", path.display()))?;
        if trace.header.sim_revision != wec_core::SIM_REVISION {
            return Err(format!(
                "{}: captured at simulator revision {} but this daemon is revision {} — recapture",
                path.display(),
                trace.header.sim_revision,
                wec_core::SIM_REVISION
            ));
        }
        let slab = Arc::new(
            TraceSlab::build(&trace, self.cfg.workers.max(1))
                .map_err(|e| format!("cannot decode {}: {e}", path.display()))?,
        );
        lock(&self.traces).insert(path.to_path_buf(), slab.clone());
        Ok(slab)
    }

    /// Append one terminal record to `jobs.jsonl` (no-op without a log
    /// directory).
    fn log_record(&self, record: &JobRecord) {
        let mut g = lock(&self.jobs_log);
        if let Some(f) = g.as_mut() {
            let _ = writeln!(f, "{}", record.to_json());
        }
    }

    /// Append one `wec-access-log-v1` line to `access.jsonl` (no-op without
    /// a log directory).  `path` has already been folded to a bounded
    /// endpoint label upstream only for metrics — the log keeps the real
    /// path, JSON-escaped, for per-request forensics.
    pub fn log_access(&self, method: &str, path: &str, status: u16, dur_us: u64, bytes: u64) {
        let mut g = lock(&self.access_log);
        if let Some(f) = g.as_mut() {
            let mut line = String::with_capacity(128);
            let _ = write!(line, "{{\"t_ms\":{},\"method\":", self.now_ms());
            wec_telemetry::json::escape_into(&mut line, method);
            line.push_str(",\"path\":");
            wec_telemetry::json::escape_into(&mut line, path);
            let _ = write!(
                line,
                ",\"status\":{status},\"dur_us\":{dur_us},\"bytes\":{bytes}}}"
            );
            let _ = writeln!(f, "{line}");
        }
    }

    /// The configured cluster identity, if any (`--backend-id`).
    pub fn backend_id(&self) -> Option<&str> {
        self.backend_id.as_deref()
    }

    /// A consistent point-in-time snapshot (see [`StatsSnapshot`]).
    pub fn snapshot(&self) -> StatsSnapshot {
        let workers = self.cfg.workers.max(1) as u64;
        let c = lock(&self.counts);
        StatsSnapshot {
            uptime_ms: self.now_ms().max(1),
            workers,
            busy: self.busy.load(Ordering::SeqCst).min(workers),
            busy_ms: self.busy_ms.load(Ordering::SeqCst),
            draining: self.draining.load(Ordering::SeqCst),
            queue_depth: self.queue.depth().min(self.queue.cap()) as u64,
            queue_cap: self.queue.cap() as u64,
            outstanding: self.outstanding.load(Ordering::SeqCst),
            submitted: c.submitted,
            deduped: c.deduped,
            completed: c.completed,
            failed: c.failed,
            rejected: c.rejected,
            cold: c.cold,
            disk_hits: c.disk_hits,
            mem_hits: c.mem_hits,
            sim_cycles: c.sim_cycles,
            attr_fills: c.attr_fills,
            attr_useful: c.attr_useful,
            attr_wasted: c.attr_wasted,
            attr_victim_rescued: c.attr_victim_rescued,
            attr_still_resident: c.attr_still_resident,
            spec: self.cfg.spec.as_ref().map(|_| SpecStats {
                started: c.spec_started,
                hit: c.spec_hit,
                miss: c.spec_miss,
                waste: c.spec_waste,
                cancelled: c.spec_cancelled,
                // Derived, so hit + waste + cancelled + pending ==
                // started holds on every scrape by construction.
                pending: c
                    .spec_started
                    .saturating_sub(c.spec_hit + c.spec_waste + c.spec_cancelled),
                warm_hits: c.spec_warm_hits,
                queue_depth: self.queue.spec_depth() as u64,
                queue_cap: self.queue.spec_cap() as u64,
            }),
        }
    }

    /// The `wec-serve-stats-v1` document (`GET /stats` and `stats.json`).
    pub fn stats_json(&self) -> String {
        render_stats_json(&self.snapshot(), self.backend_id.as_deref())
    }

    /// The most recently submitted job records, newest first (the
    /// dashboard's drill-down table).
    pub fn recent_jobs(&self, n: usize) -> Vec<JobRecord> {
        let jobs = lock(&self.jobs);
        let mut records: Vec<JobRecord> = jobs.values().map(|s| s.record()).collect();
        drop(jobs);
        records.sort_unstable_by_key(|r| std::cmp::Reverse(r.id));
        records.truncate(n);
        records
    }

    /// Drain-time artifacts: `stats.json` beside the live `jobs.jsonl` and
    /// `access.jsonl`.
    pub fn write_exit_logs(&self) {
        if let Some(dir) = &self.cfg.log_dir {
            wec_bench::store::atomic_write_best_effort(&dir.join("stats.json"), &self.stats_json());
            if let Some(f) = lock(&self.jobs_log).as_mut() {
                let _ = f.flush();
            }
            if let Some(f) = lock(&self.access_log).as_mut() {
                let _ = f.flush();
            }
        }
    }
}

/// Render one snapshot as the serve-stats document.  Shared by
/// `GET /stats`, the drain-time `stats.json` and the `stats` element of
/// `GET /dashboard/data`, so all three are the same bytes for the same
/// snapshot.  Without speculation this is the `wec-serve-stats-v1`
/// document, byte-identical to a speculation-free build; with it, the
/// `wec-serve-stats-v2` superset (speculative queue gauges, a
/// `cache.spec_hits` bucket, and the `spec` conservation block).  A
/// configured `backend_id` is stamped right after the schema tag (absent
/// otherwise — same byte-identity contract as the job records).
pub fn render_stats_json(s: &StatsSnapshot, backend_id: Option<&str>) -> String {
    let jobs_per_sec = s.completed as f64 / (s.uptime_ms as f64 / 1000.0);
    let utilization = (s.busy_ms as f64 / (s.uptime_ms * s.workers) as f64).clamp(0.0, 1.0);
    let mut out = String::from(match &s.spec {
        None => "{\"schema\":\"wec-serve-stats-v1\"",
        Some(_) => "{\"schema\":\"wec-serve-stats-v2\"",
    });
    if let Some(b) = backend_id {
        out.push_str(",\"backend_id\":");
        wec_telemetry::json::escape_into(&mut out, b);
    }
    let _ = write!(
        out,
        ",\"uptime_ms\":{},\"workers\":{},\"busy_workers\":{},\"draining\":{}",
        s.uptime_ms, s.workers, s.busy, s.draining
    );
    let _ = write!(
        out,
        ",\"queue\":{{\"depth\":{},\"cap\":{},\"rejected\":{}",
        s.queue_depth, s.queue_cap, s.rejected
    );
    if let Some(sp) = &s.spec {
        let _ = write!(
            out,
            ",\"spec_depth\":{},\"spec_cap\":{}",
            sp.queue_depth, sp.queue_cap
        );
    }
    out.push('}');
    let _ = write!(
        out,
        ",\"jobs\":{{\"submitted\":{},\"deduped\":{},\"completed\":{},\"failed\":{}}}",
        s.submitted, s.deduped, s.completed, s.failed
    );
    let _ = write!(
        out,
        ",\"cache\":{{\"cold\":{},\"disk_hits\":{},\"mem_hits\":{}",
        s.cold, s.disk_hits, s.mem_hits
    );
    if let Some(sp) = &s.spec {
        let _ = write!(out, ",\"spec_hits\":{}", sp.warm_hits);
    }
    out.push('}');
    if let Some(sp) = &s.spec {
        let _ = write!(
            out,
            ",\"spec\":{{\"started\":{},\"hit\":{},\"miss\":{},\"waste\":{},\"cancelled\":{},\"pending\":{}}}",
            sp.started, sp.hit, sp.miss, sp.waste, sp.cancelled, sp.pending
        );
    }
    let _ = write!(
        out,
        ",\"throughput\":{{\"jobs_per_sec\":{jobs_per_sec:.3},\"utilization\":{utilization:.4}}}}}"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::Popped;
    use wec_telemetry::schema;

    fn state() -> Arc<ServerState> {
        ServerState::new(ServeConfig {
            workers: 2,
            queue_cap: 2,
            store: None,
            log_dir: None,
            ..ServeConfig::default()
        })
        .unwrap()
    }

    fn spec_state(queue_cap: usize, ttl: Duration) -> Arc<ServerState> {
        ServerState::new(ServeConfig {
            workers: 2,
            queue_cap,
            store: None,
            log_dir: None,
            spec: Some(SpecConfig {
                fanout: 2,
                queue_cap: 8,
                inflight_max: 1,
                ttl,
            }),
            ..ServeConfig::default()
        })
        .unwrap()
    }

    fn spec(body: &str) -> JobSpec {
        JobSpec::parse(body).unwrap()
    }

    fn ok_outcome(source: &'static str) -> Result<Outcome, String> {
        Ok(Outcome {
            source,
            metrics: Arc::new(vec![("cycles".to_string(), 42u64)]),
            sim_cycles: 42,
            dur_ms: 7,
            attr: None,
        })
    }

    fn spec_counters(s: &ServerState) -> SpecStats {
        s.snapshot().spec.unwrap()
    }

    fn assert_conserved(s: &ServerState) {
        let sp = spec_counters(s);
        assert_eq!(
            sp.hit + sp.waste + sp.cancelled + sp.pending,
            sp.started,
            "{sp:?}"
        );
    }

    #[test]
    fn identical_submissions_share_one_job() {
        let s = state();
        let a = s.submit(spec("{\"bench\": \"181.mcf\"}")).unwrap();
        let b = s.submit(spec("{\"bench\": \"181.mcf\"}")).unwrap();
        assert_eq!(a.record().id, b.record().id);
        assert_eq!(b.record().submissions, 2);
        assert_eq!(s.queue.depth(), 1, "one execution queued");
        // A different configuration is its own job.
        let c = s
            .submit(spec(
                "{\"bench\": \"181.mcf\", \"cfg\": {\"side_entries\": 16}}",
            ))
            .unwrap();
        assert_ne!(a.record().id, c.record().id);
    }

    #[test]
    fn full_queue_rejects_and_draining_refuses() {
        let s = state();
        s.submit(spec("{\"bench\": \"181.mcf\"}")).unwrap();
        s.submit(spec("{\"bench\": \"164.gzip\"}")).unwrap();
        let err = s.submit(spec("{\"bench\": \"175.vpr\"}")).unwrap_err();
        assert_eq!(err, SubmitError::QueueFull);
        s.draining.store(true, Ordering::SeqCst);
        let err = s.submit(spec("{\"bench\": \"177.mesa\"}")).unwrap_err();
        assert_eq!(err, SubmitError::Draining);
        assert_eq!(s.outstanding(), 2);
    }

    #[test]
    fn completion_publishes_memo_and_serves_warm_hits() {
        let s = state();
        let spec1 = spec("{\"bench\": \"181.mcf\"}");
        let key = spec1.dedup_key();
        let slot = s.submit(spec1).unwrap();
        assert_eq!(s.queue.pop(), Some(Popped::Demand(slot.record().id)));
        let metrics = Arc::new(vec![("cycles".to_string(), 42u64)]);
        s.complete(
            &slot,
            &key,
            Ok(Outcome {
                source: "cold",
                metrics: metrics.clone(),
                sim_cycles: 42,
                dur_ms: 7,
                attr: None,
            }),
        );
        assert!(slot.wait_terminal(Duration::from_secs(1)));
        assert_eq!(slot.record().state, JobState::Done);
        assert_eq!(s.outstanding(), 0);

        // Same spec again: answered from the memo, no queueing.
        let warm = s.submit(spec("{\"bench\": \"181.mcf\"}")).unwrap();
        let rec = warm.record();
        assert_eq!(rec.state, JobState::Done);
        assert_eq!(rec.source, "mem");
        assert_eq!(rec.metrics, metrics);
        assert_eq!(s.queue.depth(), 0);
        schema::validate_serve_stats_json(&s.stats_json()).unwrap();
    }

    #[test]
    fn failures_release_the_dedup_entry_without_memoizing() {
        let s = state();
        let spec1 = spec("{\"bench\": \"181.mcf\"}");
        let key = spec1.dedup_key();
        let slot = s.submit(spec1).unwrap();
        s.queue.pop().unwrap();
        s.complete(&slot, &key, Err("induced failure".to_string()));
        let rec = slot.record();
        assert_eq!(rec.state, JobState::Failed);
        assert_eq!(rec.error, "induced failure");
        // Resubmission runs fresh — not deduped onto the failure, not warm.
        let again = s.submit(spec("{\"bench\": \"181.mcf\"}")).unwrap();
        assert_ne!(again.record().id, rec.id);
        assert_eq!(again.record().state, JobState::Queued);
        schema::validate_serve_stats_json(&s.stats_json()).unwrap();
    }

    #[test]
    fn snapshot_reconciles_sources_and_accumulates_cycles() {
        let s = state();
        let spec1 = spec("{\"bench\": \"181.mcf\"}");
        let key = spec1.dedup_key();
        let slot = s.submit(spec1).unwrap();
        s.queue.pop().unwrap();
        s.complete(
            &slot,
            &key,
            Ok(Outcome {
                source: "cold",
                metrics: Arc::new(vec![("cycles".to_string(), 42u64)]),
                sim_cycles: 42,
                dur_ms: 7,
                attr: None,
            }),
        );
        // Warm hit accumulates the memoized cycle count too.
        s.submit(spec("{\"bench\": \"181.mcf\"}")).unwrap();
        let snap = s.snapshot();
        assert_eq!(snap.cold + snap.disk_hits + snap.mem_hits, snap.completed);
        assert_eq!(snap.completed, 2);
        assert_eq!(snap.sim_cycles, 84);
        schema::validate_serve_stats_json(&render_stats_json(&snap, None)).unwrap();
        // The exposition's job counters come from the same snapshot type.
        let page = s.metrics.render_prometheus(&snap, None);
        assert!(page.contains("wec_serve_jobs_completed_total{source=\"cold\"} 1"));
        assert!(page.contains("wec_serve_jobs_completed_total{source=\"mem\"} 1"));
        assert!(page.contains("wec_serve_sim_cycles_total 84"));
    }

    #[test]
    fn speculation_off_renders_v1_with_no_spec_series() {
        let s = state();
        let snap = s.snapshot();
        assert!(snap.spec.is_none());
        let js = render_stats_json(&snap, None);
        assert!(js.starts_with("{\"schema\":\"wec-serve-stats-v1\""));
        assert!(!js.contains("spec"), "{js}");
        assert!(!js.contains("backend_id"), "{js}");
        schema::validate_serve_stats_json(&js).unwrap();
    }

    #[test]
    fn backend_id_is_stamped_into_records_and_stats_when_configured() {
        let s = ServerState::new(ServeConfig {
            workers: 2,
            queue_cap: 2,
            store: None,
            log_dir: None,
            backend_id: Some("node-a".to_string()),
            ..ServeConfig::default()
        })
        .unwrap();
        let slot = s.submit(spec("{\"bench\": \"181.mcf\"}")).unwrap();
        let js = slot.record().to_json();
        assert!(js.contains("\"backend_id\":\"node-a\""), "{js}");
        let stats = s.stats_json();
        assert!(
            stats.starts_with("{\"schema\":\"wec-serve-stats-v1\",\"backend_id\":\"node-a\""),
            "{stats}"
        );
        schema::validate_serve_stats_json(&stats).unwrap();
    }

    #[test]
    fn hints_feed_the_spec_lane_and_share_the_conservation_ledger() {
        // Speculation off: hints are refused, nothing counted.
        let s = state();
        assert!(!s.submit_hint(spec("{\"bench\": \"181.mcf\"}")));
        assert!(s.snapshot().spec.is_none());

        let s = spec_state(2, Duration::from_secs(600));
        assert!(s.submit_hint(spec("{\"bench\": \"181.mcf\"}")));
        assert_eq!(spec_counters(&s).started, 1);
        assert_eq!(s.queue.spec_depth(), 1, "hint parked on the spec lane");
        assert_eq!(s.queue.depth(), 0, "demand lane untouched");
        // A duplicate hint is a silent no-op (already in flight).
        assert!(!s.submit_hint(spec("{\"bench\": \"181.mcf\"}")));
        assert_eq!(spec_counters(&s).started, 1);
        assert_conserved(&s);
        // Draining refuses hints outright.
        s.draining.store(true, Ordering::SeqCst);
        assert!(!s.submit_hint(spec("{\"bench\": \"164.gzip\"}")));
        assert_eq!(spec_counters(&s).started, 1);
    }

    #[test]
    fn unclaimed_speculation_parks_a_result_the_first_demand_claims_as_spec() {
        let s = spec_state(2, Duration::from_secs(600));
        let sp = spec("{\"bench\": \"181.mcf\"}");
        let key = sp.dedup_key();
        s.spec_submit(sp);
        assert_eq!(spec_counters(&s).started, 1);
        let popped = s.queue.pop().unwrap();
        assert!(matches!(popped, Popped::Spec(_)));
        let slot = s.job(popped.id()).unwrap();
        s.complete(&slot, &key, ok_outcome("cold"));
        let rec = slot.record();
        assert_eq!(rec.state, JobState::Done);
        assert_eq!(rec.source, "spec");
        assert_eq!(rec.submissions, 0, "nobody asked for it yet");
        assert!(rec.speculative);
        assert_eq!(s.snapshot().completed, 0, "unclaimed work served nobody");
        assert_eq!(s.outstanding(), 0);
        assert_conserved(&s);

        // First matching demand: synchronous warm hit credited to the
        // prefetcher, same memoized bytes as an on-demand run.
        let warm = s.submit_demand(spec("{\"bench\": \"181.mcf\"}")).unwrap();
        let wrec = warm.record();
        assert_eq!(wrec.state, JobState::Done);
        assert_eq!(wrec.source, "spec");
        assert_eq!(wrec.metrics, rec.metrics);
        let cnt = spec_counters(&s);
        assert_eq!((cnt.hit, cnt.warm_hits, cnt.pending), (1, 1, 0));
        assert_conserved(&s);

        // Second identical demand is an ordinary mem hit — the credit is
        // claimed exactly once.
        let again = s.submit_demand(spec("{\"bench\": \"181.mcf\"}")).unwrap();
        assert_eq!(again.record().source, "mem");
        assert_eq!(spec_counters(&s).hit, 1);
        let snap = s.snapshot();
        assert_eq!(
            snap.cold + snap.disk_hits + snap.mem_hits + snap.spec.unwrap().warm_hits,
            snap.completed
        );
        schema::validate_serve_stats_json(&s.stats_json()).unwrap();
    }

    #[test]
    fn demand_claim_of_a_queued_speculation_promotes_to_one_execution() {
        let s = spec_state(2, Duration::from_secs(600));
        let sp = spec("{\"bench\": \"181.mcf\"}");
        let key = sp.dedup_key();
        s.spec_submit(sp);
        assert_eq!(s.queue.spec_depth(), 1);
        let demand = s.submit_demand(spec("{\"bench\": \"181.mcf\"}")).unwrap();
        let rec = demand.record();
        assert_eq!(rec.submissions, 1);
        assert!(rec.speculative, "the claimed slot is the speculative one");
        assert_eq!(s.queue.depth(), 1, "promoted to the demand lane");
        assert_eq!(s.queue.spec_depth(), 0);
        assert_eq!(spec_counters(&s).cancelled, 1, "claim-before-start");
        let popped = s.queue.pop().unwrap();
        assert_eq!(popped, Popped::Demand(rec.id), "exactly one execution");
        s.complete(&s.job(rec.id).unwrap(), &key, ok_outcome("cold"));
        let snap = s.snapshot();
        assert_eq!((snap.completed, snap.cold), (1, 1));
        assert_conserved(&s);
        schema::validate_serve_stats_json(&s.stats_json()).unwrap();
    }

    #[test]
    fn demand_claim_of_a_running_speculation_is_a_hit() {
        let s = spec_state(2, Duration::from_secs(600));
        let sp = spec("{\"bench\": \"181.mcf\"}");
        let key = sp.dedup_key();
        s.spec_submit(sp);
        let popped = s.queue.pop().unwrap();
        assert!(matches!(popped, Popped::Spec(_)), "worker holds it");
        let demand = s.submit_demand(spec("{\"bench\": \"181.mcf\"}")).unwrap();
        assert_eq!(demand.record().id, popped.id(), "deduped onto the spec job");
        assert_eq!(spec_counters(&s).hit, 1, "prefetch was in flight");
        let slot = s.job(popped.id()).unwrap();
        s.complete(&slot, &key, ok_outcome("cold"));
        let rec = slot.record();
        assert_eq!(rec.state, JobState::Done);
        assert_eq!(rec.source, "cold", "claimed completions count normally");
        let snap = s.snapshot();
        assert_eq!((snap.completed, snap.cold), (1, 1));
        assert_conserved(&s);
    }

    #[test]
    fn ttl_reaping_cancels_queued_and_wastes_parked_speculation() {
        let s = spec_state(2, Duration::from_millis(0));
        // Queued past TTL: cancelled, queue and drain barrier released.
        s.spec_submit(spec("{\"bench\": \"181.mcf\"}"));
        assert_eq!(s.outstanding(), 1);
        s.reap_stale();
        let cnt = spec_counters(&s);
        assert_eq!(cnt.cancelled, 1);
        assert_eq!(s.queue.spec_depth(), 0);
        assert_eq!(s.outstanding(), 0);
        assert_conserved(&s);

        // Parked ready result past TTL: waste — but the memo survives, so
        // a later demand is still an ordinary mem hit.
        let sp = spec("{\"bench\": \"164.gzip\"}");
        let key = sp.dedup_key();
        s.spec_submit(sp);
        let p = s.queue.pop().unwrap();
        s.complete(&s.job(p.id()).unwrap(), &key, ok_outcome("cold"));
        s.queue.spec_done();
        s.reap_stale();
        let cnt = spec_counters(&s);
        assert_eq!(cnt.waste, 1);
        assert_conserved(&s);
        let warm = s.submit_demand(spec("{\"bench\": \"164.gzip\"}")).unwrap();
        assert_eq!(warm.record().source, "mem");

        // A failed unclaimed speculation is reclaimed, not a served
        // failure.
        let sp = spec("{\"bench\": \"175.vpr\"}");
        let key = sp.dedup_key();
        s.spec_submit(sp);
        let p = s.queue.pop().unwrap();
        s.complete(&s.job(p.id()).unwrap(), &key, Err("induced".to_string()));
        s.queue.spec_done();
        let cnt = spec_counters(&s);
        assert_eq!(cnt.cancelled, 2);
        assert_eq!(s.snapshot().failed, 0);
        assert_conserved(&s);
        schema::validate_serve_stats_json(&s.stats_json()).unwrap();
    }

    #[test]
    fn demand_submissions_drive_the_predictor_and_count_misses() {
        let s = spec_state(4, Duration::from_secs(600));
        s.submit(spec("{\"bench\": \"181.mcf\"}")).unwrap();
        let cnt = spec_counters(&s);
        assert_eq!(cnt.miss, 1, "cold demand the predictor never saw coming");
        assert_eq!(cnt.started, 2, "fanout-2 candidates enqueued");
        assert_eq!(s.queue.spec_depth(), 2);
        assert_eq!(s.queue.depth(), 1, "demand lane untouched by speculation");
        assert_conserved(&s);
        // Drain purge reclaims everything queued speculatively.
        s.purge_speculation();
        let cnt = spec_counters(&s);
        assert_eq!(cnt.cancelled, 2);
        assert_eq!((cnt.pending, s.queue.spec_depth() as u64), (0, 0));
        assert_eq!(s.outstanding(), 1, "the demand job itself remains");
        schema::validate_serve_stats_json(&s.stats_json()).unwrap();
    }
}
