//! Chrome trace-event / Perfetto exporter.
//!
//! Emits the JSON object format (`{"traceEvents":[…]}`) that
//! <https://ui.perfetto.dev> and `chrome://tracing` load directly.  The
//! machine maps simulated state onto the trace model as:
//!
//! * one *thread track* per thread unit (`tid` = TU index) carrying
//!   duration spans (`ph:"B"`/`"E"`) for each simulated thread's residency —
//!   spans are renamed at the wrong-mark so spawn→wrong→death phases are
//!   visible at a glance;
//! * instant events (`ph:"i"`) on the owning TU track for cache events;
//! * counter tracks (`ph:"C"`) for sampled quantities such as WEC occupancy.
//!
//! Timestamps are simulated cycles passed straight through as microseconds —
//! Perfetto's units only affect the displayed scale, and 1 cycle = 1 µs
//! keeps the numbers readable.

use std::fmt::Write as _;
use std::path::Path;

use crate::json::escape_into;

/// Builder for one Chrome trace-event JSON document.
#[derive(Clone, Debug)]
pub struct PerfettoTrace {
    out: String,
    events: u64,
}

impl Default for PerfettoTrace {
    fn default() -> Self {
        Self::new()
    }
}

impl PerfettoTrace {
    pub fn new() -> Self {
        PerfettoTrace {
            out: String::from("{\"traceEvents\":[\n"),
            events: 0,
        }
    }

    fn sep(&mut self) {
        if self.events > 0 {
            self.out.push_str(",\n");
        }
        self.events += 1;
    }

    /// Number of trace events recorded so far.
    pub fn len(&self) -> u64 {
        self.events
    }

    pub fn is_empty(&self) -> bool {
        self.events == 0
    }

    /// Name a thread track (`tid`), e.g. `"TU3"`.
    pub fn thread_name(&mut self, tid: u32, name: &str) {
        self.sep();
        self.out
            .push_str("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":");
        let _ = write!(self.out, "{tid},\"args\":{{\"name\":");
        escape_into(&mut self.out, name);
        self.out.push_str("}}");
    }

    /// Open a duration span on a track.
    pub fn begin_span(&mut self, tid: u32, ts: u64, name: &str) {
        self.sep();
        self.out.push_str("{\"name\":");
        escape_into(&mut self.out, name);
        let _ = write!(
            self.out,
            ",\"ph\":\"B\",\"pid\":0,\"tid\":{tid},\"ts\":{ts}}}"
        );
    }

    /// Close the innermost open span on a track.
    pub fn end_span(&mut self, tid: u32, ts: u64) {
        self.sep();
        let _ = write!(
            self.out,
            "{{\"ph\":\"E\",\"pid\":0,\"tid\":{tid},\"ts\":{ts}}}"
        );
    }

    /// A zero-duration instant on a track (`s:"t"` = thread scope).
    pub fn instant(&mut self, tid: u32, ts: u64, name: &str) {
        self.sep();
        self.out.push_str("{\"name\":");
        escape_into(&mut self.out, name);
        let _ = write!(
            self.out,
            ",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":{tid},\"ts\":{ts}}}"
        );
    }

    /// A counter sample; rendered as its own track.
    pub fn counter(&mut self, ts: u64, name: &str, value: u64) {
        self.sep();
        self.out.push_str("{\"name\":");
        escape_into(&mut self.out, name);
        let _ = write!(
            self.out,
            ",\"ph\":\"C\",\"pid\":0,\"ts\":{ts},\"args\":{{\"value\":{value}}}}}"
        );
    }

    /// Close the document and return the JSON text.
    pub fn finish(mut self) -> String {
        self.out.push_str("\n]}\n");
        self.out
    }

    /// Close the document and write it to a file.
    pub fn write_to(self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn produces_loadable_trace_json() {
        let mut t = PerfettoTrace::new();
        t.thread_name(0, "TU0");
        t.begin_span(0, 10, "T1");
        t.instant(0, 15, "wec_fill @0x40");
        t.counter(20, "wec_occupancy", 5);
        t.end_span(0, 30);
        assert_eq!(t.len(), 5);
        let doc = json::parse(&t.finish()).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(events.len(), 5);
        assert_eq!(events[1].get("ph").unwrap().as_str(), Some("B"));
        assert_eq!(events[1].get("ts").unwrap().as_u64(), Some(10));
        assert_eq!(events[4].get("ph").unwrap().as_str(), Some("E"));
    }

    #[test]
    fn empty_trace_is_valid_json() {
        let doc = json::parse(&PerfettoTrace::new().finish()).unwrap();
        assert_eq!(doc.get("traceEvents").unwrap().as_array().unwrap().len(), 0);
    }
}
