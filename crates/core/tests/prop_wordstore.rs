//! Property tests: the epoch-tagged open-addressed [`WordStore`] against a
//! plain byte-map reference, through the same unaligned store/gather
//! surface the memory buffer drives it with.

use std::collections::BTreeMap;

use proptest::prelude::*;
use wec_core::membuf::WordStore;

#[derive(Debug, Clone)]
enum Op {
    /// Unaligned byte-granular store (may span two words).
    Store { addr: u64, bytes: u64, value: u64 },
    /// Check an unaligned gather against the byte map.
    Gather { addr: u64, bytes: u64 },
    /// O(1) epoch-bump clear.
    Clear,
}

fn ops() -> impl Strategy<Value = Op> {
    // A deliberately small, unaligned window so stores overlap, straddle
    // word boundaries and collide in the hash table.
    let addr = 0u64..96;
    let bytes = proptest::sample::select(vec![1u64, 2, 4, 8]);
    // Clear appears once among five arms, so most sequences accumulate
    // state between clears.
    prop_oneof![
        (addr.clone(), bytes.clone(), any::<u64>()).prop_map(|(addr, bytes, value)| Op::Store {
            addr,
            bytes,
            value
        }),
        (addr.clone(), bytes.clone(), any::<u64>()).prop_map(|(addr, bytes, value)| Op::Store {
            addr,
            bytes,
            value
        }),
        (addr.clone(), bytes.clone()).prop_map(|(addr, bytes)| Op::Gather { addr, bytes }),
        (addr, bytes).prop_map(|(addr, bytes)| Op::Gather { addr, bytes }),
        Just(Op::Clear),
    ]
}

/// Reference gather over a byte map: mask bit `i` set iff byte `addr + i`
/// is present; absent lanes of the value are zero.
fn ref_gather(map: &BTreeMap<u64, u8>, addr: u64, bytes: u64) -> (u8, u64) {
    let mut mask = 0u8;
    let mut value = 0u64;
    for i in 0..bytes {
        if let Some(&b) = map.get(&(addr + i)) {
            mask |= 1 << i;
            value |= (b as u64) << (8 * i);
        }
    }
    (mask, value)
}

/// Flatten `entries_sorted` back into a byte map.
fn store_bytes(ws: &WordStore) -> BTreeMap<u64, u8> {
    let mut out = BTreeMap::new();
    for (word, mask, value) in ws.entries_sorted() {
        for i in 0..8u64 {
            if mask & (1 << i) != 0 {
                out.insert(word + i, (value >> (8 * i)) as u8);
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn wordstore_matches_byte_map(seq in proptest::collection::vec(ops(), 1..200)) {
        let mut ws = WordStore::new();
        let mut reference: BTreeMap<u64, u8> = BTreeMap::new();
        for op in seq {
            match op {
                Op::Store { addr, bytes, value } => {
                    ws.store(addr, bytes, value);
                    for i in 0..bytes {
                        reference.insert(addr + i, (value >> (8 * i)) as u8);
                    }
                }
                Op::Gather { addr, bytes } => {
                    prop_assert_eq!(
                        ws.gather(addr, bytes),
                        ref_gather(&reference, addr, bytes),
                        "gather {:#x}+{}", addr, bytes
                    );
                }
                Op::Clear => {
                    ws.clear();
                    reference.clear();
                }
            }
            prop_assert_eq!(ws.byte_count(), reference.len());
        }
        prop_assert_eq!(store_bytes(&ws), reference);
        let words: std::collections::BTreeSet<u64> =
            reference.keys().map(|a| a & !7).collect();
        prop_assert_eq!(ws.word_count(), words.len());
    }

    /// Growth torture: enough distinct words to force several rehashes,
    /// interleaved with clears so stale epochs and fresh entries share
    /// slots. Nothing from a previous epoch may survive.
    #[test]
    fn wordstore_grows_and_clears_cleanly(
        rounds in proptest::collection::vec(
            proptest::collection::vec((0u64..4096, any::<u64>()), 1..300),
            1..4,
        )
    ) {
        let mut ws = WordStore::new();
        for stores in rounds {
            ws.clear();
            let mut reference: BTreeMap<u64, u8> = BTreeMap::new();
            for &(slot, value) in &stores {
                let addr = slot * 8;
                ws.store(addr, 8, value);
                for i in 0..8 {
                    reference.insert(addr + i, (value >> (8 * i)) as u8);
                }
            }
            prop_assert_eq!(store_bytes(&ws), reference);
        }
    }

    /// Word-aligned writes with arbitrary masks keep absent lanes zeroed in
    /// the stored value (the invariant `check_load` relies on to OR
    /// own/released words together).
    #[test]
    fn wordstore_write_keeps_absent_lanes_zero(
        writes in proptest::collection::vec(
            (0u64..16, any::<u8>(), any::<u64>()),
            1..50,
        )
    ) {
        let mut ws = WordStore::new();
        for &(slot, mask, value) in &writes {
            if mask == 0 {
                continue;
            }
            ws.write(slot * 8, mask, value);
        }
        for (_, mask, value) in ws.entries_sorted() {
            let mut keep = 0u64;
            for i in 0..8u64 {
                if mask & (1 << i) != 0 {
                    keep |= 0xffu64 << (8 * i);
                }
            }
            prop_assert_eq!(value & !keep, 0, "absent lanes leaked into the value");
        }
    }
}
