//! Example support crate; the runnable examples are the `[[bin]]` targets.
