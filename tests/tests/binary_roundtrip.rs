//! The paper's Figure 7 pipeline, end to end: a program built by the
//! workload layer survives encoding to the "superthreaded binary" format
//! and back, and the reloaded binary simulates identically.

use wec_core::config::ProcPreset;
use wec_core::machine::Machine;
use wec_isa::Program;
use wec_workloads::{Bench, Scale};

#[test]
fn workload_binaries_roundtrip_and_rerun_identically() {
    let w = Bench::Parser.build(Scale::SMOKE);
    let words = w.program.encode_text();
    let mut reloaded = Program::decode_text(w.program.name.as_str(), &words).unwrap();
    assert_eq!(reloaded.text, w.program.text);
    // Labels are lost in a binary; entry and data must be carried over.
    reloaded.entry = w.program.entry;
    reloaded.data = w.program.data.clone();

    let cfg = ProcPreset::WthWpWec.machine(4);
    let mut a = Machine::new(cfg.clone(), &w.program).unwrap();
    let ra = a.run().unwrap();
    let mut b = Machine::new(cfg, &reloaded).unwrap();
    let rb = b.run().unwrap();
    assert_eq!(ra.cycles, rb.cycles);
    assert_eq!(ra.checksum, rb.checksum);
    assert_eq!(a.memory().read_u64(w.check_addr).unwrap(), w.expected_check);
    assert_eq!(b.memory().read_u64(w.check_addr).unwrap(), w.expected_check);
}

#[test]
fn assembled_source_runs_on_the_machine() {
    // A small hand-written superthreaded program through the assembler.
    let src = r#"
        .data
        out:  .dword 0 0 0 0 0 0 0 0
        .text
        la   r20, =out
        li   r22, 8
        li   r1, 0
        begin 1
    body:
        mv   r3, r1
        addi r1, r1, 1
        fork r1, body
        tsagdone
        slli r4, r3, 3
        add  r4, r20, r4
        addi r5, r3, 40
        sd   r5, 0(r4)
        blt  r1, r22, done
        abort seq
    done:
        thread_end
    seq:
        halt
    "#;
    let prog = wec_isa::asm::assemble("asm-sta", src).unwrap();
    let mut m = Machine::new(ProcPreset::WthWpWec.machine(4), &prog).unwrap();
    m.run().unwrap();
    // `out` is the first data allocation; its address is the `la` immediate
    // in the first instruction.
    let wec_isa::inst::Inst::Li { imm, .. } = prog.text[0] else {
        panic!("expected la as the first instruction");
    };
    let base = wec_common::ids::Addr(imm as u64);
    for k in 0..8u64 {
        assert_eq!(m.memory().read_u64(base + 8 * k).unwrap(), 40 + k);
    }
}

#[test]
fn disassembled_text_reassembles_identically() {
    // Builder → disassembler → assembler round trip on a real workload.
    let w = wec_workloads::Bench::Vpr.build(wec_workloads::Scale::SMOKE);
    let src = wec_isa::disasm::disassemble_program(&w.program);
    let back = wec_isa::asm::assemble("rt", &src).unwrap();
    assert_eq!(back.text, w.program.text);
}
