//! End-to-end telemetry: turning the instruments on must not change the
//! simulation, and what they write must match the published schemas.

use std::path::PathBuf;

use wec_core::config::ProcPreset;
use wec_core::MachineConfig;
use wec_telemetry::{schema, TelemetryConfig};
use wec_workloads::{run_and_verify, Bench, Scale};

fn traced_cfg(out_dir: Option<PathBuf>) -> MachineConfig {
    let mut cfg = ProcPreset::WthWpWec.machine(8);
    cfg.telemetry = TelemetryConfig {
        trace_events: true,
        sample_interval: 500,
        profile: false,
        out_dir,
    };
    cfg
}

/// The zero-cost-when-off guarantee, observed from the outside: a traced
/// run and an untraced run of the same workload produce byte-identical
/// metrics (the golden-file serialization), cycle counts, and checksums.
#[test]
fn telemetry_does_not_perturb_the_simulation() {
    let w = Bench::Mcf.build(Scale::SMOKE);
    let off = run_and_verify(&w, ProcPreset::WthWpWec.machine(8)).unwrap();
    let on = run_and_verify(&w, traced_cfg(None)).unwrap();

    assert_eq!(off.cycles, on.cycles);
    assert_eq!(off.checksum, on.checksum);
    assert_eq!(off.metrics.to_kv(), on.metrics.to_kv());
    assert!(off.telemetry.is_none());

    let tel = on.telemetry.expect("traced run must attach a summary");
    assert!(tel.events_total > 0);
    assert!(tel.samples > 0);
    assert!(tel.files.is_empty(), "no out_dir, nothing written");
    // The WEC preset on mcf must show the paper's mechanism working.
    assert!(tel.kind_count("wrong_load_issue") > 0);
    assert!(tel.kind_count("wec_fill") > 0);
    assert!(tel.kind_count("wec_hit") > 0);
    let names: Vec<&str> = tel.histograms.iter().map(|h| h.name).collect();
    assert_eq!(
        names,
        ["load_to_fill", "wec_fill_to_hit", "wrong_thread_lifetime"]
    );
}

/// A traced run's artifacts parse under the schema validators, and the
/// event stream contains the kinds the paper's analysis needs.
#[test]
fn telemetry_artifacts_validate_against_schemas() {
    let dir = std::env::temp_dir().join(format!("wec-telemetry-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let w = Bench::Mcf.build(Scale::SMOKE);
    let mut cfg = traced_cfg(Some(dir.clone()));
    cfg.core.commit_trace = 32;
    let r = run_and_verify(&w, cfg).unwrap();
    let tel = r.telemetry.unwrap();
    assert_eq!(
        tel.files.len(),
        5,
        "events/commits/timeseries/hists/perfetto"
    );

    let events = std::fs::read_to_string(dir.join("events.jsonl")).unwrap();
    let report = schema::validate_events_jsonl(&events).unwrap();
    assert_eq!(report.total + tel.kind_count("commit"), tel.events_total);
    for kind in [
        "wrong_load_issue",
        "wec_fill",
        "wec_hit",
        "l1_miss",
        "l2_miss",
    ] {
        assert!(report.count_of(kind) > 0, "missing {kind} events");
        assert_eq!(report.count_of(kind), tel.kind_count(kind), "{kind}");
    }

    let commits = std::fs::read_to_string(dir.join("commits.jsonl")).unwrap();
    let creport = schema::validate_events_jsonl(&commits).unwrap();
    assert_eq!(creport.count_of("commit"), creport.total);
    assert_eq!(creport.total, tel.kind_count("commit"));
    assert!(creport.total > 0 && creport.total <= 32 * 8);

    let csv = std::fs::read_to_string(dir.join("timeseries.csv")).unwrap();
    let rows = schema::validate_timeseries_csv(&csv).unwrap();
    assert_eq!(rows as u64, tel.samples);

    let hists = std::fs::read_to_string(dir.join("histograms.json")).unwrap();
    let names = schema::validate_histograms_json(&hists).unwrap();
    assert_eq!(
        names,
        ["load_to_fill", "wec_fill_to_hit", "wrong_thread_lifetime"]
    );

    let perfetto = std::fs::read_to_string(dir.join("trace.perfetto.json")).unwrap();
    assert!(schema::validate_perfetto(&perfetto).unwrap() > 0);

    std::fs::remove_dir_all(&dir).unwrap();
}

/// Sampling alone (no event trace) writes the time-series and histograms
/// but no JSONL or Perfetto files, and still leaves metrics untouched.
#[test]
fn sample_only_mode_writes_csv_and_histograms() {
    let dir = std::env::temp_dir().join(format!("wec-telemetry-sample-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let w = Bench::Gzip.build(Scale::SMOKE);
    let off = run_and_verify(&w, ProcPreset::WthWpWec.machine(8)).unwrap();
    let mut cfg = ProcPreset::WthWpWec.machine(8);
    cfg.telemetry = TelemetryConfig {
        trace_events: false,
        sample_interval: 200,
        profile: false,
        out_dir: Some(dir.clone()),
    };
    let on = run_and_verify(&w, cfg).unwrap();
    assert_eq!(off.metrics.to_kv(), on.metrics.to_kv());

    let tel = on.telemetry.unwrap();
    assert_eq!(tel.events_total, 0, "no event trace requested");
    assert!(tel.samples > 0);
    assert!(dir.join("timeseries.csv").exists());
    assert!(dir.join("histograms.json").exists());
    assert!(!dir.join("events.jsonl").exists());
    assert!(!dir.join("trace.perfetto.json").exists());

    std::fs::remove_dir_all(&dir).unwrap();
}

/// The cycle-loop self-profiler: profiling must not change the simulated
/// outcome, its report must be internally consistent, and `profile.json`
/// must validate against the published schema.  With the event trace on
/// too, the Perfetto export grows per-phase counter tracks.
#[test]
fn profiling_attributes_cycle_time_without_perturbing_metrics() {
    let dir = std::env::temp_dir().join(format!("wec-telemetry-prof-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let w = Bench::Mcf.build(Scale::SMOKE);
    let off = run_and_verify(&w, ProcPreset::WthWpWec.machine(8)).unwrap();
    let mut cfg = ProcPreset::WthWpWec.machine(8);
    cfg.telemetry = TelemetryConfig {
        trace_events: false,
        sample_interval: 0,
        profile: true,
        out_dir: Some(dir.clone()),
    };
    let on = run_and_verify(&w, cfg).unwrap();
    assert_eq!(off.cycles, on.cycles);
    assert_eq!(off.checksum, on.checksum);
    assert_eq!(off.metrics.to_kv(), on.metrics.to_kv());

    let tel = on.telemetry.unwrap();
    let prof = tel.profile.as_ref().expect("profiling run must report");
    assert!(prof.sampled_cycles > 0);
    assert!(prof.sampled_cycles <= prof.total_cycles);
    assert_eq!(prof.total_cycles, on.cycles);
    assert!(prof.wall_ns_sampled() > 0, "sampled phases took no time?");
    let shares = prof.shares();
    assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-9);

    // histograms.json is written whenever an out_dir is set; profile.json
    // is the only other artifact of a profile-only run.
    assert_eq!(tel.files.len(), 2, "histograms + profile only");
    let text = std::fs::read_to_string(dir.join("profile.json")).unwrap();
    let phases = schema::validate_profile_json(&text).unwrap();
    assert!(phases.contains(&"exec".to_string()));

    // Same run with the event trace on: Perfetto gains prof_* counters.
    let mut cfg = traced_cfg(Some(dir.clone()));
    cfg.telemetry.profile = true;
    let traced = run_and_verify(&w, cfg).unwrap();
    assert_eq!(traced.metrics.to_kv(), off.metrics.to_kv());
    // events + timeseries + histograms + perfetto + profile (no commit trace).
    assert_eq!(traced.telemetry.unwrap().files.len(), 5);
    let perfetto = std::fs::read_to_string(dir.join("trace.perfetto.json")).unwrap();
    assert!(schema::validate_perfetto(&perfetto).unwrap() > 0);
    assert!(perfetto.contains("prof_exec_ns"), "profiler counter track");

    std::fs::remove_dir_all(&dir).unwrap();
}
