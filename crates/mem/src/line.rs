//! Cache-line metadata.
//!
//! Lines carry no data (see the crate docs); they carry the tag plus the
//! flag bits the paper's mechanisms key on: dirty (write-back), *fetched by
//! wrong execution* (the WEC triggers a next-line prefetch when a correct
//! load first hits such a block) and *prefetched, not yet referenced* (the
//! tagged next-line prefetcher of the `nlp` configuration re-arms on the
//! first demand hit to a prefetched block).

/// Per-line flag bits.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct LineFlags {
    /// Block has been written and must be written back on eviction.
    pub dirty: bool,
    /// Block was brought in by a wrong-path or wrong-thread load.
    pub wrong_fetched: bool,
    /// Block was brought in by a prefetch and has not been demand-hit yet.
    pub prefetched: bool,
}

impl LineFlags {
    /// Flags for a block fetched by a correct-path demand miss.
    pub const DEMAND: LineFlags = LineFlags {
        dirty: false,
        wrong_fetched: false,
        prefetched: false,
    };

    /// Flags for a block fetched by a wrong-execution load.
    pub const WRONG: LineFlags = LineFlags {
        dirty: false,
        wrong_fetched: true,
        prefetched: false,
    };

    /// Flags for a prefetched block.
    pub const PREFETCH: LineFlags = LineFlags {
        dirty: false,
        wrong_fetched: false,
        prefetched: true,
    };
}

/// One cache line: a tag plus metadata. Invalid lines are represented by
/// `None` slots in the set, so a `Line` is always valid.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Line {
    pub tag: u64,
    pub flags: LineFlags,
}

impl Line {
    pub fn new(tag: u64, flags: LineFlags) -> Self {
        Line { tag, flags }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_presets() {
        let (demand, wrong, prefetch) = (LineFlags::DEMAND, LineFlags::WRONG, LineFlags::PREFETCH);
        assert!(!demand.wrong_fetched);
        assert!(wrong.wrong_fetched && !wrong.dirty);
        assert!(prefetch.prefetched);
    }

    #[test]
    fn line_construction() {
        let l = Line::new(0x42, LineFlags::WRONG);
        assert_eq!(l.tag, 0x42);
        assert!(l.flags.wrong_fetched);
    }
}
