//! The per-thread speculative memory buffer (paper §2, §2.2).
//!
//! During a parallel region every store a thread commits lands here instead
//! of the cache; the buffer is drained to architectural memory only in the
//! thread's write-back stage, in original program order — which is how the
//! superthreaded model avoids speculative memory state and why wrong threads
//! can never alter memory.
//!
//! The buffer also realizes run-time data-dependence checking: upstream
//! threads *announce* their target-store addresses in the TSAG stage and
//! *release* the values when the stores execute; a downstream load that
//! overlaps an announced-but-unreleased entry must wait.

use std::collections::BTreeMap;

use wec_common::ids::{Addr, ThreadId};

/// What a load sees when it consults the buffer chain.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoadCheck {
    /// Every byte resolved from buffers: the load needs no cache access.
    Value(u64),
    /// Some bytes come from memory: merge `value` using `buffered_mask`
    /// (bit i set ⇒ byte i of the result comes from the buffer).
    Partial { value: u64, buffered_mask: u8 },
    /// No overlap with any buffered byte.
    Miss,
    /// Overlaps an announced target store whose value has not arrived.
    Wait,
}

/// One thread's speculative memory buffer.
///
/// ```
/// use wec_common::ids::{Addr, ThreadId};
/// use wec_core::membuf::{LoadCheck, MemBuffer};
///
/// let mut buf = MemBuffer::new();
/// // An upstream thread announced a target store here (TSAG stage):
/// buf.announce_upstream(Addr(0x100), ThreadId(3));
/// // …so a load must wait (run-time dependence checking, §2.2):
/// assert_eq!(buf.check_load(Addr(0x100), 8), LoadCheck::Wait);
/// // When the upstream store executes, the value is released:
/// buf.release_upstream(Addr(0x100), 8, 42, ThreadId(3));
/// assert_eq!(buf.check_load(Addr(0x100), 8), LoadCheck::Value(42));
/// ```
#[derive(Clone, Debug, Default)]
pub struct MemBuffer {
    /// Bytes written by this thread's committed stores.
    own: BTreeMap<u64, u8>,
    /// Bytes released by upstream target stores.
    released: BTreeMap<u64, u8>,
    /// Announced (8-byte) target-store ranges from upstream threads that
    /// have not been released yet, with the announcing thread.
    announced: Vec<(Addr, ThreadId)>,
    /// This thread's own announced target-store addresses (a store matching
    /// one of these must be forwarded downstream when it executes).
    own_announced: Vec<Addr>,
    /// High-water mark of buffered store bytes (capacity accounting: the
    /// paper's buffer is 128 entries; we record pressure rather than stall).
    pub peak_bytes: usize,
}

/// Target stores are announced at 8-byte granularity.
pub const ANNOUNCE_BYTES: u64 = 8;

impl MemBuffer {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a committed store by this thread.
    pub fn record_store(&mut self, addr: Addr, bytes: u64, value: u64) {
        for i in 0..bytes {
            self.own.insert(addr.0 + i, (value >> (8 * i)) as u8);
        }
        self.peak_bytes = self.peak_bytes.max(self.own.len());
    }

    /// Does this store match one of the thread's own target-store
    /// announcements (and therefore needs forwarding downstream)?
    pub fn is_own_target_store(&self, addr: Addr, bytes: u64) -> bool {
        self.own_announced
            .iter()
            .any(|a| a.0 < addr.0 + bytes && addr.0 < a.0 + ANNOUNCE_BYTES)
    }

    /// Register one of this thread's own TSAG announcements.
    pub fn announce_own(&mut self, addr: Addr) {
        self.own_announced.push(addr);
    }

    /// Register an upstream announcement.
    pub fn announce_upstream(&mut self, addr: Addr, from: ThreadId) {
        if !self.announced.iter().any(|&(a, t)| a == addr && t == from) {
            self.announced.push((addr, from));
        }
    }

    /// An upstream target store released its value.
    pub fn release_upstream(&mut self, addr: Addr, bytes: u64, value: u64, from: ThreadId) {
        self.announced.retain(|&(a, t)| !(a == addr && t == from));
        for i in 0..bytes {
            self.released.insert(addr.0 + i, (value >> (8 * i)) as u8);
        }
    }

    /// Drop all state from a given upstream thread (it was killed or marked
    /// wrong): pending waits on it must not deadlock the consumer.
    pub fn void_upstream(&mut self, from: ThreadId) {
        self.announced.retain(|&(_, t)| t != from);
    }

    /// Resolve a load against this buffer (own bytes override released
    /// upstream bytes, which override memory).
    pub fn check_load(&self, addr: Addr, bytes: u64) -> LoadCheck {
        debug_assert!((1..=8).contains(&bytes));
        // Unreleased announcement overlapping the load?
        for &(a, _) in &self.announced {
            if a.0 < addr.0 + bytes && addr.0 < a.0 + ANNOUNCE_BYTES {
                // Own stores may already cover the overlap entirely, in
                // which case the thread reads its own data, not upstream's.
                let own_covers = (0..bytes).all(|i| self.own.contains_key(&(addr.0 + i)));
                if !own_covers {
                    return LoadCheck::Wait;
                }
                break;
            }
        }
        let mut value = 0u64;
        let mut mask = 0u8;
        for i in 0..bytes {
            let byte_addr = addr.0 + i;
            let byte = self
                .own
                .get(&byte_addr)
                .or_else(|| self.released.get(&byte_addr));
            if let Some(&b) = byte {
                value |= (b as u64) << (8 * i);
                mask |= 1 << i;
            }
        }
        if mask == 0 {
            LoadCheck::Miss
        } else if u32::from(mask) == (1u32 << bytes) - 1 {
            LoadCheck::Value(value)
        } else {
            LoadCheck::Partial {
                value,
                buffered_mask: mask,
            }
        }
    }

    /// Drain this thread's own stores as (8-byte-aligned word address,
    /// byte mask, value) triples in address order — the write-back stage.
    pub fn drain_own(&self) -> Vec<(Addr, u8, u64)> {
        let mut out: Vec<(Addr, u8, u64)> = Vec::new();
        for (&byte_addr, &b) in &self.own {
            let word = byte_addr & !7;
            let lane = (byte_addr & 7) as u32;
            match out.last_mut() {
                Some((wa, mask, val)) if wa.0 == word => {
                    *mask |= 1 << lane;
                    *val |= (b as u64) << (8 * lane);
                }
                _ => out.push((Addr(word), 1 << lane, (b as u64) << (8 * lane))),
            }
        }
        out
    }

    /// Number of distinct 8-byte words this thread has written (write-back
    /// cost accounting).
    pub fn own_word_count(&self) -> usize {
        let mut count = 0;
        let mut last_word = u64::MAX;
        for &byte_addr in self.own.keys() {
            let word = byte_addr & !7;
            if word != last_word {
                count += 1;
                last_word = word;
            }
        }
        count
    }

    pub fn clear(&mut self) {
        self.own.clear();
        self.released.clear();
        self.announced.clear();
        self.own_announced.clear();
    }
}

/// Apply a drained word to memory-like byte storage via a closure.
/// Helper for the write-back stage: calls `write(addr, byte)` for each
/// masked byte lane.
pub fn apply_word(addr: Addr, mask: u8, value: u64, mut write: impl FnMut(Addr, u8)) {
    for lane in 0..8u32 {
        if mask & (1 << lane) != 0 {
            write(addr + lane as u64, (value >> (8 * lane)) as u8);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn own_store_then_load_hits() {
        let mut b = MemBuffer::new();
        b.record_store(Addr(0x100), 8, 0xAABB_CCDD_EEFF_1122);
        assert_eq!(
            b.check_load(Addr(0x100), 8),
            LoadCheck::Value(0xAABB_CCDD_EEFF_1122)
        );
        // Sub-word read of the buffered data.
        assert_eq!(b.check_load(Addr(0x104), 4), LoadCheck::Value(0xAABB_CCDD));
    }

    #[test]
    fn later_store_overrides_earlier() {
        let mut b = MemBuffer::new();
        b.record_store(Addr(0x100), 8, 1);
        b.record_store(Addr(0x100), 1, 0xff);
        assert_eq!(b.check_load(Addr(0x100), 8), LoadCheck::Value(0xff));
    }

    #[test]
    fn partial_coverage_reports_mask() {
        let mut b = MemBuffer::new();
        b.record_store(Addr(0x104), 4, 0xDEAD_BEEF);
        match b.check_load(Addr(0x100), 8) {
            LoadCheck::Partial {
                value,
                buffered_mask,
            } => {
                assert_eq!(buffered_mask, 0b1111_0000);
                assert_eq!(value, 0xDEAD_BEEF_0000_0000);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn miss_when_untouched() {
        let b = MemBuffer::new();
        assert_eq!(b.check_load(Addr(0x100), 8), LoadCheck::Miss);
    }

    #[test]
    fn announced_unreleased_forces_wait_then_value_after_release() {
        let mut b = MemBuffer::new();
        let up = ThreadId(3);
        b.announce_upstream(Addr(0x200), up);
        assert_eq!(b.check_load(Addr(0x200), 8), LoadCheck::Wait);
        // Overlap at any byte also waits.
        assert_eq!(b.check_load(Addr(0x204), 4), LoadCheck::Wait);
        b.release_upstream(Addr(0x200), 8, 777, up);
        assert_eq!(b.check_load(Addr(0x200), 8), LoadCheck::Value(777));
    }

    #[test]
    fn own_store_shadows_upstream_announcement() {
        let mut b = MemBuffer::new();
        b.announce_upstream(Addr(0x200), ThreadId(1));
        b.record_store(Addr(0x200), 8, 5);
        assert_eq!(b.check_load(Addr(0x200), 8), LoadCheck::Value(5));
    }

    #[test]
    fn void_upstream_unblocks_waiters() {
        let mut b = MemBuffer::new();
        b.announce_upstream(Addr(0x300), ThreadId(9));
        assert_eq!(b.check_load(Addr(0x300), 8), LoadCheck::Wait);
        b.void_upstream(ThreadId(9));
        assert_eq!(b.check_load(Addr(0x300), 8), LoadCheck::Miss);
    }

    #[test]
    fn own_target_store_detection() {
        let mut b = MemBuffer::new();
        b.announce_own(Addr(0x400));
        assert!(b.is_own_target_store(Addr(0x400), 8));
        assert!(b.is_own_target_store(Addr(0x404), 4));
        assert!(!b.is_own_target_store(Addr(0x408), 8));
    }

    #[test]
    fn drain_coalesces_into_words() {
        let mut b = MemBuffer::new();
        b.record_store(Addr(0x100), 8, u64::MAX);
        b.record_store(Addr(0x109), 1, 0x42);
        let drained = b.drain_own();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0], (Addr(0x100), 0xff, u64::MAX));
        assert_eq!(drained[1], (Addr(0x108), 0b10, 0x42 << 8));
        assert_eq!(b.own_word_count(), 2);
    }

    #[test]
    fn apply_word_writes_masked_lanes_only() {
        let mut bytes = [0u8; 16];
        apply_word(Addr(0), 0b101, 0x00AA_00BB, |a, v| bytes[a.0 as usize] = v);
        assert_eq!(bytes[0], 0xBB);
        assert_eq!(bytes[1], 0);
        assert_eq!(bytes[2], 0xAA);
    }

    #[test]
    fn released_value_merges_with_memory_bytes() {
        let mut b = MemBuffer::new();
        b.release_upstream(Addr(0x500), 8, 0x1111_1111_1111_1111, ThreadId(0));
        match b.check_load(Addr(0x4FC), 8) {
            LoadCheck::Partial { buffered_mask, .. } => {
                assert_eq!(buffered_mask, 0b1111_0000)
            }
            other => panic!("{other:?}"),
        }
    }
}
