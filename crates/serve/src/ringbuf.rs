//! Fixed-capacity ring buffers and the service sampler they feed.
//!
//! The dashboard needs *recent history* — queue depth, jobs/s, dedup hit
//! rate, simulation throughput over the last few minutes — without letting
//! a long-lived daemon grow an unbounded log.  [`RingBuffer`] is the
//! storage: a fixed-capacity overwrite-oldest buffer behind one short-held
//! mutex (a push is an index bump and a slot write; a snapshot copies at
//! most `capacity` elements).  [`ServiceSample`] is the payload: one row of
//! gauges and interval rates, derived from two consecutive
//! [`StatsSnapshot`]s by [`sample_from`] — cumulative counters in, rates
//! out, so the buffer stays meaningful no matter how long the daemon has
//! been up.

use std::fmt::Write as _;
use std::sync::Mutex;

use crate::lock;
use crate::state::StatsSnapshot;

/// A fixed-capacity overwrite-oldest buffer of clonable samples.
#[derive(Debug)]
pub struct RingBuffer<T> {
    inner: Mutex<Inner<T>>,
    cap: usize,
}

#[derive(Debug)]
struct Inner<T> {
    /// Grows to `cap`, then slots are overwritten in place.
    buf: Vec<T>,
    /// Index of the *next* write once the buffer is full.
    head: usize,
    /// Total pushes ever (so readers can tell how much history was lost).
    pushed: u64,
}

impl<T: Clone> RingBuffer<T> {
    pub fn new(cap: usize) -> RingBuffer<T> {
        let cap = cap.max(1);
        RingBuffer {
            inner: Mutex::new(Inner {
                buf: Vec::with_capacity(cap),
                head: 0,
                pushed: 0,
            }),
            cap,
        }
    }

    pub fn capacity(&self) -> usize {
        self.cap
    }

    pub fn len(&self) -> usize {
        lock(&self.inner).buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total pushes ever; `pushed() - len()` samples have been overwritten.
    pub fn pushed(&self) -> u64 {
        lock(&self.inner).pushed
    }

    /// Append one sample, overwriting the oldest once at capacity.
    pub fn push(&self, v: T) {
        let mut g = lock(&self.inner);
        if g.buf.len() < self.cap {
            g.buf.push(v);
        } else {
            let head = g.head;
            g.buf[head] = v;
        }
        g.head = (g.head + 1) % self.cap;
        g.pushed += 1;
    }

    /// The most recently pushed sample, if any.
    pub fn last(&self) -> Option<T> {
        let g = lock(&self.inner);
        if g.buf.is_empty() {
            return None;
        }
        let idx = if g.buf.len() < self.cap {
            g.buf.len() - 1
        } else {
            (g.head + self.cap - 1) % self.cap
        };
        Some(g.buf[idx].clone())
    }

    /// The retained samples, oldest first.
    pub fn snapshot(&self) -> Vec<T> {
        let g = lock(&self.inner);
        if g.buf.len() < self.cap {
            g.buf.clone()
        } else {
            let mut out = Vec::with_capacity(self.cap);
            out.extend_from_slice(&g.buf[g.head..]);
            out.extend_from_slice(&g.buf[..g.head]);
            out
        }
    }
}

/// One row of the service time-series: point-in-time gauges plus rates
/// over the interval since the previous sample.
#[derive(Clone, Debug, PartialEq)]
pub struct ServiceSample {
    /// Server-clock milliseconds at which the sample was taken.
    pub t_ms: u64,
    pub queue_depth: u64,
    pub busy_workers: u64,
    pub outstanding: u64,
    /// Completed jobs per second over the sampling interval.
    pub jobs_per_sec: f64,
    /// Share of the interval's submissions answered without a fresh
    /// execution (in-flight dedup shares + warm memo hits); 0 when the
    /// interval saw no submissions.
    pub dedup_hit_rate: f64,
    /// Simulated kilocycles per second over the interval (cold work rate).
    pub kcycles_per_sec: f64,
    /// Share of the interval's submissions answered by speculation
    /// (`None` when speculation is off — the field is then absent from
    /// the JSON, keeping v1 documents byte-identical).
    pub spec_hit_rate: Option<f64>,
}

impl ServiceSample {
    /// One JSON object in the `wec-dashboard-data-v1` `samples` element.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"t_ms\":{},\"queue_depth\":{},\"busy_workers\":{},\"outstanding\":{},\
             \"jobs_per_sec\":{:.3},\"dedup_hit_rate\":{:.4},\"kcycles_per_sec\":{:.3}",
            self.t_ms,
            self.queue_depth,
            self.busy_workers,
            self.outstanding,
            self.jobs_per_sec,
            self.dedup_hit_rate,
            self.kcycles_per_sec
        );
        if let Some(r) = self.spec_hit_rate {
            let _ = write!(out, ",\"spec_hit_rate\":{r:.4}");
        }
        out.push('}');
        out
    }
}

/// The previous sample's cumulative counters — what [`sample_from`] needs
/// to turn monotonic totals into interval rates.
#[derive(Clone, Copy, Debug, Default)]
pub struct SampleCursor {
    t_ms: u64,
    submitted: u64,
    deduped: u64,
    mem_hits: u64,
    completed: u64,
    sim_cycles: u64,
    spec_hit: u64,
    primed: bool,
}

impl SampleCursor {
    /// Prime the cursor without producing a sample (the first interval has
    /// no previous point to rate against).
    pub fn prime(&mut self, snap: &StatsSnapshot) {
        *self = SampleCursor {
            t_ms: snap.uptime_ms,
            submitted: snap.submitted,
            deduped: snap.deduped,
            mem_hits: snap.mem_hits,
            completed: snap.completed,
            sim_cycles: snap.sim_cycles,
            spec_hit: snap.spec.map_or(0, |s| s.hit),
            primed: true,
        };
    }
}

/// Derive one [`ServiceSample`] from the current snapshot and the cursor,
/// then advance the cursor.  Returns `None` on the priming call and
/// whenever no time has passed (rates would divide by zero).
pub fn sample_from(snap: &StatsSnapshot, cursor: &mut SampleCursor) -> Option<ServiceSample> {
    if !cursor.primed || snap.uptime_ms <= cursor.t_ms {
        let had_cursor = cursor.primed;
        cursor.prime(snap);
        if !had_cursor {
            return None;
        }
        // Zero-width interval: gauges are still fresh, rates are zero.
        return Some(ServiceSample {
            t_ms: snap.uptime_ms,
            queue_depth: snap.queue_depth,
            busy_workers: snap.busy,
            outstanding: snap.outstanding,
            jobs_per_sec: 0.0,
            dedup_hit_rate: 0.0,
            kcycles_per_sec: 0.0,
            spec_hit_rate: snap.spec.map(|_| 0.0),
        });
    }
    let dt_s = (snap.uptime_ms - cursor.t_ms) as f64 / 1000.0;
    let d_submitted = snap.submitted.saturating_sub(cursor.submitted);
    let d_reused = (snap.deduped.saturating_sub(cursor.deduped))
        + (snap.mem_hits.saturating_sub(cursor.mem_hits));
    let d_completed = snap.completed.saturating_sub(cursor.completed);
    let d_kcycles = snap.sim_cycles.saturating_sub(cursor.sim_cycles) as f64 / 1000.0;
    let sample = ServiceSample {
        t_ms: snap.uptime_ms,
        queue_depth: snap.queue_depth,
        busy_workers: snap.busy,
        outstanding: snap.outstanding,
        jobs_per_sec: d_completed as f64 / dt_s,
        dedup_hit_rate: if d_submitted == 0 {
            0.0
        } else {
            (d_reused.min(d_submitted)) as f64 / d_submitted as f64
        },
        kcycles_per_sec: d_kcycles / dt_s,
        spec_hit_rate: snap.spec.map(|sp| {
            if d_submitted == 0 {
                0.0
            } else {
                let d_spec = sp.hit.saturating_sub(cursor.spec_hit);
                (d_spec.min(d_submitted)) as f64 / d_submitted as f64
            }
        }),
    };
    cursor.prime(snap);
    Some(sample)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(uptime_ms: u64, submitted: u64, completed: u64, sim_cycles: u64) -> StatsSnapshot {
        StatsSnapshot {
            uptime_ms,
            workers: 2,
            busy: 1,
            busy_ms: 0,
            draining: false,
            queue_depth: 3,
            queue_cap: 64,
            outstanding: 4,
            submitted,
            deduped: submitted / 2,
            completed,
            failed: 0,
            rejected: 0,
            cold: completed,
            disk_hits: 0,
            mem_hits: 0,
            sim_cycles,
            attr_fills: 0,
            attr_useful: 0,
            attr_wasted: 0,
            attr_victim_rescued: 0,
            attr_still_resident: 0,
            spec: None,
        }
    }

    #[test]
    fn ring_overwrites_oldest_and_snapshots_in_order() {
        let r: RingBuffer<u64> = RingBuffer::new(3);
        assert!(r.is_empty());
        assert_eq!(r.last(), None);
        for v in 1..=2 {
            r.push(v);
        }
        assert_eq!(r.snapshot(), vec![1, 2]);
        assert_eq!(r.last(), Some(2));
        for v in 3..=5 {
            r.push(v);
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.pushed(), 5);
        assert_eq!(r.snapshot(), vec![3, 4, 5], "oldest first after wrap");
        assert_eq!(r.last(), Some(5), "last survives the wrap");
        r.push(6);
        assert_eq!(r.snapshot(), vec![4, 5, 6]);
        assert_eq!(r.last(), Some(6));
    }

    #[test]
    fn sampler_rates_are_interval_deltas_not_lifetime_averages() {
        let mut cursor = SampleCursor::default();
        assert!(
            sample_from(&snap(1000, 10, 10, 1_000_000), &mut cursor).is_none(),
            "priming call produces no sample"
        );
        // One second later: 5 more completions, 2M more cycles.
        let s = sample_from(&snap(2000, 20, 15, 3_000_000), &mut cursor).unwrap();
        assert_eq!(s.t_ms, 2000);
        assert!((s.jobs_per_sec - 5.0).abs() < 1e-9, "{}", s.jobs_per_sec);
        assert!((s.kcycles_per_sec - 2000.0).abs() < 1e-6);
        // deduped went 5 -> 10 over 10 submissions.
        assert!(
            (s.dedup_hit_rate - 0.5).abs() < 1e-9,
            "{}",
            s.dedup_hit_rate
        );
        // No time passed: gauges only, zero rates.
        let s = sample_from(&snap(2000, 25, 18, 3_000_000), &mut cursor).unwrap();
        assert_eq!(s.jobs_per_sec, 0.0);
        // Quiet interval: zero submissions means a 0 (not NaN) hit rate.
        let s = sample_from(&snap(3000, 25, 18, 3_000_000), &mut cursor).unwrap();
        assert_eq!(s.dedup_hit_rate, 0.0);
        assert_eq!(s.jobs_per_sec, 0.0);
    }

    #[test]
    fn sample_json_is_parseable_and_complete() {
        let mut s = ServiceSample {
            t_ms: 1200,
            queue_depth: 2,
            busy_workers: 1,
            outstanding: 3,
            jobs_per_sec: 4.5,
            dedup_hit_rate: 0.25,
            kcycles_per_sec: 123.456,
            spec_hit_rate: None,
        };
        let v = wec_telemetry::json::parse(&s.to_json()).unwrap();
        assert_eq!(v.get("t_ms").unwrap().as_u64(), Some(1200));
        assert_eq!(v.get("jobs_per_sec").unwrap().as_f64(), Some(4.5));
        assert_eq!(v.get("dedup_hit_rate").unwrap().as_f64(), Some(0.25));
        assert!(
            !s.to_json().contains("spec_hit_rate"),
            "absent without speculation"
        );
        s.spec_hit_rate = Some(0.5);
        let v = wec_telemetry::json::parse(&s.to_json()).unwrap();
        assert_eq!(v.get("spec_hit_rate").unwrap().as_f64(), Some(0.5));
    }

    #[test]
    fn spec_hit_rate_is_an_interval_share_when_speculation_is_on() {
        use crate::spec::SpecStats;
        let on = |uptime_ms, submitted, hit| {
            let mut sn = snap(uptime_ms, submitted, submitted, 0);
            sn.spec = Some(SpecStats {
                started: hit,
                hit,
                ..SpecStats::default()
            });
            sn
        };
        let mut cursor = SampleCursor::default();
        assert!(sample_from(&on(1000, 10, 2), &mut cursor).is_none());
        // 10 more submissions, 5 more spec hits: rate 0.5.
        let s = sample_from(&on(2000, 20, 7), &mut cursor).unwrap();
        assert_eq!(s.spec_hit_rate, Some(0.5));
        // Quiet interval: 0, not NaN.
        let s = sample_from(&on(3000, 20, 7), &mut cursor).unwrap();
        assert_eq!(s.spec_hit_rate, Some(0.0));
    }
}
