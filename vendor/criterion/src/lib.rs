//! Offline stand-in for the `criterion` crate.
//!
//! Provides the subset of the criterion API this workspace's benches use —
//! `Criterion`, `benchmark_group` / `sample_size` / `bench_function` /
//! `finish`, `Bencher::iter`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — with a simple median-of-samples measurement
//! instead of criterion's statistical machinery.
//!
//! Modes:
//! * default (`cargo bench`): per benchmark, calibrate an iteration count to
//!   ~`WEC_BENCH_SAMPLE_MS` (default 100) milliseconds, then take
//!   `sample_size` samples and report median and min ns/iter;
//! * `--test` (what `cargo test` passes to bench targets): run each
//!   benchmark body once and report nothing — keeps the tier-1 test run
//!   fast while still exercising every bench path.
//!
//! Machine-readable output: when `WEC_BENCH_JSON` names a file, results are
//! appended to it as JSON lines `{"name":…,"median_ns":…,"min_ns":…,
//! "samples":…}` — `BENCH_hotloop.json` is produced from these.

use std::hint;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Opaque value barrier (re-exported name-compatible with criterion).
#[inline]
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Timing harness entry point.
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            test_mode: false,
            filter: None,
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Configure from the process arguments (`--test` and a positional
    /// name filter are honored; every other flag criterion accepts is
    /// ignored).
    pub fn from_args() -> Self {
        let mut c = Criterion::default();
        for a in std::env::args().skip(1) {
            match a.as_str() {
                "--test" => c.test_mode = true,
                "--bench" => {}
                s if s.starts_with("--") => {}
                s => c.filter = Some(s.to_string()),
            }
        }
        c
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        self.run_one(name, sample_size, f);
        self
    }

    fn run_one<F>(&mut self, name: &str, sample_size: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        if self.test_mode {
            let mut b = Bencher {
                mode: Mode::Once,
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            println!("test {name} ... ok");
            return;
        }

        // Calibrate: grow the iteration count until one sample takes long
        // enough to time reliably.
        let budget = Duration::from_millis(
            std::env::var("WEC_BENCH_SAMPLE_MS")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(100),
        );
        let mut iters: u64 = 1;
        loop {
            let mut b = Bencher {
                mode: Mode::Timed,
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if b.elapsed >= budget || iters >= 1 << 24 {
                break;
            }
            let grow = if b.elapsed.is_zero() {
                16
            } else {
                (budget.as_nanos() / b.elapsed.as_nanos().max(1) + 1).min(16) as u64
            };
            iters = (iters * grow.max(2)).min(1 << 24);
        }

        let mut samples_ns: Vec<f64> = Vec::with_capacity(sample_size);
        for _ in 0..sample_size {
            let mut b = Bencher {
                mode: Mode::Timed,
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
        }
        samples_ns.sort_by(|a, b| a.total_cmp(b));
        let median = samples_ns[samples_ns.len() / 2];
        let min = samples_ns[0];
        println!(
            "{name}: median {} min {} ({} samples x {iters} iters)",
            fmt_ns(median),
            fmt_ns(min),
            samples_ns.len()
        );
        if let Ok(path) = std::env::var("WEC_BENCH_JSON") {
            if let Ok(mut file) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
            {
                let _ = writeln!(
                    file,
                    "{{\"name\":{:?},\"median_ns\":{median:.1},\"min_ns\":{min:.1},\"samples\":{},\"iters\":{iters}}}",
                    name,
                    samples_ns.len(),
                );
            }
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{name}", self.name);
        let sample_size = self
            .sample_size
            .unwrap_or(self.criterion.default_sample_size);
        self.criterion.run_one(&full, sample_size, f);
        self
    }

    pub fn finish(self) {}
}

enum Mode {
    Once,
    Timed,
}

/// Passed to the benchmark closure; `iter` runs and times the payload.
pub struct Bencher {
    mode: Mode,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        match self.mode {
            Mode::Once => {
                black_box(f());
            }
            Mode::Timed => {
                let start = Instant::now();
                for _ in 0..self.iters {
                    black_box(f());
                }
                self.elapsed = start.elapsed();
            }
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::from_args();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_api_runs_in_test_mode() {
        let mut c = Criterion {
            test_mode: true,
            ..Criterion::default()
        };
        let mut runs = 0u32;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(10);
            g.bench_function("one", |b| b.iter(|| runs += 1));
            g.finish();
        }
        assert_eq!(runs, 1);
    }

    #[test]
    fn timed_mode_measures() {
        let mut c = Criterion {
            test_mode: false,
            filter: None,
            default_sample_size: 3,
        };
        std::env::set_var("WEC_BENCH_SAMPLE_MS", "1");
        c.bench_function("spin", |b| b.iter(|| black_box(1 + 1)));
        std::env::remove_var("WEC_BENCH_SAMPLE_MS");
    }
}
