//! Typed identifiers and core quantities used throughout the simulator.
//!
//! Addresses, cycle counts and unit indices all flow through every crate in
//! the workspace; giving them distinct types catches an entire class of
//! argument-swap bugs at compile time at zero runtime cost.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A byte address in the simulated machine's flat physical address space.
///
/// The simulated machine is 64-bit; addresses are plain byte offsets.  All
/// cache indexing math lives on this type so block/set arithmetic is written
/// once.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Addr(pub u64);

impl Addr {
    /// The null address. Loads from it on a wrong execution path are dropped.
    pub const NULL: Addr = Addr(0);

    /// Address of the cache block containing this byte, for `block_bytes`-byte
    /// blocks (`block_bytes` must be a power of two).
    #[inline]
    pub fn block_base(self, block_bytes: u64) -> Addr {
        debug_assert!(block_bytes.is_power_of_two());
        Addr(self.0 & !(block_bytes - 1))
    }

    /// The block immediately after the one containing this byte (used by the
    /// next-line prefetchers).
    #[inline]
    pub fn next_block(self, block_bytes: u64) -> Addr {
        Addr(self.block_base(block_bytes).0.wrapping_add(block_bytes))
    }

    /// Set index for a cache with `sets` sets of `block_bytes`-byte blocks.
    #[inline]
    pub fn set_index(self, block_bytes: u64, sets: u64) -> usize {
        debug_assert!(sets.is_power_of_two());
        ((self.0 / block_bytes) & (sets - 1)) as usize
    }

    /// Tag for a cache with `sets` sets of `block_bytes`-byte blocks.
    #[inline]
    pub fn tag(self, block_bytes: u64, sets: u64) -> u64 {
        self.0 / block_bytes / sets
    }

    /// Byte offset within a `block_bytes`-byte block.
    #[inline]
    pub fn block_offset(self, block_bytes: u64) -> usize {
        (self.0 & (block_bytes - 1)) as usize
    }

    /// True if the `bytes`-wide access starting here stays inside one block.
    #[inline]
    pub fn fits_in_block(self, bytes: u64, block_bytes: u64) -> bool {
        self.block_offset(block_bytes) as u64 + bytes <= block_bytes
    }
}

impl Add<u64> for Addr {
    type Output = Addr;
    #[inline]
    fn add(self, rhs: u64) -> Addr {
        Addr(self.0.wrapping_add(rhs))
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

/// A simulated clock cycle.  The whole machine steps on one global clock.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Debug)]
pub struct Cycle(pub u64);

impl Cycle {
    pub const ZERO: Cycle = Cycle(0);

    /// The cycle `n` ticks later.
    #[inline]
    pub fn plus(self, n: u64) -> Cycle {
        Cycle(self.0 + n)
    }

    /// Saturating distance from `earlier` to `self`.
    #[inline]
    pub fn since(self, earlier: Cycle) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;
    #[inline]
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign<u64> for Cycle {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Cycle> for Cycle {
    type Output = u64;
    #[inline]
    fn sub(self, rhs: Cycle) -> u64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Index of a thread processing unit (TU) on the ring.  The superthreaded
/// machine has 1–16 of them; the ring successor of TU `i` is `(i+1) % n`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct TuId(pub usize);

impl TuId {
    /// Ring successor among `n` thread units.
    #[inline]
    pub fn next(self, n: usize) -> TuId {
        TuId((self.0 + 1) % n)
    }
}

impl fmt::Display for TuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TU{}", self.0)
    }
}

/// A dynamic thread instance (one forked loop iteration).  Monotonically
/// increasing over a run, so older threads always have smaller ids; the
/// sequential order the write-back stages must follow is exactly id order.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ThreadId(pub u64);

impl ThreadId {
    #[inline]
    pub fn successor(self) -> ThreadId {
        ThreadId(self.0 + 1)
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_base_masks_low_bits() {
        assert_eq!(Addr(0x12345).block_base(64), Addr(0x12340));
        assert_eq!(Addr(0x12340).block_base(64), Addr(0x12340));
        assert_eq!(Addr(0x1237f).block_base(64), Addr(0x12340));
        assert_eq!(Addr(0).block_base(64), Addr(0));
    }

    #[test]
    fn next_block_steps_one_block() {
        assert_eq!(Addr(0x100).next_block(64), Addr(0x140));
        assert_eq!(Addr(0x13f).next_block(64), Addr(0x140));
    }

    #[test]
    fn set_index_and_tag_partition_the_address() {
        // 64-byte blocks, 128 sets => 8 KB direct-mapped L1 geometry.
        let a = Addr(0xdead_beef);
        let sets = 128u64;
        let bb = 64u64;
        let reconstructed = (a.tag(bb, sets) * sets + a.set_index(bb, sets) as u64) * bb
            + a.block_offset(bb) as u64;
        assert_eq!(reconstructed, a.0);
    }

    #[test]
    fn set_index_wraps_within_sets() {
        for i in 0..4096u64 {
            let idx = Addr(i * 64).set_index(64, 128);
            assert!(idx < 128);
            assert_eq!(idx, (i % 128) as usize);
        }
    }

    #[test]
    fn fits_in_block_detects_straddles() {
        assert!(Addr(0x100).fits_in_block(8, 64));
        assert!(Addr(0x138).fits_in_block(8, 64));
        assert!(!Addr(0x139).fits_in_block(8, 64));
        assert!(!Addr(0x13f).fits_in_block(2, 64));
        assert!(Addr(0x13f).fits_in_block(1, 64));
    }

    #[test]
    fn cycle_arithmetic() {
        let c = Cycle(10);
        assert_eq!(c.plus(5), Cycle(15));
        assert_eq!(Cycle(15).since(c), 5);
        assert_eq!(c.since(Cycle(15)), 0); // saturating
        assert_eq!(Cycle(15) - c, 5);
    }

    #[test]
    fn tu_ring_wraps() {
        assert_eq!(TuId(0).next(4), TuId(1));
        assert_eq!(TuId(3).next(4), TuId(0));
        assert_eq!(TuId(0).next(1), TuId(0));
    }

    #[test]
    fn thread_ids_order_by_age() {
        let t = ThreadId(7);
        assert!(t < t.successor());
    }
}
