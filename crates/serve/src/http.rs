//! Hand-rolled HTTP/1.1 framing.
//!
//! The workspace carries no HTTP library, so the daemon speaks the small
//! subset it needs directly: one request per connection (`Connection:
//! close`), `Content-Length` bodies on the way in, fixed-length or chunked
//! transfer encoding on the way out.  The parser enforces hard limits on
//! every dimension of a request and returns an error — never panics — on
//! malformed, oversized or truncated input; the server answers every such
//! error with a `400` and stays up.

use std::io::{self, BufRead, Write};

/// Longest accepted request line (method + path + version).
pub const MAX_REQUEST_LINE: usize = 8 * 1024;
/// Longest accepted single header line.
pub const MAX_HEADER_LINE: usize = 8 * 1024;
/// Most headers accepted on one request.
pub const MAX_HEADERS: usize = 100;
/// Largest accepted request body.
pub const MAX_BODY: usize = 1 << 20;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    pub method: String,
    pub path: String,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8, or a client-blamed error.
    pub fn body_utf8(&self) -> Result<&str, String> {
        std::str::from_utf8(&self.body).map_err(|_| "request body is not UTF-8".to_string())
    }
}

/// Why a request could not be parsed.
#[derive(Debug)]
pub enum ParseError {
    /// The client closed the connection before sending anything — not an
    /// error, just the end of the connection.
    Closed,
    /// Transport failure (timeout, reset) — nothing useful to answer.
    Io(io::Error),
    /// Malformed, oversized or truncated request — answered with `400`.
    Bad(String),
}

impl ParseError {
    /// The message to put in a `400` response, if this error deserves one.
    pub fn client_message(&self) -> Option<&str> {
        match self {
            ParseError::Bad(msg) => Some(msg),
            _ => None,
        }
    }
}

/// Read one `\n`-terminated line of at most `max` bytes (terminator
/// excluded), stripping the `\r\n` / `\n`.  `Ok(None)` on immediate EOF.
fn read_line<R: BufRead>(r: &mut R, max: usize, what: &str) -> Result<Option<String>, ParseError> {
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match r.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Ok(None);
                }
                return Err(ParseError::Bad(format!("truncated {what}")));
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    let s = String::from_utf8(line)
                        .map_err(|_| ParseError::Bad(format!("{what} is not UTF-8")))?;
                    return Ok(Some(s));
                }
                if line.len() >= max {
                    return Err(ParseError::Bad(format!("{what} exceeds {max} bytes")));
                }
                line.push(byte[0]);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(ParseError::Io(e)),
        }
    }
}

/// Parse one request from the stream, honouring every `MAX_*` limit.
pub fn read_request<R: BufRead>(r: &mut R) -> Result<Request, ParseError> {
    let line = match read_line(r, MAX_REQUEST_LINE, "request line")? {
        Some(l) => l,
        None => return Err(ParseError::Closed),
    };
    let mut parts = line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) => (m, p, v),
        _ => return Err(ParseError::Bad(format!("malformed request line {line:?}"))),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ParseError::Bad(format!("unsupported version {version:?}")));
    }
    if !path.starts_with('/') {
        return Err(ParseError::Bad(format!("malformed request path {path:?}")));
    }
    let (method, path) = (method.to_string(), path.to_string());

    let mut headers = Vec::new();
    loop {
        let line = match read_line(r, MAX_HEADER_LINE, "header line")? {
            Some(l) => l,
            None => return Err(ParseError::Bad("truncated headers".to_string())),
        };
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(ParseError::Bad(format!("more than {MAX_HEADERS} headers")));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ParseError::Bad(format!("header without colon {line:?}")));
        };
        headers.push((name.trim().to_string(), value.trim().to_string()));
    }

    let req = Request {
        method,
        path,
        headers,
        body: Vec::new(),
    };
    if req.header("Transfer-Encoding").is_some() {
        return Err(ParseError::Bad(
            "chunked request bodies are not supported".to_string(),
        ));
    }
    let len = match req.header("Content-Length") {
        None => 0,
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| ParseError::Bad(format!("bad Content-Length {v:?}")))?,
    };
    if len > MAX_BODY {
        return Err(ParseError::Bad(format!(
            "body of {len} bytes exceeds the {MAX_BODY}-byte limit"
        )));
    }
    let mut body = vec![0u8; len];
    if len > 0 {
        if let Err(e) = r.read_exact(&mut body) {
            return match e.kind() {
                io::ErrorKind::UnexpectedEof => {
                    Err(ParseError::Bad("truncated request body".to_string()))
                }
                _ => Err(ParseError::Io(e)),
            };
        }
    }
    Ok(Request { body, ..req })
}

/// Write a complete fixed-length response (`Connection: close`).
pub fn write_response<W: Write>(
    w: &mut W,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
    extra_headers: &[(&str, String)],
) -> io::Result<()> {
    write!(w, "HTTP/1.1 {status} {reason}\r\n")?;
    write!(w, "Content-Type: {content_type}\r\n")?;
    write!(w, "Content-Length: {}\r\n", body.len())?;
    w.write_all(b"Connection: close\r\n")?;
    for (name, value) in extra_headers {
        write!(w, "{name}: {value}\r\n")?;
    }
    w.write_all(b"\r\n")?;
    w.write_all(body)?;
    w.flush()
}

/// Convenience: a JSON response.
pub fn write_json<W: Write>(w: &mut W, status: u16, reason: &str, body: &str) -> io::Result<()> {
    write_response(w, status, reason, "application/json", body.as_bytes(), &[])
}

/// Write the response a `HEAD` request gets: the exact status line and
/// headers of the corresponding `GET` — including the `Content-Length` the
/// body *would* have — with no body bytes (RFC 9110 §9.3.2).
pub fn write_head_only<W: Write>(
    w: &mut W,
    status: u16,
    reason: &str,
    content_type: &str,
    body_len: usize,
) -> io::Result<()> {
    write!(w, "HTTP/1.1 {status} {reason}\r\n")?;
    write!(w, "Content-Type: {content_type}\r\n")?;
    write!(w, "Content-Length: {body_len}\r\n")?;
    w.write_all(b"Connection: close\r\n\r\n")?;
    w.flush()
}

/// A pass-through writer that counts bytes, so the access log can record
/// each response's wire size without the handlers threading it back.
pub struct CountingWriter<W: Write> {
    w: W,
    written: u64,
}

impl<W: Write> CountingWriter<W> {
    pub fn new(w: W) -> CountingWriter<W> {
        CountingWriter { w, written: 0 }
    }

    pub fn bytes_written(&self) -> u64 {
        self.written
    }
}

impl<W: Write> Write for CountingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.w.write(buf)?;
        self.written += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.w.flush()
    }
}

/// A chunked-transfer response in progress (the `/jobs/<id>/events`
/// stream).  Each [`ChunkedWriter::chunk`] is flushed immediately so
/// clients see progress lines as they happen.
pub struct ChunkedWriter<W: Write> {
    w: W,
}

impl<W: Write> ChunkedWriter<W> {
    /// Write the status line and headers, switching the response to
    /// chunked transfer encoding.
    pub fn begin(mut w: W, status: u16, reason: &str, content_type: &str) -> io::Result<Self> {
        write!(w, "HTTP/1.1 {status} {reason}\r\n")?;
        write!(w, "Content-Type: {content_type}\r\n")?;
        w.write_all(b"Transfer-Encoding: chunked\r\nConnection: close\r\n\r\n")?;
        w.flush()?;
        Ok(ChunkedWriter { w })
    }

    /// Send one chunk (empty input is skipped — an empty chunk would
    /// terminate the stream).
    pub fn chunk(&mut self, data: &[u8]) -> io::Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        write!(self.w, "{:x}\r\n", data.len())?;
        self.w.write_all(data)?;
        self.w.write_all(b"\r\n")?;
        self.w.flush()
    }

    /// Send the terminating zero-length chunk.
    pub fn finish(mut self) -> io::Result<()> {
        self.w.write_all(b"0\r\n\r\n")?;
        self.w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(text: &str) -> Result<Request, ParseError> {
        read_request(&mut Cursor::new(text.as_bytes().to_vec()))
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse("POST /jobs HTTP/1.1\r\nHost: x\r\ncontent-length: 4\r\n\r\nabcd").unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/jobs");
        assert_eq!(req.header("Content-Length"), Some("4"), "case-insensitive");
        assert_eq!(req.body, b"abcd");
        assert_eq!(req.body_utf8().unwrap(), "abcd");
    }

    #[test]
    fn get_without_content_length_has_empty_body() {
        let req = parse("GET /stats HTTP/1.0\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());
    }

    #[test]
    fn immediate_eof_is_a_clean_close() {
        assert!(matches!(parse(""), Err(ParseError::Closed)));
    }

    #[test]
    fn garbage_request_lines_are_client_errors() {
        for bad in [
            "NOT A VALID REQUEST LINE AT ALL\r\n\r\n",
            "GET /x\r\n\r\n",
            "GET /x SPDY/3\r\n\r\n",
            "GET x HTTP/1.1\r\n\r\n",
            "GET /x HTTP/1.1 extra\r\n\r\n",
        ] {
            let err = parse(bad).unwrap_err();
            assert!(err.client_message().is_some(), "{bad:?}: {err:?}");
        }
    }

    #[test]
    fn oversized_request_line_is_rejected_not_buffered() {
        let huge = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_REQUEST_LINE));
        let err = parse(&huge).unwrap_err();
        assert!(err.client_message().unwrap().contains("request line"));
    }

    #[test]
    fn header_limits_are_enforced() {
        let mut many = String::from("GET / HTTP/1.1\r\n");
        for i in 0..=MAX_HEADERS {
            many.push_str(&format!("X-H{i}: v\r\n"));
        }
        many.push_str("\r\n");
        assert!(parse(&many).unwrap_err().client_message().is_some());

        let long = format!(
            "GET / HTTP/1.1\r\nX-H: {}\r\n\r\n",
            "v".repeat(MAX_HEADER_LINE)
        );
        assert!(parse(&long).unwrap_err().client_message().is_some());

        assert!(parse("GET / HTTP/1.1\r\nno colon here\r\n\r\n")
            .unwrap_err()
            .client_message()
            .unwrap()
            .contains("colon"));
    }

    #[test]
    fn body_errors_are_client_errors() {
        // Non-numeric length.
        assert!(parse("POST / HTTP/1.1\r\nContent-Length: abc\r\n\r\n")
            .unwrap_err()
            .client_message()
            .is_some());
        // Over the limit — rejected before any allocation.
        let big = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert!(parse(&big)
            .unwrap_err()
            .client_message()
            .unwrap()
            .contains("limit"));
        // Truncated: promises 10 bytes, delivers 3.
        assert!(parse("POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc")
            .unwrap_err()
            .client_message()
            .unwrap()
            .contains("truncated"));
        // Truncated mid-headers.
        assert!(parse("POST / HTTP/1.1\r\nHost: x\r\n")
            .unwrap_err()
            .client_message()
            .unwrap()
            .contains("truncated"));
        // Chunked request bodies are out of scope.
        assert!(
            parse("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
                .unwrap_err()
                .client_message()
                .unwrap()
                .contains("chunked")
        );
    }

    #[test]
    fn response_writer_frames_correctly() {
        let mut out = Vec::new();
        write_response(
            &mut out,
            503,
            "Service Unavailable",
            "application/json",
            b"{}",
            &[("Retry-After", "1".to_string())],
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn head_only_response_has_the_get_content_length_and_no_body() {
        let mut out = Vec::new();
        write_head_only(&mut out, 200, "OK", "application/json", 123).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 123\r\n"));
        assert!(
            text.ends_with("\r\n\r\n"),
            "no body after headers: {text:?}"
        );
    }

    #[test]
    fn counting_writer_tallies_every_byte() {
        let mut sink = Vec::new();
        let n = {
            let mut cw = CountingWriter::new(&mut sink);
            write_json(&mut cw, 200, "OK", "{}").unwrap();
            cw.bytes_written()
        };
        assert_eq!(n as usize, sink.len());
        assert!(sink.ends_with(b"{}"));
    }

    #[test]
    fn chunked_writer_emits_the_wire_format() {
        let mut out = Vec::new();
        let mut cw = ChunkedWriter::begin(&mut out, 200, "OK", "application/jsonl").unwrap();
        cw.chunk(b"abc").unwrap();
        cw.chunk(b"").unwrap(); // skipped, not a terminator
        cw.chunk(&[b'x'; 16]).unwrap();
        cw.finish().unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Transfer-Encoding: chunked\r\n"));
        let body = text.split_once("\r\n\r\n").unwrap().1;
        assert_eq!(
            body,
            format!("3\r\nabc\r\n10\r\n{}\r\n0\r\n\r\n", "x".repeat(16))
        );
    }
}
