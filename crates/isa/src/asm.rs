//! A small text assembler for WISA-64.
//!
//! This replaces the paper's GCC/GAS/loader pipeline (Figure 7) for
//! hand-written programs — the examples and several tests use it.  Syntax:
//!
//! ```text
//! .data
//! table:  .dword 1 2 3        # 64-bit doublewords
//! coeff:  .double 0.5 1.5     # f64 values
//! buf:    .space 256          # zeroed bytes
//!         .align 64
//! .text
//! start:  li   r1, 3
//!         la   r2, =table     # data-label address
//! loop:   ld   r3, 0(r2)
//!         addi r2, r2, 8
//!         addi r1, r1, -1
//!         bne  r1, zero, loop
//!         halt
//! ```
//!
//! Comments run from `#` or `;` to end of line.  The superthreaded
//! extensions are spelled `begin N`, `fork r1|r2, body`, `abort seq`,
//! `tsann off(base)`, `tsagdone`, `thread_end`.

use std::collections::HashMap;

use crate::build::ProgramBuilder;
use crate::inst::{AluOp, BranchCond, FCmpOp, FpuOp};
use crate::program::Program;
use crate::reg::{FReg, Reg};
use wec_common::error::{SimError, SimResult};
use wec_common::ids::Addr;

/// Assemble a source string into a [`Program`].
///
/// ```
/// let program = wec_isa::asm::assemble("demo", r#"
///     .data
///     xs: .dword 5 7
///     .text
///     la  r1, =xs
///     ld  r2, 0(r1)
///     ld  r3, 8(r1)
///     add r4, r2, r3
///     halt
/// "#)?;
/// assert_eq!(program.text.len(), 5);
/// # Ok::<(), wec_common::SimError>(())
/// ```
pub fn assemble(name: &str, source: &str) -> SimResult<Program> {
    Assembler::new(name).run(source)
}

struct Assembler {
    builder: ProgramBuilder,
    data_labels: HashMap<String, Addr>,
}

#[derive(PartialEq, Clone, Copy)]
enum Section {
    Text,
    Data,
}

impl Assembler {
    fn new(name: &str) -> Self {
        Assembler {
            builder: ProgramBuilder::new(name),
            data_labels: HashMap::new(),
        }
    }

    fn run(mut self, source: &str) -> SimResult<Program> {
        // Pass 1: lay out the data section so text can reference its labels.
        self.scan(source, Section::Data)?;
        // Pass 2: emit text.
        self.scan(source, Section::Text)?;
        self.builder.build()
    }

    fn scan(&mut self, source: &str, want: Section) -> SimResult<()> {
        let mut section = Section::Text;
        for (lineno, raw) in source.lines().enumerate() {
            let lineno = lineno + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if line == ".text" {
                section = Section::Text;
                continue;
            }
            if line == ".data" {
                section = Section::Data;
                continue;
            }
            if section != want {
                continue;
            }
            match section {
                Section::Data => self.data_line(line, lineno)?,
                Section::Text => self.text_line(line, lineno)?,
            }
        }
        Ok(())
    }

    fn data_line(&mut self, mut line: &str, lineno: usize) -> SimResult<()> {
        let err = |msg: String| SimError::Assembler(format!("line {lineno}: {msg}"));
        // Optional leading label.
        let mut pending_label: Option<&str> = None;
        if let Some(colon) = line.find(':') {
            let (lbl, rest) = line.split_at(colon);
            let lbl = lbl.trim();
            if !lbl.is_empty() && lbl.chars().all(|c| c.is_alphanumeric() || c == '_') {
                pending_label = Some(lbl);
                line = rest[1..].trim();
            }
        }
        let mut define = |this: &mut Self, addr: Addr| {
            if let Some(lbl) = pending_label.take() {
                this.data_labels.insert(lbl.to_string(), addr);
            }
        };
        if line.is_empty() {
            // A bare label: points at the next allocation. Reserve 0 bytes at
            // the current (aligned-to-1) cursor by allocating on demand later;
            // simplest is to align to 1 and record the cursor.
            let here = self.builder.alloc_bytes(0, 1);
            define(self, here);
            return Ok(());
        }
        let (dir, rest) = split_word(line);
        match dir {
            ".dword" => {
                let vals: Vec<u64> = rest
                    .split_whitespace()
                    .map(|t| parse_int(t).map(|v| v as u64))
                    .collect::<Result<_, _>>()
                    .map_err(err)?;
                let addr = self.builder.alloc_u64s(&vals);
                define(self, addr);
            }
            ".double" => {
                let vals: Vec<f64> = rest
                    .split_whitespace()
                    .map(|t| {
                        t.parse::<f64>()
                            .map_err(|e| format!("bad float {t:?}: {e}"))
                    })
                    .collect::<Result<_, _>>()
                    .map_err(err)?;
                let addr = self.builder.alloc_f64s(&vals);
                define(self, addr);
            }
            ".space" => {
                let n = parse_int(rest.trim()).map_err(err)? as u64;
                let addr = self.builder.alloc_bytes(n, 1);
                define(self, addr);
            }
            ".align" => {
                let n = parse_int(rest.trim()).map_err(err)? as u64;
                if !n.is_power_of_two() {
                    return Err(err(format!(".align {n} is not a power of two")));
                }
                let addr = self.builder.alloc_bytes(0, n);
                define(self, addr);
            }
            other => return Err(err(format!("unknown data directive {other:?}"))),
        }
        Ok(())
    }

    fn text_line(&mut self, mut line: &str, lineno: usize) -> SimResult<()> {
        let err = |msg: String| SimError::Assembler(format!("line {lineno}: {msg}"));
        // Leading labels (possibly several).
        while let Some(colon) = line.find(':') {
            let (lbl, rest) = line.split_at(colon);
            let lbl = lbl.trim();
            if lbl.is_empty() || !lbl.chars().all(|c| c.is_alphanumeric() || c == '_') {
                break;
            }
            self.builder.label(lbl);
            line = rest[1..].trim();
        }
        if line.is_empty() {
            return Ok(());
        }
        let (mnemonic, rest) = split_word(line);
        let ops: Vec<&str> = if rest.trim().is_empty() {
            Vec::new()
        } else {
            rest.split(',').map(|s| s.trim()).collect()
        };
        let n = ops.len();
        let need = |want: usize| -> SimResult<()> {
            if n == want {
                Ok(())
            } else {
                Err(err(format!("{mnemonic} expects {want} operands, got {n}")))
            }
        };
        let ireg = |s: &str| Reg::parse(s).ok_or_else(|| err(format!("bad register {s:?}")));
        let freg = |s: &str| FReg::parse(s).ok_or_else(|| err(format!("bad fp register {s:?}")));

        // reg-reg ALU
        if let Some(op) = AluOp::ALL.iter().find(|o| o.mnemonic() == mnemonic) {
            need(3)?;
            self.builder
                .alu(*op, ireg(ops[0])?, ireg(ops[1])?, ireg(ops[2])?);
            return Ok(());
        }
        // reg-imm ALU (mnemonic + "i")
        if let Some(base) = mnemonic.strip_suffix('i') {
            if let Some(op) = AluOp::ALL.iter().find(|o| o.mnemonic() == base) {
                need(3)?;
                let imm = parse_int(ops[2]).map_err(err)? as i32;
                self.builder.alui(*op, ireg(ops[0])?, ireg(ops[1])?, imm);
                return Ok(());
            }
        }
        if let Some(op) = FpuOp::ALL.iter().find(|o| o.mnemonic() == mnemonic) {
            need(3)?;
            self.builder
                .fpu(*op, freg(ops[0])?, freg(ops[1])?, freg(ops[2])?);
            return Ok(());
        }
        if let Some(op) = FCmpOp::ALL.iter().find(|o| o.mnemonic() == mnemonic) {
            need(3)?;
            self.builder
                .fcmp(*op, ireg(ops[0])?, freg(ops[1])?, freg(ops[2])?);
            return Ok(());
        }
        if let Some(cond) = BranchCond::ALL.iter().find(|c| c.mnemonic() == mnemonic) {
            need(3)?;
            self.builder
                .branch(*cond, ireg(ops[0])?, ireg(ops[1])?, ops[2]);
            return Ok(());
        }
        match mnemonic {
            "li" => {
                need(2)?;
                let imm = self.immediate_or_label(ops[1]).map_err(err)?;
                self.builder.li(ireg(ops[0])?, imm);
            }
            "la" => {
                need(2)?;
                let imm = self.immediate_or_label(ops[1]).map_err(err)?;
                self.builder.li(ireg(ops[0])?, imm);
            }
            "mv" => {
                need(2)?;
                self.builder.mv(ireg(ops[0])?, ireg(ops[1])?);
            }
            "cvtif" => {
                need(2)?;
                self.builder.cvt_if(freg(ops[0])?, ireg(ops[1])?);
            }
            "cvtfi" => {
                need(2)?;
                self.builder.cvt_fi(ireg(ops[0])?, freg(ops[1])?);
            }
            "ld" | "lw" | "lbu" => {
                need(2)?;
                let (off, base) = parse_mem(ops[1]).map_err(err)?;
                let base = ireg(base)?;
                let rd = ireg(ops[0])?;
                match mnemonic {
                    "ld" => self.builder.ld(rd, base, off),
                    "lw" => self.builder.lw(rd, base, off),
                    _ => self.builder.lbu(rd, base, off),
                };
            }
            "fld" => {
                need(2)?;
                let (off, base) = parse_mem(ops[1]).map_err(err)?;
                self.builder.fld(freg(ops[0])?, ireg(base)?, off);
            }
            "sd" | "sw" | "sb" => {
                need(2)?;
                let (off, base) = parse_mem(ops[1]).map_err(err)?;
                let base = ireg(base)?;
                let rs = ireg(ops[0])?;
                match mnemonic {
                    "sd" => self.builder.sd(rs, base, off),
                    "sw" => self.builder.sw(rs, base, off),
                    _ => self.builder.sb(rs, base, off),
                };
            }
            "fsd" => {
                need(2)?;
                let (off, base) = parse_mem(ops[1]).map_err(err)?;
                self.builder.fsd(freg(ops[0])?, ireg(base)?, off);
            }
            "j" => {
                need(1)?;
                self.builder.j(ops[0]);
            }
            "jal" => {
                need(2)?;
                self.builder.jal(ireg(ops[0])?, ops[1]);
            }
            "jr" => {
                need(1)?;
                self.builder.jr(ireg(ops[0])?);
            }
            "nop" => {
                need(0)?;
                self.builder.nop();
            }
            "halt" => {
                need(0)?;
                self.builder.halt();
            }
            "begin" => {
                need(1)?;
                let region = parse_int(ops[0]).map_err(err)? as u16;
                self.builder.begin(region);
            }
            "fork" => {
                need(2)?;
                let regs: Vec<Reg> = ops[0]
                    .split('|')
                    .map(|t| ireg(t.trim()))
                    .collect::<Result<_, _>>()?;
                self.builder.fork(&regs, ops[1]);
            }
            "abort" => {
                need(1)?;
                self.builder.abort_to(ops[0]);
            }
            "tsann" => {
                need(1)?;
                let (off, base) = parse_mem(ops[0]).map_err(err)?;
                self.builder.tsannounce(ireg(base)?, off);
            }
            "tsagdone" => {
                need(0)?;
                self.builder.tsagdone();
            }
            "thread_end" => {
                need(0)?;
                self.builder.thread_end();
            }
            other => return Err(err(format!("unknown mnemonic {other:?}"))),
        }
        Ok(())
    }

    fn immediate_or_label(&self, tok: &str) -> Result<i64, String> {
        if let Some(name) = tok.strip_prefix('=') {
            return self
                .data_labels
                .get(name)
                .map(|a| a.0 as i64)
                .ok_or_else(|| format!("undefined data label {name:?}"));
        }
        parse_int(tok)
    }
}

fn strip_comment(line: &str) -> &str {
    let cut = line
        .find('#')
        .into_iter()
        .chain(line.find(';'))
        .min()
        .unwrap_or(line.len());
    &line[..cut]
}

fn split_word(line: &str) -> (&str, &str) {
    match line.find(char::is_whitespace) {
        Some(i) => (&line[..i], &line[i..]),
        None => (line, ""),
    }
}

fn parse_int(tok: &str) -> Result<i64, String> {
    let tok = tok.trim();
    let (neg, body) = match tok.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, tok),
    };
    let v = if let Some(hex) = body.strip_prefix("0x") {
        i64::from_str_radix(hex, 16)
    } else {
        body.parse::<i64>()
    }
    .map_err(|e| format!("bad integer {tok:?}: {e}"))?;
    Ok(if neg { -v } else { v })
}

/// Parse an `off(base)` memory operand.
fn parse_mem(tok: &str) -> Result<(i32, &str), String> {
    let open = tok
        .find('(')
        .ok_or_else(|| format!("expected off(base), got {tok:?}"))?;
    let close = tok
        .rfind(')')
        .ok_or_else(|| format!("unbalanced parentheses in {tok:?}"))?;
    let off_str = tok[..open].trim();
    let off = if off_str.is_empty() {
        0
    } else {
        parse_int(off_str)? as i32
    };
    Ok((off, tok[open + 1..close].trim()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{Inst, LoadKind};

    #[test]
    fn assembles_the_doc_example() {
        let src = r#"
            .data
            table:  .dword 1 2 3
            .text
            start:  li   r1, 3
                    la   r2, =table
            loop:   ld   r3, 0(r2)
                    addi r2, r2, 8
                    addi r1, r1, -1
                    bne  r1, zero, loop
                    halt
        "#;
        let p = assemble("doc", src).unwrap();
        assert_eq!(p.text.len(), 7);
        assert_eq!(p.label("loop"), Some(2));
        // la resolved to the data label's address.
        match p.text[1] {
            Inst::Li { imm, .. } => {
                assert_eq!(p.data.read_u64(Addr(imm as u64)).unwrap(), 1)
            }
            other => panic!("{other:?}"),
        }
        match p.text[2] {
            Inst::Load { kind, off, .. } => {
                assert_eq!(kind, LoadKind::D);
                assert_eq!(off, 0);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let p = assemble("c", "# header\n  nop ; trailing\n\nhalt\n").unwrap();
        assert_eq!(p.text, vec![Inst::Nop, Inst::Halt]);
    }

    #[test]
    fn sta_instructions_assemble() {
        let src = r#"
            .text
            begin 1
            body: fork r1|r2, body
                  tsann 8(r3)
                  tsagdone
                  abort done
                  thread_end
            done: halt
        "#;
        let p = assemble("sta", src).unwrap();
        match p.text[1] {
            Inst::Fork { mask, body } => {
                assert_eq!(mask, 0b110);
                assert_eq!(body, 1);
            }
            other => panic!("{other:?}"),
        }
        match p.text[4] {
            Inst::Abort { seq } => assert_eq!(seq, 6),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn data_directives() {
        let src = r#"
            .data
            a: .double 1.5
            b: .space 16
            c: .align 64
            d: .dword 0x10
            .text
            la r1, =d
            halt
        "#;
        let p = assemble("d", src).unwrap();
        match p.text[0] {
            Inst::Li { imm, .. } => {
                assert_eq!(imm as u64 % 64, 0); // d starts right at the .align 64 boundary
                assert_eq!(p.data.read_u64(Addr(imm as u64)).unwrap(), 0x10);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn negative_and_hex_immediates() {
        let p = assemble("i", ".text\nli r1, -0x10\naddi r2, r1, -3\nhalt\n").unwrap();
        assert_eq!(
            p.text[0],
            Inst::Li {
                rd: Reg(1),
                imm: -16
            }
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("e", ".text\nnop\nbogus r1, r2\n").unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("line 3"), "{msg}");
        let e = assemble("e", ".text\nld r1, r2\n").unwrap_err();
        assert!(e.to_string().contains("off(base)"), "{e}");
        let e = assemble("e", ".text\nadd r1, r2\n").unwrap_err();
        assert!(e.to_string().contains("expects 3 operands"), "{e}");
    }

    #[test]
    fn undefined_data_label_reported() {
        let e = assemble("e", ".text\nla r1, =missing\nhalt\n").unwrap_err();
        assert!(e.to_string().contains("missing"), "{e}");
    }

    #[test]
    fn undefined_branch_target_reported() {
        let e = assemble("e", ".text\nj nowhere\nhalt\n").unwrap_err();
        assert!(e.to_string().contains("nowhere"), "{e}");
    }

    #[test]
    fn fcmp_and_fp_assemble() {
        let src = ".text\nfadd f1, f2, f3\nflt r1, f1, f2\ncvtif f0, r5\ncvtfi r6, f0\nhalt\n";
        let p = assemble("f", src).unwrap();
        assert_eq!(p.text.len(), 5);
        match p.text[1] {
            Inst::FCmp { op, .. } => assert_eq!(op, FCmpOp::Lt),
            other => panic!("{other:?}"),
        }
    }
}
