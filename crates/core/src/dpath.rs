//! The per-thread-unit L1 data path: L1 cache plus the side structure the
//! paper's configurations vary — **this is where the Wrong Execution Cache
//! lives** (§3.2, Figures 5 and 6).
//!
//! One [`DataPath`] implements all the paper's L1 arrangements:
//!
//! * [`SideKind::None`] — bare L1 (`orig`, `wp`, `wth`, `wth-wp`);
//! * [`SideKind::Victim`] — L1 + victim cache (`vc`, `wth-wp-vc`);
//! * [`SideKind::Wec`] — L1 + Wrong Execution Cache (`wth-wp-wec`);
//! * [`SideKind::PrefetchBuffer`] — L1 + tagged next-line prefetch buffer
//!   (`nlp`).
//!
//! The WEC policy, from Figure 6:
//!
//! * a **wrong-execution** load probes L1 and WEC in parallel; on a double
//!   miss the block is fetched into the **WEC**, never the L1 (pollution
//!   control); an L1 hit just updates LRU;
//! * a **correct** load that misses L1 but hits the WEC **swaps** the WEC
//!   block with the L1 victim and — if the block was brought in by wrong
//!   execution — issues a **next-line prefetch into the WEC**;
//! * a correct load that misses both fills the L1, and the displaced victim
//!   goes into the WEC (victim-cache behaviour);
//! * without a WEC, wrong-execution fills go straight into the L1 — exactly
//!   the pollution the paper measures in its `wp`/`wth` configurations.

use wec_common::error::SimResult;
use wec_common::ids::{Addr, Cycle};
use wec_mem::cache::{Cache, CacheGeometry};
use wec_mem::l2::SharedL2;
use wec_mem::line::LineFlags;
use wec_mem::mshr::{MshrOutcome, Mshrs};
use wec_mem::ports::PortSet;
use wec_mem::prefetch::TaggedNextLine;
use wec_mem::stats::{AccessKind, CacheStats};
use wec_telemetry::attr::{AttrProbe, FillOrigin};
use wec_telemetry::{CacheEvent, CacheTrace};

/// Which side structure sits beside the L1.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SideKind {
    None,
    Victim,
    Wec,
    PrefetchBuffer,
}

/// Configuration of one L1 data path.
#[derive(Clone, Copy, Debug)]
pub struct DataPathConfig {
    pub capacity_bytes: u64,
    pub ways: usize,
    pub block_bytes: u64,
    pub hit_latency: u64,
    pub ports: u32,
    pub mshrs: usize,
    pub side: SideKind,
    /// Entries in the side structure (ignored for `SideKind::None`).
    pub side_entries: usize,
}

impl DataPathConfig {
    /// The paper's default L1D (§5.2): 8 KB direct-mapped, 64 B blocks,
    /// 8-entry fully-associative side structure.
    pub fn paper_default(side: SideKind) -> Self {
        DataPathConfig {
            capacity_bytes: 8 * 1024,
            ways: 1,
            block_bytes: 64,
            hit_latency: 1,
            ports: 2,
            mshrs: 8,
            side,
            side_entries: 8,
        }
    }

    /// The paper's L1I (§4.1): 32 KB 2-way, no side structure.
    pub fn paper_icache() -> Self {
        DataPathConfig {
            capacity_bytes: 32 * 1024,
            ways: 2,
            block_bytes: 64,
            hit_latency: 1,
            ports: 1,
            mshrs: 2,
            side: SideKind::None,
            side_entries: 0,
        }
    }
}

/// Result of a data-path access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DpResult {
    /// Access accepted; data available at `ready_at`.
    Done { ready_at: Cycle },
    /// No port / no MSHR this cycle: retry.
    Retry,
}

/// One thread unit's L1 (data or instruction) with its side structure.
///
/// ```
/// use wec_common::ids::{Addr, Cycle};
/// use wec_core::dpath::{DataPath, DataPathConfig, DpResult, SideKind};
/// use wec_mem::l2::{L2Config, SharedL2};
/// use wec_mem::stats::AccessKind;
///
/// let mut dp = DataPath::new(DataPathConfig::paper_default(SideKind::Wec))?;
/// let mut l2 = SharedL2::new(L2Config::default())?;
/// // A wrong-execution load fills the WEC, never the L1 (Figure 6):
/// dp.access(Addr(0x4000), AccessKind::WrongPathLoad, Cycle(0), &mut l2);
/// assert!(dp.side_contains(Addr(0x4000)) && !dp.l1_contains(Addr(0x4000)));
/// // The correct path later demands it: a fast WEC hit that swaps the
/// // block into the L1 and chains a next-line prefetch.
/// let r = dp.access(Addr(0x4000), AccessKind::CorrectLoad, Cycle(500), &mut l2);
/// assert_eq!(r, DpResult::Done { ready_at: Cycle(501) });
/// assert!(dp.l1_contains(Addr(0x4000)));
/// # Ok::<(), wec_common::SimError>(())
/// ```
pub struct DataPath {
    cfg: DataPathConfig,
    l1: Cache,
    side: Option<Cache>,
    ports: PortSet,
    mshrs: Mshrs,
    nlp: TaggedNextLine,
    pub stats: CacheStats,
    /// Gated telemetry buffer (WEC fills, side hits, victim transfers,
    /// prefetches, misses); drained and TU-tagged by the machine.
    pub trace: CacheTrace,
    /// Speculation attribution ledger (`None` unless attribution is on);
    /// one `is_some` branch per hook when off, so goldens stay
    /// byte-identical either way.
    pub attr: Option<Box<AttrProbe>>,
}

impl DataPath {
    pub fn new(cfg: DataPathConfig) -> SimResult<Self> {
        let geom = CacheGeometry::from_capacity(cfg.capacity_bytes, cfg.ways, cfg.block_bytes)?;
        let side = match cfg.side {
            SideKind::None => None,
            _ => Some(Cache::new(CacheGeometry::fully_associative(
                cfg.side_entries,
                cfg.block_bytes,
            ))),
        };
        Ok(DataPath {
            cfg,
            l1: Cache::new(geom),
            side,
            ports: PortSet::new(cfg.ports),
            mshrs: Mshrs::new(cfg.mshrs, cfg.block_bytes),
            nlp: TaggedNextLine::new(),
            stats: CacheStats::default(),
            trace: CacheTrace::default(),
            attr: None,
        })
    }

    pub fn config(&self) -> &DataPathConfig {
        &self.cfg
    }

    /// Attach a speculation attribution probe sized to this L1's geometry.
    /// Purely observational: the access stream, stats, and goldens are
    /// byte-identical with or without it.
    pub fn enable_attribution(&mut self) {
        let sets = self.l1.geometry().sets as usize;
        self.attr = Some(Box::new(AttrProbe::new(sets, self.cfg.block_bytes)));
    }

    /// Announce the PC of the access about to be presented (stores pass 0,
    /// matching the trace-record convention).  No-op when attribution is
    /// off.
    #[inline]
    pub fn attr_note_pc(&mut self, pc: u32) {
        if let Some(a) = self.attr.as_deref_mut() {
            a.note_pc(pc);
        }
    }

    /// Access the data path. `kind` routes the access per Figure 6; stores
    /// pass `AccessKind::CorrectStore` (write-allocate, mark dirty).
    pub fn access(
        &mut self,
        addr: Addr,
        kind: AccessKind,
        now: Cycle,
        l2: &mut SharedL2,
    ) -> DpResult {
        if !self.ports.try_claim(now) {
            return DpResult::Retry;
        }
        if kind.is_wrong() {
            self.wrong_access(addr, kind, now, l2)
        } else {
            self.correct_access(addr, kind, now, l2)
        }
    }

    // ---------------- correct path (Figure 6, right side) ----------------

    fn correct_access(
        &mut self,
        addr: Addr,
        kind: AccessKind,
        now: Cycle,
        l2: &mut SharedL2,
    ) -> DpResult {
        let is_store = kind == AccessKind::CorrectStore;
        let hit_latency = self.cfg.hit_latency;
        let block_bytes = self.cfg.block_bytes;

        // Merge into an outstanding refill first.
        if let Some(ready) = self.mshrs.pending(addr, now) {
            self.stats.record(kind, true);
            if let Some(a) = self.attr.as_deref_mut() {
                a.on_l1_demand(addr.0, true);
            }
            if is_store {
                self.l1.set_dirty(addr);
            }
            return DpResult::Done {
                ready_at: ready.max(now.plus(hit_latency)),
            };
        }

        // L1 hit?
        if let Some(line) = self.l1.touch(addr) {
            let was_wrong = line.flags.wrong_fetched;
            let was_prefetched = line.flags.prefetched;
            line.flags.wrong_fetched = false;
            line.flags.prefetched = false;
            if is_store {
                line.flags.dirty = true;
            }
            self.stats.record(kind, true);
            if let Some(a) = self.attr.as_deref_mut() {
                a.on_l1_demand(addr.0, true);
            }
            if was_wrong {
                self.stats.useful_wrong_fetches.inc();
            }
            if was_prefetched {
                self.stats.useful_prefetches.inc();
                if self.cfg.side == SideKind::PrefetchBuffer {
                    // Tagged prefetch re-arms on the first demand hit.
                    let next = addr.next_block(block_bytes);
                    self.issue_prefetch(next, LineFlags::PREFETCH, now, l2);
                }
            }
            return DpResult::Done {
                ready_at: now.plus(hit_latency),
            };
        }

        self.stats.record(kind, false);
        if let Some(a) = self.attr.as_deref_mut() {
            a.on_l1_demand(addr.0, false);
        }

        // L1 miss: probe the side structure.
        if self.side.is_some() && self.side.as_ref().unwrap().contains(addr) {
            let side_line = self.side.as_mut().unwrap().take(addr).unwrap();
            self.stats.side_hits.inc();
            let was_wrong = side_line.flags.wrong_fetched;
            let was_prefetched = side_line.flags.prefetched;
            self.trace.push(
                now.0,
                CacheEvent::SideHit {
                    wrong_fetched: was_wrong,
                    prefetched: was_prefetched,
                },
                addr.block_base(block_bytes).0,
            );
            if let Some(a) = self.attr.as_deref_mut() {
                a.on_side_hit(addr.0, now.0);
            }
            if was_wrong {
                self.stats.useful_wrong_fetches.inc();
            }
            if was_prefetched {
                self.stats.useful_prefetches.inc();
            }
            // The block moves into the L1 as a demanded block.
            let flags = LineFlags {
                dirty: side_line.flags.dirty || is_store,
                ..LineFlags::DEMAND
            };
            match self.cfg.side {
                SideKind::Victim | SideKind::Wec => {
                    // Swap: the displaced L1 victim takes the side slot
                    // (guaranteed free: `take` just vacated one).
                    if let Some(victim) = self.l1.insert(addr, flags) {
                        self.stats.evictions.inc();
                        self.side
                            .as_mut()
                            .unwrap()
                            .insert(victim.addr, victim.flags);
                        if let Some(a) = self.attr.as_deref_mut() {
                            a.on_side_fill(victim.addr.0, now.0, FillOrigin::Victim);
                        }
                    }
                    if self.cfg.side == SideKind::Wec && (was_wrong || was_prefetched) {
                        // First correct use of a wrongly-fetched block:
                        // next-line prefetch into the WEC (§3.2.1).  The
                        // prefetched block is itself marked wrong-fetched so
                        // a hit to it keeps the chain going.
                        let next = addr.next_block(block_bytes);
                        let flags = LineFlags {
                            dirty: false,
                            wrong_fetched: true,
                            prefetched: true,
                        };
                        self.nlp.issued.inc();
                        self.stats.prefetches_issued.inc();
                        self.issue_prefetch_raw(next, flags, now, l2);
                    }
                }
                SideKind::PrefetchBuffer => {
                    // Jouppi-style buffer: block promotes to L1; the L1
                    // victim is evicted normally.
                    if let Some(victim) = self.l1.insert(addr, flags) {
                        self.evict_to_l2(victim.addr, victim.flags, now, l2);
                    }
                    if was_prefetched {
                        let next = addr.next_block(block_bytes);
                        self.issue_prefetch(next, LineFlags::PREFETCH, now, l2);
                    }
                }
                SideKind::None => unreachable!(),
            }
            return DpResult::Done {
                ready_at: now.plus(hit_latency),
            };
        }

        // Miss everywhere: fetch from L2 into the L1.
        self.stats.demand_misses_to_next_level.inc();
        self.trace.push(
            now.0,
            CacheEvent::MissToNext { wrong: false },
            addr.block_base(block_bytes).0,
        );
        let fetch_start = now.plus(hit_latency);
        let ready = match self
            .mshrs
            .register(addr, now, || l2.access(addr, kind, false, fetch_start))
        {
            MshrOutcome::NewMiss(r) | MshrOutcome::Merged(r) => r,
            MshrOutcome::Full => return DpResult::Retry,
        };
        let flags = LineFlags {
            dirty: is_store,
            ..LineFlags::DEMAND
        };
        if let Some(victim) = self.l1.insert(addr, flags) {
            self.stats.evictions.inc();
            match self.cfg.side {
                SideKind::Victim | SideKind::Wec => {
                    // Victim-cache behaviour: the displaced block parks in
                    // the side structure.
                    self.trace
                        .push(now.0, CacheEvent::VictimTransfer, victim.addr.0);
                    if let Some(a) = self.attr.as_deref_mut() {
                        a.on_side_fill(victim.addr.0, now.0, FillOrigin::Victim);
                    }
                    if let Some(side_victim) = self
                        .side
                        .as_mut()
                        .unwrap()
                        .insert(victim.addr, victim.flags)
                    {
                        if let Some(a) = self.attr.as_deref_mut() {
                            a.on_side_evict(side_victim.addr.0);
                        }
                        self.writeback_if_dirty(side_victim.addr, side_victim.flags, now, l2);
                    }
                }
                _ => self.writeback_if_dirty(victim.addr, victim.flags, now, l2),
            }
        }
        if self.cfg.side == SideKind::PrefetchBuffer {
            // Tagged prefetch arms on every demand miss.
            let next = addr.next_block(block_bytes);
            self.issue_prefetch(next, LineFlags::PREFETCH, now, l2);
        }
        DpResult::Done { ready_at: ready }
    }

    // ---------------- wrong execution (Figure 6, left side) ----------------

    fn wrong_access(
        &mut self,
        addr: Addr,
        kind: AccessKind,
        now: Cycle,
        l2: &mut SharedL2,
    ) -> DpResult {
        let hit_latency = self.cfg.hit_latency;
        self.stats.record(kind, false); // traffic counting; hit split below

        if let Some(ready) = self.mshrs.pending(addr, now) {
            return DpResult::Done {
                ready_at: ready.max(now.plus(hit_latency)),
            };
        }
        // L1 hit: just refresh LRU.
        if self.l1.touch(addr).is_some() {
            return DpResult::Done {
                ready_at: now.plus(hit_latency),
            };
        }
        // WEC (or other side) hit: refresh side LRU, serve from there.
        if let Some(side) = self.side.as_mut() {
            if side.touch(addr).is_some() {
                return DpResult::Done {
                    ready_at: now.plus(hit_latency),
                };
            }
        }
        // Double miss: fetch from the next level.
        self.stats.wrong_misses_to_next_level.inc();
        self.trace.push(
            now.0,
            CacheEvent::MissToNext { wrong: true },
            addr.block_base(self.cfg.block_bytes).0,
        );
        let fetch_start = now.plus(hit_latency);
        let ready = match self
            .mshrs
            .register(addr, now, || l2.access(addr, kind, false, fetch_start))
        {
            MshrOutcome::NewMiss(r) | MshrOutcome::Merged(r) => r,
            MshrOutcome::Full => return DpResult::Retry,
        };
        match self.cfg.side {
            SideKind::Wec => {
                // The paper's central rule: wrong-execution fills go to the
                // WEC, never the L1.
                self.trace.push(
                    now.0,
                    CacheEvent::WecFill,
                    addr.block_base(self.cfg.block_bytes).0,
                );
                if let Some(a) = self.attr.as_deref_mut() {
                    a.on_side_fill(addr.0, now.0, FillOrigin::Wrong);
                }
                if let Some(victim) = self.side.as_mut().unwrap().insert(addr, LineFlags::WRONG) {
                    if let Some(a) = self.attr.as_deref_mut() {
                        a.on_side_evict(victim.addr.0);
                    }
                    self.writeback_if_dirty(victim.addr, victim.flags, now, l2);
                }
            }
            SideKind::Victim | SideKind::None | SideKind::PrefetchBuffer => {
                // No WEC: the wrong fill pollutes the L1 (this is what the
                // wp/wth/wth-wp/wth-wp-vc configurations measure).
                if let Some(victim) = self.l1.insert(addr, LineFlags::WRONG) {
                    self.stats.evictions.inc();
                    if self.cfg.side == SideKind::Victim {
                        if let Some(a) = self.attr.as_deref_mut() {
                            a.on_side_fill(victim.addr.0, now.0, FillOrigin::Victim);
                        }
                        if let Some(side_victim) = self
                            .side
                            .as_mut()
                            .unwrap()
                            .insert(victim.addr, victim.flags)
                        {
                            if let Some(a) = self.attr.as_deref_mut() {
                                a.on_side_evict(side_victim.addr.0);
                            }
                            self.writeback_if_dirty(side_victim.addr, side_victim.flags, now, l2);
                        }
                    } else {
                        self.writeback_if_dirty(victim.addr, victim.flags, now, l2);
                    }
                }
            }
        }
        DpResult::Done { ready_at: ready }
    }

    // ---------------- helpers ----------------

    /// Issue a hardware prefetch into the side structure (skipped if the
    /// block is already somewhere in this data path or in flight).
    fn issue_prefetch(&mut self, addr: Addr, flags: LineFlags, now: Cycle, l2: &mut SharedL2) {
        self.stats.prefetches_issued.inc();
        self.nlp.issued.inc();
        self.issue_prefetch_raw(addr, flags, now, l2);
    }

    fn issue_prefetch_raw(&mut self, addr: Addr, flags: LineFlags, now: Cycle, l2: &mut SharedL2) {
        if self.l1.contains(addr)
            || self.side.as_ref().is_some_and(|s| s.contains(addr))
            || self.mshrs.pending(addr, now).is_some()
        {
            return;
        }
        self.trace.push(
            now.0,
            CacheEvent::NextLinePrefetch,
            addr.block_base(self.cfg.block_bytes).0,
        );
        // Prefetches ride the L2 in the background; nobody waits on them, so
        // the instant-fill simplification costs nothing here.
        let _ = l2.access(
            addr,
            AccessKind::Prefetch,
            false,
            now.plus(self.cfg.hit_latency),
        );
        if self.side.is_some() {
            if let Some(a) = self.attr.as_deref_mut() {
                a.on_side_fill(addr.0, now.0, FillOrigin::Prefetch);
            }
            if let Some(victim) = self.side.as_mut().unwrap().insert(addr, flags) {
                if let Some(a) = self.attr.as_deref_mut() {
                    a.on_side_evict(victim.addr.0);
                }
                self.writeback_if_dirty(victim.addr, victim.flags, now, l2);
            }
        }
    }

    fn evict_to_l2(&mut self, addr: Addr, flags: LineFlags, now: Cycle, l2: &mut SharedL2) {
        self.stats.evictions.inc();
        self.writeback_if_dirty(addr, flags, now, l2);
    }

    fn writeback_if_dirty(&mut self, addr: Addr, flags: LineFlags, now: Cycle, l2: &mut SharedL2) {
        if flags.dirty {
            self.stats.writebacks.inc();
            let _ = l2.access(addr, AccessKind::CorrectStore, true, now);
        }
    }

    /// Is the block containing `addr` resident in the L1 proper? (Tests.)
    pub fn l1_contains(&self, addr: Addr) -> bool {
        self.l1.contains(addr)
    }

    /// Is the block resident in the side structure? (Tests.)
    pub fn side_contains(&self, addr: Addr) -> bool {
        self.side.as_ref().is_some_and(|s| s.contains(addr))
    }

    /// Wrong-fetched flag of a resident side block (tests).
    pub fn side_flags(&self, addr: Addr) -> Option<LineFlags> {
        self.side.as_ref()?.peek(addr).map(|l| l.flags)
    }

    /// Valid lines currently held by the side structure (WEC occupancy for
    /// the telemetry sampler; 0 without a side structure).
    pub fn side_occupancy(&self) -> usize {
        self.side.as_ref().map_or(0, |s| s.valid_lines())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wec_mem::l2::L2Config;

    fn l2() -> SharedL2 {
        SharedL2::new(L2Config::default()).unwrap()
    }

    fn dp(side: SideKind) -> DataPath {
        DataPath::new(DataPathConfig::paper_default(side)).unwrap()
    }

    fn done(r: DpResult) -> Cycle {
        match r {
            DpResult::Done { ready_at } => ready_at,
            DpResult::Retry => panic!("unexpected retry"),
        }
    }

    #[test]
    fn wrong_fill_goes_to_wec_not_l1() {
        let mut d = dp(SideKind::Wec);
        let mut l2 = l2();
        let a = Addr(0x1_0000);
        done(d.access(a, AccessKind::WrongPathLoad, Cycle(0), &mut l2));
        assert!(!d.l1_contains(a), "wrong fill polluted the L1");
        assert!(d.side_contains(a));
        assert!(d.side_flags(a).unwrap().wrong_fetched);
    }

    #[test]
    fn wrong_fill_pollutes_l1_without_wec() {
        for side in [SideKind::None, SideKind::Victim] {
            let mut d = dp(side);
            let mut l2 = l2();
            let a = Addr(0x1_0000);
            done(d.access(a, AccessKind::WrongThreadLoad, Cycle(0), &mut l2));
            assert!(d.l1_contains(a), "{side:?}");
        }
    }

    #[test]
    fn correct_hit_on_wec_block_swaps_and_prefetches() {
        let mut d = dp(SideKind::Wec);
        let mut l2 = l2();
        let a = Addr(0x2_0000);
        // Wrong execution brings the block into the WEC...
        done(d.access(a, AccessKind::WrongPathLoad, Cycle(0), &mut l2));
        // ...then the correct path demands it (after the refill lands):
        // fast hit, block moves to L1, next line prefetched into the WEC.
        let t = done(d.access(a, AccessKind::CorrectLoad, Cycle(400), &mut l2));
        assert_eq!(t, Cycle(401), "WEC hit must cost the L1 hit latency");
        assert!(d.l1_contains(a));
        assert!(!d.l1.peek(a).unwrap().flags.wrong_fetched);
        let next = a.next_block(64);
        assert!(d.side_contains(next), "next-line prefetch missing");
        assert_eq!(d.stats.useful_wrong_fetches.get(), 1);
        assert_eq!(d.stats.side_hits.get(), 1);
    }

    #[test]
    fn correct_miss_fills_l1_and_victim_goes_to_wec() {
        let mut d = dp(SideKind::Wec);
        let mut l2 = l2();
        // Two conflicting blocks (8 KB apart, direct-mapped).
        let a = Addr(0x0_0000);
        let b = Addr(0x0_2000);
        done(d.access(a, AccessKind::CorrectLoad, Cycle(0), &mut l2));
        done(d.access(b, AccessKind::CorrectLoad, Cycle(400), &mut l2));
        assert!(d.l1_contains(b));
        assert!(!d.l1_contains(a));
        assert!(d.side_contains(a), "victim not parked in the WEC");
        // And the conflicting re-reference is now a cheap swap.
        let t = done(d.access(a, AccessKind::CorrectLoad, Cycle(800), &mut l2));
        assert_eq!(t, Cycle(801));
        assert!(d.l1_contains(a) && d.side_contains(b));
    }

    #[test]
    fn victim_cache_handles_conflicts_like_wec() {
        let mut d = dp(SideKind::Victim);
        let mut l2 = l2();
        let a = Addr(0x0_0000);
        let b = Addr(0x0_2000);
        done(d.access(a, AccessKind::CorrectLoad, Cycle(0), &mut l2));
        done(d.access(b, AccessKind::CorrectLoad, Cycle(400), &mut l2));
        let t = done(d.access(a, AccessKind::CorrectLoad, Cycle(800), &mut l2));
        assert_eq!(t, Cycle(801));
        assert_eq!(d.stats.side_hits.get(), 1);
    }

    #[test]
    fn wrong_hit_in_l1_does_not_move_blocks() {
        let mut d = dp(SideKind::Wec);
        let mut l2 = l2();
        let a = Addr(0x3_0000);
        done(d.access(a, AccessKind::CorrectLoad, Cycle(0), &mut l2));
        done(d.access(a, AccessKind::WrongPathLoad, Cycle(400), &mut l2));
        assert!(d.l1_contains(a));
        assert!(!d.side_contains(a));
        assert_eq!(d.stats.wrong_accesses.get(), 1);
        assert_eq!(d.stats.wrong_misses_to_next_level.get(), 0);
    }

    #[test]
    fn nlp_prefetches_on_miss_and_rearms_on_hit() {
        let mut d = dp(SideKind::PrefetchBuffer);
        let mut l2 = l2();
        let a = Addr(0x4_0000);
        done(d.access(a, AccessKind::CorrectLoad, Cycle(0), &mut l2));
        let next = a.next_block(64);
        assert!(d.side_contains(next), "miss must arm a prefetch");
        // Demand the prefetched block: it promotes to L1 and re-arms.
        let t = done(d.access(next, AccessKind::CorrectLoad, Cycle(400), &mut l2));
        assert_eq!(t, Cycle(401), "prefetch-buffer hit should be fast");
        assert!(d.l1_contains(next));
        assert!(d.side_contains(next.next_block(64)));
        assert_eq!(d.stats.useful_prefetches.get(), 1);
    }

    #[test]
    fn trace_captures_wec_fill_and_hit() {
        let mut d = dp(SideKind::Wec);
        let mut l2 = l2();
        d.trace.set_enabled(true);
        let a = Addr(0x2_0000);
        done(d.access(a, AccessKind::WrongPathLoad, Cycle(0), &mut l2));
        done(d.access(a, AccessKind::CorrectLoad, Cycle(400), &mut l2));
        let evs: Vec<_> = d.trace.drain().collect();
        assert!(evs.contains(&(0, CacheEvent::MissToNext { wrong: true }, a.0)));
        assert!(evs.contains(&(0, CacheEvent::WecFill, a.0)));
        assert!(evs.iter().any(|&(c, e, ad)| c == 400
            && ad == a.0
            && matches!(
                e,
                CacheEvent::SideHit {
                    wrong_fetched: true,
                    ..
                }
            )));
        assert!(
            evs.iter()
                .any(|&(_, e, _)| e == CacheEvent::NextLinePrefetch),
            "WEC hit must chain a next-line prefetch event"
        );
        assert_eq!(d.side_occupancy(), 1);
    }

    #[test]
    fn mshr_merges_wrong_then_correct_access() {
        // A wrong-execution load starts a refill; the correct path arrives
        // two cycles later and must merge (one L2 fetch, shortened miss).
        let mut d = dp(SideKind::Wec);
        let mut l2 = l2();
        let a = Addr(0x5_0000);
        let t_wrong = done(d.access(a, AccessKind::WrongPathLoad, Cycle(0), &mut l2));
        let t_correct = done(d.access(a, AccessKind::CorrectLoad, Cycle(2), &mut l2));
        assert_eq!(t_wrong, t_correct, "must merge into the same refill");
        assert_eq!(
            l2.stats.wrong_accesses.get() + l2.stats.demand_accesses.get(),
            1
        );
    }

    #[test]
    fn ports_reject_excess_accesses_per_cycle() {
        let mut d = dp(SideKind::None);
        let mut l2 = l2();
        let now = Cycle(0);
        assert!(matches!(
            d.access(Addr(0x100), AccessKind::CorrectLoad, now, &mut l2),
            DpResult::Done { .. }
        ));
        assert!(matches!(
            d.access(Addr(0x200), AccessKind::CorrectLoad, now, &mut l2),
            DpResult::Done { .. }
        ));
        assert_eq!(
            d.access(Addr(0x300), AccessKind::CorrectLoad, now, &mut l2),
            DpResult::Retry
        );
        // Next cycle they are free again.
        assert!(matches!(
            d.access(Addr(0x300), AccessKind::CorrectLoad, Cycle(1), &mut l2),
            DpResult::Done { .. }
        ));
    }

    #[test]
    fn store_miss_write_allocates_dirty_and_writes_back() {
        let mut d = dp(SideKind::None);
        let mut l2 = l2();
        let a = Addr(0x0_0000);
        let b = Addr(0x0_2000); // conflicts with a
        done(d.access(a, AccessKind::CorrectStore, Cycle(0), &mut l2));
        assert!(d.l1.peek(a).unwrap().flags.dirty);
        done(d.access(b, AccessKind::CorrectLoad, Cycle(400), &mut l2));
        assert_eq!(d.stats.writebacks.get(), 1);
    }

    #[test]
    fn wec_eviction_never_reaches_l1() {
        // Fill the 8-entry WEC with nine wrong-execution blocks; the
        // overflow must evict the oldest WEC block, not touch the L1.
        let mut d = dp(SideKind::Wec);
        let mut l2 = l2();
        for i in 0..9u64 {
            done(d.access(
                Addr(0x10_0000 + i * 64),
                AccessKind::WrongPathLoad,
                Cycle(i * 400),
                &mut l2,
            ));
        }
        assert!(!d.side_contains(Addr(0x10_0000)), "oldest should be gone");
        assert!(d.side_contains(Addr(0x10_0000 + 8 * 64)));
        for i in 0..9u64 {
            assert!(!d.l1_contains(Addr(0x10_0000 + i * 64)));
        }
    }
}
