//! The on-disk trace container: a versioned, checksummed header plus one
//! encoded stream per thread unit.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic            8B  "WECTRACE"
//! format_version   u32
//! sim_revision     u32  wec_core::SIM_REVISION of the capturing build
//! n_tus            u32
//! scale_units      u32  workload scale (Scale::units)
//! total_records    u64
//! bench            u16 length + UTF-8   workload identity ("181.mcf")
//! cfg_label        u16 length + UTF-8   captured configuration label
//! per TU stream:
//!   records        u64
//!   checksum       u64  content checksum over decoded records
//!   n_blocks       u32
//!   per block:
//!     records      u32
//!     n_bytes      u32
//!     checksum     u64  FNV-1a over the encoded bytes
//!     bytes
//! file_checksum    u64  FNV-1a over everything above
//! ```

use std::path::Path;

use crate::codec::{fnv1a, fnv_fold, Cursor};
use crate::record::TraceRecord;
use crate::stream::{Block, EncodedStream, StreamDecoder};
use crate::TraceError;

pub const MAGIC: [u8; 8] = *b"WECTRACE";
pub const FORMAT_VERSION: u32 = 1;

/// Identity and provenance of a capture.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceHeader {
    pub format_version: u32,
    /// `wec_core::SIM_REVISION` of the build that captured the trace.
    pub sim_revision: u32,
    pub n_tus: u32,
    pub scale_units: u32,
    /// Workload identity, e.g. `"181.mcf"`.
    pub bench: String,
    /// Label of the captured machine configuration (`CfgKey::label()`
    /// format in the experiment harness).
    pub cfg_label: String,
    pub total_records: u64,
}

/// A complete trace: header + per-TU streams.
pub struct Trace {
    pub header: TraceHeader,
    pub streams: Vec<EncodedStream>,
}

impl Trace {
    /// Sum of encoded payload bytes across all streams (excludes headers).
    pub fn encoded_bytes(&self) -> u64 {
        self.streams.iter().map(EncodedStream::encoded_bytes).sum()
    }

    /// Cheap stable identity for result-cache keys: folds the stream
    /// content checksums, counts, and capture metadata.
    pub fn identity(&self) -> u64 {
        let mut h = fnv1a(self.header.bench.as_bytes());
        h = fnv_fold(h, self.header.sim_revision as u64);
        h = fnv_fold(h, self.header.scale_units as u64);
        h = fnv_fold(h, self.header.total_records);
        for s in &self.streams {
            h = fnv_fold(h, s.records);
            h = fnv_fold(h, s.checksum);
        }
        h
    }

    /// Decode one TU's stream.
    pub fn iter_tu(&self, tu: u32) -> StreamDecoder<'_> {
        StreamDecoder::new(&self.streams[tu as usize], tu)
    }

    /// Merge all streams back into the machine's global access order.
    pub fn merged(&self) -> Result<MergedIter<'_>, TraceError> {
        MergedIter::new(self)
    }

    /// Fully decode every stream, verifying all checksums.  Returns the
    /// total number of records.
    pub fn verify(&self) -> Result<u64, TraceError> {
        let mut n = 0u64;
        for tu in 0..self.streams.len() as u32 {
            for rec in self.iter_tu(tu) {
                rec?;
                n += 1;
            }
        }
        if n != self.header.total_records {
            return Err(TraceError::Corrupt(format!(
                "decoded {n} records, header says {}",
                self.header.total_records
            )));
        }
        Ok(n)
    }

    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        put_u32(&mut out, self.header.format_version);
        put_u32(&mut out, self.header.sim_revision);
        put_u32(&mut out, self.header.n_tus);
        put_u32(&mut out, self.header.scale_units);
        put_u64(&mut out, self.header.total_records);
        put_str(&mut out, &self.header.bench);
        put_str(&mut out, &self.header.cfg_label);
        for s in &self.streams {
            put_u64(&mut out, s.records);
            put_u64(&mut out, s.checksum);
            put_u32(&mut out, s.blocks.len() as u32);
            for b in &s.blocks {
                put_u32(&mut out, b.records);
                put_u32(&mut out, b.bytes.len() as u32);
                put_u64(&mut out, b.checksum);
                out.extend_from_slice(&b.bytes);
            }
        }
        let file_sum = fnv1a(&out);
        put_u64(&mut out, file_sum);
        out
    }

    pub fn from_bytes(bytes: &[u8]) -> Result<Trace, TraceError> {
        if bytes.len() < MAGIC.len() + 8 {
            return Err(TraceError::Truncated("file shorter than header"));
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let declared = u64::from_le_bytes(tail.try_into().unwrap());
        if fnv1a(body) != declared {
            return Err(TraceError::Corrupt("file checksum mismatch".into()));
        }
        let mut c = Cursor::new(body);
        if c.take(MAGIC.len(), "magic")? != MAGIC {
            return Err(TraceError::Corrupt("bad magic".into()));
        }
        let format_version = c.get_u32("format version")?;
        if format_version != FORMAT_VERSION {
            return Err(TraceError::Version(format_version));
        }
        let sim_revision = c.get_u32("sim revision")?;
        let n_tus = c.get_u32("n_tus")?;
        if n_tus == 0 || n_tus > 4096 {
            return Err(TraceError::Corrupt(format!("implausible n_tus {n_tus}")));
        }
        let scale_units = c.get_u32("scale")?;
        let total_records = c.get_u64("total records")?;
        let bench = get_str(&mut c, "bench name")?;
        let cfg_label = get_str(&mut c, "config label")?;
        let mut streams = Vec::with_capacity(n_tus as usize);
        for _ in 0..n_tus {
            let records = c.get_u64("stream record count")?;
            let checksum = c.get_u64("stream checksum")?;
            let n_blocks = c.get_u32("block count")?;
            let mut blocks = Vec::with_capacity(n_blocks as usize);
            for _ in 0..n_blocks {
                let brecords = c.get_u32("block record count")?;
                let n_bytes = c.get_u32("block byte count")?;
                let bsum = c.get_u64("block checksum")?;
                let data = c.take(n_bytes as usize, "block bytes")?;
                blocks.push(Block {
                    records: brecords,
                    checksum: bsum,
                    bytes: data.to_vec(),
                });
            }
            streams.push(EncodedStream {
                records,
                checksum,
                blocks,
            });
        }
        if !c.is_empty() {
            return Err(TraceError::Corrupt("trailing bytes after streams".into()));
        }
        Ok(Trace {
            header: TraceHeader {
                format_version,
                sim_revision,
                n_tus,
                scale_units,
                bench,
                cfg_label,
                total_records,
            },
            streams,
        })
    }

    pub fn write_to(&self, path: &Path) -> Result<(), TraceError> {
        std::fs::write(path, self.to_bytes())
            .map_err(|e| TraceError::Io(format!("{}: {e}", path.display())))
    }

    pub fn read_from(path: &Path) -> Result<Trace, TraceError> {
        let bytes =
            std::fs::read(path).map_err(|e| TraceError::Io(format!("{}: {e}", path.display())))?;
        Trace::from_bytes(&bytes)
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    let len = u16::try_from(s.len()).expect("header string over 64 KiB");
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn get_str(c: &mut Cursor<'_>, what: &'static str) -> Result<String, TraceError> {
    let len = u16::from_le_bytes(c.take(2, what)?.try_into().unwrap());
    let raw = c.take(len as usize, what)?;
    String::from_utf8(raw.to_vec()).map_err(|_| TraceError::Corrupt(format!("{what} is not UTF-8")))
}

/// K-way merge of the per-TU streams by `(cycle, phase, tu)` — the
/// machine's global access order (see [`TraceRecord::order_key`]).
pub struct MergedIter<'a> {
    decoders: Vec<StreamDecoder<'a>>,
    heads: Vec<Option<TraceRecord>>,
    failed: bool,
}

impl<'a> MergedIter<'a> {
    fn new(trace: &'a Trace) -> Result<Self, TraceError> {
        let mut decoders: Vec<StreamDecoder<'a>> = (0..trace.streams.len() as u32)
            .map(|tu| trace.iter_tu(tu))
            .collect();
        let mut heads = Vec::with_capacity(decoders.len());
        for d in &mut decoders {
            heads.push(d.next().transpose()?);
        }
        Ok(MergedIter {
            decoders,
            heads,
            failed: false,
        })
    }
}

impl Iterator for MergedIter<'_> {
    type Item = Result<TraceRecord, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        let best = self
            .heads
            .iter()
            .enumerate()
            .filter_map(|(i, h)| h.as_ref().map(|r| (r.order_key(), i)))
            .min()
            .map(|(_, i)| i)?;
        let rec = self.heads[best].take().unwrap();
        match self.decoders[best].next().transpose() {
            Ok(next) => self.heads[best] = next,
            Err(e) => {
                self.failed = true;
                return Some(Err(e));
            }
        }
        Some(Ok(rec))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TraceKind;
    use crate::stream::StreamEncoder;

    fn sample_trace() -> Trace {
        let mut encoders = [StreamEncoder::new(), StreamEncoder::new()];
        // TU0: a load each cycle; TU1: a load on odd cycles plus a store
        // drained at cycle 4.
        let mut total = 0u64;
        for cycle in 0..6u64 {
            encoders[0].push(&TraceRecord {
                cycle,
                tu: 0,
                pc: 0x40,
                addr: 0x1000 + cycle * 8,
                kind: TraceKind::CorrectLoad,
                squashed: false,
            });
            total += 1;
            if cycle % 2 == 1 {
                encoders[1].push(&TraceRecord {
                    cycle,
                    tu: 1,
                    pc: 0x80,
                    addr: 0x2000 + cycle * 64,
                    kind: TraceKind::WrongPathLoad,
                    squashed: true,
                });
                total += 1;
            }
            if cycle == 4 {
                encoders[1].push(&TraceRecord {
                    cycle,
                    tu: 1,
                    pc: 0,
                    addr: 0x3000,
                    kind: TraceKind::CorrectStore,
                    squashed: false,
                });
                total += 1;
            }
        }
        let [e0, e1] = encoders;
        Trace {
            header: TraceHeader {
                format_version: FORMAT_VERSION,
                sim_revision: wec_core::SIM_REVISION,
                n_tus: 2,
                scale_units: 1,
                bench: "test.bench".into(),
                cfg_label: "test/cfg".into(),
                total_records: total,
            },
            streams: vec![e0.finish(), e1.finish()],
        }
    }

    #[test]
    fn bytes_round_trip() {
        let t = sample_trace();
        let bytes = t.to_bytes();
        let back = Trace::from_bytes(&bytes).unwrap();
        assert_eq!(back.header, t.header);
        assert_eq!(back.streams, t.streams);
        assert_eq!(back.verify().unwrap(), t.header.total_records);
        assert_eq!(back.identity(), t.identity());
    }

    #[test]
    fn flipped_bit_fails_file_checksum() {
        let t = sample_trace();
        let mut bytes = t.to_bytes();
        let n = bytes.len();
        bytes[n / 2] ^= 0x01;
        assert!(Trace::from_bytes(&bytes).is_err());
    }

    #[test]
    fn merge_respects_global_order() {
        let t = sample_trace();
        let recs: Vec<TraceRecord> = t.merged().unwrap().collect::<Result<_, _>>().unwrap();
        assert_eq!(recs.len() as u64, t.header.total_records);
        for w in recs.windows(2) {
            assert!(w[0].order_key() <= w[1].order_key());
        }
        // The cycle-4 store must come after both cycle-4 loads.
        let store_pos = recs
            .iter()
            .position(|r| r.kind == TraceKind::CorrectStore)
            .unwrap();
        for (i, r) in recs.iter().enumerate() {
            if r.cycle == 4 && r.kind != TraceKind::CorrectStore {
                assert!(i < store_pos);
            }
        }
    }
}
