//! Per-TU record streams: delta + varint + run-length encoding in
//! independently checksummed blocks.
//!
//! Each record costs one tag byte (kind, squash bit, small cycle delta)
//! plus a zigzag-varint address delta — tracked *per kind*, so
//! instruction-fetch strides never pollute data-address deltas — plus,
//! for loads only, a zigzag-varint PC delta.  Instruction fetches, which
//! dominate the stream, usually cost the tag byte alone: two spare tag
//! kind values encode "the fetch block continues the previous fetch
//! stride" (straight-line code) and "the fetch returns to the block
//! before the previous one" (the two-block loop / call-return
//! oscillation), both predicted from history the decoder mirrors.  A
//! run-length opcode covers the dominant regular patterns on top: when
//! consecutive records produce identical delta tuples, only a repeat
//! count is stored.  Blocks hold up to [`BLOCK_RECORDS`] records,
//! reset all delta contexts (so each block decodes independently) and
//! carry an FNV-1a checksum of their encoded bytes; the stream itself
//! carries a content checksum folded over the decoded records.

use crate::codec::{fnv1a, put_varint, unzigzag, zigzag, Cursor, FNV_OFFSET};
use crate::record::{TraceKind, TraceRecord, KIND_CONTEXTS};
use crate::TraceError;

/// Records per block before delta contexts reset.
pub const BLOCK_RECORDS: usize = 8192;

/// Tag-byte kind field value marking a run-length opcode.
const RUN_KIND: u8 = 5;

/// Tag-only instruction fetch: the block *before* the previous one (loop
/// oscillation between two fetch blocks).
const IF_ALT_KIND: u8 = 6;

/// Tag-only instruction fetch: previous block plus the previous fetch
/// stride (straight-line code).
const IF_STRIDE_KIND: u8 = 7;

/// Delta contexts, reset at each block boundary.
#[derive(Default)]
struct Ctx {
    prev_cycle: u64,
    prev_addr: [u64; KIND_CONTEXTS],
    prev_pc: u32,
    /// Fetch-address history for the tag-only ifetch opcodes: the fetch
    /// block before the previous one, and the previous fetch stride.
    prev_fetch2: u64,
    prev_fetch_delta: i64,
}

/// How one record's address is encoded.
#[derive(Clone, Copy, PartialEq, Eq)]
enum AddrEnc {
    /// Literal zigzag-varint delta against the per-kind previous address.
    Delta(i64),
    /// Tag-only fetch: the block before the previous one ([`IF_ALT_KIND`]).
    FetchAlt,
    /// Tag-only fetch: previous block + previous stride
    /// ([`IF_STRIDE_KIND`]).
    FetchStride,
}

/// The per-record delta tuple; identical consecutive tuples collapse into
/// a run (repeated [`AddrEnc::FetchStride`] walks a constant stride,
/// repeated [`AddrEnc::FetchAlt`] keeps oscillating — both replay
/// correctly because the decoder updates the same history per step).
#[derive(Clone, Copy, PartialEq, Eq)]
struct Deltas {
    kind: TraceKind,
    squashed: bool,
    cdelta: u64,
    addr: AddrEnc,
    pdelta: Option<i64>,
}

/// One encoded block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Block {
    /// Records decodable from `bytes`.
    pub records: u32,
    /// FNV-1a of `bytes`.
    pub checksum: u64,
    pub bytes: Vec<u8>,
}

/// One TU's fully encoded stream.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EncodedStream {
    /// Total records across all blocks.
    pub records: u64,
    /// Content checksum: [`TraceRecord::fold_checksum`] over every record
    /// in order, seeded with the FNV offset basis.
    pub checksum: u64,
    pub blocks: Vec<Block>,
}

impl EncodedStream {
    pub fn encoded_bytes(&self) -> u64 {
        self.blocks.iter().map(|b| b.bytes.len() as u64).sum()
    }
}

/// Streaming encoder for one TU.
pub struct StreamEncoder {
    blocks: Vec<Block>,
    buf: Vec<u8>,
    block_records: u32,
    block_cap: usize,
    ctx: Ctx,
    last: Option<Deltas>,
    run: u64,
    records: u64,
    checksum: u64,
}

impl Default for StreamEncoder {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamEncoder {
    pub fn new() -> Self {
        Self::with_block_records(BLOCK_RECORDS)
    }

    /// An encoder that seals blocks after `block_cap` records instead of
    /// [`BLOCK_RECORDS`].  Production captures always use [`Self::new`];
    /// this exists so partition/parallel-decode tests can exercise many
    /// small blocks without generating millions of records.
    pub fn with_block_records(block_cap: usize) -> Self {
        assert!(block_cap > 0, "blocks must hold at least one record");
        StreamEncoder {
            blocks: Vec::new(),
            buf: Vec::new(),
            block_records: 0,
            block_cap,
            ctx: Ctx::default(),
            last: None,
            run: 0,
            records: 0,
            checksum: FNV_OFFSET,
        }
    }

    pub fn records(&self) -> u64 {
        self.records
    }

    /// Append one record.  Cycles must be non-decreasing within a stream
    /// (they are: each TU is ticked once per machine cycle).  The PC is
    /// canonicalized to what the decoder reconstructs — fetch address for
    /// instruction fetches, 0 for stores — since neither kind encodes it.
    pub fn push(&mut self, rec: &TraceRecord) {
        debug_assert!(rec.cycle >= self.ctx.prev_cycle, "stream cycles regressed");
        let rec = &TraceRecord {
            pc: match rec.kind {
                TraceKind::InstFetch => rec.addr as u32,
                TraceKind::CorrectStore => 0,
                _ => rec.pc,
            },
            ..*rec
        };
        let idx = rec.kind as usize;
        let adelta = rec.addr.wrapping_sub(self.ctx.prev_addr[idx]) as i64;
        let addr = if rec.kind == TraceKind::InstFetch {
            let stride_pred =
                self.ctx.prev_addr[idx].wrapping_add(self.ctx.prev_fetch_delta as u64);
            if rec.addr == stride_pred {
                AddrEnc::FetchStride
            } else if rec.addr == self.ctx.prev_fetch2 {
                AddrEnc::FetchAlt
            } else {
                AddrEnc::Delta(adelta)
            }
        } else {
            AddrEnc::Delta(adelta)
        };
        let d = Deltas {
            kind: rec.kind,
            squashed: rec.squashed,
            cdelta: rec.cycle - self.ctx.prev_cycle,
            addr,
            pdelta: rec
                .kind
                .carries_pc()
                .then(|| rec.pc as i64 - self.ctx.prev_pc as i64),
        };
        if self.last == Some(d) {
            self.run += 1;
        } else {
            self.flush_run();
            self.emit(&d);
            self.last = Some(d);
        }
        self.ctx.prev_cycle = rec.cycle;
        if rec.kind == TraceKind::InstFetch {
            self.ctx.prev_fetch2 = self.ctx.prev_addr[idx];
            self.ctx.prev_fetch_delta = adelta;
        }
        self.ctx.prev_addr[idx] = rec.addr;
        if rec.kind.carries_pc() {
            self.ctx.prev_pc = rec.pc;
        }
        self.checksum = rec.fold_checksum(self.checksum);
        self.records += 1;
        self.block_records += 1;
        if self.block_records as usize >= self.block_cap {
            self.end_block();
        }
    }

    fn emit(&mut self, d: &Deltas) {
        let kbits = match d.addr {
            AddrEnc::Delta(_) => d.kind as u8,
            AddrEnc::FetchAlt => IF_ALT_KIND,
            AddrEnc::FetchStride => IF_STRIDE_KIND,
        };
        let nib = if d.cdelta < 15 { d.cdelta as u8 } else { 15 };
        self.buf
            .push(kbits | ((d.squashed as u8) << 3) | (nib << 4));
        if nib == 15 {
            put_varint(&mut self.buf, d.cdelta - 15);
        }
        if let AddrEnc::Delta(a) = d.addr {
            put_varint(&mut self.buf, zigzag(a));
        }
        if let Some(p) = d.pdelta {
            put_varint(&mut self.buf, zigzag(p));
        }
    }

    fn flush_run(&mut self) {
        if self.run == 0 {
            return;
        }
        let n = self.run;
        self.run = 0;
        let nib = if n < 15 { n as u8 } else { 15 };
        self.buf.push(RUN_KIND | (nib << 4));
        if nib == 15 {
            put_varint(&mut self.buf, n - 15);
        }
    }

    fn end_block(&mut self) {
        self.flush_run();
        if self.block_records == 0 {
            return;
        }
        let bytes = std::mem::take(&mut self.buf);
        self.blocks.push(Block {
            records: self.block_records,
            checksum: fnv1a(&bytes),
            bytes,
        });
        self.block_records = 0;
        self.ctx = Ctx::default();
        self.last = None;
    }

    pub fn finish(mut self) -> EncodedStream {
        self.end_block();
        EncodedStream {
            records: self.records,
            checksum: self.checksum,
            blocks: self.blocks,
        }
    }
}

/// Decoder for one block's bytes.  Blocks are self-contained by
/// construction — every delta context resets at a block boundary — so a
/// `BlockDecoder` needs nothing but the block and the stream's TU number,
/// which is what makes blocks independently (and in parallel) decodable.
pub struct BlockDecoder<'a> {
    cur: Cursor<'a>,
    left: u32,
    tu: u32,
    ctx: Ctx,
    last: Option<Deltas>,
    run_left: u64,
}

impl<'a> BlockDecoder<'a> {
    /// Verify the block's byte checksum and position a decoder at its
    /// first record.
    pub fn new(block: &'a Block, tu: u32) -> Result<Self, TraceError> {
        if fnv1a(&block.bytes) != block.checksum {
            return Err(TraceError::Corrupt("block byte checksum mismatch".into()));
        }
        Ok(BlockDecoder {
            cur: Cursor::new(&block.bytes),
            left: block.records,
            tu,
            ctx: Ctx::default(),
            last: None,
            run_left: 0,
        })
    }

    fn apply(&mut self, d: Deltas) -> TraceRecord {
        let idx = d.kind as usize;
        let cycle = self.ctx.prev_cycle + d.cdelta;
        let addr = match d.addr {
            AddrEnc::Delta(a) => self.ctx.prev_addr[idx].wrapping_add(a as u64),
            AddrEnc::FetchAlt => self.ctx.prev_fetch2,
            AddrEnc::FetchStride => {
                self.ctx.prev_addr[idx].wrapping_add(self.ctx.prev_fetch_delta as u64)
            }
        };
        let pc = match d.pdelta {
            Some(p) => (self.ctx.prev_pc as i64 + p) as u32,
            None if d.kind == TraceKind::InstFetch => addr as u32,
            None => 0,
        };
        self.ctx.prev_cycle = cycle;
        if d.kind == TraceKind::InstFetch {
            self.ctx.prev_fetch_delta = addr.wrapping_sub(self.ctx.prev_addr[idx]) as i64;
            self.ctx.prev_fetch2 = self.ctx.prev_addr[idx];
        }
        self.ctx.prev_addr[idx] = addr;
        if d.kind.carries_pc() {
            self.ctx.prev_pc = pc;
        }
        self.left -= 1;
        TraceRecord {
            cycle,
            tu: self.tu,
            pc,
            addr,
            kind: d.kind,
            squashed: d.squashed,
        }
    }

    /// The next record of this block, or `Ok(None)` once exactly
    /// `block.records` have been decoded and the bytes are exhausted.
    pub fn next_record(&mut self) -> Result<Option<TraceRecord>, TraceError> {
        loop {
            if self.run_left > 0 {
                if self.left == 0 {
                    return Err(TraceError::Corrupt("run crosses a block boundary".into()));
                }
                self.run_left -= 1;
                let d = self
                    .last
                    .ok_or_else(|| TraceError::Corrupt("run without a preceding record".into()))?;
                return Ok(Some(self.apply(d)));
            }
            if self.cur.is_empty() {
                if self.left != 0 {
                    return Err(TraceError::Truncated("block ended mid-record"));
                }
                return Ok(None);
            }
            if self.left == 0 {
                return Err(TraceError::Corrupt("trailing bytes in block".into()));
            }
            let tag = self.cur.get_u8("record tag")?;
            let kbits = tag & 0x07;
            let nib = tag >> 4;
            if kbits == RUN_KIND {
                let n = if nib == 15 {
                    15 + self.cur.get_varint("run length")?
                } else {
                    nib as u64
                };
                if n == 0 {
                    return Err(TraceError::Corrupt("zero-length run".into()));
                }
                if self.last.is_none() {
                    return Err(TraceError::Corrupt("run without a preceding record".into()));
                }
                self.run_left = n;
                continue;
            }
            let cdelta = if nib == 15 {
                15 + self.cur.get_varint("cycle delta")?
            } else {
                nib as u64
            };
            let (kind, addr) = match kbits {
                IF_ALT_KIND => (TraceKind::InstFetch, AddrEnc::FetchAlt),
                IF_STRIDE_KIND => (TraceKind::InstFetch, AddrEnc::FetchStride),
                _ => {
                    let kind = TraceKind::from_u8(kbits)?;
                    (
                        kind,
                        AddrEnc::Delta(unzigzag(self.cur.get_varint("addr delta")?)),
                    )
                }
            };
            let pdelta = if kind.carries_pc() {
                Some(unzigzag(self.cur.get_varint("pc delta")?))
            } else {
                None
            };
            let d = Deltas {
                kind,
                squashed: tag & 0x08 != 0,
                cdelta,
                addr,
                pdelta,
            };
            self.last = Some(d);
            return Ok(Some(self.apply(d)));
        }
    }
}

/// Decode one block into `out` (appending), verifying its byte checksum
/// and record count.  This is the unit of work the [`crate::slab`]
/// decoder pool fans out.
pub fn decode_block_into(
    block: &Block,
    tu: u32,
    out: &mut Vec<TraceRecord>,
) -> Result<(), TraceError> {
    let mut d = BlockDecoder::new(block, tu)?;
    out.reserve(block.records as usize);
    while let Some(rec) = d.next_record()? {
        out.push(rec);
    }
    Ok(())
}

/// Streaming decoder for one TU; yields records in stream order and
/// verifies block and content checksums as it goes.  Wraps a
/// [`BlockDecoder`] per block and adds the stream-level accounting
/// (record count, content checksum).
pub struct StreamDecoder<'a> {
    stream: &'a EncodedStream,
    tu: u32,
    block_idx: usize,
    cur: Option<BlockDecoder<'a>>,
    emitted: u64,
    checksum: u64,
    finished: bool,
    failed: bool,
}

impl<'a> StreamDecoder<'a> {
    pub fn new(stream: &'a EncodedStream, tu: u32) -> Self {
        StreamDecoder {
            stream,
            tu,
            block_idx: 0,
            cur: None,
            emitted: 0,
            checksum: FNV_OFFSET,
            finished: false,
            failed: false,
        }
    }

    fn next_record(&mut self) -> Result<Option<TraceRecord>, TraceError> {
        loop {
            if let Some(cur) = self.cur.as_mut() {
                match cur.next_record()? {
                    Some(rec) => {
                        self.checksum = rec.fold_checksum(self.checksum);
                        self.emitted += 1;
                        return Ok(Some(rec));
                    }
                    None => self.cur = None,
                }
                continue;
            }
            let Some(block) = self.stream.blocks.get(self.block_idx) else {
                if self.finished {
                    return Ok(None);
                }
                self.finished = true;
                if self.emitted != self.stream.records {
                    return Err(TraceError::Corrupt(format!(
                        "stream decoded {} records, header says {}",
                        self.emitted, self.stream.records
                    )));
                }
                if self.checksum != self.stream.checksum {
                    return Err(TraceError::Corrupt(
                        "stream content checksum mismatch".into(),
                    ));
                }
                return Ok(None);
            };
            self.cur = Some(BlockDecoder::new(block, self.tu).map_err(|e| match e {
                TraceError::Corrupt(msg) => {
                    TraceError::Corrupt(format!("block {}: {msg}", self.block_idx))
                }
                other => other,
            })?);
            self.block_idx += 1;
        }
    }
}

impl Iterator for StreamDecoder<'_> {
    type Item = Result<TraceRecord, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        match self.next_record() {
            Ok(Some(rec)) => Some(Ok(rec)),
            Ok(None) => None,
            Err(e) => {
                self.failed = true;
                Some(Err(e))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(cycle: u64, kind: TraceKind, addr: u64, pc: u32) -> TraceRecord {
        TraceRecord {
            cycle,
            tu: 0,
            // Canonical PC convention: the encoder drops the PC for
            // fetches (implied by the address) and stores (always 0).
            pc: match kind {
                TraceKind::InstFetch => addr as u32,
                TraceKind::CorrectStore => 0,
                _ => pc,
            },
            addr,
            kind,
            squashed: kind.access_kind().is_wrong(),
        }
    }

    fn roundtrip(records: &[TraceRecord]) -> EncodedStream {
        let mut enc = StreamEncoder::new();
        for r in records {
            enc.push(r);
        }
        let stream = enc.finish();
        let got: Vec<TraceRecord> = StreamDecoder::new(&stream, 0)
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(got, records);
        stream
    }

    #[test]
    fn empty_stream() {
        let stream = roundtrip(&[]);
        assert_eq!(stream.records, 0);
        assert!(stream.blocks.is_empty());
    }

    #[test]
    fn mixed_kinds_round_trip() {
        let records = vec![
            rec(0, TraceKind::InstFetch, 0x40_0000, 0),
            rec(1, TraceKind::CorrectLoad, 0x1000, 0x40_0008),
            rec(1, TraceKind::CorrectStore, 0x2000, 0),
            rec(3, TraceKind::WrongPathLoad, 0x1040, 0x40_0010),
            rec(3, TraceKind::WrongThreadLoad, 0xffff_ffff_ffff_fff8, 0x10),
            rec(900, TraceKind::InstFetch, 0x40_0040, 0),
        ];
        roundtrip(&records);
    }

    #[test]
    fn runs_compress_fixed_strides() {
        // 10k identical-delta loads: one literal record + run opcodes.
        let records: Vec<TraceRecord> = (0..10_000u64)
            .map(|i| rec(i * 2, TraceKind::CorrectLoad, 0x8000 + i * 64, 0x40))
            .collect();
        let stream = roundtrip(&records);
        assert!(
            stream.encoded_bytes() < records.len() as u64 / 4,
            "run-length failed: {} bytes for {} records",
            stream.encoded_bytes(),
            records.len()
        );
    }

    #[test]
    fn blocks_split_and_reset() {
        let records: Vec<TraceRecord> = (0..(BLOCK_RECORDS as u64 * 2 + 17))
            .map(|i| rec(i, TraceKind::InstFetch, 0x40_0000 + (i % 977) * 64, 0))
            .collect();
        let stream = roundtrip(&records);
        assert_eq!(stream.blocks.len(), 3);
        assert_eq!(stream.blocks[0].records as usize, BLOCK_RECORDS);
    }

    #[test]
    fn corrupted_block_detected() {
        let records: Vec<TraceRecord> = (0..100u64)
            .map(|i| rec(i, TraceKind::CorrectLoad, i * 8, 0x40))
            .collect();
        let mut enc = StreamEncoder::new();
        for r in &records {
            enc.push(r);
        }
        let mut stream = enc.finish();
        let n = stream.blocks[0].bytes.len();
        stream.blocks[0].bytes[n / 2] ^= 0xff;
        let res: Result<Vec<TraceRecord>, TraceError> = StreamDecoder::new(&stream, 0).collect();
        assert!(matches!(res, Err(TraceError::Corrupt(_))));
    }

    #[test]
    fn tampered_count_detected() {
        let mut enc = StreamEncoder::new();
        enc.push(&rec(0, TraceKind::CorrectLoad, 0x10, 0x40));
        let mut stream = enc.finish();
        stream.records = 2;
        let res: Result<Vec<TraceRecord>, TraceError> = StreamDecoder::new(&stream, 0).collect();
        assert!(matches!(res, Err(TraceError::Corrupt(_))));
    }
}
