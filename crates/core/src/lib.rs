//! The paper's contribution: the **Wrong Execution Cache (WEC)** and the
//! superthreaded architecture it is evaluated on.
//!
//! * [`dpath`] — the per-thread-unit L1 data path, including the WEC policy
//!   of Figures 5 and 6 and its comparators (victim cache, tagged next-line
//!   prefetch buffer);
//! * [`membuf`] — the speculative memory buffer with run-time dependence
//!   checking (target stores);
//! * [`thread`] — dynamic thread contexts;
//! * [`machine`] — the thread-pipelined superthreaded machine: fork/abort,
//!   write-back ordering, the communication ring, wrong-thread execution;
//! * [`config`] — the paper's eight processor configurations (§4.3) and
//!   Table 3's parameter scaling;
//! * [`metrics`] — the per-run quantities the evaluation section plots.
//!
//! # Quick start
//!
//! ```
//! use wec_core::config::ProcPreset;
//! use wec_core::machine::simulate;
//! use wec_isa::ProgramBuilder;
//! use wec_isa::reg::Reg;
//!
//! let mut b = ProgramBuilder::new("demo");
//! b.li(Reg(1), 21);
//! let out = b.alloc_zeroed_u64s(1);
//! b.la(Reg(2), out);
//! b.add(Reg(1), Reg(1), Reg(1));
//! b.sd(Reg(1), Reg(2), 0);
//! b.halt();
//! let program = b.build().unwrap();
//!
//! let result = simulate(ProcPreset::WthWpWec.machine(2), &program).unwrap();
//! assert!(result.cycles > 0);
//! ```

/// Simulator semantics revision.
///
/// Any change that can alter the metrics a simulation produces — timing
/// model edits, new mechanisms, bug fixes — must bump this constant.  It is
/// folded into the on-disk result-cache key, so stale cached results from
/// an older simulator are never returned as current ones.
pub const SIM_REVISION: u32 = 1;

pub mod config;
pub mod dpath;
pub mod events;
pub mod machine;
pub mod membuf;
pub mod metrics;
pub mod tap;
pub mod telemetry;
pub mod thread;

pub use config::{MachineConfig, ProcPreset};
pub use dpath::{DataPath, DataPathConfig, SideKind};
pub use machine::{simulate, Machine, RunResult};
pub use membuf::MemBuffer;
pub use metrics::MachineMetrics;
