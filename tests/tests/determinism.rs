//! Determinism: equal seed + configuration ⇒ bit-identical results and
//! cycle counts, including when runs happen on different host threads.

use wec_bench::runner::{CfgKey, Runner, Suite};
use wec_core::config::ProcPreset;
use wec_workloads::{run_and_verify, Bench, Scale};

#[test]
fn repeated_runs_are_cycle_identical() {
    let w = Bench::Mcf.build(Scale::SMOKE);
    let a = run_and_verify(&w, ProcPreset::WthWpWec.machine(8)).unwrap();
    let b = run_and_verify(&w, ProcPreset::WthWpWec.machine(8)).unwrap();
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.checksum, b.checksum);
    assert_eq!(a.metrics.l1d.wrong_accesses, b.metrics.l1d.wrong_accesses);
    assert_eq!(
        a.metrics.threads_marked_wrong,
        b.metrics.threads_marked_wrong
    );
}

#[test]
fn workload_builds_are_reproducible() {
    let a = Bench::Gzip.build(Scale::SMOKE);
    let b = Bench::Gzip.build(Scale::SMOKE);
    assert_eq!(a.expected_check, b.expected_check);
    assert_eq!(a.program.text, b.program.text);
    assert_eq!(a.program.data.checksum(), b.program.data.checksum());
}

#[test]
fn parallel_host_execution_matches_serial() {
    let suite = Suite::build(Scale::SMOKE);
    let key = CfgKey::paper(ProcPreset::WthWpWec, 4);

    // Warm in parallel across host threads…
    let parallel = Runner::without_disk_cache(&suite);
    let points: Vec<(usize, CfgKey)> = (0..suite.workloads.len()).map(|i| (i, key)).collect();
    parallel.warm(&points);

    // …and compare against strictly serial runs.
    let serial = Runner::without_disk_cache(&suite);
    for (i, _) in points.iter().enumerate() {
        let a = parallel.metrics(i, key);
        let b = serial.metrics(i, key);
        assert_eq!(a.cycles, b.cycles, "{}", suite.workloads[i].name);
        assert_eq!(a.checksum, b.checksum);
        assert_eq!(a.l1d.demand_misses, b.l1d.demand_misses);
    }
}

/// Warming with one host thread and with many must produce identical
/// metrics for every point — work distribution is a scheduling detail.
#[test]
fn host_thread_count_does_not_change_metrics() {
    let suite = Suite::build(Scale::SMOKE);
    let key = CfgKey::paper(ProcPreset::Wp, 4);
    let points: Vec<(usize, CfgKey)> = (0..suite.workloads.len()).map(|i| (i, key)).collect();

    let one = Runner::without_disk_cache(&suite);
    one.warm_with_hosts(&points, 1);
    let many = Runner::without_disk_cache(&suite);
    many.warm_with_hosts(&points, 8);

    for &(i, key) in &points {
        let a = one.metrics(i, key);
        let b = many.metrics(i, key);
        assert_eq!(
            a, b,
            "{} differs across host thread counts",
            suite.workloads[i].name
        );
    }
}

/// A warm (disk-cached) rerun must return byte-identical metrics to the
/// cold run that populated the store, and must not simulate again.
#[test]
fn disk_cache_replay_matches_cold_run() {
    let suite = Suite::build(Scale::SMOKE);
    let key = CfgKey::paper(ProcPreset::WthWpWec, 2);
    let dir = std::env::temp_dir().join(format!("wec-result-cache-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let cold = Runner::with_disk_dir(&suite, dir.clone());
    let a = cold.metrics(0, key);
    assert_eq!(cold.simulations(), 1);

    // A fresh runner over the same store replays byte-identically.
    let warm = Runner::with_disk_dir(&suite, dir.clone());
    warm.warm(&[(0, key)]);
    let b = warm.metrics(0, key);
    assert_eq!(a, b, "disk replay changed the metrics");

    // Prove the replay really came from disk: tamper with the stored
    // cycle count and check a fresh runner reports the tampered value
    // instead of re-simulating.
    let entry = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().is_some_and(|x| x == "kv"))
        .expect("cold run left no .kv entry");
    let tampered_cycles = a.cycles + 1;
    let text = std::fs::read_to_string(&entry).unwrap();
    let text = text
        .lines()
        .map(|l| {
            if l.starts_with("cycles ") {
                format!("cycles {tampered_cycles}")
            } else {
                l.to_string()
            }
        })
        .collect::<Vec<_>>()
        .join("\n");
    std::fs::write(&entry, text).unwrap();
    let replayed = Runner::with_disk_dir(&suite, dir.clone());
    assert_eq!(replayed.metrics(0, key).cycles, tampered_cycles);

    // A disk-less runner really simulates, and agrees with the cold run.
    let fresh = Runner::without_disk_cache(&suite);
    assert_eq!(fresh.metrics(0, key), a);

    let _ = std::fs::remove_dir_all(&dir);
}
