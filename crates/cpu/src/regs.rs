//! Architectural register state and the register alias table.
//!
//! Renaming is ROB-based (SimpleScalar's RUU style): the alias table maps
//! each architectural register to the ROB entry that will produce it; values
//! live in ROB entries until commit writes them here.  Floating-point values
//! are stored as raw `f64` bit patterns so every dataflow path is a plain
//! `u64`.

use wec_isa::reg::{FReg, Reg, NUM_FREGS, NUM_IREGS};

/// Committed register state.
#[derive(Clone, Debug)]
pub struct ArchRegs {
    i: [u64; NUM_IREGS],
    f: [u64; NUM_FREGS],
}

impl Default for ArchRegs {
    fn default() -> Self {
        ArchRegs {
            i: [0; NUM_IREGS],
            f: [0; NUM_FREGS],
        }
    }
}

impl ArchRegs {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn read_i(&self, r: Reg) -> u64 {
        self.i[r.index()]
    }

    /// Writes to `r0` are dropped (hardwired zero).
    #[inline]
    pub fn write_i(&mut self, r: Reg, v: u64) {
        if !r.is_zero() {
            self.i[r.index()] = v;
        }
    }

    #[inline]
    pub fn read_f_bits(&self, r: FReg) -> u64 {
        self.f[r.index()]
    }

    #[inline]
    pub fn write_f_bits(&mut self, r: FReg, v: u64) {
        self.f[r.index()] = v;
    }

    #[inline]
    pub fn read_f(&self, r: FReg) -> f64 {
        f64::from_bits(self.f[r.index()])
    }

    #[inline]
    pub fn write_f(&mut self, r: FReg, v: f64) {
        self.f[r.index()] = v.to_bits();
    }

    /// Copy the integer registers selected by `mask` from `src` (the fork
    /// register transfer; bit i selects rI).
    pub fn copy_masked_from(&mut self, src: &ArchRegs, mask: u32) {
        for bit in 0..NUM_IREGS {
            if mask & (1 << bit) != 0 {
                self.i[bit] = src.i[bit];
            }
        }
        self.i[0] = 0;
    }
}

/// A renamed source slot: either architectural (use `ArchRegs` at dispatch)
/// or a pending ROB producer, identified by its sequence number.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mapping {
    /// No in-flight producer; read the architectural file.
    Arch,
    /// Produced by the ROB entry with this sequence number.
    Rob(u64),
}

/// Register alias table: one slot per integer register and one per FP
/// register.  Snapshotted at every predicted branch for one-cycle recovery.
#[derive(Clone, Debug)]
pub struct Rat {
    slots: [Mapping; NUM_IREGS + NUM_FREGS],
}

impl Default for Rat {
    fn default() -> Self {
        Rat {
            slots: [Mapping::Arch; NUM_IREGS + NUM_FREGS],
        }
    }
}

impl Rat {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn islot(r: Reg) -> usize {
        r.index()
    }

    #[inline]
    fn fslot(r: FReg) -> usize {
        NUM_IREGS + r.index()
    }

    pub fn lookup_i(&self, r: Reg) -> Mapping {
        if r.is_zero() {
            Mapping::Arch
        } else {
            self.slots[Self::islot(r)]
        }
    }

    pub fn lookup_f(&self, r: FReg) -> Mapping {
        self.slots[Self::fslot(r)]
    }

    pub fn set_i(&mut self, r: Reg, seq: u64) {
        if !r.is_zero() {
            self.slots[Self::islot(r)] = Mapping::Rob(seq);
        }
    }

    pub fn set_f(&mut self, r: FReg, seq: u64) {
        self.slots[Self::fslot(r)] = Mapping::Rob(seq);
    }

    /// At commit: if the slot still names `seq`, the committing entry is the
    /// youngest producer — future reads go to the architectural file.
    pub fn retire(&mut self, seq: u64) {
        for s in &mut self.slots {
            if *s == Mapping::Rob(seq) {
                *s = Mapping::Arch;
            }
        }
    }

    /// Targeted form of [`retire`](Self::retire) for the commit stage: a
    /// mapping to `seq` can only exist in the slots `seq` itself renamed at
    /// dispatch (its destination registers), so only those need checking.
    #[inline]
    pub fn retire_i(&mut self, r: Reg, seq: u64) {
        let s = &mut self.slots[Self::islot(r)];
        if *s == Mapping::Rob(seq) {
            *s = Mapping::Arch;
        }
    }

    /// See [`retire_i`](Self::retire_i).
    #[inline]
    pub fn retire_f(&mut self, r: FReg, seq: u64) {
        let s = &mut self.slots[Self::fslot(r)];
        if *s == Mapping::Rob(seq) {
            *s = Mapping::Arch;
        }
    }

    /// Restore from a checkpoint (branch misprediction recovery).
    pub fn restore(&mut self, snapshot: &Rat) {
        self.slots = snapshot.slots;
    }

    /// Drop every mapping (full pipeline flush).
    pub fn clear(&mut self) {
        self.slots = [Mapping::Arch; NUM_IREGS + NUM_FREGS];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn r0_reads_zero_and_ignores_writes() {
        let mut a = ArchRegs::new();
        a.write_i(Reg::ZERO, 42);
        assert_eq!(a.read_i(Reg::ZERO), 0);
        a.write_i(Reg(1), 42);
        assert_eq!(a.read_i(Reg(1)), 42);
    }

    #[test]
    fn f64_roundtrip_through_bits() {
        let mut a = ArchRegs::new();
        a.write_f(FReg(3), -0.5);
        assert_eq!(a.read_f(FReg(3)), -0.5);
        assert_eq!(a.read_f_bits(FReg(3)), (-0.5f64).to_bits());
    }

    #[test]
    fn masked_copy_models_fork_transfer() {
        let mut src = ArchRegs::new();
        src.write_i(Reg(1), 11);
        src.write_i(Reg(2), 22);
        src.write_i(Reg(3), 33);
        let mut dst = ArchRegs::new();
        dst.write_i(Reg(2), 99);
        dst.copy_masked_from(&src, (1 << 1) | (1 << 3));
        assert_eq!(dst.read_i(Reg(1)), 11);
        assert_eq!(dst.read_i(Reg(2)), 99); // not in mask
        assert_eq!(dst.read_i(Reg(3)), 33);
    }

    #[test]
    fn rat_rename_and_retire() {
        let mut rat = Rat::new();
        assert_eq!(rat.lookup_i(Reg(5)), Mapping::Arch);
        rat.set_i(Reg(5), 7);
        assert_eq!(rat.lookup_i(Reg(5)), Mapping::Rob(7));
        // A younger producer supersedes.
        rat.set_i(Reg(5), 9);
        rat.retire(7); // old producer retires: mapping unchanged
        assert_eq!(rat.lookup_i(Reg(5)), Mapping::Rob(9));
        rat.retire(9);
        assert_eq!(rat.lookup_i(Reg(5)), Mapping::Arch);
    }

    #[test]
    fn rat_zero_reg_never_renamed() {
        let mut rat = Rat::new();
        rat.set_i(Reg::ZERO, 3);
        assert_eq!(rat.lookup_i(Reg::ZERO), Mapping::Arch);
    }

    #[test]
    fn rat_int_and_fp_slots_independent() {
        let mut rat = Rat::new();
        rat.set_i(Reg(4), 1);
        rat.set_f(FReg(4), 2);
        assert_eq!(rat.lookup_i(Reg(4)), Mapping::Rob(1));
        assert_eq!(rat.lookup_f(FReg(4)), Mapping::Rob(2));
    }

    #[test]
    fn checkpoint_restore() {
        let mut rat = Rat::new();
        rat.set_i(Reg(1), 1);
        let snap = rat.clone();
        rat.set_i(Reg(2), 2);
        rat.restore(&snap);
        assert_eq!(rat.lookup_i(Reg(1)), Mapping::Rob(1));
        assert_eq!(rat.lookup_i(Reg(2)), Mapping::Arch);
    }
}
