//! Scheduler event log: the thread-lifecycle timeline of Figure 4.
//!
//! When enabled (`MachineConfig::event_log`), the machine records every
//! region/thread scheduling event with its cycle — `begin`, forks (including
//! deferrals), thread starts, aborts, wrong-markings, kills, write-backs and
//! retirements.  Rendering the log reproduces the paper's Figure 4 picture
//! for a real execution.

use std::fmt;

use wec_common::ids::Cycle;

/// One scheduling event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedEvent {
    /// A parallel region began (head thread id).
    Begin { region: u16, head: u64 },
    /// A fork was scheduled onto a free TU.
    ForkScheduled { parent: u64, child: u64, tu: usize },
    /// A fork had to wait for its target TU (the paper's "youngest thread
    /// delays forking").
    ForkDeferred { parent: u64, child: u64, tu: usize },
    /// A thread began executing.
    ThreadStart { id: u64, tu: usize },
    /// A correct thread executed its abort (successors cut).
    Abort { id: u64 },
    /// A thread was marked wrong (wth mode).
    MarkedWrong { id: u64 },
    /// A thread was killed outright.
    Killed { id: u64, tu: usize },
    /// A wrong thread killed itself (at its abort or thread-end).
    WrongDied { id: u64 },
    /// A thread entered its write-back stage.
    WbStart { id: u64, words: u64 },
    /// A thread fully retired.
    Retired { id: u64, tu: usize },
    /// The machine returned to sequential execution.
    Sequential { tu: usize },
}

impl fmt::Display for SchedEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            SchedEvent::Begin { region, head } => write!(f, "begin region {region}, head T{head}"),
            SchedEvent::ForkScheduled { parent, child, tu } => {
                write!(f, "T{parent} forks T{child} -> tu{tu}")
            }
            SchedEvent::ForkDeferred { parent, child, tu } => {
                write!(f, "T{parent} fork of T{child} deferred (tu{tu} busy)")
            }
            SchedEvent::ThreadStart { id, tu } => write!(f, "T{id} starts on tu{tu}"),
            SchedEvent::Abort { id } => write!(f, "T{id} aborts its successors"),
            SchedEvent::MarkedWrong { id } => write!(f, "T{id} marked wrong"),
            SchedEvent::Killed { id, tu } => write!(f, "T{id} killed on tu{tu}"),
            SchedEvent::WrongDied { id } => write!(f, "wrong T{id} kills itself"),
            SchedEvent::WbStart { id, words } => write!(f, "T{id} write-back ({words} words)"),
            SchedEvent::Retired { id, tu } => write!(f, "T{id} retired, tu{tu} idle"),
            SchedEvent::Sequential { tu } => write!(f, "sequential execution resumes on tu{tu}"),
        }
    }
}

/// The (optionally enabled) event log.
#[derive(Clone, Debug, Default)]
pub struct EventLog {
    enabled: bool,
    events: Vec<(Cycle, SchedEvent)>,
}

impl EventLog {
    pub fn new(enabled: bool) -> Self {
        EventLog {
            enabled,
            events: Vec::new(),
        }
    }

    #[inline]
    pub fn record(&mut self, cycle: Cycle, ev: SchedEvent) {
        if self.enabled {
            self.events.push((cycle, ev));
        }
    }

    pub fn events(&self) -> &[(Cycle, SchedEvent)] {
        &self.events
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Render one line per event, cycle-stamped.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (cycle, ev) in &self.events {
            let _ = writeln!(out, "[{:>8}] {ev}", cycle.0);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = EventLog::new(false);
        log.record(Cycle(1), SchedEvent::Abort { id: 3 });
        assert!(log.is_empty());
    }

    #[test]
    fn render_is_cycle_stamped_prose() {
        let mut log = EventLog::new(true);
        log.record(Cycle(10), SchedEvent::Begin { region: 1, head: 5 });
        log.record(
            Cycle(12),
            SchedEvent::ForkScheduled {
                parent: 5,
                child: 6,
                tu: 1,
            },
        );
        log.record(Cycle(90), SchedEvent::MarkedWrong { id: 6 });
        let s = log.render();
        assert!(s.contains("begin region 1, head T5"), "{s}");
        assert!(s.contains("T5 forks T6 -> tu1"), "{s}");
        assert!(s.contains("T6 marked wrong"), "{s}");
        assert_eq!(log.len(), 3);
    }
}
