//! Edge cases of the superthreaded scheduler: single-TU regions (deferred
//! forks), fork-cost sensitivity, dependence-wait accounting, and the
//! update-protocol bus counters.

use wec_core::config::ProcPreset;
use wec_core::machine::{simulate, Machine};
use wec_isa::reg::Reg;
use wec_isa::{Program, ProgramBuilder};

/// n iterations, each writing its slot; exit test at the bottom.
fn counted_region(n: i64, fwd_extra: &[Reg]) -> Program {
    let mut b = ProgramBuilder::new("sched");
    let out = b.alloc_zeroed_u64s(n as u64);
    let (i, my, n_r, ob, t) = (Reg(1), Reg(3), Reg(22), Reg(21), Reg(4));
    b.la(ob, out);
    b.li(n_r, n);
    b.li(i, 0);
    for (k, r) in fwd_extra.iter().enumerate() {
        b.li(*r, k as i64);
    }
    b.begin(1);
    b.label("body");
    b.mv(my, i);
    b.addi(i, i, 1);
    let mut fwd = vec![i];
    fwd.extend_from_slice(fwd_extra);
    b.fork(&fwd, "body");
    b.tsagdone();
    b.slli(t, my, 3);
    b.add(t, ob, t);
    b.addi(Reg(5), my, 1000);
    b.sd(Reg(5), t, 0);
    b.blt(i, n_r, "done");
    b.abort_to("seq");
    b.label("done");
    b.thread_end();
    b.label("seq");
    b.halt();
    b.build().unwrap()
}

#[test]
fn single_tu_region_runs_iterations_via_deferred_forks() {
    let prog = counted_region(10, &[]);
    let mut m = Machine::new(ProcPreset::Orig.machine(1), &prog).unwrap();
    let r = m.run().unwrap();
    assert_eq!(r.metrics.threads_started, 10);
    assert_eq!(r.metrics.forks, 10);
    // All forks on one TU defer until the previous thread retires.
    assert!(r.stats.get("machine.bus_broadcasts").is_some());
}

#[test]
fn fork_transfer_cost_scales_with_forwarded_registers() {
    // Forwarding 5 extra registers costs 2 cycles each per fork; with
    // serialized single-TU forks the difference must be visible.
    let lean = simulate(ProcPreset::Orig.machine(1), &counted_region(24, &[]))
        .unwrap()
        .cycles;
    let fat = simulate(
        ProcPreset::Orig.machine(1),
        &counted_region(24, &[Reg(10), Reg(11), Reg(12), Reg(13), Reg(14)]),
    )
    .unwrap()
    .cycles;
    assert!(
        fat >= lean + 24 * 5,
        "5 extra forwarded values × 2 cycles × 24 forks should show: lean={lean} fat={fat}"
    );
}

#[test]
fn dependence_waits_are_counted() {
    // A target-store chain forces downstream loads to wait.
    let n = 12i64;
    let mut b = ProgramBuilder::new("dep");
    let acc = b.alloc_zeroed_u64s(1);
    let (i, n_r, accb, t) = (Reg(1), Reg(22), Reg(21), Reg(4));
    b.la(accb, acc);
    b.li(n_r, n);
    b.li(i, 0);
    b.begin(1);
    b.label("body");
    b.mv(Reg(3), i);
    b.addi(i, i, 1);
    b.fork(&[i], "body");
    b.tsannounce(accb, 0);
    b.tsagdone();
    b.ld(t, accb, 0);
    b.addi(t, t, 1);
    b.sd(t, accb, 0);
    b.blt(i, n_r, "done");
    b.abort_to("seq");
    b.label("done");
    b.thread_end();
    b.label("seq");
    b.halt();
    let prog = b.build().unwrap();
    let mut m = Machine::new(ProcPreset::Orig.machine(4), &prog).unwrap();
    let r = m.run().unwrap();
    assert_eq!(m.memory().read_u64(acc).unwrap(), n as u64);
    assert!(
        r.stats.get("machine.dependence_waits").unwrap() > 0,
        "downstream loads never waited on an announced target store"
    );
    assert!(r.stats.get("machine.membuf_value_hits").unwrap() > 0);
}

#[test]
fn sequential_stores_broadcast_on_the_update_bus() {
    // A parallel region warms remote L1s; sequential stores afterwards must
    // count update broadcasts (and copies updated in remote caches).
    let mut b = ProgramBuilder::new("bus");
    let arr = b.alloc_zeroed_u64s(64);
    let (i, n_r, ab, t) = (Reg(1), Reg(22), Reg(21), Reg(4));
    b.la(ab, arr);
    b.li(n_r, 8);
    b.li(i, 0);
    b.begin(1);
    b.label("body");
    b.mv(Reg(3), i);
    b.addi(i, i, 1);
    b.fork(&[i], "body");
    b.tsagdone();
    // Every thread reads the whole array (replicating it in every L1).
    b.li(t, 0);
    b.label("scan");
    b.slli(Reg(5), t, 3);
    b.add(Reg(5), ab, Reg(5));
    b.ld(Reg(6), Reg(5), 0);
    b.addi(t, t, 1);
    b.slti(Reg(7), t, 64);
    b.bne(Reg(7), Reg::ZERO, "scan");
    b.blt(i, n_r, "done");
    b.abort_to("seq");
    b.label("done");
    b.thread_end();
    b.label("seq");
    // Sequential stores to the shared array.
    b.li(t, 0);
    b.label("wr");
    b.slli(Reg(5), t, 3);
    b.add(Reg(5), ab, Reg(5));
    b.sd(t, Reg(5), 0);
    b.addi(t, t, 1);
    b.slti(Reg(7), t, 64);
    b.bne(Reg(7), Reg::ZERO, "wr");
    b.halt();
    let prog = b.build().unwrap();
    let r = simulate(ProcPreset::Orig.machine(4), &prog).unwrap();
    assert!(r.stats.get("machine.bus_broadcasts").unwrap() >= 64);
    assert!(
        r.stats.get("machine.bus_copies_updated").unwrap() > 0,
        "remote caches held no copies of the broadcast blocks"
    );
}

#[test]
fn empty_parallel_region_of_one_iteration() {
    // n = 1: the single thread runs, forks a speculative successor, aborts
    // it, and the program completes.
    let prog = counted_region(1, &[]);
    for preset in [ProcPreset::Orig, ProcPreset::WthWpWec] {
        let mut m = Machine::new(preset.machine(4), &prog).unwrap();
        let r = m.run().unwrap_or_else(|e| panic!("{}: {e}", preset.name()));
        assert_eq!(r.metrics.regions, 1);
        // out[0] written by the only valid iteration.
        assert!(r.metrics.threads_started >= 1);
    }
}

#[test]
fn debug_snapshot_renders_scheduler_state() {
    let prog = counted_region(6, &[]);
    let mut m = Machine::new(ProcPreset::Wth.machine(2), &prog).unwrap();
    m.run().unwrap();
    let snap = m.debug_snapshot();
    assert!(snap.contains("watermark"), "{snap}");
    assert!(snap.contains("tu0:"), "{snap}");
    assert!(snap.contains("tu1:"), "{snap}");
}

#[test]
fn commit_trace_captures_retirements() {
    let prog = counted_region(4, &[]);
    let mut cfg = ProcPreset::Orig.machine(2);
    cfg.core.commit_trace = 16;
    let mut m = Machine::new(cfg, &prog).unwrap();
    m.run().unwrap();
    let snap = m.debug_snapshot();
    assert!(snap.contains("halt"), "trace should end at halt:\n{snap}");
    assert!(snap.contains("pc="), "{snap}");
}

/// Like `counted_region` but with a busy-work body, so successors are
/// still mid-iteration when the last valid thread aborts (the condition
/// for wrong threads to exist).
fn fat_region(n: i64) -> Program {
    let mut b = ProgramBuilder::new("fat");
    let out = b.alloc_zeroed_u64s(n as u64 + 16);
    let (i, my, n_r, ob, t, j, acc) = (Reg(1), Reg(3), Reg(22), Reg(21), Reg(4), Reg(5), Reg(6));
    b.la(ob, out);
    b.li(n_r, n);
    b.li(i, 0);
    b.begin(1);
    b.label("body");
    b.mv(my, i);
    b.addi(i, i, 1);
    b.fork(&[i], "body");
    b.tsagdone();
    // Dependent multiply chain: ~100 cycles of body.
    b.li(j, 24);
    b.li(acc, 1);
    b.label("spin");
    b.alui(wec_isa::inst::AluOp::Mul, acc, acc, 3);
    b.xor(acc, acc, my);
    b.addi(j, j, -1);
    b.bne(j, Reg::ZERO, "spin");
    b.slli(t, my, 3);
    b.add(t, ob, t);
    b.sd(acc, t, 0);
    b.blt(i, n_r, "done");
    b.abort_to("seq");
    b.label("done");
    b.thread_end();
    b.label("seq");
    // Sequential tail so wrong threads have time to die on their own.
    b.li(j, 400);
    b.label("tail");
    b.addi(j, j, -1);
    b.bne(j, Reg::ZERO, "tail");
    b.halt();
    b.build().unwrap()
}

#[test]
fn event_log_tells_the_figure4_story() {
    let prog = fat_region(8);
    let mut cfg = ProcPreset::Wth.machine(4);
    cfg.event_log = true;
    let mut m = Machine::new(cfg, &prog).unwrap();
    m.run().unwrap();
    let log = m.events().render();
    assert!(log.contains("begin region 1"), "{log}");
    assert!(log.contains("forks"), "{log}");
    assert!(log.contains("aborts its successors"), "{log}");
    assert!(log.contains("marked wrong"), "{log}");
    assert!(log.contains("kills itself"), "{log}");
    assert!(log.contains("write-back"), "{log}");
    assert!(log.contains("retired"), "{log}");
    assert!(log.contains("sequential execution resumes"), "{log}");
    // Without the flag, nothing is recorded.
    let mut m2 = Machine::new(ProcPreset::Wth.machine(4), &prog).unwrap();
    m2.run().unwrap();
    assert!(m2.events().is_empty());
}
