//! Set-associative tag array with true LRU replacement.
//!
//! One structure covers every cache in the machine: the direct-mapped or
//! 4-way L1s (a direct-mapped cache is `ways = 1`), the 4-way unified L2,
//! and the small fully-associative structures (WEC, victim cache, prefetch
//! buffer — `sets = 1`).

use crate::line::{Line, LineFlags};
use wec_common::error::{SimError, SimResult};
use wec_common::ids::Addr;

/// Shape of a cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheGeometry {
    pub sets: u64,
    pub ways: usize,
    pub block_bytes: u64,
}

impl CacheGeometry {
    /// Geometry from a total capacity: `total_bytes / ways / block_bytes`
    /// sets.  Errors unless everything divides into powers of two.
    pub fn from_capacity(total_bytes: u64, ways: usize, block_bytes: u64) -> SimResult<Self> {
        if !block_bytes.is_power_of_two() || block_bytes == 0 {
            return Err(SimError::Config(format!(
                "block size {block_bytes} not a power of two"
            )));
        }
        if ways == 0 || total_bytes == 0 {
            return Err(SimError::Config("zero ways or capacity".into()));
        }
        let per_way = total_bytes / ways as u64;
        if per_way * ways as u64 != total_bytes || !per_way.is_multiple_of(block_bytes) {
            return Err(SimError::Config(format!(
                "capacity {total_bytes} not divisible into {ways} ways of {block_bytes}B blocks"
            )));
        }
        let sets = per_way / block_bytes;
        if !sets.is_power_of_two() {
            return Err(SimError::Config(format!(
                "set count {sets} not a power of two"
            )));
        }
        Ok(CacheGeometry {
            sets,
            ways,
            block_bytes,
        })
    }

    /// A fully-associative structure with `entries` blocks (WEC, victim
    /// cache, prefetch buffer).
    pub fn fully_associative(entries: usize, block_bytes: u64) -> Self {
        assert!(entries >= 1);
        assert!(block_bytes.is_power_of_two());
        CacheGeometry {
            sets: 1,
            ways: entries,
            block_bytes,
        }
    }

    pub fn total_bytes(&self) -> u64 {
        self.sets * self.ways as u64 * self.block_bytes
    }

    #[inline]
    fn set_of(&self, addr: Addr) -> usize {
        addr.set_index(self.block_bytes, self.sets)
    }

    #[inline]
    fn tag_of(&self, addr: Addr) -> u64 {
        addr.tag(self.block_bytes, self.sets)
    }

    /// Rebuild the base address of a block from its set and tag.
    #[inline]
    fn block_addr(&self, set: usize, tag: u64) -> Addr {
        Addr((tag * self.sets + set as u64) * self.block_bytes)
    }
}

/// A block pushed out of the cache by an insert.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Evicted {
    /// Base address of the evicted block.
    pub addr: Addr,
    pub flags: LineFlags,
}

/// The tag array.  All operations are O(associativity).
///
/// ```
/// use wec_common::ids::Addr;
/// use wec_mem::cache::{Cache, CacheGeometry};
/// use wec_mem::line::LineFlags;
///
/// // The paper's default L1D: 8 KB direct-mapped, 64-byte blocks.
/// let mut l1 = Cache::new(CacheGeometry::from_capacity(8 * 1024, 1, 64)?);
/// assert!(l1.insert(Addr(0x1000), LineFlags::DEMAND).is_none());
/// assert!(l1.contains(Addr(0x103f)));            // same block
/// // A conflicting block (8 KB away) evicts it:
/// let victim = l1.insert(Addr(0x3000), LineFlags::DEMAND).unwrap();
/// assert_eq!(victim.addr, Addr(0x1000));
/// # Ok::<(), wec_common::SimError>(())
/// ```
pub struct Cache {
    geom: CacheGeometry,
    /// Validity, line metadata and last-touch stamp per way, flattened to
    /// `set * ways + way`.  One allocation per array instead of a `Vec` and
    /// an `LruOrder` per set; the probe walks a contiguous slice.
    valid: Vec<bool>,
    lines: Vec<Line>,
    stamps: Vec<u64>,
    /// Global recency clock shared by all sets (only relative order within
    /// a set matters; stamps are unique, so the order is total).
    clock: u64,
}

impl Cache {
    pub fn new(geom: CacheGeometry) -> Self {
        let slots = geom.sets as usize * geom.ways;
        Cache {
            geom,
            valid: vec![false; slots],
            lines: vec![Line::new(0, LineFlags::DEMAND); slots],
            stamps: vec![0; slots],
            clock: 1,
        }
    }

    pub fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    fn locate(&self, addr: Addr) -> (usize, u64) {
        (self.geom.set_of(addr), self.geom.tag_of(addr))
    }

    /// Flat index of the first way of `set`.
    #[inline]
    fn base(&self, set: usize) -> usize {
        set * self.geom.ways
    }

    /// Flat index of `addr`'s line if resident.
    fn slot_of(&self, set: usize, tag: u64) -> Option<usize> {
        let base = self.base(set);
        let lines = &self.lines[base..base + self.geom.ways];
        let valid = &self.valid[base..base + self.geom.ways];
        (0..self.geom.ways)
            .find(|&w| valid[w] && lines[w].tag == tag)
            .map(|w| base + w)
    }

    #[inline]
    fn stamp(&mut self, slot: usize) {
        self.stamps[slot] = self.clock;
        self.clock += 1;
    }

    /// Does the cache hold the block containing `addr`? (No LRU update.)
    pub fn contains(&self, addr: Addr) -> bool {
        let (set, tag) = self.locate(addr);
        self.slot_of(set, tag).is_some()
    }

    /// Look at a resident line without touching LRU state.
    pub fn peek(&self, addr: Addr) -> Option<&Line> {
        let (set, tag) = self.locate(addr);
        let slot = self.slot_of(set, tag)?;
        Some(&self.lines[slot])
    }

    /// Hit path: if resident, update LRU and return a mutable reference to
    /// the line (callers adjust flags: dirty on store, clear `prefetched` on
    /// first demand hit, …).
    pub fn touch(&mut self, addr: Addr) -> Option<&mut Line> {
        let (set, tag) = self.locate(addr);
        let slot = self.slot_of(set, tag)?;
        self.stamp(slot);
        Some(&mut self.lines[slot])
    }

    /// Insert the block containing `addr` as most-recently-used, replacing an
    /// invalid way if one exists, else the LRU way.  Returns the displaced
    /// valid line, if any.  If the block is already resident its flags are
    /// overwritten and LRU updated (no eviction).
    pub fn insert(&mut self, addr: Addr, flags: LineFlags) -> Option<Evicted> {
        let (set, tag) = self.locate(addr);
        if let Some(slot) = self.slot_of(set, tag) {
            self.stamp(slot);
            self.lines[slot] = Line::new(tag, flags);
            return None;
        }
        let base = self.base(set);
        let ways = self.geom.ways;
        // First invalid way in way order, else the valid way with the
        // oldest stamp (every valid way was stamped at insert, so the
        // minimum stamp is the exact LRU).
        let slot = match self.valid[base..base + ways].iter().position(|&v| !v) {
            Some(w) => base + w,
            None => {
                let mut victim = base;
                for s in base + 1..base + ways {
                    if self.stamps[s] < self.stamps[victim] {
                        victim = s;
                    }
                }
                victim
            }
        };
        let evicted = if self.valid[slot] {
            Some(Evicted {
                addr: self.geom.block_addr(set, self.lines[slot].tag),
                flags: self.lines[slot].flags,
            })
        } else {
            None
        };
        self.valid[slot] = true;
        self.lines[slot] = Line::new(tag, flags);
        self.stamp(slot);
        evicted
    }

    /// Remove and return the block containing `addr` (used by swap paths:
    /// WEC↔L1, victim-cache↔L1).
    pub fn take(&mut self, addr: Addr) -> Option<Line> {
        let (set, tag) = self.locate(addr);
        let slot = self.slot_of(set, tag)?;
        self.valid[slot] = false;
        Some(self.lines[slot])
    }

    /// Invalidate the block containing `addr` if resident.
    pub fn invalidate(&mut self, addr: Addr) -> Option<Line> {
        self.take(addr)
    }

    /// Mark the block containing `addr` dirty if resident (store hit).
    /// Returns true on hit.
    pub fn set_dirty(&mut self, addr: Addr) -> bool {
        match self.touch(addr) {
            Some(line) => {
                line.flags.dirty = true;
                true
            }
            None => false,
        }
    }

    /// Number of valid lines (tests, occupancy assertions).
    pub fn valid_lines(&self) -> usize {
        self.valid.iter().filter(|&&v| v).count()
    }

    /// Iterate over all resident block addresses with their flags.
    pub fn resident_blocks(&self) -> impl Iterator<Item = (Addr, LineFlags)> + '_ {
        self.valid
            .iter()
            .enumerate()
            .filter(|&(_, &v)| v)
            .map(move |(slot, _)| {
                let line = self.lines[slot];
                (
                    self.geom.block_addr(slot / self.geom.ways, line.tag),
                    line.flags,
                )
            })
    }

    /// Structural invariant: no duplicate tags within a set. Used by tests
    /// and debug assertions.
    pub fn check_no_duplicate_tags(&self) -> bool {
        (0..self.geom.sets as usize).all(|set| {
            let base = self.base(set);
            let mut tags: Vec<u64> = (0..self.geom.ways)
                .filter(|&w| self.valid[base + w])
                .map(|w| self.lines[base + w].tag)
                .collect();
            let before = tags.len();
            tags.sort_unstable();
            tags.dedup();
            tags.len() == before
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dm_l1() -> Cache {
        // The paper's default: 8 KB direct-mapped, 64 B blocks.
        Cache::new(CacheGeometry::from_capacity(8 * 1024, 1, 64).unwrap())
    }

    fn fa(entries: usize) -> Cache {
        Cache::new(CacheGeometry::fully_associative(entries, 64))
    }

    #[test]
    fn geometry_from_capacity() {
        let g = CacheGeometry::from_capacity(8 * 1024, 1, 64).unwrap();
        assert_eq!(g.sets, 128);
        assert_eq!(g.total_bytes(), 8 * 1024);
        let g = CacheGeometry::from_capacity(512 * 1024, 4, 128).unwrap();
        assert_eq!(g.sets, 1024);
        assert!(CacheGeometry::from_capacity(1000, 1, 64).is_err());
        assert!(CacheGeometry::from_capacity(8 * 1024, 3, 64).is_err());
        assert!(CacheGeometry::from_capacity(0, 1, 64).is_err());
        assert!(CacheGeometry::from_capacity(8 * 1024, 1, 63).is_err());
    }

    #[test]
    fn miss_then_hit() {
        let mut c = dm_l1();
        let a = Addr(0x1000);
        assert!(!c.contains(a));
        assert!(c.insert(a, LineFlags::DEMAND).is_none());
        assert!(c.contains(a));
        assert!(c.touch(a).is_some());
        // Same block, different byte.
        assert!(c.contains(Addr(0x103f)));
        assert!(!c.contains(Addr(0x1040)));
    }

    #[test]
    fn direct_mapped_conflict_evicts() {
        let mut c = dm_l1();
        let a = Addr(0x0000);
        let b = Addr(0x2000); // same set (8 KB apart), different tag
        c.insert(a, LineFlags::DEMAND);
        let ev = c.insert(b, LineFlags::DEMAND).unwrap();
        assert_eq!(ev.addr, Addr(0x0000));
        assert!(!c.contains(a));
        assert!(c.contains(b));
    }

    #[test]
    fn evicted_address_reconstruction() {
        let mut c = Cache::new(CacheGeometry::from_capacity(4 * 1024, 2, 64).unwrap());
        let sets = c.geometry().sets; // 32
        let conflicting: Vec<Addr> = (0..3).map(|i| Addr(5 * 64 + i * sets * 64)).collect();
        c.insert(conflicting[0], LineFlags::DEMAND);
        c.insert(conflicting[1], LineFlags::DEMAND);
        let ev = c.insert(conflicting[2], LineFlags::DEMAND).unwrap();
        assert_eq!(ev.addr, conflicting[0]); // LRU of the two
    }

    #[test]
    fn lru_respects_touch_order() {
        let mut c = Cache::new(CacheGeometry::from_capacity(2 * 64, 2, 64).unwrap());
        let (a, b, d) = (Addr(0), Addr(64), Addr(128));
        c.insert(a, LineFlags::DEMAND);
        c.insert(b, LineFlags::DEMAND);
        c.touch(a); // a is now MRU
        let ev = c.insert(d, LineFlags::DEMAND).unwrap();
        assert_eq!(ev.addr, b);
        assert!(c.contains(a) && c.contains(d));
    }

    #[test]
    fn insert_existing_block_updates_flags_without_eviction() {
        let mut c = fa(2);
        let a = Addr(0x100);
        c.insert(a, LineFlags::WRONG);
        assert!(c.peek(a).unwrap().flags.wrong_fetched);
        assert!(c.insert(a, LineFlags::DEMAND).is_none());
        assert!(!c.peek(a).unwrap().flags.wrong_fetched);
        assert_eq!(c.valid_lines(), 1);
    }

    #[test]
    fn take_removes_for_swap() {
        let mut c = fa(4);
        let a = Addr(0x40);
        c.insert(a, LineFlags::PREFETCH);
        let line = c.take(a).unwrap();
        assert!(line.flags.prefetched);
        assert!(!c.contains(a));
        assert!(c.take(a).is_none());
    }

    #[test]
    fn set_dirty_on_hit_only() {
        let mut c = dm_l1();
        let a = Addr(0x80);
        assert!(!c.set_dirty(a));
        c.insert(a, LineFlags::DEMAND);
        assert!(c.set_dirty(a));
        assert!(c.peek(a).unwrap().flags.dirty);
    }

    #[test]
    fn fully_associative_fills_all_entries_before_evicting() {
        let mut c = fa(8);
        for i in 0..8u64 {
            assert!(c.insert(Addr(i * 64), LineFlags::DEMAND).is_none());
        }
        assert_eq!(c.valid_lines(), 8);
        let ev = c.insert(Addr(8 * 64), LineFlags::DEMAND).unwrap();
        assert_eq!(ev.addr, Addr(0)); // first-inserted is LRU
        assert!(c.check_no_duplicate_tags());
    }

    #[test]
    fn resident_blocks_enumerates() {
        let mut c = fa(4);
        c.insert(Addr(0x40), LineFlags::WRONG);
        c.insert(Addr(0x80), LineFlags::DEMAND);
        let mut blocks: Vec<Addr> = c.resident_blocks().map(|(a, _)| a).collect();
        blocks.sort();
        assert_eq!(blocks, vec![Addr(0x40), Addr(0x80)]);
    }
}
