//! The out-of-order pipeline.
//!
//! One [`Core`] models one thread unit's superscalar engine.  Each global
//! cycle the machine calls [`Core::tick`], which walks the pipeline stages in
//! reverse order (commit → complete → issue → dispatch → fetch) so values
//! flow between stages with the intended one-cycle boundaries.
//!
//! Wrong-path behaviour (the paper's §3.1.1) is concentrated in the
//! recovery path of [`Core::tick`]: on a branch misprediction the squashed younger
//! instructions are sifted, and — when `CoreConfig::wrong_path_loads` is set
//! — every squashed load whose effective address is already computable is
//! handed to the [`WrongPathEngine`], which keeps issuing them to the memory
//! system tagged as wrong execution.

use std::collections::VecDeque;
use std::sync::Arc;

use wec_common::ids::{Addr, Cycle};
use wec_common::stats::{Counter, StatSet};
use wec_isa::inst::{FuClass, Inst, LoadKind};
use wec_isa::program::Program;
use wec_isa::reg::Reg;
use wec_isa::semantics::sext;
use wec_telemetry::profile::{NoProf, Phase, PhaseSink};
use wec_telemetry::{FlushRec, FlushTrace};

use crate::bpred::{Btb, DirectionPredictor, Ras};
use crate::config::CoreConfig;
use crate::env::{CoreEnv, MemIssue, StaOutcome, TEXT_BASE};
use crate::exec::{execute, gather_sources, ExecResult, SrcReg};
use crate::regs::{ArchRegs, Mapping, Rat};
use crate::rob::{Rob, RobEntry, SrcState, Stage};
use crate::trace::CommitTrace;
use crate::wrongpath::WrongPathEngine;

/// Instruction-cache block size assumed by the fetch stage (bytes). 8
/// instructions per block at 8 bytes per instruction.
pub const FETCH_BLOCK_BYTES: u64 = 64;

/// The "physical" address of an instruction index (for the I-cache).
#[inline]
pub fn pc_addr(pc: u32) -> Addr {
    Addr(TEXT_BASE + 8 * pc as u64)
}

/// Per-core statistics.
#[derive(Clone, Debug, Default)]
pub struct CoreStats {
    /// Cycles this core was active (running a thread or sequential code).
    pub active_cycles: Counter,
    pub fetched: Counter,
    pub dispatched: Counter,
    pub committed: Counter,
    pub committed_loads: Counter,
    pub committed_stores: Counter,
    pub cond_branches: Counter,
    pub mispredicted_branches: Counter,
    pub indirect_jumps: Counter,
    pub mispredicted_indirect: Counter,
    pub recoveries: Counter,
    pub forwarded_loads: Counter,
    /// Cycles fetch waited on the instruction cache.
    pub icache_stall_cycles: Counter,
    /// Dispatch attempts blocked by a full ROB.
    pub rob_full_stalls: Counter,
    /// Commit attempts blocked by the environment (fork/abort/store stalls).
    pub commit_stalls: Counter,
}

impl CoreStats {
    pub fn dump(&self, out: &mut StatSet, prefix: &str) {
        let mut put = |name: &str, v: u64| out.push(format!("{prefix}.{name}"), v);
        put("active_cycles", self.active_cycles.get());
        put("fetched", self.fetched.get());
        put("dispatched", self.dispatched.get());
        put("committed", self.committed.get());
        put("committed_loads", self.committed_loads.get());
        put("committed_stores", self.committed_stores.get());
        put("cond_branches", self.cond_branches.get());
        put("mispredicted_branches", self.mispredicted_branches.get());
        put("indirect_jumps", self.indirect_jumps.get());
        put("mispredicted_indirect", self.mispredicted_indirect.get());
        put("recoveries", self.recoveries.get());
        put("forwarded_loads", self.forwarded_loads.get());
        put("icache_stall_cycles", self.icache_stall_cycles.get());
        put("rob_full_stalls", self.rob_full_stalls.get());
        put("commit_stalls", self.commit_stalls.get());
    }

    /// Branch misprediction rate over conditional branches.
    pub fn mispredict_rate(&self) -> f64 {
        let b = self.cond_branches.get();
        if b == 0 {
            0.0
        } else {
            self.mispredicted_branches.get() as f64 / b as f64
        }
    }
}

/// An instruction waiting between fetch and dispatch.
#[derive(Clone, Debug)]
struct FetchedInst {
    pc: u32,
    inst: Inst,
    predicted_taken: bool,
    predicted_target: u32,
}

const FU_CLASSES: usize = 7;

#[inline]
fn fu_index(class: FuClass) -> Option<usize> {
    Some(match class {
        FuClass::IntAlu => 0,
        FuClass::IntMul => 1,
        FuClass::IntDiv => 2,
        FuClass::FpAlu => 3,
        FuClass::FpMul => 4,
        FuClass::FpDiv => 5,
        FuClass::Mem => 6,
        FuClass::None => return None,
    })
}

/// One thread unit's out-of-order core.
pub struct Core {
    cfg: CoreConfig,
    program: Arc<Program>,
    // -------- fetch --------
    running: bool,
    fetch_enabled: bool,
    fetch_pc: u32,
    fetch_ready_at: Cycle,
    fetch_block: Option<Addr>,
    fetch_queue: VecDeque<FetchedInst>,
    jr_stall: bool,
    bimodal: DirectionPredictor,
    btb: Btb,
    ras: Ras,
    // -------- rename / window --------
    next_seq: u64,
    rat: Rat,
    rob: Rob,
    /// Committed architectural state. The machine writes this directly when
    /// it starts a thread on this core (fork register transfer).
    pub arch: ArchRegs,
    // -------- per-cycle FU accounting --------
    fu_cycle: Cycle,
    fu_used: [u32; FU_CLASSES],
    // -------- wrong path --------
    pub wp_engine: WrongPathEngine,
    /// Recovery scratch: squashed-producer results, indexed by
    /// `seq - first_squashed_seq` (squashed seqs are contiguous).  Kept on
    /// the core so a mispredict-heavy run does not allocate a map per
    /// recovery.
    recover_produced: Vec<Option<u64>>,
    /// Completion scratch: seqs whose latency elapsed this cycle, refilled
    /// by `complete()` each tick instead of allocating.
    complete_scratch: Vec<u64>,
    pub stats: CoreStats,
    /// Recent commits (enabled via `CoreConfig::commit_trace`).
    pub commit_trace: CommitTrace,
    /// Gated telemetry buffer of pipeline flushes (branch recoveries);
    /// drained by the machine each cycle.
    pub flush_trace: FlushTrace,
}

impl Core {
    pub fn new(cfg: CoreConfig, program: Arc<Program>) -> Self {
        let bimodal = DirectionPredictor::new(cfg.bpred, cfg.bimodal_entries);
        let btb = Btb::new(cfg.btb_entries, cfg.btb_ways);
        let ras = Ras::new(cfg.ras_depth);
        let rob = Rob::new(cfg.rob_size);
        let wp_engine = WrongPathEngine::new(cfg.wrong_path_queue);
        let commit_trace = CommitTrace::new(cfg.commit_trace);
        Core {
            cfg,
            program,
            running: false,
            fetch_enabled: false,
            fetch_pc: 0,
            fetch_ready_at: Cycle::ZERO,
            fetch_block: None,
            fetch_queue: VecDeque::new(),
            jr_stall: false,
            bimodal,
            btb,
            ras,
            next_seq: 1,
            rat: Rat::new(),
            rob,
            arch: ArchRegs::new(),
            fu_cycle: Cycle::ZERO,
            fu_used: [0; FU_CLASSES],
            wp_engine,
            recover_produced: Vec::new(),
            complete_scratch: Vec::new(),
            stats: CoreStats::default(),
            commit_trace,
            flush_trace: FlushTrace::default(),
        }
    }

    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    pub fn program(&self) -> &Arc<Program> {
        &self.program
    }

    /// Begin executing at `pc` (thread start or sequential resume).  The
    /// caller sets `self.arch` beforehand.  Predictor state persists across
    /// threads (it is per thread *unit*).
    pub fn start(&mut self, pc: u32, now: Cycle) {
        self.flush();
        self.running = true;
        self.fetch_enabled = true;
        self.fetch_pc = pc;
        self.fetch_ready_at = now;
    }

    /// Stop executing and drop all in-flight state (thread killed or ended).
    pub fn force_stop(&mut self) {
        self.flush();
        self.running = false;
    }

    pub fn is_running(&self) -> bool {
        self.running
    }

    /// In-flight instructions (tests, occupancy probes).
    pub fn rob_len(&self) -> usize {
        self.rob.len()
    }

    /// One-line description of the ROB head and fetch state (debugging).
    pub fn debug_head(&self) -> String {
        let head = self
            .rob
            .head()
            .map(|e| {
                format!(
                    "head #{} pc={} {:?} {:?} srcs_ready={}",
                    e.seq,
                    e.pc,
                    e.inst,
                    e.stage,
                    e.srcs_ready()
                )
            })
            .unwrap_or_else(|| "rob empty".into());
        format!(
            "{head} | fetch_pc={} enabled={} jr_stall={} queue={}",
            self.fetch_pc,
            self.fetch_enabled,
            self.jr_stall,
            self.fetch_queue.len()
        )
    }

    fn flush(&mut self) {
        self.rob.clear();
        self.rat.clear();
        self.fetch_queue.clear();
        self.fetch_block = None;
        self.jr_stall = false;
        self.fetch_enabled = false;
    }

    // ------------------------------------------------------------------
    // The pipeline
    // ------------------------------------------------------------------

    /// Advance one cycle.
    pub fn tick(&mut self, env: &mut dyn CoreEnv, now: Cycle) {
        self.tick_with(&mut NoProf, env, now);
    }

    /// [`Core::tick`] with per-phase wall-clock attribution.  The pipeline
    /// is written once, generic over the [`PhaseSink`]; the [`NoProf`]
    /// instantiation (what [`Core::tick`] calls) monomorphizes to exactly
    /// the uninstrumented loop, so profiling costs nothing when off.
    pub fn tick_with<S: PhaseSink>(&mut self, sink: &mut S, env: &mut dyn CoreEnv, now: Cycle) {
        let mut t = S::mark();
        // Wrong-path loads keep issuing even while the core itself idles
        // (e.g. a wrong thread already died but its loads are queued).
        self.wp_engine.tick(env, now, 2);
        sink.lap(&mut t, Phase::Mem);
        if !self.running {
            return;
        }
        self.stats.active_cycles.inc();
        self.commit(env, now);
        sink.lap(&mut t, Phase::CommitRecovery);
        if !self.running {
            return;
        }
        self.complete(now);
        self.issue(env, now);
        sink.lap(&mut t, Phase::Exec);
        self.dispatch(now);
        self.fetch(env, now);
        sink.lap(&mut t, Phase::FetchRename);
    }

    // -------- commit --------

    /// Release the committing instruction's RAT mappings (only its own
    /// destination slots can name its seq).
    fn retire_rat(&mut self, inst: &Inst, seq: u64) {
        if let Some(rd) = inst.dest_ireg() {
            self.rat.retire_i(rd, seq);
        }
        if let Some(fd) = inst.dest_freg() {
            self.rat.retire_f(fd, seq);
        }
    }

    fn commit(&mut self, env: &mut dyn CoreEnv, now: Cycle) {
        let mut committed = 0;
        while committed < self.cfg.width {
            let Some(head) = self.rob.head() else { break };
            if head.stage != Stage::Done {
                break;
            }
            let inst = head.inst;
            let seq = head.seq;

            if inst.is_store() {
                let addr = head.eff_addr.expect("done store without address");
                let data = head.store_data.expect("done store without data");
                let bytes = inst.mem_bytes().unwrap();
                if !env.commit_store(addr, bytes, data, now) {
                    self.stats.commit_stalls.inc();
                    break;
                }
                self.stats.committed_stores.inc();
            } else if inst.is_sta() || matches!(inst, Inst::Halt) {
                match env.sta_commit(&inst, &self.arch, now) {
                    StaOutcome::Continue => {}
                    StaOutcome::Stall => {
                        self.stats.commit_stalls.inc();
                        break;
                    }
                    StaOutcome::Redirect(pc) => {
                        let entry = self.rob.pop_head().unwrap();
                        self.retire_rat(&entry.inst, entry.seq);
                        self.stats.committed.inc();
                        self.commit_trace
                            .record(now, entry.seq, entry.pc, entry.inst);
                        self.flush();
                        self.fetch_enabled = true;
                        self.fetch_pc = pc;
                        self.fetch_ready_at = now.plus(1);
                        return;
                    }
                    StaOutcome::Stop => {
                        self.stats.committed.inc();
                        self.force_stop();
                        return;
                    }
                }
            } else {
                if let Some(rd) = inst.dest_ireg() {
                    self.arch.write_i(rd, self.rob.head().unwrap().result);
                }
                if let Some(fd) = inst.dest_freg() {
                    self.arch.write_f_bits(fd, self.rob.head().unwrap().result);
                }
                if inst.is_load() {
                    self.stats.committed_loads.inc();
                }
            }
            let retired = self.rob.pop_head().unwrap();
            self.retire_rat(&inst, seq);
            self.stats.committed.inc();
            self.commit_trace
                .record(now, retired.seq, retired.pc, retired.inst);
            committed += 1;
        }
    }

    // -------- complete / resolve --------

    fn complete(&mut self, now: Cycle) {
        // Collect completions oldest-first; recoveries may squash younger
        // ones, which then simply fail the lookup.  The seq list lives in a
        // reusable scratch buffer — this runs every cycle on every core.
        let mut ready = std::mem::take(&mut self.complete_scratch);
        ready.clear();
        ready.extend(
            self.rob
                .iter()
                .filter(|e| e.stage == Stage::Executing && e.done_at <= now)
                .map(|e| e.seq),
        );
        for &seq in &ready {
            let Some(entry) = self.rob.get_mut(seq) else {
                continue; // squashed by an older branch this cycle
            };
            entry.stage = Stage::Done;
            let inst = entry.inst;
            let result = entry.result;
            let has_dest = inst.dest_ireg().is_some() || inst.dest_freg().is_some();
            if has_dest {
                self.rob.broadcast(seq, result);
            }
            match inst {
                Inst::Branch { .. } => {
                    let e = self.rob.get_mut(seq).unwrap();
                    let taken = e.resolved_taken;
                    let target = e.resolved_target;
                    let pc = e.pc;
                    let predicted_taken = e.predicted_taken;
                    self.stats.cond_branches.inc();
                    self.bimodal.update(pc, taken);
                    if taken {
                        self.btb.update(pc, target);
                    }
                    let actual_next = if taken { target } else { pc + 1 };
                    if taken != predicted_taken {
                        self.stats.mispredicted_branches.inc();
                        self.recover(seq, actual_next, now);
                    }
                }
                Inst::Jr { .. } => {
                    let e = self.rob.get_mut(seq).unwrap();
                    let target = e.resolved_target;
                    let pc = e.pc;
                    let predicted = e.predicted_target;
                    self.stats.indirect_jumps.inc();
                    self.btb.update(pc, target);
                    if predicted == u32::MAX {
                        // Fetch was stalled waiting for this jr: redirect,
                        // nothing younger exists to squash.
                        self.jr_stall = false;
                        self.fetch_enabled = true;
                        self.fetch_pc = target;
                        self.fetch_ready_at = now.plus(1);
                        self.fetch_block = None;
                    } else if predicted != target {
                        self.stats.mispredicted_indirect.inc();
                        self.recover(seq, target, now);
                    }
                }
                _ => {}
            }
        }
        self.complete_scratch = ready;
    }

    /// Branch misprediction recovery: squash everything younger than `seq`,
    /// restore the RAT, redirect fetch — and feed address-ready squashed
    /// loads to the wrong-path engine (§3.1.1).
    fn recover(&mut self, seq: u64, new_pc: u32, now: Cycle) {
        self.stats.recoveries.inc();
        let branch = self
            .rob
            .get_mut(seq)
            .expect("recovering branch without ROB entry");
        let branch_pc = branch.pc;
        let checkpoint = branch
            .checkpoint
            .take()
            .expect("recovering branch without checkpoint");
        self.rat.restore(&checkpoint);
        let squashed = self.rob.squash_younger(seq);
        self.flush_trace.push(FlushRec {
            cycle: now.0,
            pc: branch_pc,
            new_pc,
            squashed: squashed.len() as u32,
        });
        if self.cfg.wrong_path_loads {
            // Results of squashed producers that already issued: functional
            // execution computes a value at issue, so any non-waiting entry
            // carries its result even if its latency has not elapsed.  A
            // squashed load whose base comes from such a producer is
            // "ready" in the paper's sense — its effective address is
            // computable when the branch resolves (Figure 3's loads C/D).
            // Squashed seqs span a narrow range (a ROB suffix, possibly with
            // gaps), so the producer table is a dense vector indexed by
            // `seq - base`, reused across recoveries.
            let base_seq = squashed.first().map(|e| e.seq).unwrap_or(0);
            let span = squashed
                .last()
                .map(|e| (e.seq - base_seq) as usize + 1)
                .unwrap_or(0);
            self.recover_produced.clear();
            self.recover_produced.resize(span, None);
            for e in &squashed {
                if e.stage != Stage::Waiting
                    && (e.inst.dest_ireg().is_some() || e.inst.dest_freg().is_some())
                {
                    self.recover_produced[(e.seq - base_seq) as usize] = Some(e.result);
                }
            }
            for e in &squashed {
                if !e.inst.is_load() || e.mem_issued {
                    continue;
                }
                let base = match e.srcs[0] {
                    SrcState::Ready(base) => Some(base),
                    SrcState::Waiting(p) => {
                        // Producers outside the squashed range were never in
                        // the map before either (only squashed entries were
                        // inserted), so out-of-range lookups are None.
                        p.checked_sub(base_seq)
                            .and_then(|i| self.recover_produced.get(i as usize))
                            .copied()
                            .flatten()
                    }
                };
                let addr = e.eff_addr.or_else(|| {
                    base.map(|b| {
                        let off = e.inst.mem_offset().unwrap_or(0);
                        Addr(b.wrapping_add(off as i64 as u64))
                    })
                });
                if let Some(addr) = addr {
                    self.wp_engine.push(addr, e.inst.mem_bytes().unwrap(), e.pc);
                }
            }
        }
        self.fetch_queue.clear();
        self.jr_stall = false;
        self.fetch_enabled = true;
        self.fetch_pc = new_pc;
        self.fetch_ready_at = now.plus(1);
        self.fetch_block = None;
    }

    // -------- issue / execute --------

    fn claim_fu(&mut self, class: FuClass, now: Cycle) -> bool {
        let Some(idx) = fu_index(class) else {
            return true;
        };
        if self.fu_cycle != now {
            self.fu_cycle = now;
            self.fu_used = [0; FU_CLASSES];
        }
        if self.fu_used[idx] < self.cfg.units(class) {
            self.fu_used[idx] += 1;
            true
        } else {
            false
        }
    }

    fn issue(&mut self, env: &mut dyn CoreEnv, now: Cycle) {
        let mut issued = 0;
        let mut idx = 0;
        while idx < self.rob.len() && issued < self.cfg.width {
            let e = self.rob.at(idx);
            if e.stage != Stage::Waiting || !e.srcs_ready() {
                idx += 1;
                continue;
            }
            let inst = e.inst;
            let class = inst.fu_class();
            if inst.is_load() {
                if self.try_issue_load(env, idx, now) {
                    issued += 1;
                }
            } else if inst.is_store() {
                if self.claim_fu(FuClass::Mem, now) {
                    let e = self.rob.at_mut(idx);
                    let (v0, v1) = (e.src_val(0), e.src_val(1));
                    if let ExecResult::StoreReady { addr, data } = execute(&e.inst, v0, v1, e.pc) {
                        e.eff_addr = Some(addr);
                        e.store_data = Some(data);
                        e.stage = Stage::Done;
                        e.done_at = now;
                    } else {
                        unreachable!("store executed to non-store result");
                    }
                    issued += 1;
                }
            } else if self.claim_fu(class, now) {
                let latency = self.cfg.latency(class);
                let e = self.rob.at_mut(idx);
                let (v0, v1) = (e.src_val(0), e.src_val(1));
                match execute(&e.inst, v0, v1, e.pc) {
                    ExecResult::Value(v) => e.result = v,
                    ExecResult::Branch { taken, target } => {
                        e.resolved_taken = taken;
                        e.resolved_target = target;
                    }
                    ExecResult::IndirectTarget(t) => e.resolved_target = t,
                    ExecResult::AnnounceAddr(a) => {
                        e.eff_addr = Some(a);
                        e.result = a.0;
                    }
                    ExecResult::None => {}
                    other => unreachable!("unexpected exec result {other:?}"),
                }
                e.stage = Stage::Executing;
                e.done_at = now.plus(latency);
                issued += 1;
            }
            idx += 1;
        }
    }

    /// Try to issue the load at ROB position `idx`.  Returns true if it
    /// consumed an issue slot (even if it only computed its address).
    fn try_issue_load(&mut self, env: &mut dyn CoreEnv, idx: usize, now: Cycle) -> bool {
        // Compute the effective address first (cheap, idempotent).
        {
            let e = self.rob.at_mut(idx);
            if e.eff_addr.is_none() {
                let base = e.src_val(0);
                let off = e.inst.mem_offset().unwrap();
                e.eff_addr = Some(Addr(base.wrapping_add(off as i64 as u64)));
            }
        }
        let (addr, bytes, kind, pc) = {
            let e = self.rob.at(idx);
            let kind = match e.inst {
                Inst::Load { kind, .. } => Some(kind),
                _ => None,
            };
            (e.eff_addr.unwrap(), e.inst.mem_bytes().unwrap(), kind, e.pc)
        };

        // Memory-ordering check against all older stores (conservative: no
        // memory-dependence speculation, like sim-outorder's default).
        let mut forward_from: Option<u64> = None;
        for j in (0..idx).rev() {
            let older = self.rob.at(j);
            if !older.inst.is_store() {
                continue;
            }
            match older.eff_addr {
                None => return false, // unknown older store address: wait
                Some(saddr) => {
                    let sbytes = older.inst.mem_bytes().unwrap();
                    let overlap = saddr.0 < addr.0 + bytes && addr.0 < saddr.0 + sbytes;
                    if !overlap {
                        continue;
                    }
                    if saddr == addr && sbytes == bytes {
                        match older.store_data {
                            Some(d) => {
                                forward_from = Some(d);
                                break;
                            }
                            None => return false, // data not ready yet
                        }
                    }
                    // Partial overlap: wait for the store to commit.
                    return false;
                }
            }
        }

        if !self.claim_fu(FuClass::Mem, now) {
            return false;
        }

        if let Some(raw) = forward_from {
            let e = self.rob.at_mut(idx);
            e.result = extend_load(kind, raw, bytes);
            e.stage = Stage::Executing;
            e.done_at = now.plus(1);
            e.mem_issued = true;
            e.forwarded = true;
            self.stats.forwarded_loads.inc();
            return true;
        }

        match env.load(addr, bytes, now, false, pc) {
            MemIssue::Done { ready_at, value } => {
                let e = self.rob.at_mut(idx);
                e.result = extend_load(kind, value, bytes);
                e.stage = Stage::Executing;
                e.done_at = ready_at.max(now.plus(1));
                e.mem_issued = true;
                true
            }
            // Port/MSHR pressure or dependence wait: retry next cycle (the
            // issue slot was consumed by the attempt).
            MemIssue::Retry | MemIssue::Blocked => true,
        }
    }

    // -------- dispatch / rename --------

    fn dispatch(&mut self, now: Cycle) {
        let mut dispatched = 0;
        while dispatched < self.cfg.width {
            if self.fetch_queue.is_empty() {
                break;
            }
            if self.rob.is_full() {
                self.stats.rob_full_stalls.inc();
                break;
            }
            if self.rob.has_serializer() {
                break;
            }
            let f = self.fetch_queue.front().unwrap();
            if f.inst.is_mem() && self.rob.mem_count() >= self.cfg.lsq_size {
                break;
            }
            let f = self.fetch_queue.pop_front().unwrap();
            let seq = self.next_seq;
            self.next_seq += 1;
            let mut e = RobEntry::new(seq, f.pc, f.inst);
            e.predicted_taken = f.predicted_taken;
            e.predicted_target = f.predicted_target;

            // Rename sources.
            for (slot, src) in gather_sources(&f.inst).into_iter().enumerate() {
                e.srcs[slot] = match src {
                    None => SrcState::Ready(0),
                    Some(SrcReg::I(r)) => {
                        if r.is_zero() {
                            SrcState::Ready(0)
                        } else {
                            match self.rat.lookup_i(r) {
                                Mapping::Arch => SrcState::Ready(self.arch.read_i(r)),
                                Mapping::Rob(p) => self.producer_state(p, self.arch.read_i(r)),
                            }
                        }
                    }
                    Some(SrcReg::F(r)) => match self.rat.lookup_f(r) {
                        Mapping::Arch => SrcState::Ready(self.arch.read_f_bits(r)),
                        Mapping::Rob(p) => self.producer_state(p, self.arch.read_f_bits(r)),
                    },
                };
            }

            // Checkpoint before renaming the destination: branches have no
            // destination, so order does not matter, but keep it explicit.
            if matches!(f.inst, Inst::Branch { .. } | Inst::Jr { .. }) {
                e.checkpoint = Some(Box::new(self.rat.clone()));
            }

            if let Some(rd) = f.inst.dest_ireg() {
                self.rat.set_i(rd, seq);
            }
            if let Some(fd) = f.inst.dest_freg() {
                self.rat.set_f(fd, seq);
            }

            // Zero-latency instructions complete at dispatch.
            if f.inst.fu_class() == FuClass::None {
                if let ExecResult::Value(v) = execute(&f.inst, 0, 0, f.pc) {
                    e.result = v; // jal's return index
                }
                e.stage = Stage::Done;
                e.done_at = now;
            }

            self.rob.push(e);
            self.stats.dispatched.inc();
            dispatched += 1;
        }
    }

    fn producer_state(&self, producer_seq: u64, arch_value: u64) -> SrcState {
        match self.rob.get(producer_seq) {
            Some(p) if p.stage == Stage::Done => SrcState::Ready(p.result),
            Some(_) => SrcState::Waiting(producer_seq),
            // The producer already committed. This happens when a restored
            // branch checkpoint names an entry that retired between the
            // checkpoint and the recovery; its value is in the architectural
            // file (sequence numbers are never reused, so no aliasing).
            None => SrcState::Ready(arch_value),
        }
    }

    // -------- fetch --------

    fn fetch(&mut self, env: &mut dyn CoreEnv, now: Cycle) {
        if !self.fetch_enabled || self.jr_stall {
            return;
        }
        if self.fetch_queue.len() >= 2 * self.cfg.width as usize {
            return;
        }
        if now < self.fetch_ready_at {
            self.stats.icache_stall_cycles.inc();
            return;
        }
        // Instruction-cache access for the current fetch block.
        let block = pc_addr(self.fetch_pc).block_base(FETCH_BLOCK_BYTES);
        if self.fetch_block != Some(block) {
            match env.ifetch(block, now) {
                MemIssue::Done { ready_at, .. } => {
                    self.fetch_block = Some(block);
                    if ready_at > now.plus(1) {
                        self.fetch_ready_at = ready_at;
                        self.stats.icache_stall_cycles.inc();
                        return;
                    }
                }
                MemIssue::Retry | MemIssue::Blocked => {
                    self.stats.icache_stall_cycles.inc();
                    return;
                }
            }
        }

        let mut fetched = 0;
        while fetched < self.cfg.width {
            if pc_addr(self.fetch_pc).block_base(FETCH_BLOCK_BYTES) != block {
                break; // next block next cycle
            }
            let pc = self.fetch_pc;
            let Ok(inst) = self.program.fetch(pc) else {
                // Ran off the text segment (only possible on a wrong path
                // that will be squashed, or a malformed program the machine's
                // cycle limit will catch).
                self.fetch_enabled = false;
                break;
            };
            self.stats.fetched.inc();
            fetched += 1;
            let mut fi = FetchedInst {
                pc,
                inst,
                predicted_taken: false,
                predicted_target: u32::MAX,
            };
            match inst {
                Inst::Branch { target, .. } => {
                    let taken = self.bimodal.predict(pc);
                    fi.predicted_taken = taken;
                    if taken {
                        fi.predicted_target = target;
                        // BTB models the redirect timing: a miss costs one
                        // fetch bubble even though the target is in the
                        // instruction word.
                        if self.btb.lookup(pc).is_none() {
                            self.btb.update(pc, target);
                            self.fetch_ready_at = now.plus(2);
                        }
                        self.fetch_pc = target;
                        self.fetch_queue.push_back(fi);
                        break;
                    } else {
                        fi.predicted_target = pc + 1;
                        self.fetch_pc = pc + 1;
                        self.fetch_queue.push_back(fi);
                    }
                }
                Inst::Jump { target } => {
                    if self.btb.lookup(pc).is_none() {
                        self.btb.update(pc, target);
                        self.fetch_ready_at = now.plus(2);
                    }
                    self.fetch_pc = target;
                    self.fetch_queue.push_back(fi);
                    break;
                }
                Inst::Jal { target, .. } => {
                    self.ras.push(pc + 1);
                    if self.btb.lookup(pc).is_none() {
                        self.btb.update(pc, target);
                        self.fetch_ready_at = now.plus(2);
                    }
                    self.fetch_pc = target;
                    self.fetch_queue.push_back(fi);
                    break;
                }
                Inst::Jr { rs } => {
                    let predicted = if rs == Reg::RA {
                        self.ras.pop().or_else(|| self.btb.lookup(pc))
                    } else {
                        self.btb.lookup(pc)
                    };
                    match predicted {
                        Some(t) => {
                            fi.predicted_target = t;
                            self.fetch_pc = t;
                            self.fetch_queue.push_back(fi);
                        }
                        None => {
                            self.jr_stall = true;
                            self.fetch_queue.push_back(fi);
                        }
                    }
                    break;
                }
                Inst::Abort { .. } | Inst::ThreadEnd | Inst::Halt => {
                    // Nothing after these is architecturally reachable from
                    // this thread; stop fetching until commit redirects.
                    self.fetch_queue.push_back(fi);
                    self.fetch_enabled = false;
                    break;
                }
                _ => {
                    self.fetch_pc = pc + 1;
                    self.fetch_queue.push_back(fi);
                }
            }
        }
    }
}

/// Apply the load kind's extension rule to a raw little-endian value.
#[inline]
fn extend_load(kind: Option<LoadKind>, raw: u64, bytes: u64) -> u64 {
    let masked = if bytes == 8 {
        raw
    } else {
        raw & ((1u64 << (8 * bytes)) - 1)
    };
    match kind {
        Some(LoadKind::W) => sext(masked, 32),
        // LoadKind::B zero-extends; LoadKind::D and FLoad pass through.
        _ => masked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::MockEnv;
    use wec_isa::ProgramBuilder;

    fn run_to_halt(program: Program, cfg: CoreConfig) -> (Core, MockEnv, u64) {
        let data = program.data.clone();
        let entry = program.entry;
        let mut core = Core::new(cfg, Arc::new(program));
        let mut env = MockEnv::new(data);
        core.start(entry, Cycle(0));
        let mut cycle = 0u64;
        while core.is_running() && !env.halted {
            core.tick(&mut env, Cycle(cycle));
            cycle += 1;
            assert!(cycle < 1_000_000, "runaway program");
        }
        // Drain the wrong-path engine.
        for _ in 0..64 {
            core.tick(&mut env, Cycle(cycle));
            cycle += 1;
        }
        (core, env, cycle)
    }

    use wec_isa::program::Program;

    #[test]
    fn straight_line_arithmetic_commits_correct_values() {
        let mut b = ProgramBuilder::new("t");
        let (r1, r2, r3) = (Reg(1), Reg(2), Reg(3));
        b.li(r1, 6);
        b.li(r2, 7);
        b.mul(r3, r1, r2);
        let buf = b.alloc_zeroed_u64s(1);
        b.la(Reg(4), buf);
        b.sd(r3, Reg(4), 0);
        b.halt();
        let (_, env, _) = run_to_halt(b.build().unwrap(), CoreConfig::default());
        assert_eq!(env.stores, vec![(buf, 8, 42)]);
        assert_eq!(env.mem.read_u64(buf).unwrap(), 42);
    }

    #[test]
    fn loop_sums_an_array() {
        let mut b = ProgramBuilder::new("sum");
        let vals: Vec<u64> = (1..=50).collect();
        let arr = b.alloc_u64s(&vals);
        let out = b.alloc_zeroed_u64s(1);
        let (ptr, cnt, acc, v, outr) = (Reg(1), Reg(2), Reg(3), Reg(4), Reg(5));
        b.la(ptr, arr);
        b.li(cnt, 50);
        b.li(acc, 0);
        b.label("loop");
        b.ld(v, ptr, 0);
        b.add(acc, acc, v);
        b.addi(ptr, ptr, 8);
        b.addi(cnt, cnt, -1);
        b.bne(cnt, Reg::ZERO, "loop");
        b.la(outr, out);
        b.sd(acc, outr, 0);
        b.halt();
        let (core, env, _) = run_to_halt(b.build().unwrap(), CoreConfig::default());
        assert_eq!(env.mem.read_u64(out).unwrap(), (1..=50u64).sum::<u64>());
        assert_eq!(core.stats.committed_loads.get(), 50);
        assert!(core.stats.cond_branches.get() >= 50);
    }

    #[test]
    fn store_to_load_forwarding() {
        let mut b = ProgramBuilder::new("fwd");
        let buf = b.alloc_zeroed_u64s(1);
        b.la(Reg(1), buf);
        b.li(Reg(2), 123);
        b.sd(Reg(2), Reg(1), 0);
        b.ld(Reg(3), Reg(1), 0); // must see 123 via forwarding
        let out = b.alloc_zeroed_u64s(1);
        b.la(Reg(4), out);
        b.sd(Reg(3), Reg(4), 0);
        b.halt();
        let (core, env, _) = run_to_halt(b.build().unwrap(), CoreConfig::default());
        assert_eq!(env.mem.read_u64(out).unwrap(), 123);
        assert!(core.stats.forwarded_loads.get() >= 1);
    }

    #[test]
    fn call_and_return_via_ras() {
        let mut b = ProgramBuilder::new("call");
        let out = b.alloc_zeroed_u64s(1);
        b.jal(Reg::RA, "fun");
        b.la(Reg(4), out);
        b.sd(Reg(3), Reg(4), 0);
        b.halt();
        b.label("fun");
        b.li(Reg(3), 9);
        b.jr(Reg::RA);
        let (core, env, _) = run_to_halt(b.build().unwrap(), CoreConfig::default());
        assert_eq!(env.mem.read_u64(out).unwrap(), 9);
        assert_eq!(core.stats.indirect_jumps.get(), 1);
        assert_eq!(core.stats.mispredicted_indirect.get(), 0);
    }

    #[test]
    fn misprediction_recovers_architecturally() {
        // A data-dependent branch the predictor cannot learn: alternate
        // taken/not-taken, accumulating different values on each side.
        let mut b = ProgramBuilder::new("br");
        let out = b.alloc_zeroed_u64s(1);
        let (i, acc, bit) = (Reg(1), Reg(2), Reg(3));
        b.li(i, 40);
        b.li(acc, 0);
        b.label("loop");
        b.andi(bit, i, 1);
        b.beq(bit, Reg::ZERO, "even");
        b.addi(acc, acc, 3);
        b.j("next");
        b.label("even");
        b.addi(acc, acc, 5);
        b.label("next");
        b.addi(i, i, -1);
        b.bne(i, Reg::ZERO, "loop");
        b.la(Reg(4), out);
        b.sd(acc, Reg(4), 0);
        b.halt();
        let (core, env, _) = run_to_halt(b.build().unwrap(), CoreConfig::default());
        // 20 odd iterations (+3) and 20 even (+5).
        assert_eq!(env.mem.read_u64(out).unwrap(), 20 * 3 + 20 * 5);
        assert!(core.stats.mispredicted_branches.get() > 0);
    }

    #[test]
    fn wrong_path_loads_reach_the_engine_when_enabled() {
        // The branch direction flips at i == 16, so the bimodal predictor
        // mispredicts there and a burst of wrong-path loads is fetched.  On
        // a narrow (2-wide) core only a couple of them can issue before the
        // branch resolves — the rest are exactly the paper's "ready but not
        // yet issued" loads that the engine must pick up.
        let mut b = ProgramBuilder::new("wp");
        let arr = b.alloc_u64s(&(0..128).collect::<Vec<_>>());
        let (i, flag, base) = (Reg(1), Reg(2), Reg(3));
        b.la(base, arr);
        b.li(i, 30);
        b.label("loop");
        b.slti(flag, i, 16); // false for i>=16 → branch pattern flips
        b.bne(flag, Reg::ZERO, "low");
        for k in 0..8 {
            b.ld(Reg(10 + k), base, k as i32 * 8);
        }
        b.j("next");
        b.label("low");
        for k in 0..8 {
            b.ld(Reg(10 + k), base, 512 + k as i32 * 8);
        }
        b.label("next");
        b.addi(i, i, -1);
        b.bne(i, Reg::ZERO, "loop");
        b.halt();
        let prog = b.build().unwrap();

        let mut cfg = CoreConfig::with_width(2);
        cfg.wrong_path_loads = true;
        let (core, env, _) = run_to_halt(prog.clone(), cfg);
        assert!(
            core.wp_engine.queued.get() > 0,
            "no wrong-path loads queued"
        );
        assert!(!env.wrong_path_loads.is_empty());

        // Without wp, none are issued.
        let (core2, env2, _) = run_to_halt(prog, CoreConfig::with_width(2));
        assert_eq!(core2.wp_engine.queued.get(), 0);
        assert!(env2.wrong_path_loads.is_empty());
    }

    #[test]
    fn wrong_path_execution_never_changes_results() {
        // Same program under wp and no-wp must produce identical memory.
        let build = || {
            let mut b = ProgramBuilder::new("det");
            let arr = b.alloc_u64s(&(1..=32).collect::<Vec<_>>());
            let out = b.alloc_zeroed_u64s(1);
            let (i, acc, v, base, t) = (Reg(1), Reg(2), Reg(3), Reg(4), Reg(5));
            b.la(base, arr);
            b.li(i, 32);
            b.li(acc, 0);
            b.label("loop");
            b.ld(v, base, 0);
            b.andi(t, v, 3);
            b.beq(t, Reg::ZERO, "skip");
            b.add(acc, acc, v);
            b.label("skip");
            b.addi(base, base, 8);
            b.addi(i, i, -1);
            b.bne(i, Reg::ZERO, "loop");
            b.la(base, out);
            b.sd(acc, base, 0);
            b.halt();
            (b.build().unwrap(), out)
        };
        let (p1, out) = build();
        let cfg = CoreConfig {
            wrong_path_loads: true,
            ..CoreConfig::default()
        };
        let (_, env1, _) = run_to_halt(p1, cfg);
        let (p2, _) = build();
        let (_, env2, _) = run_to_halt(p2, CoreConfig::default());
        assert_eq!(
            env1.mem.read_u64(out).unwrap(),
            env2.mem.read_u64(out).unwrap()
        );
        assert_eq!(env1.mem.checksum(), env2.mem.checksum());
    }

    #[test]
    fn fp_pipeline_end_to_end() {
        use wec_isa::reg::FReg;
        let mut b = ProgramBuilder::new("fp");
        let xs = b.alloc_f64s(&[1.5, 2.5, 3.0]);
        let out = b.alloc_bytes(8, 8);
        b.la(Reg(1), xs);
        b.fld(FReg(1), Reg(1), 0);
        b.fld(FReg(2), Reg(1), 8);
        b.fld(FReg(3), Reg(1), 16);
        b.fadd(FReg(4), FReg(1), FReg(2)); // 4.0
        b.fmul(FReg(5), FReg(4), FReg(3)); // 12.0
        b.la(Reg(2), out);
        b.fsd(FReg(5), Reg(2), 0);
        b.halt();
        let (_, env, _) = run_to_halt(b.build().unwrap(), CoreConfig::default());
        assert_eq!(env.mem.read_f64(out).unwrap(), 12.0);
    }

    #[test]
    fn narrower_widths_still_execute_correctly() {
        for width in [1u32, 2, 4] {
            let mut b = ProgramBuilder::new("w");
            let out = b.alloc_zeroed_u64s(1);
            let (i, acc) = (Reg(1), Reg(2));
            b.li(i, 10);
            b.li(acc, 0);
            b.label("loop");
            b.add(acc, acc, i);
            b.addi(i, i, -1);
            b.bne(i, Reg::ZERO, "loop");
            b.la(Reg(3), out);
            b.sd(acc, Reg(3), 0);
            b.halt();
            let (_, env, _) = run_to_halt(b.build().unwrap(), CoreConfig::with_width(width));
            assert_eq!(env.mem.read_u64(out).unwrap(), 55, "width {width}");
        }
    }

    #[test]
    fn wider_core_is_faster_on_ilp_kernel() {
        let build = || {
            let mut b = ProgramBuilder::new("ilp");
            // Eight independent accumulator chains.
            for r in 1..=8u8 {
                b.li(Reg(r), 0);
            }
            b.li(Reg(9), 200);
            b.label("loop");
            for r in 1..=8u8 {
                b.addi(Reg(r), Reg(r), 1);
            }
            b.addi(Reg(9), Reg(9), -1);
            b.bne(Reg(9), Reg::ZERO, "loop");
            b.halt();
            b.build().unwrap()
        };
        let (_, _, t1) = run_to_halt(build(), CoreConfig::with_width(1));
        let (_, _, t8) = run_to_halt(build(), CoreConfig::with_width(8));
        assert!(
            t8 * 2 < t1,
            "8-wide ({t8}) should be much faster than 1-wide ({t1})"
        );
    }

    #[test]
    fn serializing_markers_commit_in_order() {
        let mut b = ProgramBuilder::new("ser");
        b.li(Reg(1), 1);
        b.tsagdone();
        b.li(Reg(2), 2);
        b.halt();
        let (_, env, _) = run_to_halt(b.build().unwrap(), CoreConfig::default());
        assert_eq!(env.sta_log, vec![Inst::TsagDone]);
    }

    #[test]
    fn lw_sign_extends_lbu_zero_extends() {
        let mut b = ProgramBuilder::new("ext");
        let data = b.alloc_u64s(&[0xffff_ffff_ffff_ffff]);
        let out = b.alloc_zeroed_u64s(2);
        b.la(Reg(1), data);
        b.lw(Reg(2), Reg(1), 0); // -1 sign-extended
        b.lbu(Reg(3), Reg(1), 0); // 0xff
        b.la(Reg(4), out);
        b.sd(Reg(2), Reg(4), 0);
        b.sd(Reg(3), Reg(4), 8);
        b.halt();
        let (_, env, _) = run_to_halt(b.build().unwrap(), CoreConfig::default());
        assert_eq!(env.mem.read_u64(out).unwrap(), u64::MAX);
        assert_eq!(env.mem.read_u64(out + 8).unwrap(), 0xff);
    }
}
