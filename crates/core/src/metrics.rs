//! Machine-level result metrics.
//!
//! [`MachineMetrics`] carries exactly the quantities the paper's evaluation
//! plots: execution time, the parallel-region share (Figure 8 / Table 2),
//! L1 demand misses and total traffic (Figure 17), and the wrong-execution
//! accounting behind Figures 9–16.

use wec_common::stats::StatSet;

/// Aggregated L1-data-cache numbers across all thread units.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct L1dAggregate {
    /// Correct-path demand accesses (loads + stores).
    pub demand_accesses: u64,
    /// Correct-path demand misses in the L1 proper.
    pub demand_misses: u64,
    /// Correct-path misses that also missed the side structure and went to
    /// the L2 — the "effective misses" the WEC reduces.
    pub misses_to_next_level: u64,
    /// Wrong-execution accesses (the Figure 17 traffic increase).
    pub wrong_accesses: u64,
    /// L1 misses served by the side structure (WEC/VC/prefetch buffer).
    pub side_hits: u64,
    /// Correct-path hits on blocks fetched by wrong execution.
    pub useful_wrong_fetches: u64,
    /// Correct-path hits on hardware-prefetched blocks.
    pub useful_prefetches: u64,
    /// Hardware prefetches issued.
    pub prefetches_issued: u64,
}

impl L1dAggregate {
    /// Total accesses reaching the L1 data caches (Figure 17 "traffic").
    pub fn traffic(&self) -> u64 {
        self.demand_accesses + self.wrong_accesses
    }

    /// Correct-path demand miss rate.
    pub fn demand_miss_rate(&self) -> f64 {
        if self.demand_accesses == 0 {
            0.0
        } else {
            self.demand_misses as f64 / self.demand_accesses as f64
        }
    }
}

/// Everything a simulation run reports.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MachineMetrics {
    /// Total execution time in cycles.
    pub cycles: u64,
    /// Cycles spent inside parallel regions.
    pub region_cycles: u64,
    /// Instructions committed by sequential execution.
    pub sequential_instructions: u64,
    /// Instructions committed by correct (eventually written-back) threads.
    pub parallel_instructions: u64,
    /// Instructions committed by wrong threads (never written back).
    pub wrong_instructions: u64,
    pub threads_started: u64,
    pub threads_marked_wrong: u64,
    pub threads_killed: u64,
    pub forks: u64,
    pub regions: u64,
    pub l1d: L1dAggregate,
    /// Shared-L2 demand misses (to main memory).
    pub l2_demand_misses: u64,
    pub cond_branches: u64,
    pub mispredicted_branches: u64,
    /// Wrong-execution loads dropped for touching unmapped memory.
    pub wrong_loads_dropped: u64,
    /// Words committed by thread write-back stages.
    pub wb_words: u64,
    /// Final memory checksum (the cross-configuration invariant).
    pub checksum: u64,
}

impl MachineMetrics {
    /// Architecturally meaningful instruction count (Table 2's columns).
    pub fn correct_instructions(&self) -> u64 {
        self.sequential_instructions + self.parallel_instructions
    }

    /// Fraction of correct instructions executed inside parallel regions
    /// (Table 2's "fraction parallelized").
    pub fn fraction_parallelized(&self) -> f64 {
        let total = self.correct_instructions();
        if total == 0 {
            0.0
        } else {
            self.parallel_instructions as f64 / total as f64
        }
    }

    /// Committed correct instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.correct_instructions() as f64 / self.cycles as f64
        }
    }

    /// Branch misprediction rate.
    pub fn mispredict_rate(&self) -> f64 {
        if self.cond_branches == 0 {
            0.0
        } else {
            self.mispredicted_branches as f64 / self.cond_branches as f64
        }
    }

    /// Dump the headline numbers into a [`StatSet`].
    pub fn dump(&self, out: &mut StatSet) {
        out.push("machine.cycles", self.cycles);
        out.push("machine.region_cycles", self.region_cycles);
        out.push(
            "machine.sequential_instructions",
            self.sequential_instructions,
        );
        out.push("machine.parallel_instructions", self.parallel_instructions);
        out.push("machine.wrong_instructions", self.wrong_instructions);
        out.push("machine.threads_started", self.threads_started);
        out.push("machine.threads_marked_wrong", self.threads_marked_wrong);
        out.push("machine.threads_killed", self.threads_killed);
        out.push("machine.forks", self.forks);
        out.push("machine.regions", self.regions);
        out.push("machine.l1d.demand_accesses", self.l1d.demand_accesses);
        out.push("machine.l1d.demand_misses", self.l1d.demand_misses);
        out.push(
            "machine.l1d.misses_to_next_level",
            self.l1d.misses_to_next_level,
        );
        out.push("machine.l1d.wrong_accesses", self.l1d.wrong_accesses);
        out.push("machine.l1d.side_hits", self.l1d.side_hits);
        out.push(
            "machine.l1d.useful_wrong_fetches",
            self.l1d.useful_wrong_fetches,
        );
        out.push("machine.l1d.useful_prefetches", self.l1d.useful_prefetches);
        out.push("machine.l2_demand_misses", self.l2_demand_misses);
        out.push("machine.cond_branches", self.cond_branches);
        out.push("machine.mispredicted_branches", self.mispredicted_branches);
        out.push("machine.wrong_loads_dropped", self.wrong_loads_dropped);
        out.push("machine.wb_words", self.wb_words);
    }
}

/// Field-by-field accessors driving the text (de)serialization below; one
/// entry per field so a missing or extra line is always a parse error.
macro_rules! metrics_fields {
    ($m:ident, $each:ident) => {
        $each!($m, cycles);
        $each!($m, region_cycles);
        $each!($m, sequential_instructions);
        $each!($m, parallel_instructions);
        $each!($m, wrong_instructions);
        $each!($m, threads_started);
        $each!($m, threads_marked_wrong);
        $each!($m, threads_killed);
        $each!($m, forks);
        $each!($m, regions);
        $each!($m, l1d.demand_accesses);
        $each!($m, l1d.demand_misses);
        $each!($m, l1d.misses_to_next_level);
        $each!($m, l1d.wrong_accesses);
        $each!($m, l1d.side_hits);
        $each!($m, l1d.useful_wrong_fetches);
        $each!($m, l1d.useful_prefetches);
        $each!($m, l1d.prefetches_issued);
        $each!($m, l2_demand_misses);
        $each!($m, cond_branches);
        $each!($m, mispredicted_branches);
        $each!($m, wrong_loads_dropped);
        $each!($m, wb_words);
        $each!($m, checksum);
    };
}

impl MachineMetrics {
    /// Serialize as `field value` lines (the golden-file and result-cache
    /// format — human-diffable, no external dependencies).
    pub fn to_kv(&self) -> String {
        let mut out = String::new();
        macro_rules! put {
            ($m:ident, $($field:ident).+) => {
                out.push_str(concat!($(stringify!($field), "."),+));
                out.pop(); // trailing '.' from the concat above
                out.push(' ');
                out.push_str(&$m.$($field).+.to_string());
                out.push('\n');
            };
        }
        let m = self;
        metrics_fields!(m, put);
        out
    }

    /// Parse the [`Self::to_kv`] format.  Every field must be present
    /// exactly once and no unknown keys are allowed, so stale cache or
    /// golden files from an older field set fail loudly instead of
    /// defaulting silently.
    pub fn from_kv(text: &str) -> Result<MachineMetrics, String> {
        let mut map = std::collections::HashMap::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line
                .split_once(' ')
                .ok_or_else(|| format!("malformed metrics line {line:?}"))?;
            let value: u64 = value
                .trim()
                .parse()
                .map_err(|e| format!("bad value in {line:?}: {e}"))?;
            if map.insert(key.to_string(), value).is_some() {
                return Err(format!("duplicate metrics key {key:?}"));
            }
        }
        let mut m = MachineMetrics::default();
        macro_rules! get {
            ($m:ident, $($field:ident).+) => {
                let key = {
                    let mut k = String::from(concat!($(stringify!($field), "."),+));
                    k.pop();
                    k
                };
                $m.$($field).+ = map
                    .remove(key.as_str())
                    .ok_or_else(|| format!("missing metrics key {key:?}"))?;
            };
        }
        metrics_fields!(m, get);
        if let Some(extra) = map.keys().next() {
            return Err(format!("unknown metrics key {extra:?}"));
        }
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_ratios() {
        let m = MachineMetrics {
            cycles: 1000,
            sequential_instructions: 600,
            parallel_instructions: 400,
            cond_branches: 100,
            mispredicted_branches: 5,
            ..Default::default()
        };
        assert_eq!(m.correct_instructions(), 1000);
        assert!((m.fraction_parallelized() - 0.4).abs() < 1e-12);
        assert!((m.ipc() - 1.0).abs() < 1e-12);
        assert!((m.mispredict_rate() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn zero_division_guards() {
        let m = MachineMetrics::default();
        assert_eq!(m.fraction_parallelized(), 0.0);
        assert_eq!(m.ipc(), 0.0);
        assert_eq!(m.mispredict_rate(), 0.0);
        assert_eq!(m.l1d.demand_miss_rate(), 0.0);
    }

    #[test]
    fn kv_roundtrip_is_exact() {
        let m = MachineMetrics {
            cycles: 123,
            region_cycles: 7,
            sequential_instructions: 88,
            parallel_instructions: 11,
            wrong_instructions: 3,
            threads_started: 4,
            forks: 2,
            l1d: L1dAggregate {
                demand_accesses: 1000,
                demand_misses: 50,
                side_hits: 9,
                ..Default::default()
            },
            checksum: u64::MAX,
            ..Default::default()
        };
        let text = m.to_kv();
        assert_eq!(MachineMetrics::from_kv(&text).unwrap(), m);
    }

    #[test]
    fn kv_rejects_missing_extra_and_malformed() {
        let m = MachineMetrics::default();
        let text = m.to_kv();
        let missing = text.lines().skip(1).collect::<Vec<_>>().join("\n");
        assert!(MachineMetrics::from_kv(&missing).is_err());
        let extra = format!("{text}bogus_key 1\n");
        assert!(MachineMetrics::from_kv(&extra).is_err());
        let malformed = format!("{text}nonsense\n");
        assert!(MachineMetrics::from_kv(&malformed).is_err());
        assert!(MachineMetrics::from_kv("cycles notanumber").is_err());
    }

    #[test]
    fn traffic_sums_correct_and_wrong() {
        let l1 = L1dAggregate {
            demand_accesses: 100,
            wrong_accesses: 14,
            ..Default::default()
        };
        assert_eq!(l1.traffic(), 114);
    }
}
