//! The serve daemon binary.
//!
//! ```text
//! wec_serve [--addr HOST:PORT] [--workers N] [--queue-cap N]
//!           [--store DIR | --no-store] [--log-dir DIR]
//!           [--io-timeout-ms N] [--events-timeout-ms N]
//!           [--sample-interval-ms N] [--ring-cap N] [--attribution]
//!           [--speculate] [--spec-fanout N] [--spec-queue-cap N]
//!           [--spec-inflight N] [--spec-ttl-ms N] [--backend-id ID]
//! ```
//!
//! Defaults: `127.0.0.1:8407`, [`wec_bench::runner::default_hosts`]
//! workers (so `WEC_JOBS` caps the daemon too), queue capacity 64, and
//! the shared persistent result store at
//! [`wec_bench::runner::default_disk_dir`] (`WEC_RESULT_CACHE`
//! overridable).  With `--log-dir` the daemon appends every terminal job
//! to `jobs.jsonl`, every answered request to `access.jsonl`, and writes
//! `stats.json` on drain — all validated by `telemetry_check`.  The
//! dashboard sampler snapshots service rates every
//! `--sample-interval-ms` (default 1000; 0 disables) into a ring of
//! `--ring-cap` samples (default 512).  `--attribution` attaches the
//! speculation attribution ledger to replay jobs: their records embed a
//! conservation summary, `GET /jobs/<id>/attribution` serves the full
//! `wec-attribution-v1` document, and `/metrics` aggregates the ledger
//! (`wec_serve_attr_*_total`).  `--speculate` turns on the speculative
//! prefetch subsystem: every demand submission feeds a per-client
//! next-job predictor, predicted sweep points run on idle workers only,
//! and their results park in the warm memo so the demand request that
//! was predicted correctly is answered as an instant, byte-identical
//! `source:"spec"` hit.  `--spec-fanout`/`--spec-queue-cap`/
//! `--spec-inflight`/`--spec-ttl-ms` tune the prediction width, the
//! low-priority queue bound, the idle-worker budget, and how long an
//! unclaimed speculation stays credited before it is reclaimed as waste
//! (they require `--speculate`).  `--backend-id` names this daemon in a
//! sharded cluster (the literal `auto` derives it from the bound
//! address): the id is stamped into `stats.json`, every `jobs.jsonl`
//! record, and `/metrics` (`wec_serve_backend_info`), so a fronting
//! `wec_router` can attribute aggregated scrapes; without the flag all
//! artifacts stay byte-identical to earlier builds.
//! SIGTERM/SIGINT/`POST /shutdown`
//! drain gracefully: in-flight jobs finish, then the process exits 0.

use std::path::PathBuf;
use std::time::Duration;

use wec_serve::server::install_signal_handlers;
use wec_serve::{ServeConfig, Server, SpecConfig};

fn main() {
    let mut addr = "127.0.0.1:8407".to_string();
    let mut cfg = ServeConfig::default();
    let mut speculate = false;
    let mut spec_cfg = SpecConfig::default();
    let mut spec_tuned: Option<&'static str> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |what: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{what} requires a value"))
                .clone()
        };
        match a.as_str() {
            "--addr" => addr = value("--addr"),
            "--workers" => {
                cfg.workers = value("--workers").parse().expect("--workers N");
                assert!(cfg.workers > 0, "--workers must be positive");
            }
            "--queue-cap" => {
                cfg.queue_cap = value("--queue-cap").parse().expect("--queue-cap N");
                assert!(cfg.queue_cap > 0, "--queue-cap must be positive");
            }
            "--store" => cfg.store = Some(PathBuf::from(value("--store"))),
            "--no-store" => cfg.store = None,
            "--log-dir" => cfg.log_dir = Some(PathBuf::from(value("--log-dir"))),
            "--io-timeout-ms" => {
                cfg.io_timeout = Duration::from_millis(
                    value("--io-timeout-ms").parse().expect("--io-timeout-ms N"),
                );
            }
            "--events-timeout-ms" => {
                cfg.events_timeout = Duration::from_millis(
                    value("--events-timeout-ms")
                        .parse()
                        .expect("--events-timeout-ms N"),
                );
            }
            "--sample-interval-ms" => {
                cfg.sample_interval = Duration::from_millis(
                    value("--sample-interval-ms")
                        .parse()
                        .expect("--sample-interval-ms N"),
                );
            }
            "--ring-cap" => {
                cfg.ring_cap = value("--ring-cap").parse().expect("--ring-cap N");
                assert!(cfg.ring_cap > 0, "--ring-cap must be positive");
            }
            "--attribution" => cfg.attribution = true,
            "--backend-id" => {
                let id = value("--backend-id");
                assert!(!id.is_empty(), "--backend-id must be non-empty");
                cfg.backend_id = Some(id);
            }
            "--speculate" => speculate = true,
            "--spec-fanout" => {
                spec_cfg.fanout = value("--spec-fanout").parse().expect("--spec-fanout N");
                assert!(spec_cfg.fanout > 0, "--spec-fanout must be positive");
                spec_tuned = Some("--spec-fanout");
            }
            "--spec-queue-cap" => {
                spec_cfg.queue_cap = value("--spec-queue-cap")
                    .parse()
                    .expect("--spec-queue-cap N");
                assert!(spec_cfg.queue_cap > 0, "--spec-queue-cap must be positive");
                spec_tuned = Some("--spec-queue-cap");
            }
            "--spec-inflight" => {
                spec_cfg.inflight_max = value("--spec-inflight")
                    .parse()
                    .expect("--spec-inflight N");
                assert!(spec_cfg.inflight_max > 0, "--spec-inflight must be positive");
                spec_tuned = Some("--spec-inflight");
            }
            "--spec-ttl-ms" => {
                spec_cfg.ttl = Duration::from_millis(
                    value("--spec-ttl-ms").parse().expect("--spec-ttl-ms N"),
                );
                spec_tuned = Some("--spec-ttl-ms");
            }
            other => panic!("unknown argument {other:?}"),
        }
    }
    if let Some(flag) = spec_tuned {
        assert!(speculate, "{flag} requires --speculate");
    }
    if speculate {
        cfg.spec = Some(spec_cfg);
    }

    install_signal_handlers();
    let server =
        Server::bind(&addr, cfg.clone()).unwrap_or_else(|e| panic!("cannot bind {addr}: {e}"));
    let state = server.state();
    eprintln!(
        "wec-serve listening on {} ({} workers, queue {}, store {}, logs {}, speculation {}, backend {})",
        server
            .local_addr()
            .map(|a| a.to_string())
            .unwrap_or(addr.clone()),
        cfg.workers,
        cfg.queue_cap,
        cfg.store
            .as_ref()
            .map(|d| d.display().to_string())
            .unwrap_or_else(|| "disabled".to_string()),
        cfg.log_dir
            .as_ref()
            .map(|d| d.display().to_string())
            .unwrap_or_else(|| "disabled".to_string()),
        cfg.spec
            .as_ref()
            .map(|s| {
                format!(
                    "fanout {} queue {} inflight {} ttl {}ms",
                    s.fanout,
                    s.queue_cap,
                    s.inflight_max,
                    s.ttl.as_millis()
                )
            })
            .unwrap_or_else(|| "off".to_string()),
        state.backend_id().unwrap_or("-"),
    );
    server
        .run()
        .unwrap_or_else(|e| panic!("serve loop failed: {e}"));
    eprintln!("wec-serve drained: {}", state.stats_json());
}
