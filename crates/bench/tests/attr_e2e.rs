//! Attribution ledger end-to-end invariants.
//!
//! The ledger is an observer: turning it on must leave every metric of
//! the run byte-identical (same cycles, same checksum, same stat set) —
//! the goldens cannot move.  And because the probes ride inside the data
//! path, a full-timing run and a trace replay of that run at the captured
//! configuration must produce byte-identical `wec-attribution-v1`
//! documents.

use wec_bench::tracerun::capture_key;
use wec_telemetry::schema;
use wec_trace::{capture_run, kv_string, replay_slab_with, CaptureMeta, TraceSlab};
use wec_workloads::{run_and_verify, Bench, Scale};

/// Every stat counter of a run, sorted, as one comparable string.
fn full_kv(stats: &wec_common::stats::StatSet) -> String {
    let mut pairs: Vec<(String, u64)> = stats.iter().map(|(k, v)| (k.to_string(), v)).collect();
    pairs.sort();
    kv_string(&pairs)
}

#[test]
fn attribution_on_leaves_the_run_byte_identical() {
    let w = Bench::Mcf.build(Scale::SMOKE);
    let cfg = capture_key().build();
    let off = run_and_verify(&w, cfg.clone()).unwrap();
    let mut cfg_on = cfg;
    cfg_on.attribution = true;
    let on = run_and_verify(&w, cfg_on).unwrap();

    assert_eq!(
        off.cycles, on.cycles,
        "attribution perturbed the cycle count"
    );
    assert_eq!(
        off.checksum, on.checksum,
        "attribution perturbed the checksum"
    );
    assert_eq!(off.metrics, on.metrics, "attribution perturbed the metrics");
    assert_eq!(
        full_kv(&off.stats),
        full_kv(&on.stats),
        "attribution perturbed the stat set"
    );
    assert!(
        off.attribution.is_none(),
        "ledger present with attribution off"
    );

    // The run it did not perturb still yielded a valid, conserving ledger.
    let report = on.attribution.expect("attribution on but no report");
    assert!(report.conserved());
    let check = schema::validate_attribution_json(&report.to_json()).unwrap();
    assert!(
        check.wec_fills > 0,
        "mcf under wth-wp-wec must fill the WEC"
    );
}

#[test]
fn timing_and_replay_ledgers_agree_byte_for_byte() {
    let w = Bench::Mcf.build(Scale::SMOKE);
    let key = capture_key();
    let meta = CaptureMeta {
        bench: w.name.to_string(),
        scale_units: Scale::SMOKE.units,
        cfg_label: key.label(),
    };
    let (_result, trace) = capture_run(&w, key.build(), &meta).unwrap();

    // Full-timing ledger at the captured configuration.
    let mut cfg = key.build();
    cfg.attribution = true;
    let timing = run_and_verify(&w, cfg)
        .unwrap()
        .attribution
        .expect("attribution on but no report");

    // Replay ledger from the captured stream of the same run.
    let slab = TraceSlab::build(&trace, 4).unwrap();
    let replay = replay_slab_with(&slab, &key.build(), true)
        .unwrap()
        .attribution
        .expect("attribution requested but replay returned no report");

    assert_eq!(
        timing.to_json(),
        replay.to_json(),
        "full-timing and replay attribution documents diverge"
    );
}
