//! Sweep the memory-system parameters the paper studies (§5.3) for one
//! benchmark: L1 size, L1 associativity, WEC size.
//!
//! ```text
//! cargo run --release -p wec-examples --bin cache_explorer [bench]
//! ```

use wec_core::config::ProcPreset;
use wec_workloads::{run_and_verify, Bench, Scale};

fn run(bench: Bench, preset: ProcPreset, f: impl Fn(&mut wec_core::MachineConfig)) -> u64 {
    let w = bench.build(Scale::SMOKE);
    let mut cfg = preset.machine(8);
    f(&mut cfg);
    run_and_verify(&w, cfg).expect("run failed").cycles
}

fn main() {
    let filter = std::env::args().nth(1).unwrap_or_else(|| "equake".into());
    let bench = Bench::ALL
        .into_iter()
        .find(|b| b.name().contains(&filter))
        .expect("unknown benchmark");
    println!("sweeping {} on 8 thread units…\n", bench.name());

    println!("L1 data cache size (direct-mapped), orig vs wth-wp-wec:");
    for kb in [4u64, 8, 16, 32] {
        let orig = run(bench, ProcPreset::Orig, |c| {
            c.l1d.capacity_bytes = kb * 1024
        });
        let wec = run(bench, ProcPreset::WthWpWec, |c| {
            c.l1d.capacity_bytes = kb * 1024
        });
        println!(
            "  {kb:>2} KB: orig {orig:>9} cycles   wec {wec:>9} cycles   ({:+.2}%)",
            (orig as f64 / wec as f64 - 1.0) * 100.0
        );
    }

    println!("\nL1 associativity, wth-wp-wec gain over orig:");
    for ways in [1usize, 2, 4] {
        let orig = run(bench, ProcPreset::Orig, |c| c.l1d.ways = ways);
        let wec = run(bench, ProcPreset::WthWpWec, |c| c.l1d.ways = ways);
        println!(
            "  {ways}-way: {:+.2}%  (the WEC matters most for low associativity)",
            (orig as f64 / wec as f64 - 1.0) * 100.0
        );
    }

    println!("\nWEC entries:");
    let orig = run(bench, ProcPreset::Orig, |_| {});
    for entries in [4usize, 8, 16, 32] {
        let wec = run(bench, ProcPreset::WthWpWec, |c| {
            c.l1d.side_entries = entries
        });
        println!(
            "  {entries:>2} entries: {:+.2}% over orig",
            (orig as f64 / wec as f64 - 1.0) * 100.0
        );
    }
}
