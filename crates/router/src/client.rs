//! The outbound HTTP/1.1 client: how the router talks to its backends.
//!
//! Mirrors the inbound framing in [`wec_serve::http`]: one request per
//! connection, `Connection: close`, fixed-length request bodies, and
//! responses read either by `Content-Length`, by chunked
//! transfer-decoding, or to EOF (legal under close semantics).  Every
//! read and write is bounded by the caller's timeout, and every parse
//! failure is an `io::Error` — a misbehaving backend must register as a
//! health failure, never hang or crash a proxy thread.
//!
//! [`relay`] is the exception to "parse everything": the proxied
//! `/jobs/<id>/events` stream is forwarded to the client byte-for-byte —
//! status line, headers, chunk framing and all — so the routed stream is
//! exactly what the backend produced.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Largest response body the client will buffer (matches the serve
/// daemon's request-side cap; `/stats` documents are far smaller).
pub const MAX_RESPONSE_BODY: usize = 8 << 20;

/// One parsed backend response.
#[derive(Debug)]
pub struct Response {
    pub status: u16,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Response {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    pub fn body_utf8(&self) -> Result<&str, String> {
        std::str::from_utf8(&self.body).map_err(|_| "response body is not UTF-8".to_string())
    }
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Connect to `addr` within `timeout`, trying each resolved address.
pub fn connect(addr: &str, timeout: Duration) -> io::Result<TcpStream> {
    let mut last = bad(format!("{addr:?} resolved to no addresses"));
    for sa in addr.to_socket_addrs()? {
        match TcpStream::connect_timeout(&sa, timeout) {
            Ok(s) => {
                s.set_nodelay(true)?;
                s.set_read_timeout(Some(timeout))?;
                s.set_write_timeout(Some(timeout))?;
                return Ok(s);
            }
            Err(e) => last = e,
        }
    }
    Err(last)
}

fn write_request(
    s: &mut TcpStream,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
) -> io::Result<()> {
    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: wec-router\r\nConnection: close\r\n");
    if let Some(b) = body {
        head.push_str(&format!(
            "Content-Type: application/json\r\nContent-Length: {}\r\n",
            b.len()
        ));
    }
    head.push_str("\r\n");
    s.write_all(head.as_bytes())?;
    if let Some(b) = body {
        s.write_all(b)?;
    }
    s.flush()
}

fn read_line<R: BufRead>(r: &mut R, what: &str) -> io::Result<String> {
    let mut line = String::new();
    if r.read_line(&mut line)? == 0 {
        return Err(bad(format!("EOF before {what}")));
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

/// Parse one response off `r` (which must be positioned at the status
/// line).  Public for the e2e tests, which speak to backends directly.
pub fn read_response<R: BufRead>(r: &mut R) -> io::Result<Response> {
    let status_line = read_line(r, "status line")?;
    let mut parts = status_line.split_whitespace();
    let (version, status) = match (parts.next(), parts.next()) {
        (Some(v), Some(s)) => (v, s),
        _ => return Err(bad(format!("malformed status line {status_line:?}"))),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(bad(format!("unsupported version {version:?}")));
    }
    let status: u16 = status
        .parse()
        .map_err(|_| bad(format!("non-numeric status in {status_line:?}")))?;

    let mut headers = Vec::new();
    loop {
        let line = read_line(r, "header line")?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(bad(format!("header without colon {line:?}")));
        };
        headers.push((name.trim().to_string(), value.trim().to_string()));
    }
    let resp = Response {
        status,
        headers,
        body: Vec::new(),
    };

    let chunked = resp
        .header("Transfer-Encoding")
        .map(|v| v.eq_ignore_ascii_case("chunked"))
        .unwrap_or(false);
    let body = if chunked {
        read_chunked(r)?
    } else if let Some(v) = resp.header("Content-Length") {
        let len: usize = v
            .parse()
            .map_err(|_| bad(format!("bad Content-Length {v:?}")))?;
        if len > MAX_RESPONSE_BODY {
            return Err(bad(format!("response body of {len} bytes exceeds cap")));
        }
        let mut body = vec![0u8; len];
        r.read_exact(&mut body)?;
        body
    } else {
        // Connection: close and no framing: the body runs to EOF.
        let mut body = Vec::new();
        r.take(MAX_RESPONSE_BODY as u64 + 1).read_to_end(&mut body)?;
        if body.len() > MAX_RESPONSE_BODY {
            return Err(bad("unframed response body exceeds cap"));
        }
        body
    };
    Ok(Response { body, ..resp })
}

fn read_chunked<R: BufRead>(r: &mut R) -> io::Result<Vec<u8>> {
    let mut out = Vec::new();
    loop {
        let line = read_line(r, "chunk size")?;
        let len = usize::from_str_radix(line.trim(), 16)
            .map_err(|_| bad(format!("bad chunk size {line:?}")))?;
        if out.len() + len > MAX_RESPONSE_BODY {
            return Err(bad("chunked response body exceeds cap"));
        }
        let mut chunk = vec![0u8; len + 2]; // data + trailing CRLF
        r.read_exact(&mut chunk)?;
        if &chunk[len..] != b"\r\n" {
            return Err(bad("chunk not CRLF-terminated"));
        }
        if len == 0 {
            return Ok(out);
        }
        out.extend_from_slice(&chunk[..len]);
    }
}

/// One complete exchange: connect, send, parse the response.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
    timeout: Duration,
) -> io::Result<Response> {
    let mut s = connect(addr, timeout)?;
    write_request(&mut s, method, path, body)?;
    let _ = s.shutdown(std::net::Shutdown::Write);
    read_response(&mut BufReader::new(s))
}

/// Forward `GET path` to `addr` and copy the backend's entire response —
/// status line, headers, body framing — to `w` verbatim, until the
/// backend closes.  Returns the bytes relayed.  The caller must not have
/// written anything to `w`: the backend's response *is* the response.
///
/// `read_timeout` bounds each read (the gap between progress chunks),
/// not the whole stream — the backend's own events deadline bounds that.
pub fn relay<W: Write>(
    addr: &str,
    path: &str,
    w: &mut W,
    connect_timeout: Duration,
    read_timeout: Duration,
) -> io::Result<u64> {
    let mut s = connect(addr, connect_timeout)?;
    write_request(&mut s, "GET", path, None)?;
    s.set_read_timeout(Some(read_timeout))?;
    let mut total = 0u64;
    let mut buf = [0u8; 8192];
    loop {
        match s.read(&mut buf) {
            Ok(0) => return Ok(total),
            Ok(n) => {
                w.write_all(&buf[..n])?;
                w.flush()?;
                total += n as u64;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => {
                // Mid-stream backend failure: the client already has our
                // (i.e. the backend's) status line, so all we can do is
                // close — which, under chunked framing, the client sees
                // as truncation.
                return if total > 0 { Ok(total) } else { Err(e) };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(text: &str) -> io::Result<Response> {
        read_response(&mut Cursor::new(text.as_bytes().to_vec()))
    }

    #[test]
    fn parses_fixed_length_responses() {
        let r = parse("HTTP/1.1 200 OK\r\nContent-Type: application/json\r\ncontent-length: 2\r\n\r\n{}").unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(r.header("Content-Type"), Some("application/json"));
        assert_eq!(r.body, b"{}");
    }

    #[test]
    fn parses_chunked_responses() {
        let r = parse(
            "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n3\r\nabc\r\n2\r\nde\r\n0\r\n\r\n",
        )
        .unwrap();
        assert_eq!(r.body_utf8().unwrap(), "abcde");
    }

    #[test]
    fn unframed_bodies_run_to_eof() {
        let r = parse("HTTP/1.1 503 Service Unavailable\r\nRetry-After: 7\r\n\r\nbusy").unwrap();
        assert_eq!(r.status, 503);
        assert_eq!(r.header("retry-after"), Some("7"));
        assert_eq!(r.body, b"busy");
    }

    #[test]
    fn malformed_responses_are_errors_not_panics() {
        for text in [
            "",
            "garbage\r\n\r\n",
            "HTTP/1.1 abc OK\r\n\r\n",
            "SPDY/3 200 OK\r\n\r\n",
            "HTTP/1.1 200 OK\r\nno colon\r\n\r\n",
            "HTTP/1.1 200 OK\r\nContent-Length: zap\r\n\r\n",
            "HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\nabc",
            "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\n",
            "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n3\r\nabcXY",
        ] {
            assert!(parse(text).is_err(), "{text:?}");
        }
    }
}
