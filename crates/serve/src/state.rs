//! Shared daemon state: the job table, dedup index, warm memo and stats.
//!
//! One [`ServerState`] is shared by the acceptor, every worker and every
//! stat reader.  Three layers keep repeated work from re-simulating:
//!
//! 1. the **in-flight dedup index** — a second `POST /jobs` with the same
//!    (kind, bench, scale, configuration) while the first is still queued
//!    or running lands on the *same* job (one execution, both submitters
//!    poll one id);
//! 2. the **warm memo** — once a job completes, identical submissions are
//!    answered synchronously from memory (`source: "mem"`), which is what
//!    makes the warm-path throughput target cheap;
//! 3. the **persistent result store** — the same on-disk `.kv` store the
//!    `experiments` sweeps use ([`wec_bench::runner::default_disk_dir`]),
//!    so daemon and CLI warm each other across restarts, and a served
//!    result is byte-identical to a direct run's cache entry.
//!
//! Lock ordering: `inflight` may be held while taking a job slot's lock
//! (submission); a slot's lock is never held while taking `inflight`
//! (completion releases the slot first).  Counters that must stay mutually
//! consistent for `GET /stats` live under one mutex, so a snapshot never
//! observes `completed` without its cache-source increment.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use wec_bench::runner::{default_disk_dir, default_hosts};
use wec_bench::Suite;
use wec_telemetry::report::progress_finish_line;
use wec_trace::{Trace, TraceSlab};
use wec_workloads::{Bench, Scale};

use crate::job::{JobAttr, JobRecord, JobSpec, JobState};
use crate::lock;
use crate::metrics::ServeMetrics;
use crate::queue::{JobQueue, PushError};
use crate::ringbuf::{RingBuffer, ServiceSample};

/// Daemon configuration (flags of the `wec_serve` binary).
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Simulation worker threads.
    pub workers: usize,
    /// Queue capacity; a full queue answers `503` + `Retry-After`.
    pub queue_cap: usize,
    /// Persistent result store directory (`None` = in-memory only).
    pub store: Option<PathBuf>,
    /// Where to write `jobs.jsonl` + `access.jsonl` (live) and
    /// `stats.json` (at drain).
    pub log_dir: Option<PathBuf>,
    /// Socket read/write timeout per request.
    pub io_timeout: Duration,
    /// Upper bound on one `/jobs/<id>/events` stream's lifetime.
    pub events_timeout: Duration,
    /// Ring-buffer sampling interval (zero disables the sampler thread).
    pub sample_interval: Duration,
    /// Ring-buffer capacity (retained history = `ring_cap` samples).
    pub ring_cap: usize,
    /// Attach the speculation attribution ledger to replay jobs.  Such
    /// jobs always replay cold (ledgers are not memoized on disk), embed
    /// their conservation summary in the job record, and serve the full
    /// `wec-attribution-v1` document at `GET /jobs/<id>/attribution`.
    pub attribution: bool,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: default_hosts(),
            queue_cap: 64,
            store: Some(default_disk_dir()),
            log_dir: None,
            io_timeout: Duration::from_secs(10),
            events_timeout: Duration::from_secs(600),
            sample_interval: Duration::from_secs(1),
            ring_cap: 512,
            attribution: false,
        }
    }
}

/// One job's shared slot: its record, its progress-event lines, and (until
/// a worker claims it) its spec.  The condvar is notified on every change.
#[derive(Debug)]
pub struct JobSlot {
    pub inner: Mutex<JobInner>,
    pub cv: Condvar,
}

#[derive(Debug)]
pub struct JobInner {
    pub record: JobRecord,
    /// `progress.jsonl`-schema lines, streamed by `/jobs/<id>/events`.
    pub events: Vec<String>,
    /// Taken by the executing worker.
    pub spec: Option<JobSpec>,
}

impl JobSlot {
    fn new(record: JobRecord, events: Vec<String>, spec: Option<JobSpec>) -> Arc<JobSlot> {
        Arc::new(JobSlot {
            inner: Mutex::new(JobInner {
                record,
                events,
                spec,
            }),
            cv: Condvar::new(),
        })
    }

    /// Append one progress line and wake streamers.
    pub fn push_event(&self, line: String) {
        lock(&self.inner).events.push(line);
        self.cv.notify_all();
    }

    /// A point-in-time copy of the record.
    pub fn record(&self) -> JobRecord {
        lock(&self.inner).record.clone()
    }

    /// Block until the job reaches a terminal state (true) or `timeout`
    /// elapses (false).
    pub fn wait_terminal(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut g = lock(&self.inner);
        loop {
            if g.record.state.terminal() {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = self
                .cv
                .wait_timeout(g, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            g = guard;
        }
    }
}

/// A completed result, kept for warm (`mem`) answers.
struct MemoEntry {
    metrics: Arc<Vec<(String, u64)>>,
    sim_cycles: u64,
    attr: Option<Arc<JobAttr>>,
}

/// How a worker resolved a job.
pub struct Outcome {
    /// `"cold"` / `"disk"` / `"mem"` — [`wec_bench::CacheSource`] names.
    pub source: &'static str,
    pub metrics: Arc<Vec<(String, u64)>>,
    pub sim_cycles: u64,
    pub dur_ms: u64,
    /// Speculation attribution ledger (attribution-enabled replay jobs).
    pub attr: Option<Arc<JobAttr>>,
}

/// Why a submission was refused (both answer `503`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SubmitError {
    QueueFull,
    Draining,
}

/// Counters that must stay mutually consistent under one lock (the
/// `wec-serve-stats-v1` invariants, e.g. cache sources summing to
/// `completed`, are checked by CI against live snapshots).
#[derive(Default)]
struct Counts {
    submitted: u64,
    deduped: u64,
    completed: u64,
    failed: u64,
    rejected: u64,
    cold: u64,
    disk_hits: u64,
    mem_hits: u64,
    /// Simulated cycles across completed jobs (feeds kcycles/s sampling).
    sim_cycles: u64,
    /// Speculation-ledger aggregates across attribution-enabled jobs
    /// (warm answers re-count, exactly like `sim_cycles`).
    attr_fills: u64,
    attr_useful: u64,
    attr_wasted: u64,
    attr_victim_rescued: u64,
    attr_still_resident: u64,
}

impl Counts {
    fn add_attr(&mut self, a: &JobAttr) {
        self.attr_fills += a.wec_fills;
        self.attr_useful += a.useful;
        self.attr_wasted += a.wasted;
        self.attr_victim_rescued += a.victim_rescued;
        self.attr_still_resident += a.still_resident;
    }
}

/// A point-in-time copy of everything `GET /stats`, `GET /metrics` and the
/// sampler report.  All job counters are read under the single `counts`
/// mutex, so the source split always sums to `completed` — the exposition
/// and the stats document reconcile exactly because they render the *same*
/// snapshot type.
#[derive(Clone, Copy, Debug)]
pub struct StatsSnapshot {
    /// Milliseconds since daemon start, clamped to ≥ 1 (rate denominators).
    pub uptime_ms: u64,
    pub workers: u64,
    pub busy: u64,
    pub busy_ms: u64,
    pub draining: bool,
    pub queue_depth: u64,
    pub queue_cap: u64,
    pub outstanding: u64,
    pub submitted: u64,
    pub deduped: u64,
    pub completed: u64,
    pub failed: u64,
    pub rejected: u64,
    pub cold: u64,
    pub disk_hits: u64,
    pub mem_hits: u64,
    pub sim_cycles: u64,
    pub attr_fills: u64,
    pub attr_useful: u64,
    pub attr_wasted: u64,
    pub attr_victim_rescued: u64,
    pub attr_still_resident: u64,
}

/// Everything the acceptor, workers and stat readers share.
pub struct ServerState {
    pub cfg: ServeConfig,
    pub queue: JobQueue,
    /// Set by `POST /shutdown` or SIGTERM; refuses new jobs, drains.
    pub draining: AtomicBool,
    t0: Instant,
    next_id: AtomicU64,
    jobs: Mutex<HashMap<u64, Arc<JobSlot>>>,
    /// Dedup key → live job id.
    inflight: Mutex<HashMap<String, u64>>,
    memo: Mutex<HashMap<String, Arc<MemoEntry>>>,
    /// Built workload suites, one per (bench, scale) ever requested.
    suites: Mutex<HashMap<(&'static str, u32), Arc<Suite>>>,
    /// Decoded capture traces, one slab per path ever requested — replay
    /// jobs for the same trace share one decode and merge.
    traces: Mutex<HashMap<PathBuf, Arc<TraceSlab>>>,
    counts: Mutex<Counts>,
    /// Jobs accepted into the queue and not yet terminal (drain barrier).
    outstanding: AtomicU64,
    /// Workers currently executing a job (stats gauge).
    pub busy: AtomicU64,
    /// Total worker-occupied milliseconds (utilization numerator).
    pub busy_ms: AtomicU64,
    jobs_log: Mutex<Option<std::fs::File>>,
    access_log: Mutex<Option<std::fs::File>>,
    /// HTTP request/latency counters and job-duration histograms.
    pub metrics: ServeMetrics,
    /// The sampler's time-series (the dashboard's sparklines).
    pub samples: RingBuffer<ServiceSample>,
    /// Tells the sampler thread to exit during drain.
    pub sampler_stop: AtomicBool,
}

impl ServerState {
    pub fn new(cfg: ServeConfig) -> std::io::Result<Arc<ServerState>> {
        let (jobs_log, access_log) = match &cfg.log_dir {
            None => (None, None),
            Some(dir) => {
                std::fs::create_dir_all(dir)?;
                let open = |name: &str| {
                    std::fs::OpenOptions::new()
                        .create(true)
                        .append(true)
                        .open(dir.join(name))
                };
                (Some(open("jobs.jsonl")?), Some(open("access.jsonl")?))
            }
        };
        let queue = JobQueue::new(cfg.queue_cap);
        let ring_cap = cfg.ring_cap;
        Ok(Arc::new(ServerState {
            cfg,
            queue,
            draining: AtomicBool::new(false),
            t0: Instant::now(),
            next_id: AtomicU64::new(1),
            jobs: Mutex::new(HashMap::new()),
            inflight: Mutex::new(HashMap::new()),
            memo: Mutex::new(HashMap::new()),
            suites: Mutex::new(HashMap::new()),
            traces: Mutex::new(HashMap::new()),
            counts: Mutex::new(Counts::default()),
            outstanding: AtomicU64::new(0),
            busy: AtomicU64::new(0),
            busy_ms: AtomicU64::new(0),
            jobs_log: Mutex::new(jobs_log),
            access_log: Mutex::new(access_log),
            metrics: ServeMetrics::new(),
            samples: RingBuffer::new(ring_cap),
            sampler_stop: AtomicBool::new(false),
        }))
    }

    /// Milliseconds since daemon start — the time base of every record
    /// field and progress line (one monotonic clock, so every stream is
    /// time-ordered).
    pub fn now_ms(&self) -> u64 {
        self.t0.elapsed().as_millis() as u64
    }

    pub fn job(&self, id: u64) -> Option<Arc<JobSlot>> {
        lock(&self.jobs).get(&id).cloned()
    }

    /// Jobs accepted and not yet terminal (the drain barrier: the queue
    /// depth alone misses jobs popped but not yet finished).
    pub fn outstanding(&self) -> u64 {
        self.outstanding.load(Ordering::SeqCst)
    }

    /// Submit one job.  Returns the (possibly shared) slot; the caller
    /// renders its record.
    pub fn submit(&self, spec: JobSpec) -> Result<Arc<JobSlot>, SubmitError> {
        if self.draining.load(Ordering::SeqCst) {
            return Err(SubmitError::Draining);
        }
        let key = spec.dedup_key();
        let now = self.now_ms();
        // The index lock is held across the whole decision so two racing
        // identical submissions cannot both miss it and double-execute.
        let mut inflight = lock(&self.inflight);
        if let Some(slot) = inflight.get(&key).and_then(|id| self.job(*id)) {
            let mut g = lock(&slot.inner);
            g.record.submissions += 1;
            drop(g);
            let mut c = lock(&self.counts);
            c.submitted += 1;
            c.deduped += 1;
            return Ok(slot.clone());
        }
        if let Some(entry) = lock(&self.memo).get(&key).cloned() {
            // Warm hit: answer synchronously with a terminal record.
            let id = self.next_id.fetch_add(1, Ordering::SeqCst);
            let mut record = JobRecord::new(id, &spec, now);
            record.state = JobState::Done;
            record.source = "mem";
            record.start_t_ms = now;
            record.finish_t_ms = now;
            record.sim_cycles = entry.sim_cycles;
            record.metrics = entry.metrics.clone();
            record.attr = entry.attr.clone();
            let line = progress_finish_line(
                now,
                &record.bench,
                &record.cfg,
                0,
                "mem",
                0,
                entry.sim_cycles,
            );
            let slot = JobSlot::new(record.clone(), vec![line], None);
            lock(&self.jobs).insert(id, slot.clone());
            {
                let mut c = lock(&self.counts);
                c.submitted += 1;
                c.completed += 1;
                c.mem_hits += 1;
                c.sim_cycles += entry.sim_cycles;
                if let Some(a) = &entry.attr {
                    c.add_attr(a);
                }
            }
            self.metrics.observe_job("mem", 0);
            self.log_record(&record);
            return Ok(slot);
        }
        // Cold path: queue for a worker.
        let id = self.next_id.fetch_add(1, Ordering::SeqCst);
        let record = JobRecord::new(id, &spec, now);
        let slot = JobSlot::new(record, Vec::new(), Some(spec));
        lock(&self.jobs).insert(id, slot.clone());
        self.outstanding.fetch_add(1, Ordering::SeqCst);
        match self.queue.push(id) {
            Ok(_) => {
                inflight.insert(key, id);
                lock(&self.counts).submitted += 1;
                Ok(slot)
            }
            Err(e) => {
                self.outstanding.fetch_sub(1, Ordering::SeqCst);
                lock(&self.jobs).remove(&id);
                lock(&self.counts).rejected += 1;
                Err(match e {
                    PushError::Full => SubmitError::QueueFull,
                    PushError::Closed => SubmitError::Draining,
                })
            }
        }
    }

    /// Record a job's terminal outcome: fill the record, publish the memo,
    /// release the dedup entry, count it, log it, wake every waiter.
    pub fn complete(&self, slot: &Arc<JobSlot>, dedup_key: &str, res: Result<Outcome, String>) {
        let now = self.now_ms();
        let record = {
            let mut g = lock(&slot.inner);
            g.record.finish_t_ms = now;
            match &res {
                Ok(o) => {
                    g.record.state = JobState::Done;
                    g.record.source = o.source;
                    g.record.dur_ms = o.dur_ms;
                    g.record.sim_cycles = o.sim_cycles;
                    g.record.metrics = o.metrics.clone();
                    g.record.attr = o.attr.clone();
                }
                Err(e) => {
                    g.record.state = JobState::Failed;
                    g.record.error = e.clone();
                }
            }
            g.record.clone()
        };
        if let Ok(o) = &res {
            // Memo before dedup release: a racing submission sees either
            // the in-flight entry or the memo, never neither.
            lock(&self.memo).insert(
                dedup_key.to_string(),
                Arc::new(MemoEntry {
                    metrics: o.metrics.clone(),
                    sim_cycles: o.sim_cycles,
                    attr: o.attr.clone(),
                }),
            );
        }
        lock(&self.inflight).remove(dedup_key);
        {
            let mut c = lock(&self.counts);
            match &res {
                Ok(o) => {
                    c.completed += 1;
                    c.sim_cycles += o.sim_cycles;
                    if let Some(a) = &o.attr {
                        c.add_attr(a);
                    }
                    match o.source {
                        "disk" => c.disk_hits += 1,
                        "mem" => c.mem_hits += 1,
                        _ => c.cold += 1,
                    }
                }
                Err(_) => c.failed += 1,
            }
        }
        if let Ok(o) = &res {
            self.metrics.observe_job(o.source, o.dur_ms);
        }
        self.outstanding.fetch_sub(1, Ordering::SeqCst);
        self.log_record(&record);
        slot.cv.notify_all();
    }

    /// The built suite for one (bench, scale) — a single-workload suite,
    /// so the runner's store filenames match a direct `experiments` run
    /// of the same point byte for byte.
    pub fn suite_for(&self, bench: Bench, scale: Scale) -> Arc<Suite> {
        let mut g = lock(&self.suites);
        g.entry((bench.name(), scale.units))
            .or_insert_with(|| {
                Arc::new(Suite {
                    scale,
                    workloads: vec![bench.build(scale)],
                })
            })
            .clone()
    }

    /// The decoded slab for the trace at `path`, revision-checked against
    /// this binary.  Decoded once (block decode fanned over the worker
    /// count) and shared by every replay job that names the same path.
    pub fn trace_for(&self, path: &Path) -> Result<Arc<TraceSlab>, String> {
        if let Some(t) = lock(&self.traces).get(path) {
            return Ok(t.clone());
        }
        let trace =
            Trace::read_from(path).map_err(|e| format!("cannot load {}: {e}", path.display()))?;
        if trace.header.sim_revision != wec_core::SIM_REVISION {
            return Err(format!(
                "{}: captured at simulator revision {} but this daemon is revision {} — recapture",
                path.display(),
                trace.header.sim_revision,
                wec_core::SIM_REVISION
            ));
        }
        let slab = Arc::new(
            TraceSlab::build(&trace, self.cfg.workers.max(1))
                .map_err(|e| format!("cannot decode {}: {e}", path.display()))?,
        );
        lock(&self.traces).insert(path.to_path_buf(), slab.clone());
        Ok(slab)
    }

    /// Append one terminal record to `jobs.jsonl` (no-op without a log
    /// directory).
    fn log_record(&self, record: &JobRecord) {
        let mut g = lock(&self.jobs_log);
        if let Some(f) = g.as_mut() {
            let _ = writeln!(f, "{}", record.to_json());
        }
    }

    /// Append one `wec-access-log-v1` line to `access.jsonl` (no-op without
    /// a log directory).  `path` has already been folded to a bounded
    /// endpoint label upstream only for metrics — the log keeps the real
    /// path, JSON-escaped, for per-request forensics.
    pub fn log_access(&self, method: &str, path: &str, status: u16, dur_us: u64, bytes: u64) {
        let mut g = lock(&self.access_log);
        if let Some(f) = g.as_mut() {
            let mut line = String::with_capacity(128);
            let _ = write!(line, "{{\"t_ms\":{},\"method\":", self.now_ms());
            wec_telemetry::json::escape_into(&mut line, method);
            line.push_str(",\"path\":");
            wec_telemetry::json::escape_into(&mut line, path);
            let _ = write!(
                line,
                ",\"status\":{status},\"dur_us\":{dur_us},\"bytes\":{bytes}}}"
            );
            let _ = writeln!(f, "{line}");
        }
    }

    /// A consistent point-in-time snapshot (see [`StatsSnapshot`]).
    pub fn snapshot(&self) -> StatsSnapshot {
        let workers = self.cfg.workers.max(1) as u64;
        let c = lock(&self.counts);
        StatsSnapshot {
            uptime_ms: self.now_ms().max(1),
            workers,
            busy: self.busy.load(Ordering::SeqCst).min(workers),
            busy_ms: self.busy_ms.load(Ordering::SeqCst),
            draining: self.draining.load(Ordering::SeqCst),
            queue_depth: self.queue.depth().min(self.queue.cap()) as u64,
            queue_cap: self.queue.cap() as u64,
            outstanding: self.outstanding.load(Ordering::SeqCst),
            submitted: c.submitted,
            deduped: c.deduped,
            completed: c.completed,
            failed: c.failed,
            rejected: c.rejected,
            cold: c.cold,
            disk_hits: c.disk_hits,
            mem_hits: c.mem_hits,
            sim_cycles: c.sim_cycles,
            attr_fills: c.attr_fills,
            attr_useful: c.attr_useful,
            attr_wasted: c.attr_wasted,
            attr_victim_rescued: c.attr_victim_rescued,
            attr_still_resident: c.attr_still_resident,
        }
    }

    /// The `wec-serve-stats-v1` document (`GET /stats` and `stats.json`).
    pub fn stats_json(&self) -> String {
        render_stats_json(&self.snapshot())
    }

    /// The most recently submitted job records, newest first (the
    /// dashboard's drill-down table).
    pub fn recent_jobs(&self, n: usize) -> Vec<JobRecord> {
        let jobs = lock(&self.jobs);
        let mut records: Vec<JobRecord> = jobs.values().map(|s| s.record()).collect();
        drop(jobs);
        records.sort_unstable_by_key(|r| std::cmp::Reverse(r.id));
        records.truncate(n);
        records
    }

    /// Drain-time artifacts: `stats.json` beside the live `jobs.jsonl` and
    /// `access.jsonl`.
    pub fn write_exit_logs(&self) {
        if let Some(dir) = &self.cfg.log_dir {
            wec_bench::store::atomic_write_best_effort(&dir.join("stats.json"), &self.stats_json());
            if let Some(f) = lock(&self.jobs_log).as_mut() {
                let _ = f.flush();
            }
            if let Some(f) = lock(&self.access_log).as_mut() {
                let _ = f.flush();
            }
        }
    }
}

/// Render one snapshot as the `wec-serve-stats-v1` document.  Shared by
/// `GET /stats`, the drain-time `stats.json` and the `stats` element of
/// `GET /dashboard/data`, so all three are the same bytes for the same
/// snapshot.
pub fn render_stats_json(s: &StatsSnapshot) -> String {
    let jobs_per_sec = s.completed as f64 / (s.uptime_ms as f64 / 1000.0);
    let utilization = (s.busy_ms as f64 / (s.uptime_ms * s.workers) as f64).clamp(0.0, 1.0);
    let mut out = String::from("{\"schema\":\"wec-serve-stats-v1\"");
    let _ = write!(
        out,
        ",\"uptime_ms\":{},\"workers\":{},\"busy_workers\":{},\"draining\":{}",
        s.uptime_ms, s.workers, s.busy, s.draining
    );
    let _ = write!(
        out,
        ",\"queue\":{{\"depth\":{},\"cap\":{},\"rejected\":{}}}",
        s.queue_depth, s.queue_cap, s.rejected
    );
    let _ = write!(
        out,
        ",\"jobs\":{{\"submitted\":{},\"deduped\":{},\"completed\":{},\"failed\":{}}}",
        s.submitted, s.deduped, s.completed, s.failed
    );
    let _ = write!(
        out,
        ",\"cache\":{{\"cold\":{},\"disk_hits\":{},\"mem_hits\":{}}}",
        s.cold, s.disk_hits, s.mem_hits
    );
    let _ = write!(
        out,
        ",\"throughput\":{{\"jobs_per_sec\":{jobs_per_sec:.3},\"utilization\":{utilization:.4}}}}}"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wec_telemetry::schema;

    fn state() -> Arc<ServerState> {
        ServerState::new(ServeConfig {
            workers: 2,
            queue_cap: 2,
            store: None,
            log_dir: None,
            ..ServeConfig::default()
        })
        .unwrap()
    }

    fn spec(body: &str) -> JobSpec {
        JobSpec::parse(body).unwrap()
    }

    #[test]
    fn identical_submissions_share_one_job() {
        let s = state();
        let a = s.submit(spec("{\"bench\": \"181.mcf\"}")).unwrap();
        let b = s.submit(spec("{\"bench\": \"181.mcf\"}")).unwrap();
        assert_eq!(a.record().id, b.record().id);
        assert_eq!(b.record().submissions, 2);
        assert_eq!(s.queue.depth(), 1, "one execution queued");
        // A different configuration is its own job.
        let c = s
            .submit(spec(
                "{\"bench\": \"181.mcf\", \"cfg\": {\"side_entries\": 16}}",
            ))
            .unwrap();
        assert_ne!(a.record().id, c.record().id);
    }

    #[test]
    fn full_queue_rejects_and_draining_refuses() {
        let s = state();
        s.submit(spec("{\"bench\": \"181.mcf\"}")).unwrap();
        s.submit(spec("{\"bench\": \"164.gzip\"}")).unwrap();
        let err = s.submit(spec("{\"bench\": \"175.vpr\"}")).unwrap_err();
        assert_eq!(err, SubmitError::QueueFull);
        s.draining.store(true, Ordering::SeqCst);
        let err = s.submit(spec("{\"bench\": \"177.mesa\"}")).unwrap_err();
        assert_eq!(err, SubmitError::Draining);
        assert_eq!(s.outstanding(), 2);
    }

    #[test]
    fn completion_publishes_memo_and_serves_warm_hits() {
        let s = state();
        let spec1 = spec("{\"bench\": \"181.mcf\"}");
        let key = spec1.dedup_key();
        let slot = s.submit(spec1).unwrap();
        assert_eq!(s.queue.pop(), Some(slot.record().id));
        let metrics = Arc::new(vec![("cycles".to_string(), 42u64)]);
        s.complete(
            &slot,
            &key,
            Ok(Outcome {
                source: "cold",
                metrics: metrics.clone(),
                sim_cycles: 42,
                dur_ms: 7,
                attr: None,
            }),
        );
        assert!(slot.wait_terminal(Duration::from_secs(1)));
        assert_eq!(slot.record().state, JobState::Done);
        assert_eq!(s.outstanding(), 0);

        // Same spec again: answered from the memo, no queueing.
        let warm = s.submit(spec("{\"bench\": \"181.mcf\"}")).unwrap();
        let rec = warm.record();
        assert_eq!(rec.state, JobState::Done);
        assert_eq!(rec.source, "mem");
        assert_eq!(rec.metrics, metrics);
        assert_eq!(s.queue.depth(), 0);
        schema::validate_serve_stats_json(&s.stats_json()).unwrap();
    }

    #[test]
    fn failures_release_the_dedup_entry_without_memoizing() {
        let s = state();
        let spec1 = spec("{\"bench\": \"181.mcf\"}");
        let key = spec1.dedup_key();
        let slot = s.submit(spec1).unwrap();
        s.queue.pop().unwrap();
        s.complete(&slot, &key, Err("induced failure".to_string()));
        let rec = slot.record();
        assert_eq!(rec.state, JobState::Failed);
        assert_eq!(rec.error, "induced failure");
        // Resubmission runs fresh — not deduped onto the failure, not warm.
        let again = s.submit(spec("{\"bench\": \"181.mcf\"}")).unwrap();
        assert_ne!(again.record().id, rec.id);
        assert_eq!(again.record().state, JobState::Queued);
        schema::validate_serve_stats_json(&s.stats_json()).unwrap();
    }

    #[test]
    fn snapshot_reconciles_sources_and_accumulates_cycles() {
        let s = state();
        let spec1 = spec("{\"bench\": \"181.mcf\"}");
        let key = spec1.dedup_key();
        let slot = s.submit(spec1).unwrap();
        s.queue.pop().unwrap();
        s.complete(
            &slot,
            &key,
            Ok(Outcome {
                source: "cold",
                metrics: Arc::new(vec![("cycles".to_string(), 42u64)]),
                sim_cycles: 42,
                dur_ms: 7,
                attr: None,
            }),
        );
        // Warm hit accumulates the memoized cycle count too.
        s.submit(spec("{\"bench\": \"181.mcf\"}")).unwrap();
        let snap = s.snapshot();
        assert_eq!(snap.cold + snap.disk_hits + snap.mem_hits, snap.completed);
        assert_eq!(snap.completed, 2);
        assert_eq!(snap.sim_cycles, 84);
        schema::validate_serve_stats_json(&render_stats_json(&snap)).unwrap();
        // The exposition's job counters come from the same snapshot type.
        let page = s.metrics.render_prometheus(&snap);
        assert!(page.contains("wec_serve_jobs_completed_total{source=\"cold\"} 1"));
        assert!(page.contains("wec_serve_jobs_completed_total{source=\"mem\"} 1"));
        assert!(page.contains("wec_serve_sim_cycles_total 84"));
    }
}
