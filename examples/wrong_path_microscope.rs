//! A microscope on wrong-path prefetching (paper §3.1.1, Figure 3).
//!
//! Builds a minimal pointer-chase kernel whose segment-end branches
//! mispredict systematically, then runs it under `orig`, `wp` and
//! `wth-wp-wec` so you can watch the squashed-but-ready loads flow through
//! the wrong-path engine and turn later misses into WEC hits.
//!
//! ```text
//! cargo run --release -p wec-examples --bin wrong_path_microscope
//! ```

use wec_common::SplitMix64;
use wec_core::config::ProcPreset;
use wec_core::machine::Machine;
use wec_isa::reg::Reg;
use wec_isa::ProgramBuilder;

fn main() {
    // A scattered single-cycle permutation, pre-scaled to byte offsets.
    const N: usize = 4096;
    let mut rng = SplitMix64::new(42);
    let mut order: Vec<u64> = (0..N as u64).collect();
    rng.shuffle(&mut order);
    let mut perm = vec![0u64; N];
    for k in 0..N {
        perm[order[k] as usize] = order[(k + 1) % N] * 8;
    }

    let mut b = ProgramBuilder::new("microscope");
    let perm_base = b.alloc_u64s(&perm);
    let out = b.alloc_zeroed_u64s(1);
    let (permr, p, acc, steps, t) = (Reg(16), Reg(1), Reg(2), Reg(3), Reg(4));
    b.la(permr, perm_base);
    b.li(p, 0);
    b.li(acc, 0);
    b.li(steps, 20_000);
    b.label("step");
    b.add(t, permr, p);
    b.ld(t, t, 0); // next (scaled)
    b.xor(acc, acc, t);
    b.mv(p, t);
    b.addi(steps, steps, -1);
    b.beq(steps, Reg::ZERO, "end");
    // Segment end every ~8 nodes: the predictor saturates "continue", so
    // every segment end mispredicts — and the wrong path's next chase load
    // has a ready address.
    b.andi(t, t, 56);
    b.bne(t, Reg::ZERO, "step");
    // Bookkeeping the resume address depends on.
    b.alui(wec_isa::inst::AluOp::Mul, acc, acc, 37);
    b.addi(acc, acc, 7);
    b.and(t, acc, Reg::ZERO);
    b.or(p, p, t);
    b.j("step");
    b.label("end");
    b.la(t, out);
    b.sd(acc, t, 0);
    b.halt();
    let prog = b.build().unwrap();

    println!(
        "{:12} {:>9} {:>9} {:>9} {:>10} {:>10} {:>9}",
        "config", "cycles", "L1 miss", "to L2", "wrong lds", "useful", "speedup"
    );
    let mut baseline = 0u64;
    let mut result = None;
    for preset in [ProcPreset::Orig, ProcPreset::Wp, ProcPreset::WthWpWec] {
        let mut m = Machine::new(preset.machine(1), &prog).unwrap();
        let r = m.run().unwrap();
        let got = m.memory().read_u64(out).unwrap();
        match result {
            None => result = Some(got),
            Some(want) => assert_eq!(got, want, "semantics diverged!"),
        }
        if baseline == 0 {
            baseline = r.cycles;
        }
        println!(
            "{:12} {:>9} {:>9} {:>9} {:>10} {:>10} {:>8.2}%",
            preset.name(),
            r.cycles,
            r.metrics.l1d.demand_misses,
            r.metrics.l1d.misses_to_next_level,
            r.metrics.l1d.wrong_accesses,
            r.metrics.l1d.useful_wrong_fetches,
            (baseline as f64 / r.cycles as f64 - 1.0) * 100.0,
        );
    }
    println!("\nall three configurations computed the same checksum — only timing changed");
}
