//! Validate a telemetry artifact directory against the crate schemas.
//!
//! ```text
//! telemetry_check DIR [--require kind]... [--require-attribution]
//!                 [--require-spec]
//! ```
//!
//! `DIR` is what a telemetry-mode `experiments` run wrote for one workload
//! (e.g. `target/wec-telemetry/181_mcf`) — or an `--run-out` directory from
//! a table-mode sweep.  Every artifact present is validated —
//! `events.jsonl` and `commits.jsonl` against the event schema with
//! non-decreasing cycle stamps, `timeseries.csv` against the sampler column
//! set, `histograms.json` for bucket/count consistency,
//! `trace.perfetto.json` as Chrome trace-event JSON, `profile.json` against
//! the cycle-loop profiler schema, `progress.jsonl`/`run.json` against
//! the sweep observability schemas, `jobs.jsonl`/`stats.json` against the
//! serve daemon's `wec-job-record-v1` / `wec-serve-stats-v1` schemas (a
//! `--speculate` daemon writes the `wec-serve-stats-v2` superset),
//! `router.json` against the sharding tier's `wec-router-stats-v1`
//! schema (which enforces that every cluster total equals the sum over
//! the embedded backend ledgers),
//! `access.jsonl` against `wec-access-log-v1`, `dashboard.json` (a saved
//! `GET /dashboard/data` payload) against `wec-dashboard-data-v1`, and
//! every `*.wectrace` capture (from `experiments --capture-trace`) by fully
//! decoding it and verifying its file, block, and content checksums.
//! Attribution ledgers — `attribution.json` from a telemetry-mode
//! `--attribution` run, and the `*.attr.json` documents a replay sweep's
//! golden check writes — are validated against `wec-attribution-v1`,
//! which enforces the conservation invariant (`useful + wasted +
//! victim_rescued + still_resident == wec_fills`) per TU and globally.
//! Each `--require kind` additionally asserts that the event trace
//! contains at least one event of that kind (e.g. `--require wec_fill
//! --require wec_hit`); `--require-attribution` asserts that at least
//! one valid ledger document was found; `--require-spec` asserts that
//! `stats.json` is the `wec-serve-stats-v2` document of a `--speculate`
//! server and that its conserved speculation ledger started at least one
//! prefetch.
//!
//! Exit codes: `0` all artifacts present validated, `1` any validation
//! failed or no artifact was found (a `--require` with no valid
//! `events.jsonl` also fails).

use std::path::Path;
use std::process::ExitCode;

use wec_telemetry::schema;

fn read(dir: &Path, name: &str) -> Option<String> {
    let path = dir.join(name);
    if !path.exists() {
        return None;
    }
    match std::fs::read_to_string(&path) {
        Ok(text) => Some(text),
        Err(e) => {
            eprintln!("FAIL {}: unreadable: {e}", path.display());
            std::process::exit(1);
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut dir: Option<String> = None;
    let mut required: Vec<String> = Vec::new();
    let mut require_attribution = false;
    let mut require_spec = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--require" => required.push(it.next().expect("--require kind").clone()),
            "--require-attribution" => require_attribution = true,
            "--require-spec" => require_spec = true,
            other if dir.is_none() => dir = Some(other.to_string()),
            other => panic!("unexpected argument {other:?}"),
        }
    }
    let dir_s = dir.expect("usage: telemetry_check DIR [--require kind]...");
    let dir = Path::new(&dir_s);
    let mut failures = 0u32;
    let mut validated = 0u32;

    let events = read(dir, "events.jsonl");
    let mut report = None;
    if let Some(text) = &events {
        match schema::validate_events_jsonl(text) {
            Ok(r) => {
                println!(
                    "ok  events.jsonl: {} events, {} kinds",
                    r.total,
                    r.counts.len()
                );
                report = Some(r);
                validated += 1;
            }
            Err(e) => {
                eprintln!("FAIL events.jsonl: {e}");
                failures += 1;
            }
        }
    }
    if let Some(text) = read(dir, "commits.jsonl") {
        match schema::validate_events_jsonl(&text) {
            Ok(r) => {
                println!("ok  commits.jsonl: {} commit records", r.total);
                validated += 1;
            }
            Err(e) => {
                eprintln!("FAIL commits.jsonl: {e}");
                failures += 1;
            }
        }
    }
    if let Some(text) = read(dir, "timeseries.csv") {
        match schema::validate_timeseries_csv(&text) {
            Ok(rows) => {
                println!("ok  timeseries.csv: {rows} samples");
                validated += 1;
            }
            Err(e) => {
                eprintln!("FAIL timeseries.csv: {e}");
                failures += 1;
            }
        }
    }
    if let Some(text) = read(dir, "histograms.json") {
        match schema::validate_histograms_json(&text) {
            Ok(names) => {
                println!("ok  histograms.json: {}", names.join(", "));
                validated += 1;
            }
            Err(e) => {
                eprintln!("FAIL histograms.json: {e}");
                failures += 1;
            }
        }
    }
    if let Some(text) = read(dir, "trace.perfetto.json") {
        match schema::validate_perfetto(&text) {
            Ok(n) => {
                println!("ok  trace.perfetto.json: {n} trace events");
                validated += 1;
            }
            Err(e) => {
                eprintln!("FAIL trace.perfetto.json: {e}");
                failures += 1;
            }
        }
    }
    if let Some(text) = read(dir, "profile.json") {
        match schema::validate_profile_json(&text) {
            Ok(phases) => {
                println!("ok  profile.json: {}", phases.join(", "));
                validated += 1;
            }
            Err(e) => {
                eprintln!("FAIL profile.json: {e}");
                failures += 1;
            }
        }
    }
    if let Some(text) = read(dir, "progress.jsonl") {
        match schema::validate_progress_jsonl(&text) {
            Ok(r) => {
                println!(
                    "ok  progress.jsonl: {} starts, {} finishes",
                    r.starts, r.finishes
                );
                validated += 1;
            }
            Err(e) => {
                eprintln!("FAIL progress.jsonl: {e}");
                failures += 1;
            }
        }
    }
    if let Some(text) = read(dir, "run.json") {
        match schema::validate_run_json(&text) {
            Ok(points) => {
                println!("ok  run.json: {points} metric points");
                validated += 1;
            }
            Err(e) => {
                eprintln!("FAIL run.json: {e}");
                failures += 1;
            }
        }
    }
    if let Some(text) = read(dir, "jobs.jsonl") {
        match schema::validate_jobs_jsonl(&text) {
            Ok(r) => {
                println!(
                    "ok  jobs.jsonl: {} job records ({} done, {} failed, {} cancelled)",
                    r.total, r.done, r.failed, r.cancelled
                );
                validated += 1;
            }
            Err(e) => {
                eprintln!("FAIL jobs.jsonl: {e}");
                failures += 1;
            }
        }
    }
    let mut stats_text = None;
    if let Some(text) = read(dir, "stats.json") {
        match schema::validate_serve_stats_json(&text) {
            Ok(()) => {
                println!("ok  stats.json: serve stats consistent");
                validated += 1;
                stats_text = Some(text);
            }
            Err(e) => {
                eprintln!("FAIL stats.json: {e}");
                failures += 1;
            }
        }
    }
    if let Some(text) = read(dir, "router.json") {
        match schema::validate_router_stats_json(&text) {
            Ok(r) => {
                println!(
                    "ok  router.json: {} backends ({} scraped), {} jobs completed cluster-wide, totals conserve",
                    r.backends, r.scraped, r.completed
                );
                validated += 1;
            }
            Err(e) => {
                eprintln!("FAIL router.json: {e}");
                failures += 1;
            }
        }
    }
    if let Some(text) = read(dir, "access.jsonl") {
        match schema::validate_access_jsonl(&text) {
            Ok(n) => {
                println!("ok  access.jsonl: {n} requests");
                validated += 1;
            }
            Err(e) => {
                eprintln!("FAIL access.jsonl: {e}");
                failures += 1;
            }
        }
    }
    if let Some(text) = read(dir, "dashboard.json") {
        match schema::validate_dashboard_data_json(&text) {
            Ok(n) => {
                println!("ok  dashboard.json: {n} ring samples");
                validated += 1;
            }
            Err(e) => {
                eprintln!("FAIL dashboard.json: {e}");
                failures += 1;
            }
        }
    }
    // Attribution ledgers: the telemetry-mode `attribution.json` plus the
    // per-point `*.attr.json` documents a replay sweep's golden check
    // writes.  The validator enforces conservation and the origin split
    // per TU and globally, so an `ok` line here is the ledger invariant.
    let mut attr_docs = 0u32;
    let mut ledgers: Vec<_> = std::fs::read_dir(dir)
        .into_iter()
        .flatten()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
            name == "attribution.json" || name.ends_with(".attr.json")
        })
        .collect();
    ledgers.sort();
    for path in ledgers {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("attr");
        let Some(text) = read(dir, name) else {
            continue;
        };
        match schema::validate_attribution_json(&text) {
            Ok(c) => {
                println!(
                    "ok  {name}: {} WEC fills over {} TUs conserved ({} useful, {} wasted, {} top PCs)",
                    c.wec_fills, c.n_tus, c.useful, c.wasted, c.top_pcs
                );
                validated += 1;
                attr_docs += 1;
            }
            Err(e) => {
                eprintln!("FAIL {name}: {e}");
                failures += 1;
            }
        }
    }
    let mut traces: Vec<_> = std::fs::read_dir(dir)
        .into_iter()
        .flatten()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("wectrace"))
        .collect();
    traces.sort();
    for path in traces {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("trace");
        match wec_trace::Trace::read_from(&path).and_then(|t| t.verify().map(|n| (t, n))) {
            Ok((t, n)) => {
                println!(
                    "ok  {name}: {} ({} TUs, scale {}), {n} records, checksums match",
                    t.header.bench, t.header.n_tus, t.header.scale_units
                );
                validated += 1;
            }
            Err(e) => {
                eprintln!("FAIL {name}: {e}");
                failures += 1;
            }
        }
    }

    if validated == 0 && failures == 0 {
        eprintln!("FAIL {}: no telemetry artifacts found", dir.display());
        failures += 1;
    }
    if require_attribution {
        if attr_docs > 0 {
            println!("ok  require attribution: {attr_docs} ledger document(s)");
        } else {
            eprintln!("FAIL require attribution: no valid attribution ledger found");
            failures += 1;
        }
    }
    if require_spec {
        // The schema validator already enforced the v2 conservation
        // invariants; this gate additionally demands that speculation
        // actually ran (the stats document is v2 and started >= 1).
        let started = stats_text.as_deref().and_then(|text| {
            let v = wec_telemetry::json::parse(text).ok()?;
            if v.get("schema")?.as_str()? != "wec-serve-stats-v2" {
                return None;
            }
            v.get("spec")?.get("started")?.as_u64()
        });
        match started {
            Some(n) if n > 0 => {
                println!("ok  require spec: v2 stats with {n} speculation(s) started");
            }
            Some(_) => {
                eprintln!("FAIL require spec: speculation enabled but never started a job");
                failures += 1;
            }
            None => {
                eprintln!("FAIL require spec: no wec-serve-stats-v2 stats.json found");
                failures += 1;
            }
        }
    }
    for kind in &required {
        match &report {
            Some(r) if r.count_of(kind) > 0 => {
                println!("ok  require {kind}: {} events", r.count_of(kind));
            }
            Some(_) => {
                eprintln!("FAIL require {kind}: no such events in events.jsonl");
                failures += 1;
            }
            None => {
                eprintln!("FAIL require {kind}: no valid events.jsonl to check");
                failures += 1;
            }
        }
    }

    if failures > 0 {
        eprintln!("{failures} telemetry check(s) failed in {}", dir.display());
        ExitCode::FAILURE
    } else {
        println!("all telemetry checks passed in {}", dir.display());
        ExitCode::SUCCESS
    }
}
