//! Compare the simulator metrics of two experiment runs.
//!
//! ```text
//! metricsdiff A B [--rel-epsilon X] [--ignore METRIC[,METRIC…]]
//!             [--md PATH] [--json PATH]
//! ```
//!
//! `A` and `B` each name a `run.json` manifest (written by
//! `experiments --run-out`), a result-cache directory of `.kv` snapshots,
//! or a single `.kv` snapshot — the three may be mixed freely, e.g. a fresh
//! `run.json` against a checked-in cache baseline.
//!
//! Integer-valued metrics (simulator counters) must match exactly;
//! fractional values compare under `--rel-epsilon` (default `1e-6`).
//! `--ignore` drops named metrics from the comparison.
//!
//! The Markdown report goes to stdout (and to `--md PATH` if given);
//! `--json PATH` writes a machine-readable copy for CI.
//!
//! Exit codes: `0` no drift, `1` drift detected, `2` usage or I/O error.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::ExitCode;

use wec_bench::diff::{diff, MetricSet, Policy};

fn usage() -> ExitCode {
    eprintln!(
        "usage: metricsdiff A B [--rel-epsilon X] [--ignore METRIC[,METRIC…]] \
         [--md PATH] [--json PATH]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut policy = Policy::default();
    let mut md_out: Option<PathBuf> = None;
    let mut json_out: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--rel-epsilon" => {
                let Some(x) = it.next().and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                policy.rel_epsilon = x;
            }
            "--ignore" => {
                let Some(list) = it.next() else {
                    return usage();
                };
                policy
                    .ignore
                    .extend(list.split(',').map(str::to_string).collect::<BTreeSet<_>>());
            }
            "--md" => {
                let Some(p) = it.next() else { return usage() };
                md_out = Some(p.into());
            }
            "--json" => {
                let Some(p) = it.next() else { return usage() };
                json_out = Some(p.into());
            }
            other if !other.starts_with('-') => paths.push(other.into()),
            _ => return usage(),
        }
    }
    let [a_path, b_path] = paths.as_slice() else {
        return usage();
    };

    let load = |p: &PathBuf| {
        MetricSet::load(p).map_err(|e| {
            eprintln!("metricsdiff: {e}");
            ExitCode::from(2)
        })
    };
    let a = match load(a_path) {
        Ok(s) => s,
        Err(c) => return c,
    };
    let b = match load(b_path) {
        Ok(s) => s,
        Err(c) => return c,
    };

    let report = diff(&a, &b, &policy);
    let md = report.to_markdown();
    print!("{md}");
    let write = |path: &PathBuf, text: &str| {
        std::fs::write(path, text).map_err(|e| {
            eprintln!("metricsdiff: write {}: {e}", path.display());
            ExitCode::from(2)
        })
    };
    if let Some(p) = &md_out {
        if let Err(c) = write(p, &md) {
            return c;
        }
    }
    if let Some(p) = &json_out {
        if let Err(c) = write(p, &report.to_json()) {
            return c;
        }
    }
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
