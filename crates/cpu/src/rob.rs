//! The reorder buffer.
//!
//! Entries carry their operand values (renamed from the RAT at dispatch,
//! filled in by wakeup broadcasts), their computed result, and — for memory
//! operations — the effective address and issue state the load/store queue
//! logic in the core works on.  Entries are identified by monotonically
//! increasing sequence numbers, so age comparison is just `<`.

use std::collections::VecDeque;

use wec_common::ids::{Addr, Cycle};
use wec_isa::inst::Inst;

use crate::regs::Rat;

/// A renamed source operand.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SrcState {
    /// Value available.
    Ready(u64),
    /// Waiting on the ROB entry with this sequence number.
    Waiting(u64),
}

/// Pipeline stage of a ROB entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// Not yet issued (operands may still be pending).
    Waiting,
    /// In a functional unit or the memory system; completes at `done_at`.
    Executing,
    /// Result available; eligible for commit when it reaches the head.
    Done,
}

/// One in-flight instruction.
#[derive(Clone, Debug)]
pub struct RobEntry {
    pub seq: u64,
    pub pc: u32,
    pub inst: Inst,
    pub stage: Stage,
    pub srcs: [SrcState; 2],
    /// Register result (f64 as bits); for branches, unused.
    pub result: u64,
    pub done_at: Cycle,
    /// Effective address once computed (loads, stores, tsannounce).
    pub eff_addr: Option<Addr>,
    /// Store data value once known.
    pub store_data: Option<u64>,
    /// Load has been sent to the memory system (or forwarded).
    pub mem_issued: bool,
    /// Load was satisfied by store-to-load forwarding.
    pub forwarded: bool,
    /// Fetch-time prediction (conditional branches and `jr`).
    pub predicted_taken: bool,
    pub predicted_target: u32,
    /// Execute-time resolution (applied when the entry completes).
    pub resolved_taken: bool,
    pub resolved_target: u32,
    /// RAT snapshot for recovery (conditional branches and `jr`).
    pub checkpoint: Option<Box<Rat>>,
}

impl RobEntry {
    pub fn new(seq: u64, pc: u32, inst: Inst) -> Self {
        RobEntry {
            seq,
            pc,
            inst,
            stage: Stage::Waiting,
            srcs: [SrcState::Ready(0), SrcState::Ready(0)],
            result: 0,
            done_at: Cycle::ZERO,
            eff_addr: None,
            store_data: None,
            mem_issued: false,
            forwarded: false,
            predicted_taken: false,
            predicted_target: u32::MAX,
            resolved_taken: false,
            resolved_target: u32::MAX,
            checkpoint: None,
        }
    }

    /// Are all operands available?
    #[inline]
    pub fn srcs_ready(&self) -> bool {
        self.srcs.iter().all(|s| matches!(s, SrcState::Ready(_)))
    }

    /// Value of source slot `i` (must be ready).
    #[inline]
    pub fn src_val(&self, i: usize) -> u64 {
        match self.srcs[i] {
            SrcState::Ready(v) => v,
            SrcState::Waiting(seq) => panic!("source {i} still waiting on #{seq}"),
        }
    }
}

/// Is this instruction dispatch-serializing?  `begin` must kill leftover
/// wrong threads before anything from the new region runs, and `tsagdone`
/// is the run-time dependence-checking sync point: computation-stage loads
/// may not issue until the upstream announcements have arrived (§2.2).
#[inline]
pub fn is_serializing(inst: &Inst) -> bool {
    matches!(inst, Inst::Begin { .. } | Inst::TsagDone)
}

/// The reorder buffer proper.
///
/// Entry sequence numbers are strictly increasing front-to-back (dispatch
/// pushes at the back, commit pops the front, recovery removes a suffix),
/// so age lookups are binary searches rather than scans.  Occupancy facts
/// the dispatch stage asks about every cycle (LSQ slots, serializing
/// instructions in flight) are maintained as counters on push/pop instead
/// of being recounted.
pub struct Rob {
    entries: VecDeque<RobEntry>,
    capacity: usize,
    /// Memory operations currently in the window (the LSQ occupancy).
    mem_ops: usize,
    /// In-flight dispatch-serializing instructions (`begin` / `tsagdone`).
    serializers: usize,
}

impl Rob {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1);
        Rob {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            mem_ops: 0,
            serializers: 0,
        }
    }

    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Memory operations currently in flight (the LSQ occupancy).
    pub fn mem_count(&self) -> usize {
        self.mem_ops
    }

    /// Is a dispatch-serializing instruction in flight?
    pub fn has_serializer(&self) -> bool {
        self.serializers > 0
    }

    fn count_entry(&mut self, entry: &RobEntry, add: bool) {
        let d = if add { 1 } else { usize::MAX }; // MAX == wrapping -1
        if entry.inst.is_mem() {
            self.mem_ops = self.mem_ops.wrapping_add(d);
        }
        if is_serializing(&entry.inst) {
            self.serializers = self.serializers.wrapping_add(d);
        }
    }

    pub fn push(&mut self, entry: RobEntry) {
        debug_assert!(!self.is_full());
        debug_assert!(self
            .entries
            .back()
            .map(|b| b.seq < entry.seq)
            .unwrap_or(true));
        self.count_entry(&entry, true);
        self.entries.push_back(entry);
    }

    pub fn head(&self) -> Option<&RobEntry> {
        self.entries.front()
    }

    pub fn pop_head(&mut self) -> Option<RobEntry> {
        let e = self.entries.pop_front();
        if let Some(e) = &e {
            self.count_entry(e, false);
        }
        e
    }

    /// Index of the entry with sequence number `seq`, if still in flight.
    #[inline]
    fn pos(&self, seq: u64) -> Option<usize> {
        let i = self.entries.partition_point(|e| e.seq < seq);
        (i < self.entries.len() && self.entries[i].seq == seq).then_some(i)
    }

    pub fn get(&self, seq: u64) -> Option<&RobEntry> {
        self.pos(seq).map(|i| &self.entries[i])
    }

    pub fn get_mut(&mut self, seq: u64) -> Option<&mut RobEntry> {
        self.pos(seq).map(|i| &mut self.entries[i])
    }

    /// Entry by position (0 = oldest). O(1).
    pub fn at(&self, idx: usize) -> &RobEntry {
        &self.entries[idx]
    }

    /// Mutable entry by position (0 = oldest). O(1).
    pub fn at_mut(&mut self, idx: usize) -> &mut RobEntry {
        &mut self.entries[idx]
    }

    pub fn iter(&self) -> impl Iterator<Item = &RobEntry> {
        self.entries.iter()
    }

    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut RobEntry> {
        self.entries.iter_mut()
    }

    /// Remove every entry younger than `seq` and return them oldest-first
    /// (misprediction recovery; the core sifts squashed loads for the
    /// wrong-path engine).
    pub fn squash_younger(&mut self, seq: u64) -> Vec<RobEntry> {
        let keep = self.entries.partition_point(|e| e.seq <= seq);
        let squashed: Vec<RobEntry> = self.entries.split_off(keep).into();
        for e in &squashed {
            self.count_entry(e, false);
        }
        squashed
    }

    /// Drop everything (full flush).
    pub fn clear(&mut self) -> Vec<RobEntry> {
        self.mem_ops = 0;
        self.serializers = 0;
        std::mem::take(&mut self.entries).into()
    }

    /// Wakeup: deliver `value` from producer `seq` to every waiting source.
    ///
    /// Consumers are renamed at dispatch against producers already in the
    /// window, so a waiting source always names a strictly *older* sequence
    /// number — only the suffix younger than `seq` needs examining.
    pub fn broadcast(&mut self, seq: u64, value: u64) {
        let start = self.entries.partition_point(|e| e.seq <= seq);
        for e in self.entries.range_mut(start..) {
            for s in &mut e.srcs {
                if *s == SrcState::Waiting(seq) {
                    *s = SrcState::Ready(value);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(seq: u64) -> RobEntry {
        RobEntry::new(seq, seq as u32, Inst::Nop)
    }

    #[test]
    fn fifo_order_and_capacity() {
        let mut rob = Rob::new(2);
        rob.push(entry(1));
        assert!(!rob.is_full());
        rob.push(entry(2));
        assert!(rob.is_full());
        assert_eq!(rob.head().unwrap().seq, 1);
        assert_eq!(rob.pop_head().unwrap().seq, 1);
        assert_eq!(rob.len(), 1);
    }

    #[test]
    fn broadcast_wakes_waiting_sources() {
        let mut rob = Rob::new(4);
        rob.push(entry(7));
        let mut e = entry(8);
        e.srcs = [SrcState::Waiting(7), SrcState::Ready(5)];
        rob.push(e);
        rob.broadcast(7, 99);
        let e = rob.get(8).unwrap();
        assert!(e.srcs_ready());
        assert_eq!(e.src_val(0), 99);
        assert_eq!(e.src_val(1), 5);
    }

    #[test]
    fn broadcast_ignores_other_producers() {
        let mut rob = Rob::new(4);
        rob.push(entry(7));
        let mut e = entry(9);
        e.srcs = [SrcState::Waiting(7), SrcState::Ready(0)];
        rob.push(e);
        rob.broadcast(8, 1);
        assert!(!rob.get(9).unwrap().srcs_ready());
    }

    #[test]
    fn get_finds_by_seq_with_gaps() {
        let mut rob = Rob::new(8);
        for s in [3, 4, 7, 9] {
            rob.push(entry(s));
        }
        for s in [3, 4, 7, 9] {
            assert_eq!(rob.get(s).unwrap().seq, s);
            assert_eq!(rob.get_mut(s).unwrap().seq, s);
        }
        for s in [1, 2, 5, 6, 8, 10] {
            assert!(rob.get(s).is_none());
        }
    }

    #[test]
    fn squash_younger_splits_by_age() {
        let mut rob = Rob::new(8);
        for s in 1..=5 {
            rob.push(entry(s));
        }
        let squashed = rob.squash_younger(3);
        assert_eq!(
            squashed.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![4, 5]
        );
        assert_eq!(rob.len(), 3);
        assert_eq!(rob.iter().last().unwrap().seq, 3);
    }

    #[test]
    fn mem_count_tracks_lsq_occupancy() {
        use wec_isa::inst::{LoadKind, StoreKind};
        use wec_isa::reg::Reg;
        let mut rob = Rob::new(8);
        rob.push(entry(1));
        let mut l = entry(2);
        l.inst = Inst::Load {
            kind: LoadKind::D,
            rd: Reg(1),
            base: Reg(2),
            off: 0,
        };
        rob.push(l);
        let mut s = entry(3);
        s.inst = Inst::Store {
            kind: StoreKind::D,
            rs: Reg(1),
            base: Reg(2),
            off: 0,
        };
        rob.push(s);
        assert_eq!(rob.mem_count(), 2);
        rob.pop_head(); // the nop
        assert_eq!(rob.mem_count(), 2);
        rob.pop_head(); // the load
        assert_eq!(rob.mem_count(), 1);
        rob.squash_younger(2);
        assert_eq!(rob.mem_count(), 0);
    }

    #[test]
    fn serializer_presence_tracks_push_pop_squash() {
        let mut rob = Rob::new(8);
        assert!(!rob.has_serializer());
        rob.push(entry(1));
        let mut b = entry(2);
        b.inst = Inst::TsagDone;
        rob.push(b);
        assert!(rob.has_serializer());
        rob.squash_younger(1);
        assert!(!rob.has_serializer());

        let mut b = entry(3);
        b.inst = Inst::TsagDone;
        rob.push(b);
        rob.pop_head(); // entry 1
        assert!(rob.has_serializer());
        rob.pop_head(); // the tsagdone
        assert!(!rob.has_serializer());

        let mut b = entry(4);
        b.inst = Inst::TsagDone;
        rob.push(b);
        rob.clear();
        assert!(!rob.has_serializer());
    }

    #[test]
    #[should_panic(expected = "still waiting")]
    fn src_val_panics_if_pending() {
        let mut e = entry(1);
        e.srcs[0] = SrcState::Waiting(9);
        e.src_val(0);
    }
}
