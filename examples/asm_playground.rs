//! Assemble and run a WISA-64 program — from a file, or the built-in demo
//! (a thread-pipelined parallel loop with a target-store recurrence).
//!
//! ```text
//! cargo run --release -p wec-examples --bin asm_playground [file.s] [tus] [preset]
//! ```

use wec_core::config::ProcPreset;
use wec_core::machine::Machine;

const DEMO: &str = r#"
# Parallel sum with a cross-iteration dependence carried through a target
# store — the superthreaded run-time dependence check in action.
.data
a:    .dword 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16
acc:  .dword 0
.text
      la   r20, =a
      la   r21, =acc
      li   r22, 16        # n
      li   r1, 0          # i (continuation variable)
      begin 1
body: mv   r3, r1         # my iteration
      addi r1, r1, 1
      fork r1, body
      tsann 0(r21)        # announce the accumulator
      tsagdone
      ld   r4, 0(r21)     # waits for the upstream release
      slli r5, r3, 3
      add  r5, r20, r5
      ld   r6, 0(r5)
      add  r4, r4, r6
      sd   r4, 0(r21)     # releases downstream
      blt  r1, r22, done
      abort seq
done: thread_end
seq:  halt
"#;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let source = match args.first() {
        Some(path) if path.ends_with(".s") || path.ends_with(".asm") => {
            std::fs::read_to_string(path).expect("cannot read source file")
        }
        _ => DEMO.to_string(),
    };
    let skip = usize::from(
        args.first()
            .map(|a| a.ends_with(".s") || a.ends_with(".asm"))
            .unwrap_or(false),
    );
    let tus: usize = args.get(skip).and_then(|s| s.parse().ok()).unwrap_or(4);
    let preset_name = args
        .get(skip + 1)
        .map(|s| s.as_str())
        .unwrap_or("wth-wp-wec");
    let preset = ProcPreset::ALL
        .into_iter()
        .find(|p| p.name() == preset_name)
        .expect("unknown preset");

    let program = wec_isa::asm::assemble("playground", &source).unwrap_or_else(|e| {
        eprintln!("assembly failed: {e}");
        std::process::exit(1);
    });
    println!(
        "assembled {} instructions, {} data pages; running on {} × {tus} TUs…\n",
        program.text.len(),
        program.data.mapped_pages(),
        preset.name()
    );

    let mut machine = Machine::new(preset.machine(tus), &program).unwrap();
    let result = machine.run().unwrap_or_else(|e| {
        eprintln!("simulation failed: {e}");
        eprintln!("{}", machine.debug_snapshot());
        std::process::exit(1);
    });

    let m = &result.metrics;
    println!("cycles                 {:>10}", m.cycles);
    println!("instructions           {:>10}", m.correct_instructions());
    println!("IPC                    {:>10.3}", m.ipc());
    println!("parallel regions       {:>10}", m.regions);
    println!("threads started        {:>10}", m.threads_started);
    println!("threads marked wrong   {:>10}", m.threads_marked_wrong);
    println!("L1D misses             {:>10}", m.l1d.demand_misses);
    println!("branch mispredictions  {:>10}", m.mispredicted_branches);

    // For the demo, show the accumulator (the second data allocation).
    if args.first().map(|a| a.ends_with(".s")).unwrap_or(false) {
        return;
    }
    if let wec_isa::inst::Inst::Li { imm, .. } = program.text[1] {
        let acc = wec_common::ids::Addr(imm as u64);
        println!(
            "\nacc = {}  (expected 136 = 1+2+…+16)",
            machine.memory().read_u64(acc).unwrap()
        );
    }
}
