//! The strongest end-to-end invariant in the repository: every benchmark
//! analog computes its exact reference result under *every* processor
//! configuration the paper evaluates.  Timing mechanisms — wrong-path
//! execution, wrong threads, the WEC, victim caches, prefetching — must
//! never change architectural results.

use wec_core::config::ProcPreset;
use wec_workloads::{run_and_verify, Bench, Scale};

#[test]
fn every_workload_is_correct_under_every_preset_at_8_tus() {
    let handles: Vec<_> = Bench::ALL
        .into_iter()
        .map(|bench| {
            std::thread::spawn(move || {
                let w = bench.build(Scale::SMOKE);
                for preset in ProcPreset::ALL {
                    run_and_verify(&w, preset.machine(8))
                        .unwrap_or_else(|e| panic!("{} under {}: {e}", w.name, preset.name()));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn every_workload_is_correct_across_tu_counts_under_wec() {
    let handles: Vec<_> = Bench::ALL
        .into_iter()
        .map(|bench| {
            std::thread::spawn(move || {
                let w = bench.build(Scale::SMOKE);
                for tus in [1usize, 2, 4, 16] {
                    run_and_verify(&w, ProcPreset::WthWpWec.machine(tus))
                        .unwrap_or_else(|e| panic!("{} at {tus} TUs: {e}", w.name));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}
