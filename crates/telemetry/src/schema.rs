//! Validators for the telemetry artifacts (used by tests and the CI smoke
//! job): the events JSONL schema, the time-series CSV, the histograms JSON,
//! and the Perfetto trace.
//!
//! The event schema is strict: every line must carry `cycle` and a known
//! `type`, exactly the fields that type declares, each with the right JSON
//! type.  That way a drifting emitter fails CI instead of producing files
//! tools half-understand.

use crate::json::{self, Json};

/// JSON type of a schema field.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FieldKind {
    U64,
    Bool,
    Str,
}

/// Field list per event type — the JSONL schema, in one place.
pub const EVENT_SCHEMA: &[(&str, &[(&str, FieldKind)])] = &[
    (
        "wrong_load_issue",
        &[
            ("tu", FieldKind::U64),
            ("addr", FieldKind::U64),
            ("wrong_thread", FieldKind::Bool),
        ],
    ),
    (
        "wec_fill",
        &[("tu", FieldKind::U64), ("addr", FieldKind::U64)],
    ),
    (
        "wec_hit",
        &[
            ("tu", FieldKind::U64),
            ("addr", FieldKind::U64),
            ("wrong_fetched", FieldKind::Bool),
            ("prefetched", FieldKind::Bool),
        ],
    ),
    (
        "victim_transfer",
        &[("tu", FieldKind::U64), ("addr", FieldKind::U64)],
    ),
    (
        "next_line_prefetch",
        &[("tu", FieldKind::U64), ("addr", FieldKind::U64)],
    ),
    (
        "l1_miss",
        &[
            ("tu", FieldKind::U64),
            ("addr", FieldKind::U64),
            ("wrong", FieldKind::Bool),
        ],
    ),
    (
        "l2_miss",
        &[("addr", FieldKind::U64), ("wrong", FieldKind::Bool)],
    ),
    (
        "pipeline_flush",
        &[
            ("tu", FieldKind::U64),
            ("pc", FieldKind::U64),
            ("new_pc", FieldKind::U64),
            ("squashed", FieldKind::U64),
        ],
    ),
    (
        "commit",
        &[
            ("tu", FieldKind::U64),
            ("seq", FieldKind::U64),
            ("pc", FieldKind::U64),
            ("op", FieldKind::Str),
        ],
    ),
    (
        "begin",
        &[("region", FieldKind::U64), ("head", FieldKind::U64)],
    ),
    (
        "fork",
        &[
            ("parent", FieldKind::U64),
            ("child", FieldKind::U64),
            ("tu", FieldKind::U64),
            ("deferred", FieldKind::Bool),
        ],
    ),
    (
        "thread_start",
        &[("id", FieldKind::U64), ("tu", FieldKind::U64)],
    ),
    ("abort", &[("id", FieldKind::U64)]),
    ("marked_wrong", &[("id", FieldKind::U64)]),
    ("killed", &[("id", FieldKind::U64), ("tu", FieldKind::U64)]),
    ("wrong_died", &[("id", FieldKind::U64)]),
    (
        "wb_start",
        &[("id", FieldKind::U64), ("words", FieldKind::U64)],
    ),
    ("retired", &[("id", FieldKind::U64), ("tu", FieldKind::U64)]),
    ("sequential", &[("tu", FieldKind::U64)]),
];

/// What a validated event stream contained.
#[derive(Clone, Debug, Default)]
pub struct EventReport {
    pub total: u64,
    /// Per-type counts, sorted by type name.
    pub counts: Vec<(String, u64)>,
}

impl EventReport {
    pub fn count_of(&self, name: &str) -> u64 {
        self.counts
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, n)| n)
            .unwrap_or(0)
    }
}

fn field_matches(v: &Json, kind: FieldKind) -> bool {
    match kind {
        FieldKind::U64 => v.as_u64().is_some(),
        FieldKind::Bool => v.as_bool().is_some(),
        FieldKind::Str => v.as_str().is_some(),
    }
}

/// Validate a JSONL event stream against [`EVENT_SCHEMA`].  Cycles must be
/// non-decreasing (the machine drains buffers in cycle order).
pub fn validate_events_jsonl(text: &str) -> Result<EventReport, String> {
    let mut report = EventReport::default();
    let mut last_cycle = 0u64;
    for (lineno, line) in text.lines().enumerate() {
        let ctx = |msg: String| format!("events.jsonl line {}: {msg}", lineno + 1);
        if line.trim().is_empty() {
            return Err(ctx("blank line".into()));
        }
        let v = json::parse(line).map_err(&ctx)?;
        let Json::Obj(fields) = &v else {
            return Err(ctx("not a JSON object".into()));
        };
        let cycle = v
            .get("cycle")
            .and_then(Json::as_u64)
            .ok_or_else(|| ctx("missing/invalid \"cycle\"".into()))?;
        if cycle < last_cycle {
            return Err(ctx(format!(
                "cycle {cycle} went backwards from {last_cycle}"
            )));
        }
        last_cycle = cycle;
        let ty = v
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| ctx("missing/invalid \"type\"".into()))?;
        let Some((_, schema)) = EVENT_SCHEMA.iter().find(|(name, _)| *name == ty) else {
            return Err(ctx(format!("unknown event type {ty:?}")));
        };
        for (name, kind) in schema.iter() {
            let fv = v
                .get(name)
                .ok_or_else(|| ctx(format!("{ty}: missing field {name:?}")))?;
            if !field_matches(fv, *kind) {
                return Err(ctx(format!("{ty}: field {name:?} has wrong type")));
            }
        }
        for (name, _) in fields {
            if name != "cycle" && name != "type" && !schema.iter().any(|(n, _)| n == name) {
                return Err(ctx(format!("{ty}: unexpected field {name:?}")));
            }
        }
        report.total += 1;
        match report.counts.iter_mut().find(|(k, _)| k == ty) {
            Some((_, n)) => *n += 1,
            None => report.counts.push((ty.to_string(), 1)),
        }
    }
    report.counts.sort();
    Ok(report)
}

/// Validate the time-series CSV: a `cycle`-first header and integer rows of
/// matching arity with strictly increasing cycles.  Returns the row count.
pub fn validate_timeseries_csv(text: &str) -> Result<usize, String> {
    let mut lines = text.lines();
    let header = lines.next().ok_or("timeseries.csv: empty file")?;
    let columns: Vec<&str> = header.split(',').collect();
    if columns.first() != Some(&"cycle") {
        return Err(format!(
            "timeseries.csv: first column must be \"cycle\", got {:?}",
            columns.first()
        ));
    }
    let mut rows = 0;
    let mut last_cycle = None::<u64>;
    for (lineno, line) in lines.enumerate() {
        let cells: Vec<&str> = line.split(',').collect();
        if cells.len() != columns.len() {
            return Err(format!(
                "timeseries.csv row {}: {} cells, header has {}",
                lineno + 1,
                cells.len(),
                columns.len()
            ));
        }
        let mut parsed = Vec::with_capacity(cells.len());
        for c in &cells {
            parsed.push(c.parse::<u64>().map_err(|_| {
                format!("timeseries.csv row {}: non-integer cell {c:?}", lineno + 1)
            })?);
        }
        if let Some(prev) = last_cycle {
            if parsed[0] <= prev {
                return Err(format!(
                    "timeseries.csv row {}: cycle {} not increasing",
                    lineno + 1,
                    parsed[0]
                ));
            }
        }
        last_cycle = Some(parsed[0]);
        rows += 1;
    }
    Ok(rows)
}

/// Validate the histograms JSON: an object of named histograms whose bucket
/// counts sum to their `count`.  Returns the histogram names.
pub fn validate_histograms_json(text: &str) -> Result<Vec<String>, String> {
    let v = json::parse(text).map_err(|e| format!("histograms.json: {e}"))?;
    let Json::Obj(fields) = &v else {
        return Err("histograms.json: not a JSON object".into());
    };
    let mut names = Vec::new();
    for (name, h) in fields {
        let count = h
            .get("count")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("histograms.json {name}: missing count"))?;
        let buckets = h
            .get("buckets")
            .and_then(Json::as_array)
            .ok_or_else(|| format!("histograms.json {name}: missing buckets"))?;
        let mut total = 0;
        for b in buckets {
            let pair = b
                .as_array()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| format!("histograms.json {name}: bucket not a pair"))?;
            total += pair[1]
                .as_u64()
                .ok_or_else(|| format!("histograms.json {name}: non-integer bucket count"))?;
        }
        if total != count {
            return Err(format!(
                "histograms.json {name}: buckets sum to {total}, count says {count}"
            ));
        }
        for key in ["sum", "min", "max"] {
            if h.get(key).and_then(Json::as_u64).is_none() {
                return Err(format!("histograms.json {name}: missing {key}"));
            }
        }
        names.push(name.clone());
    }
    Ok(names)
}

/// Validate a Chrome trace-event document: `traceEvents` array whose
/// entries carry a known phase, balanced `B`/`E` per track, timestamps
/// present on all non-metadata events.  Returns the event count.
pub fn validate_perfetto(text: &str) -> Result<u64, String> {
    let v = json::parse(text).map_err(|e| format!("perfetto: {e}"))?;
    let events = v
        .get("traceEvents")
        .and_then(Json::as_array)
        .ok_or("perfetto: missing traceEvents array")?;
    let mut depth: Vec<(u64, i64)> = Vec::new(); // (tid, open span depth)
    for (i, ev) in events.iter().enumerate() {
        let ctx = |msg: String| format!("perfetto event {i}: {msg}");
        if !ev.is_object() {
            return Err(ctx("not an object".into()));
        }
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| ctx("missing ph".into()))?;
        match ph {
            "M" => {}
            "B" | "E" | "i" | "C" | "X" => {
                if ev.get("ts").and_then(Json::as_u64).is_none() {
                    return Err(ctx(format!("phase {ph} missing ts")));
                }
                let tid = ev.get("tid").and_then(Json::as_u64).unwrap_or(0);
                let slot = match depth.iter_mut().find(|(t, _)| *t == tid) {
                    Some(s) => s,
                    None => {
                        depth.push((tid, 0));
                        depth.last_mut().unwrap()
                    }
                };
                match ph {
                    "B" => slot.1 += 1,
                    "E" => {
                        slot.1 -= 1;
                        if slot.1 < 0 {
                            return Err(ctx(format!("unbalanced E on tid {tid}")));
                        }
                    }
                    _ => {}
                }
            }
            other => return Err(ctx(format!("unknown phase {other:?}"))),
        }
    }
    for (tid, d) in depth {
        if d != 0 {
            return Err(format!("perfetto: {d} unclosed span(s) on tid {tid}"));
        }
    }
    Ok(events.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;

    #[test]
    fn emitted_events_satisfy_their_own_schema() {
        // One of every variant, round-tripped through the validator.
        let all = vec![
            TraceEvent::WrongLoadIssue {
                tu: 1,
                addr: 64,
                wrong_thread: true,
            },
            TraceEvent::WecFill { tu: 1, addr: 64 },
            TraceEvent::WecHit {
                tu: 0,
                addr: 64,
                wrong_fetched: true,
                prefetched: false,
            },
            TraceEvent::VictimTransfer { tu: 2, addr: 128 },
            TraceEvent::NextLinePrefetch { tu: 2, addr: 192 },
            TraceEvent::L1Miss {
                tu: 0,
                addr: 256,
                wrong: false,
            },
            TraceEvent::L2Miss {
                addr: 256,
                wrong: true,
            },
            TraceEvent::PipelineFlush {
                tu: 3,
                pc: 10,
                new_pc: 20,
                squashed: 4,
            },
            TraceEvent::Commit {
                tu: 0,
                seq: 1,
                pc: 2,
                op: "nop".into(),
            },
            TraceEvent::Begin { region: 1, head: 5 },
            TraceEvent::Fork {
                parent: 5,
                child: 6,
                tu: 1,
                deferred: false,
            },
            TraceEvent::ThreadStart { id: 6, tu: 1 },
            TraceEvent::Abort { id: 5 },
            TraceEvent::MarkedWrong { id: 6 },
            TraceEvent::Killed { id: 7, tu: 2 },
            TraceEvent::WrongDied { id: 6 },
            TraceEvent::WbStart { id: 5, words: 8 },
            TraceEvent::Retired { id: 5, tu: 0 },
            TraceEvent::Sequential { tu: 0 },
        ];
        let mut text = String::new();
        for (i, ev) in all.iter().enumerate() {
            ev.write_jsonl(i as u64, &mut text);
        }
        let report = validate_events_jsonl(&text).unwrap();
        assert_eq!(report.total, all.len() as u64);
        assert_eq!(report.count_of("wec_fill"), 1);
        // Every variant name exists in the schema table.
        for ev in &all {
            assert!(
                EVENT_SCHEMA.iter().any(|(n, _)| *n == ev.name()),
                "{} missing from schema",
                ev.name()
            );
        }
        assert_eq!(EVENT_SCHEMA.len(), all.len(), "schema has untested entries");
    }

    #[test]
    fn rejects_malformed_streams() {
        assert!(validate_events_jsonl("not json\n").is_err());
        assert!(validate_events_jsonl("{\"cycle\":1}\n").is_err());
        assert!(validate_events_jsonl("{\"cycle\":1,\"type\":\"nope\"}\n").is_err());
        // Missing field.
        assert!(validate_events_jsonl("{\"cycle\":1,\"type\":\"wec_fill\",\"tu\":0}\n").is_err());
        // Extra field.
        assert!(validate_events_jsonl(
            "{\"cycle\":1,\"type\":\"wec_fill\",\"tu\":0,\"addr\":64,\"x\":1}\n"
        )
        .is_err());
        // Wrong type.
        assert!(validate_events_jsonl(
            "{\"cycle\":1,\"type\":\"wec_fill\",\"tu\":0,\"addr\":\"64\"}\n"
        )
        .is_err());
        // Cycle regression.
        assert!(validate_events_jsonl(
            "{\"cycle\":5,\"type\":\"abort\",\"id\":1}\n{\"cycle\":4,\"type\":\"abort\",\"id\":1}\n"
        )
        .is_err());
    }

    #[test]
    fn timeseries_validation() {
        assert_eq!(
            validate_timeseries_csv("cycle,a,b\n10,1,2\n20,3,4\n").unwrap(),
            2
        );
        assert!(validate_timeseries_csv("a,b\n1,2\n").is_err());
        assert!(validate_timeseries_csv("cycle,a\n10,1\n10,2\n").is_err());
        assert!(validate_timeseries_csv("cycle,a\n10,1,2\n").is_err());
        assert!(validate_timeseries_csv("cycle,a\n10,x\n").is_err());
    }

    #[test]
    fn histograms_validation() {
        let good = "{\"load_to_fill\":{\"count\":3,\"sum\":111,\"min\":5,\"max\":100,\"buckets\":[[4,2],[64,1]]}}";
        assert_eq!(
            validate_histograms_json(good).unwrap(),
            vec!["load_to_fill"]
        );
        let bad =
            "{\"h\":{\"count\":4,\"sum\":111,\"min\":5,\"max\":100,\"buckets\":[[4,2],[64,1]]}}";
        assert!(validate_histograms_json(bad).is_err());
    }

    #[test]
    fn perfetto_validation_balances_spans() {
        let good = "{\"traceEvents\":[{\"ph\":\"B\",\"tid\":1,\"ts\":1},{\"ph\":\"E\",\"tid\":1,\"ts\":2}]}";
        assert_eq!(validate_perfetto(good).unwrap(), 2);
        let unbalanced = "{\"traceEvents\":[{\"ph\":\"B\",\"tid\":1,\"ts\":1}]}";
        assert!(validate_perfetto(unbalanced).is_err());
        let stray_end = "{\"traceEvents\":[{\"ph\":\"E\",\"tid\":1,\"ts\":1}]}";
        assert!(validate_perfetto(stray_end).is_err());
    }
}
