//! Speculation attribution ledger: *who* did each prefetch win come from?
//!
//! The aggregate counters in `CacheStats` can say the WEC won; this module
//! says **where and why**.  An [`AttrProbe`] rides on one L1 data path and
//! tracks every side-structure line's lifecycle from fill (the wrong-path
//! load PC that caused it, the fill cycle, the cache set it maps to) to
//! outcome:
//!
//! * **useful** — first correct-path hit, with fill→first-hit timeliness;
//! * **victim-rescued** — a displaced L1 victim re-demanded out of the side
//!   structure (victim-cache behaviour, not speculation);
//! * **wasted** — evicted unused, or overwritten by a newer fill;
//! * **still-resident** — alive when the run ends.
//!
//! Per-TU probes are folded into one [`AttributionReport`]: global and
//! per-TU totals obeying the conservation invariant
//! `useful + wasted + victim_rescued + still_resident == wec_fills`,
//! a top-N per-PC credit table (useful count, waste count, median
//! timeliness, bytes of pollution), and per-set pressure heatmaps for the
//! L1, the WEC, and the victim-transfer path.  The report renders as a
//! strict one-line `wec-attribution-v1` JSON document with no wall-clock or
//! host state, so a full-timing run and a trace replay of the same run
//! produce byte-identical artifacts.
//!
//! Like the other instruments in this crate, the probe is a leaf: raw
//! `u64`/`u32` in, JSON out, no dependency on the simulator crates.  The
//! data path holds it as `Option<Box<AttrProbe>>` — one `is_some` branch
//! per hook when attribution is off, in the `PhaseSink` zero-cost style.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::hash::{BuildHasherDefault, Hasher};

use crate::hist::Log2Histogram;

/// FNV-1a for the probe's maps.  They key small dense block numbers and
/// PCs that the simulator itself produced — SipHash's flood resistance
/// buys nothing here and its setup cost lands on every side-structure
/// fill, hit, and evict.
#[derive(Default)]
struct FnvHasher(u64);

impl Hasher for FnvHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut h = if self.0 == 0 { FNV_OFFSET } else { self.0 };
        for &b in bytes {
            h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        let h = if self.0 == 0 { FNV_OFFSET } else { self.0 };
        self.0 = (h ^ v).wrapping_mul(FNV_PRIME);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.write_u64(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

type FnvMap<K, V> = HashMap<K, V, BuildHasherDefault<FnvHasher>>;

/// How many PCs the report's credit table keeps.
pub const TOP_PCS: usize = 32;

/// Where a side-structure line came from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FillOrigin {
    /// Filled by a wrong-execution load (the paper's WEC fill).
    Wrong,
    /// A displaced L1 victim parked in the side structure.
    Victim,
    /// A hardware next-line prefetch chained off a useful speculative hit.
    Prefetch,
}

/// One live side-structure line awaiting its outcome.
#[derive(Clone, Copy, Debug)]
struct LiveLine {
    pc: u32,
    fill_cycle: u64,
    origin: FillOrigin,
}

/// Lifecycle totals for one probe (or, with `still_resident` filled in, one
/// row of the report).
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct AttrTotals {
    /// Every fill the side structure accepted (all three origins).
    pub wec_fills: u64,
    pub fills_wrong: u64,
    pub fills_victim: u64,
    pub fills_prefetch: u64,
    pub useful: u64,
    pub wasted: u64,
    pub victim_rescued: u64,
    pub still_resident: u64,
}

impl AttrTotals {
    /// The ledger conservation invariant the validator enforces.
    pub fn conserved(&self) -> bool {
        self.useful + self.wasted + self.victim_rescued + self.still_resident == self.wec_fills
            && self.fills_wrong + self.fills_victim + self.fills_prefetch == self.wec_fills
    }

    fn add(&mut self, o: &AttrTotals) {
        self.wec_fills += o.wec_fills;
        self.fills_wrong += o.fills_wrong;
        self.fills_victim += o.fills_victim;
        self.fills_prefetch += o.fills_prefetch;
        self.useful += o.useful;
        self.wasted += o.wasted;
        self.victim_rescued += o.victim_rescued;
        self.still_resident += o.still_resident;
    }
}

/// Per-PC credit: speculative fills only (victim transfers carry no
/// speculation credit and stay out of this table).
#[derive(Clone, Debug, Default)]
struct PcStats {
    useful: u64,
    wasted: u64,
    timeliness: Log2Histogram,
}

/// Per-L1-set pressure arrays (the heatmap rows of the report).
#[derive(Clone, Debug)]
pub struct SetHeat {
    /// Correct-path demand accesses per L1 set.
    pub l1_accesses: Vec<u64>,
    /// Correct-path demand misses per L1 set.
    pub l1_misses: Vec<u64>,
    /// Speculative side fills (wrong-execution + chained prefetch) per set.
    pub side_fills: Vec<u64>,
    /// Correct-path side hits per set — the sets the side structure relieves.
    pub side_hits: Vec<u64>,
    /// Victim transfers into the side structure per set.
    pub victim_transfers: Vec<u64>,
}

impl SetHeat {
    fn new(sets: usize) -> Self {
        SetHeat {
            l1_accesses: vec![0; sets],
            l1_misses: vec![0; sets],
            side_fills: vec![0; sets],
            side_hits: vec![0; sets],
            victim_transfers: vec![0; sets],
        }
    }

    fn add(&mut self, o: &SetHeat) {
        for (dst, src) in [
            (&mut self.l1_accesses, &o.l1_accesses),
            (&mut self.l1_misses, &o.l1_misses),
            (&mut self.side_fills, &o.side_fills),
            (&mut self.side_hits, &o.side_hits),
            (&mut self.victim_transfers, &o.victim_transfers),
        ] {
            for (d, s) in dst.iter_mut().zip(src.iter()) {
                *d += s;
            }
        }
    }
}

/// The per-data-path ledger.  All addresses are raw byte addresses; the
/// probe normalises to block granularity itself.
#[derive(Clone, Debug)]
pub struct AttrProbe {
    l1_sets: usize,
    block_bytes: u64,
    current_pc: u32,
    /// PC credit carried from a useful speculative hit to the next-line
    /// prefetch it chains within the same access.
    chain_pc: Option<u32>,
    live: FnvMap<u64, LiveLine>,
    pcs: FnvMap<u32, PcStats>,
    totals: AttrTotals,
    timeliness: Log2Histogram,
    sets: SetHeat,
}

impl AttrProbe {
    pub fn new(l1_sets: usize, block_bytes: u64) -> Self {
        let l1_sets = l1_sets.max(1);
        AttrProbe {
            l1_sets,
            block_bytes: block_bytes.max(1),
            current_pc: 0,
            chain_pc: None,
            live: FnvMap::default(),
            pcs: FnvMap::default(),
            totals: AttrTotals::default(),
            timeliness: Log2Histogram::new(),
            sets: SetHeat::new(l1_sets),
        }
    }

    #[inline]
    fn block_of(&self, addr: u64) -> u64 {
        // Block sizes are powers of two in every real geometry; the shift
        // keeps the two calls per demand access off the integer divider.
        if self.block_bytes.is_power_of_two() {
            addr >> self.block_bytes.trailing_zeros()
        } else {
            addr / self.block_bytes
        }
    }

    #[inline]
    fn set_of(&self, addr: u64) -> usize {
        let block = self.block_of(addr);
        let sets = self.l1_sets as u64;
        if sets.is_power_of_two() {
            (block & (sets - 1)) as usize
        } else {
            (block % sets) as usize
        }
    }

    /// Announce the PC of the access about to be presented to the data
    /// path (stores use 0, matching the trace-record convention).
    #[inline]
    pub fn note_pc(&mut self, pc: u32) {
        self.current_pc = pc;
        self.chain_pc = None;
    }

    /// A correct-path demand access resolved against the L1 (`hit` mirrors
    /// the `CacheStats::record` split exactly).
    #[inline]
    pub fn on_l1_demand(&mut self, addr: u64, hit: bool) {
        let set = self.set_of(addr);
        self.sets.l1_accesses[set] += 1;
        if !hit {
            self.sets.l1_misses[set] += 1;
        }
    }

    /// The side structure accepted a fill.  Any line it overwrites at the
    /// same block is closed as wasted first, so every fill opens exactly
    /// one live entry and conservation holds by construction.
    pub fn on_side_fill(&mut self, addr: u64, cycle: u64, origin: FillOrigin) {
        let block = self.block_of(addr);
        if let Some(old) = self.live.remove(&block) {
            self.close_wasted(old);
        }
        let set = self.set_of(addr);
        self.totals.wec_fills += 1;
        let pc = match origin {
            FillOrigin::Wrong => {
                self.totals.fills_wrong += 1;
                self.sets.side_fills[set] += 1;
                self.current_pc
            }
            FillOrigin::Victim => {
                self.totals.fills_victim += 1;
                self.sets.victim_transfers[set] += 1;
                self.current_pc
            }
            FillOrigin::Prefetch => {
                self.totals.fills_prefetch += 1;
                self.sets.side_fills[set] += 1;
                self.chain_pc.unwrap_or(self.current_pc)
            }
        };
        self.live.insert(
            block,
            LiveLine {
                pc,
                fill_cycle: cycle,
                origin,
            },
        );
    }

    /// First correct-path demand hit on a side-structure line: the win.
    pub fn on_side_hit(&mut self, addr: u64, cycle: u64) {
        let set = self.set_of(addr);
        self.sets.side_hits[set] += 1;
        let block = self.block_of(addr);
        let Some(line) = self.live.remove(&block) else {
            return;
        };
        match line.origin {
            FillOrigin::Wrong | FillOrigin::Prefetch => {
                self.totals.useful += 1;
                let dt = cycle.saturating_sub(line.fill_cycle);
                self.timeliness.observe(dt);
                let pc = self.pcs.entry(line.pc).or_default();
                pc.useful += 1;
                pc.timeliness.observe(dt);
                // A chained next-line prefetch issued by this same access
                // inherits the credit of the PC that started the chain.
                self.chain_pc = Some(line.pc);
            }
            FillOrigin::Victim => {
                self.totals.victim_rescued += 1;
            }
        }
    }

    /// A side-structure line was evicted without ever being demanded.
    pub fn on_side_evict(&mut self, addr: u64) {
        let block = self.block_of(addr);
        if let Some(line) = self.live.remove(&block) {
            self.close_wasted(line);
        }
    }

    fn close_wasted(&mut self, line: LiveLine) {
        self.totals.wasted += 1;
        if line.origin != FillOrigin::Victim {
            self.pcs.entry(line.pc).or_default().wasted += 1;
        }
    }

    /// Totals with the lines still alive counted as `still_resident`.
    pub fn snapshot_totals(&self) -> AttrTotals {
        let mut t = self.totals;
        t.still_resident = self.live.len() as u64;
        t
    }
}

/// One row of the report's per-PC credit table.
#[derive(Clone, Copy, Debug)]
pub struct PcRow {
    pub pc: u32,
    pub useful: u64,
    pub wasted: u64,
    /// Median fill→first-hit latency in cycles (0 when never useful).
    pub median_timeliness: u64,
    /// `wasted × block_bytes` — dead bytes this PC pulled in.
    pub pollution_bytes: u64,
}

/// Aggregated attribution for one run: per-TU and global totals, the
/// merged timeliness histogram, the top-PC credit table, and the per-set
/// heatmaps.  Deterministic: building it twice from equal event streams
/// yields byte-identical [`AttributionReport::to_json`] output.
#[derive(Clone, Debug)]
pub struct AttributionReport {
    pub block_bytes: u64,
    pub l1_sets: usize,
    pub totals: AttrTotals,
    pub tus: Vec<AttrTotals>,
    pub timeliness: Log2Histogram,
    pub top_pcs: Vec<PcRow>,
    pub sets: SetHeat,
}

impl AttributionReport {
    /// Fold per-TU probes (in TU order) into one report.
    pub fn from_probes<'a>(probes: impl IntoIterator<Item = &'a AttrProbe>) -> Self {
        let mut tus = Vec::new();
        let mut totals = AttrTotals::default();
        let mut timeliness = Log2Histogram::new();
        let mut pcs: HashMap<u32, PcStats> = HashMap::new();
        let mut sets: Option<SetHeat> = None;
        let mut block_bytes = 0;
        let mut l1_sets = 0;
        for p in probes {
            block_bytes = p.block_bytes;
            l1_sets = p.l1_sets;
            let t = p.snapshot_totals();
            totals.add(&t);
            tus.push(t);
            timeliness.merge(&p.timeliness);
            for (pc, s) in &p.pcs {
                let dst = pcs.entry(*pc).or_default();
                dst.useful += s.useful;
                dst.wasted += s.wasted;
                dst.timeliness.merge(&s.timeliness);
            }
            match sets.as_mut() {
                Some(h) => h.add(&p.sets),
                None => sets = Some(p.sets.clone()),
            }
        }
        let mut top: Vec<(u32, PcStats)> = pcs.into_iter().collect();
        top.sort_by(|(pa, a), (pb, b)| {
            b.useful
                .cmp(&a.useful)
                .then(b.wasted.cmp(&a.wasted))
                .then(pa.cmp(pb))
        });
        top.truncate(TOP_PCS);
        let top_pcs = top
            .into_iter()
            .map(|(pc, s)| PcRow {
                pc,
                useful: s.useful,
                wasted: s.wasted,
                median_timeliness: s.timeliness.quantile(0.5),
                pollution_bytes: s.wasted * block_bytes,
            })
            .collect();
        AttributionReport {
            block_bytes,
            l1_sets,
            totals,
            tus,
            timeliness,
            top_pcs,
            sets: sets.unwrap_or_else(|| SetHeat::new(l1_sets.max(1))),
        }
    }

    /// Does the conservation invariant hold globally and per TU?
    pub fn conserved(&self) -> bool {
        self.totals.conserved() && self.tus.iter().all(AttrTotals::conserved)
    }

    /// Render as one strict `wec-attribution-v1` JSON line (no trailing
    /// newline; callers add one when writing the artifact).
    pub fn to_json(&self) -> String {
        fn totals_json(out: &mut String, t: &AttrTotals, block_bytes: u64) {
            let _ = write!(
                out,
                "{{\"wec_fills\":{},\"fills_wrong\":{},\"fills_victim\":{},\
                 \"fills_prefetch\":{},\"useful\":{},\"wasted\":{},\
                 \"victim_rescued\":{},\"still_resident\":{},\"pollution_bytes\":{}}}",
                t.wec_fills,
                t.fills_wrong,
                t.fills_victim,
                t.fills_prefetch,
                t.useful,
                t.wasted,
                t.victim_rescued,
                t.still_resident,
                t.wasted * block_bytes,
            );
        }
        fn array_json(out: &mut String, vals: &[u64]) {
            out.push('[');
            for (i, v) in vals.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{v}");
            }
            out.push(']');
        }
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"schema\":\"wec-attribution-v1\",\"block_bytes\":{},\
             \"l1_sets\":{},\"n_tus\":{},\"totals\":",
            self.block_bytes,
            self.l1_sets,
            self.tus.len(),
        );
        totals_json(&mut out, &self.totals, self.block_bytes);
        out.push_str(",\"tus\":[");
        for (i, t) in self.tus.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            totals_json(&mut out, t, self.block_bytes);
        }
        out.push_str("],\"timeliness\":");
        out.push_str(&self.timeliness.to_json());
        out.push_str(",\"top_pcs\":[");
        for (i, r) in self.top_pcs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"pc\":{},\"useful\":{},\"wasted\":{},\
                 \"median_timeliness\":{},\"pollution_bytes\":{}}}",
                r.pc, r.useful, r.wasted, r.median_timeliness, r.pollution_bytes,
            );
        }
        out.push_str("],\"sets\":{\"l1_accesses\":");
        array_json(&mut out, &self.sets.l1_accesses);
        out.push_str(",\"l1_misses\":");
        array_json(&mut out, &self.sets.l1_misses);
        out.push_str(",\"side_fills\":");
        array_json(&mut out, &self.sets.side_fills);
        out.push_str(",\"side_hits\":");
        array_json(&mut out, &self.sets.side_hits);
        out.push_str(",\"victim_transfers\":");
        array_json(&mut out, &self.sets.victim_transfers);
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe() -> AttrProbe {
        // 8 sets of 64-byte blocks, like a tiny direct-mapped L1.
        AttrProbe::new(8, 64)
    }

    #[test]
    fn useful_line_credits_its_pc_with_timeliness() {
        let mut p = probe();
        p.note_pc(0x40);
        p.on_side_fill(0x1000, 100, FillOrigin::Wrong);
        p.note_pc(0); // a store in between must not steal credit
        p.on_side_hit(0x1000, 400);
        let t = p.snapshot_totals();
        assert_eq!(t.wec_fills, 1);
        assert_eq!(t.useful, 1);
        assert_eq!(t.still_resident, 0);
        assert!(t.conserved());
        let r = AttributionReport::from_probes([&p]);
        assert_eq!(r.top_pcs.len(), 1);
        assert_eq!(r.top_pcs[0].pc, 0x40);
        assert_eq!(r.top_pcs[0].useful, 1);
        assert_eq!(r.timeliness.max(), 300);
    }

    #[test]
    fn refill_over_a_live_line_closes_it_as_wasted() {
        let mut p = probe();
        p.note_pc(0x10);
        p.on_side_fill(0x2000, 5, FillOrigin::Wrong);
        p.note_pc(0x14);
        p.on_side_fill(0x2000, 9, FillOrigin::Wrong); // same block again
        let t = p.snapshot_totals();
        assert_eq!(t.wec_fills, 2);
        assert_eq!(t.wasted, 1);
        assert_eq!(t.still_resident, 1);
        assert!(t.conserved());
        let r = AttributionReport::from_probes([&p]);
        let row = r.top_pcs.iter().find(|r| r.pc == 0x10).unwrap();
        assert_eq!(row.wasted, 1);
        assert_eq!(row.pollution_bytes, 64);
    }

    #[test]
    fn victim_lines_rescue_without_speculation_credit() {
        let mut p = probe();
        p.note_pc(0x88);
        p.on_side_fill(0x3000, 10, FillOrigin::Victim);
        p.on_side_hit(0x3000, 60);
        let t = p.snapshot_totals();
        assert_eq!(t.victim_rescued, 1);
        assert_eq!(t.useful, 0);
        assert!(t.conserved());
        assert!(AttributionReport::from_probes([&p]).top_pcs.is_empty());
    }

    #[test]
    fn chained_prefetch_inherits_the_originating_pc() {
        let mut p = probe();
        p.note_pc(0x70);
        p.on_side_fill(0x4000, 0, FillOrigin::Wrong);
        // The correct path (different PC) demands it; the hit chains a
        // next-line prefetch that must still credit 0x70.
        p.note_pc(0x90);
        p.on_side_hit(0x4000, 50);
        p.on_side_fill(0x4040, 50, FillOrigin::Prefetch);
        p.on_side_hit(0x4040, 80);
        let r = AttributionReport::from_probes([&p]);
        assert_eq!(r.top_pcs.len(), 1, "both wins belong to one PC");
        assert_eq!(r.top_pcs[0].pc, 0x70);
        assert_eq!(r.top_pcs[0].useful, 2);
    }

    #[test]
    fn eviction_without_use_is_pollution() {
        let mut p = probe();
        p.note_pc(0x20);
        p.on_side_fill(0x5000, 0, FillOrigin::Wrong);
        p.on_side_evict(0x5000);
        p.on_side_evict(0x5000); // double evict must be harmless
        let t = p.snapshot_totals();
        assert_eq!(t.wasted, 1);
        assert!(t.conserved());
    }

    #[test]
    fn set_heatmaps_follow_the_block_mapping() {
        let mut p = probe();
        p.on_l1_demand(0x40, true); // block 1 → set 1
        p.on_l1_demand(0x40 + 8 * 64, false); // wraps back to set 1
        p.note_pc(1);
        p.on_side_fill(0x80, 0, FillOrigin::Wrong); // set 2
        assert_eq!(p.sets.l1_accesses[1], 2);
        assert_eq!(p.sets.l1_misses[1], 1);
        assert_eq!(p.sets.side_fills[2], 1);
    }

    #[test]
    fn report_json_is_strict_and_deterministic() {
        let mut a = probe();
        a.note_pc(3);
        a.on_side_fill(0x100, 0, FillOrigin::Wrong);
        a.on_side_hit(0x100, 9);
        let mut b = probe();
        b.note_pc(7);
        b.on_side_fill(0x200, 1, FillOrigin::Victim);
        let r1 = AttributionReport::from_probes([&a, &b]);
        let r2 = AttributionReport::from_probes([&a, &b]);
        assert!(r1.conserved());
        assert_eq!(r1.to_json(), r2.to_json());
        let json = r1.to_json();
        assert!(json.starts_with("{\"schema\":\"wec-attribution-v1\""));
        assert!(json.contains("\"n_tus\":2"));
        assert!(json.contains("\"top_pcs\":[{\"pc\":3,"));
        assert!(!json.contains(' '), "one strict line, no padding");
    }
}
