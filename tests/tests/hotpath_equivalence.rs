//! Differential regression net for the hot-path data structures.
//!
//! Every workload analog runs at scale 1 under three presets spanning the
//! simulator's feature space (`orig`, `wp`, `wth-wp-wec`) and the resulting
//! [`MachineMetrics`] must match the goldens in `tests/goldens/hotpath/`
//! byte for byte.  The goldens were recorded before the flat-structure
//! overhaul of the membuf / machine / cache hot paths, so any optimization
//! that changes simulated behaviour — even by one cycle — fails here.
//!
//! To re-record after an *intentional* model change:
//!
//! ```text
//! WEC_BLESS=1 cargo test -p integration-tests --test hotpath_equivalence
//! ```
//!
//! and commit the diff (it IS the behaviour change; review it like one).

use std::path::PathBuf;

use wec_core::config::ProcPreset;
use wec_core::metrics::MachineMetrics;
use wec_workloads::{run_and_verify, Bench, Scale};

const PRESETS: [ProcPreset; 3] = [ProcPreset::Orig, ProcPreset::Wp, ProcPreset::WthWpWec];
const N_TUS: usize = 8;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("goldens/hotpath")
}

fn golden_path(bench: Bench, preset: ProcPreset) -> PathBuf {
    // "181.mcf" / "wth-wp-wec" → "181.mcf__wth-wp-wec.kv"
    golden_dir().join(format!("{}__{}.kv", bench.name(), preset.name()))
}

fn run_point(bench: Bench, preset: ProcPreset) -> MachineMetrics {
    let w = bench.build(Scale::SMOKE);
    run_and_verify(&w, preset.machine(N_TUS))
        .unwrap_or_else(|e| panic!("{} under {}: {e}", w.name, preset.name()))
        .metrics
}

#[test]
fn metrics_match_recorded_goldens() {
    let bless = std::env::var_os("WEC_BLESS").is_some();
    if bless {
        std::fs::create_dir_all(golden_dir()).unwrap();
    }

    // All 18 points, fanned over host threads (each simulation is
    // single-threaded and deterministic).
    let points: Vec<(Bench, ProcPreset)> = Bench::ALL
        .iter()
        .flat_map(|&b| PRESETS.iter().map(move |&p| (b, p)))
        .collect();
    let results: Vec<(Bench, ProcPreset, MachineMetrics)> = std::thread::scope(|s| {
        let handles: Vec<_> = points
            .iter()
            .map(|&(b, p)| s.spawn(move || (b, p, run_point(b, p))))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut failures = Vec::new();
    for (bench, preset, got) in results {
        let path = golden_path(bench, preset);
        if bless {
            std::fs::write(&path, got.to_kv()).unwrap();
            continue;
        }
        let recorded = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden {} ({e}); record it with WEC_BLESS=1",
                path.display()
            )
        });
        let want = MachineMetrics::from_kv(&recorded)
            .unwrap_or_else(|e| panic!("corrupt golden {}: {e}", path.display()));
        if got != want {
            // Report the exact divergent fields, not just "mismatch".
            let (got_kv, want_kv) = (got.to_kv(), want.to_kv());
            let diff: Vec<String> = got_kv
                .lines()
                .zip(want_kv.lines())
                .filter(|(g, w)| g != w)
                .map(|(g, w)| format!("    got `{g}` want `{w}`"))
                .collect();
            failures.push(format!(
                "{} under {}:\n{}",
                bench.name(),
                preset.name(),
                diff.join("\n")
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "hot-path metrics diverged from goldens:\n{}",
        failures.join("\n")
    );
}

#[test]
fn goldens_cover_every_point() {
    if std::env::var_os("WEC_BLESS").is_some() {
        return; // metrics_match_recorded_goldens is writing them right now
    }
    for &bench in &Bench::ALL {
        for &preset in &PRESETS {
            let path = golden_path(bench, preset);
            assert!(path.is_file(), "golden missing: {}", path.display());
        }
    }
}
