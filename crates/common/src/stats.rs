//! Statistics primitives shared by every component of the simulator.
//!
//! Components expose their counters through [`StatSet`] so the experiment
//! harness can dump any component uniformly, and the paper's summary metrics
//! (speedups, miss-rate deltas, equal-importance averages) are computed by
//! the helpers at the bottom.

use std::fmt;

/// A monotonically increasing event counter.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct Counter(pub u64);

impl Counter {
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A named collection of counter snapshots, used for uniform reporting.
#[derive(Clone, Debug, Default)]
pub struct StatSet {
    entries: Vec<(String, u64)>,
}

impl StatSet {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one named value. Later entries with the same name are kept too
    /// (callers namespace their keys, e.g. `"tu0.l1d.misses"`).
    pub fn push(&mut self, name: impl Into<String>, value: u64) {
        self.entries.push((name.into(), value));
    }

    /// First value recorded under `name`, if any.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Sum of every entry whose name ends with `suffix` (aggregates per-TU
    /// counters like `"*.l1d.misses"`).
    pub fn sum_suffix(&self, suffix: &str) -> u64 {
        self.entries
            .iter()
            .filter(|(n, _)| n.ends_with(suffix))
            .map(|&(_, v)| v)
            .sum()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), *v))
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Merge another set under a prefix: `"l1d.misses"` becomes
    /// `"tu3.l1d.misses"` for `prefix = "tu3"`.
    pub fn absorb(&mut self, prefix: &str, other: &StatSet) {
        for (n, v) in other.iter() {
            self.entries.push((format!("{prefix}.{n}"), v));
        }
    }
}

/// Speedup of `new` relative to `base`, as the paper reports it:
/// `base_time / new_time`.  A value > 1 means `new` is faster.
#[inline]
pub fn speedup(base_cycles: u64, new_cycles: u64) -> f64 {
    assert!(new_cycles > 0, "zero execution time");
    base_cycles as f64 / new_cycles as f64
}

/// Relative speedup in percent, the y-axis of the paper's Figures 9–12, 15,
/// 16: `(base/new - 1) * 100`.
#[inline]
pub fn relative_speedup_pct(base_cycles: u64, new_cycles: u64) -> f64 {
    (speedup(base_cycles, new_cycles) - 1.0) * 100.0
}

/// Normalized execution time (Figures 13, 14): `new/base`, < 1 is faster.
#[inline]
pub fn normalized_time(base_cycles: u64, new_cycles: u64) -> f64 {
    new_cycles as f64 / base_cycles as f64
}

/// The paper's cross-benchmark average (§5, citing Lilja's *Measuring
/// Computer Performance*): an execution-time-weighted average arranged so
/// every benchmark counts equally regardless of its absolute runtime.  With
/// per-benchmark speedups `s_i = base_i / new_i`, weighting each benchmark
/// equally gives the arithmetic mean of the `s_i`.
pub fn equal_importance_speedup(pairs: &[(u64, u64)]) -> f64 {
    assert!(!pairs.is_empty());
    pairs
        .iter()
        .map(|&(base, new)| speedup(base, new))
        .sum::<f64>()
        / pairs.len() as f64
}

/// Percent change of `new` relative to `base` (used for the Figure 17 traffic
/// and miss-count comparisons). Positive = increase.
#[inline]
pub fn pct_change(base: u64, new: u64) -> f64 {
    if base == 0 {
        return 0.0;
    }
    (new as f64 - base as f64) / base as f64 * 100.0
}

/// Percent *reduction* of `new` relative to `base` (Figure 17's miss-count
/// reduction axis). Positive = `new` is smaller.
#[inline]
pub fn pct_reduction(base: u64, new: u64) -> f64 {
    -pct_change(base, new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_increments() {
        let mut c = Counter::default();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.to_string(), "5");
    }

    #[test]
    fn statset_roundtrip_and_suffix_sum() {
        let mut s = StatSet::new();
        s.push("tu0.l1d.misses", 10);
        s.push("tu1.l1d.misses", 32);
        s.push("tu0.l1d.hits", 90);
        assert_eq!(s.get("tu1.l1d.misses"), Some(32));
        assert_eq!(s.get("nope"), None);
        assert_eq!(s.sum_suffix(".l1d.misses"), 42);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn absorb_prefixes_names() {
        let mut inner = StatSet::new();
        inner.push("misses", 3);
        let mut outer = StatSet::new();
        outer.absorb("tu7.l1d", &inner);
        assert_eq!(outer.get("tu7.l1d.misses"), Some(3));
    }

    #[test]
    fn speedup_math() {
        assert!((speedup(200, 100) - 2.0).abs() < 1e-12);
        assert!((relative_speedup_pct(110, 100) - 10.0).abs() < 1e-9);
        assert!((normalized_time(200, 150) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn equal_importance_is_mean_of_speedups() {
        // One benchmark sped up 2x, one unchanged => average 1.5x.
        let avg = equal_importance_speedup(&[(200, 100), (500, 500)]);
        assert!((avg - 1.5).abs() < 1e-12);
    }

    #[test]
    fn pct_change_and_reduction_are_mirrors() {
        assert!((pct_change(100, 130) - 30.0).abs() < 1e-12);
        assert!((pct_reduction(100, 27) - 73.0).abs() < 1e-12);
        assert_eq!(pct_change(0, 5), 0.0);
    }

    #[test]
    #[should_panic(expected = "zero execution time")]
    fn speedup_rejects_zero_time() {
        speedup(1, 0);
    }
}
