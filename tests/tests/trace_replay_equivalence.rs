//! The trace subsystem's core claim, end to end: replaying a captured
//! trace at the captured cache configuration reproduces the full-timing
//! run's cache counters *exactly* — and capturing does not perturb the
//! run it records.

use wec_core::config::ProcPreset;
use wec_trace::{cache_stat_subset, capture_run, kv_string, replay, CaptureMeta, Trace};
use wec_workloads::{run_and_verify, Bench, Scale};

fn meta(bench: Bench) -> CaptureMeta {
    CaptureMeta {
        bench: bench.name().to_string(),
        scale_units: Scale::SMOKE.units,
        cfg_label: "test/wth-wp-wec/t4".to_string(),
    }
}

#[test]
fn capture_does_not_perturb_the_run() {
    let w = Bench::Mcf.build(Scale::SMOKE);
    let cfg = ProcPreset::WthWpWec.machine(4);
    let untraced = run_and_verify(&w, cfg.clone()).unwrap();
    let (traced, trace) = capture_run(&w, cfg, &meta(Bench::Mcf)).unwrap();
    assert_eq!(untraced.cycles, traced.cycles);
    assert_eq!(untraced.checksum, traced.checksum);
    assert_eq!(
        cache_stat_subset(&untraced.stats),
        cache_stat_subset(&traced.stats)
    );
    assert!(trace.header.total_records > 0);
}

#[test]
fn replay_reproduces_cache_counters_exactly() {
    // Two benches with different speculation profiles: mcf (pointer
    // chasing, heavy wrong-path traffic) and gzip (streaming).
    for bench in [Bench::Mcf, Bench::Gzip] {
        let w = bench.build(Scale::SMOKE);
        let cfg = ProcPreset::WthWpWec.machine(4);
        let (full, trace) = capture_run(&w, cfg.clone(), &meta(bench)).unwrap();
        let replayed = replay(&trace, &cfg).unwrap();
        assert_eq!(replayed.records, trace.header.total_records);

        let golden = cache_stat_subset(&full.stats);
        let got = cache_stat_subset(&replayed.stats);
        // Byte-identical, down to the rendered kv artifact.
        assert_eq!(
            kv_string(&golden),
            kv_string(&got),
            "{} replay drifted from the full-timing goldens",
            bench.name()
        );
        // The subset is the real cache counter set, not empty or trivial.
        assert!(golden
            .iter()
            .any(|(k, v)| k == "l2.demand_accesses" && *v > 0));
        assert!(golden
            .iter()
            .any(|(k, v)| k.ends_with(".l1d.demand_accesses") && *v > 0));
    }
}

#[test]
fn replay_survives_disk_round_trip_and_geometry_changes() {
    let w = Bench::Mcf.build(Scale::SMOKE);
    let cfg = ProcPreset::WthWpWec.machine(4);
    let (full, trace) = capture_run(&w, cfg.clone(), &meta(Bench::Mcf)).unwrap();

    let dir = std::env::temp_dir().join(format!("wec-trace-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("mcf.wectrace");
    trace.write_to(&path).unwrap();
    let reloaded = Trace::read_from(&path).unwrap();
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(reloaded.identity(), trace.identity());
    assert_eq!(reloaded.verify().unwrap(), trace.header.total_records);

    // Captured config through the disk round trip: still exact.
    let at_captured = replay(&reloaded, &cfg).unwrap();
    assert_eq!(
        cache_stat_subset(&full.stats),
        cache_stat_subset(&at_captured.stats)
    );

    // A different WEC geometry replays fine and (being a different cache)
    // reports a different miss picture.
    let mut bigger = ProcPreset::WthWpWec.machine(4);
    bigger.l1d.side_entries = 32;
    let at_bigger = replay(&reloaded, &bigger).unwrap();
    assert_eq!(at_bigger.records, trace.header.total_records);
    assert_ne!(
        cache_stat_subset(&full.stats),
        cache_stat_subset(&at_bigger.stats)
    );

    // Mismatched TU count is a hard error, not silent truncation.
    assert!(replay(&reloaded, &ProcPreset::WthWpWec.machine(8)).is_err());
}
