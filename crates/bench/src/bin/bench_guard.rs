//! Guard the hot-loop microbenchmarks against performance regressions.
//!
//! ```text
//! WEC_BENCH_JSON=/tmp/fresh.json cargo bench -p wec-bench --bench bench_hotloop
//! bench_guard /tmp/fresh.json [--baseline BENCH_hotloop.json] [--max-regress 0.25]
//!
//! cargo run --release -p wec-bench --example replay_scaling > /tmp/scaling.json
//! bench_guard --trace /tmp/scaling.json [--baseline BENCH_trace.json] [--max-regress 0.25]
//!
//! cargo run --release -p wec-serve --bin loadgen -- --addr ... --out /tmp/fresh_serve.json
//! bench_guard --serve /tmp/fresh_serve.json [--baseline BENCH_serve.json] [--max-regress 0.25]
//! ```
//!
//! Default mode compares each fresh `median_ns` against the checked-in
//! baseline's `after_median_ns` (matched by benchmark name).  A bench
//! whose fresh median exceeds the baseline by more than `--max-regress`
//! (default 25%) is a regression.  When the fresh capture carries both
//! the untraced mcf smoke entry and its attribution-on twin, their ratio
//! is additionally checked: attribution overhead beyond 10% warns (and
//! fails in strict mode) — the ledger must stay cheap enough to leave on.
//!
//! `--trace` mode guards the parallel replay engine instead: the fresh
//! side is one `replay_scaling` JSON object, the baseline is
//! `BENCH_trace.json`'s `parallel` record, and a regression is aggregate
//! throughput falling more than `--max-regress` below the baseline's
//! `aggregate_records_per_s` (wall-clock sweep seconds are reported
//! informationally — they move with trace size, throughput is the
//! machine-comparable number).
//!
//! `--serve` mode guards the serve daemon's observed tail latency: both
//! sides are `wec-bench-serve-v1` loadgen reports, and a regression is the
//! fresh `latency_us.p99` exceeding the baseline's by more than
//! `--max-regress` — the check CI runs with observability (access log +
//! sampler) enabled, so the telemetry layer can't silently tax the tail.
//! Throughput is reported informationally (it moves with the `--rate` the
//! generator asked for, so the p99 is the comparable number).
//!
//! Timing on shared CI hosts is noisy, so regressions only **warn** by
//! default; set `WEC_BENCH_GUARD_STRICT=1` to turn them into a non-zero
//! exit for gating.  Benches present on only one side are reported
//! informationally and never fail the guard.
//!
//! Exit codes: `0` ok (or regressions in warn mode), `1` regressions in
//! strict mode, `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use wec_telemetry::json::{self, Json};

fn usage() -> ExitCode {
    eprintln!(
        "usage: bench_guard [--trace | --serve] FRESH.json [--baseline PATH] [--max-regress FRAC]"
    );
    ExitCode::from(2)
}

fn fail(msg: String) -> ExitCode {
    eprintln!("bench_guard: {msg}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut fresh_path: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut trace_mode = false;
    let mut serve_mode = false;
    let mut max_regress = 0.25f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--trace" => trace_mode = true,
            "--serve" => serve_mode = true,
            "--baseline" => {
                let Some(p) = it.next() else { return usage() };
                baseline_path = Some(p.into());
            }
            "--max-regress" => {
                let Some(x) = it.next().and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                max_regress = x;
            }
            other if !other.starts_with('-') && fresh_path.is_none() => {
                fresh_path = Some(other.into())
            }
            _ => return usage(),
        }
    }
    let Some(fresh_path) = fresh_path else {
        return usage();
    };
    if trace_mode && serve_mode {
        return usage();
    }
    let repo_default = if trace_mode {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_trace.json")
    } else if serve_mode {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json")
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_hotloop.json")
    };
    let baseline_path = baseline_path.unwrap_or_else(|| PathBuf::from(repo_default));
    if trace_mode {
        return guard_trace(&fresh_path, &baseline_path, max_regress);
    }
    if serve_mode {
        return guard_serve(&fresh_path, &baseline_path, max_regress);
    }

    // Fresh side: one JSON object per line, as the bench harness appends.
    let fresh_text = match std::fs::read_to_string(&fresh_path) {
        Ok(t) => t,
        Err(e) => return fail(format!("{}: {e}", fresh_path.display())),
    };
    let mut fresh: Vec<(String, f64)> = Vec::new();
    for line in fresh_text.lines().filter(|l| !l.trim().is_empty()) {
        let v = match json::parse(line) {
            Ok(v) => v,
            Err(e) => return fail(format!("{}: {e}", fresh_path.display())),
        };
        let (Some(name), Some(median)) = (
            v.get("name").and_then(Json::as_str),
            v.get("median_ns").and_then(Json::as_f64),
        ) else {
            return fail(format!(
                "{}: line without name/median_ns: {line}",
                fresh_path.display()
            ));
        };
        fresh.push((name.to_string(), median));
    }
    if fresh.is_empty() {
        return fail(format!("{}: no benchmark lines", fresh_path.display()));
    }

    // Baseline side: the checked-in record's "after" medians.
    let base_text = match std::fs::read_to_string(&baseline_path) {
        Ok(t) => t,
        Err(e) => return fail(format!("{}: {e}", baseline_path.display())),
    };
    let base = match json::parse(&base_text) {
        Ok(v) => v,
        Err(e) => return fail(format!("{}: {e}", baseline_path.display())),
    };
    let Some(entries) = base.get("microbenchmarks").and_then(Json::as_array) else {
        return fail(format!(
            "{}: no \"microbenchmarks\" array",
            baseline_path.display()
        ));
    };
    let mut baseline: Vec<(String, f64)> = Vec::new();
    for e in entries {
        let (Some(name), Some(median)) = (
            e.get("name").and_then(Json::as_str),
            e.get("after_median_ns").and_then(Json::as_f64),
        ) else {
            return fail(format!(
                "{}: microbenchmark entry without name/after_median_ns",
                baseline_path.display()
            ));
        };
        baseline.push((name.to_string(), median));
    }

    let strict = std::env::var("WEC_BENCH_GUARD_STRICT").is_ok_and(|v| v == "1");
    let mut regressions = 0usize;
    let mut compared = 0usize;
    println!(
        "bench_guard: {} fresh vs {} (threshold +{:.0}%, {})",
        fresh_path.display(),
        baseline_path.display(),
        max_regress * 100.0,
        if strict { "strict" } else { "warn-only" }
    );
    for (name, median) in &fresh {
        let Some((_, base_median)) = baseline.iter().find(|(n, _)| n == name) else {
            println!("  new   {name}: {median:.1} ns (no baseline entry)");
            continue;
        };
        compared += 1;
        let ratio = median / base_median;
        let verdict = if ratio > 1.0 + max_regress {
            regressions += 1;
            "REGRESSED"
        } else {
            "ok"
        };
        println!("  {verdict:<9} {name}: {median:.1} ns vs {base_median:.1} ns ({ratio:.2}x)");
    }
    for (name, _) in &baseline {
        if !fresh.iter().any(|(n, _)| n == name) {
            println!("  only in baseline: {name}");
        }
    }
    if compared == 0 {
        return fail("no benchmark matched the baseline by name".to_string());
    }
    // Attribution-overhead guard: when the fresh capture carries both the
    // untraced mcf smoke entry and its attribution-on twin, the ledger
    // must not tax the cycle loop by more than 10% — same warn/strict
    // contract as the capture-overhead guard in the bench itself.
    let lookup = |name: &str| fresh.iter().find(|(n, _)| n == name).map(|&(_, m)| m);
    if let (Some(off), Some(on)) = (
        lookup("hotloop/simulate mcf smoke (wth-wp-wec, 8 TU)"),
        lookup("hotloop/simulate mcf smoke (wth-wp-wec, attribution on)"),
    ) {
        let overhead = (on / off - 1.0) * 100.0;
        if overhead > 10.0 {
            regressions += 1;
            println!(
                "  REGRESSED attribution overhead {overhead:.1}% (>10%): \
                 {off:.1} ns untraced vs {on:.1} ns attribution-on"
            );
        } else {
            println!(
                "  ok        attribution overhead {overhead:.1}% \
                 ({off:.1} ns untraced vs {on:.1} ns attribution-on)"
            );
        }
    }
    if regressions > 0 {
        if strict {
            eprintln!("bench_guard: {regressions} regression(s) beyond threshold");
            return ExitCode::from(1);
        }
        eprintln!(
            "bench_guard: {regressions} regression(s) beyond threshold \
             (warn-only; set WEC_BENCH_GUARD_STRICT=1 to gate)"
        );
    }
    ExitCode::SUCCESS
}

/// Pull `latency_us.p99` and `jobs_per_sec` out of a `wec-bench-serve-v1`
/// loadgen report.
fn serve_report(path: &PathBuf) -> Result<(f64, Option<f64>), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let v = json::parse(text.trim()).map_err(|e| format!("{}: {e}", path.display()))?;
    if v.get("schema").and_then(Json::as_str) != Some("wec-bench-serve-v1") {
        return Err(format!(
            "{}: not a wec-bench-serve-v1 loadgen report",
            path.display()
        ));
    }
    let p99 = v
        .get("latency_us")
        .and_then(|l| l.get("p99"))
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("{}: no latency_us.p99", path.display()))?;
    Ok((p99, v.get("jobs_per_sec").and_then(Json::as_f64)))
}

/// `--serve` mode: fresh loadgen report vs the checked-in serve baseline.
/// The p99 latency gates; throughput is informational.
fn guard_serve(fresh_path: &PathBuf, baseline_path: &PathBuf, max_regress: f64) -> ExitCode {
    let (fresh_p99, fresh_rate) = match serve_report(fresh_path) {
        Ok(r) => r,
        Err(e) => return fail(e),
    };
    let (base_p99, base_rate) = match serve_report(baseline_path) {
        Ok(r) => r,
        Err(e) => return fail(e),
    };

    let strict = std::env::var("WEC_BENCH_GUARD_STRICT").is_ok_and(|v| v == "1");
    println!(
        "bench_guard --serve: {} vs {} (threshold +{:.0}%, {})",
        fresh_path.display(),
        baseline_path.display(),
        max_regress * 100.0,
        if strict { "strict" } else { "warn-only" }
    );
    let ratio = fresh_p99 / base_p99.max(1.0);
    let regressed = ratio > 1.0 + max_regress;
    println!(
        "  {:<9} serve p99 latency: {fresh_p99:.0} us vs {base_p99:.0} us baseline ({ratio:.2}x)",
        if regressed { "REGRESSED" } else { "ok" }
    );
    if let (Some(f), Some(b)) = (fresh_rate, base_rate) {
        println!(
            "  info      throughput: {f:.1} jobs/s vs {b:.1} baseline (moves with --rate; not gated)"
        );
    }
    if regressed {
        if strict {
            eprintln!("bench_guard: serve p99 latency regressed beyond threshold");
            return ExitCode::from(1);
        }
        eprintln!(
            "bench_guard: serve p99 latency regressed beyond threshold \
             (warn-only; set WEC_BENCH_GUARD_STRICT=1 to gate)"
        );
    }
    ExitCode::SUCCESS
}

/// `--trace` mode: fresh `replay_scaling` output vs the baseline's
/// `parallel` record.  Throughput gates; wall-clock is informational.
fn guard_trace(fresh_path: &PathBuf, baseline_path: &PathBuf, max_regress: f64) -> ExitCode {
    let fresh_text = match std::fs::read_to_string(fresh_path) {
        Ok(t) => t,
        Err(e) => return fail(format!("{}: {e}", fresh_path.display())),
    };
    let fresh = match json::parse(fresh_text.trim()) {
        Ok(v) => v,
        Err(e) => return fail(format!("{}: {e}", fresh_path.display())),
    };
    let Some(fresh_rps) = fresh.get("aggregate_records_per_s").and_then(Json::as_f64) else {
        return fail(format!(
            "{}: no \"aggregate_records_per_s\" (not replay_scaling output?)",
            fresh_path.display()
        ));
    };
    let fresh_sweep = fresh.get("best_sweep_s").and_then(Json::as_f64);

    let base_text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => return fail(format!("{}: {e}", baseline_path.display())),
    };
    let base = match json::parse(&base_text) {
        Ok(v) => v,
        Err(e) => return fail(format!("{}: {e}", baseline_path.display())),
    };
    let Some(parallel) = base.get("parallel") else {
        return fail(format!(
            "{}: no \"parallel\" record (regenerate with replay_scaling)",
            baseline_path.display()
        ));
    };
    let Some(base_rps) = parallel
        .get("aggregate_records_per_s")
        .and_then(Json::as_f64)
    else {
        return fail(format!(
            "{}: parallel record without aggregate_records_per_s",
            baseline_path.display()
        ));
    };

    let strict = std::env::var("WEC_BENCH_GUARD_STRICT").is_ok_and(|v| v == "1");
    println!(
        "bench_guard --trace: {} vs {} (threshold -{:.0}%, {})",
        fresh_path.display(),
        baseline_path.display(),
        max_regress * 100.0,
        if strict { "strict" } else { "warn-only" }
    );
    let ratio = fresh_rps / base_rps.max(1.0);
    let regressed = ratio < 1.0 - max_regress;
    println!(
        "  {:<9} parallel replay throughput: {fresh_rps:.0} records/s vs {base_rps:.0} baseline ({ratio:.2}x)",
        if regressed { "REGRESSED" } else { "ok" }
    );
    if let (Some(fresh_s), Some(base_s)) = (
        fresh_sweep,
        parallel.get("best_sweep_s").and_then(Json::as_f64),
    ) {
        println!("  info      best sweep: {fresh_s:.2}s vs {base_s:.2}s baseline (wall-clock moves with trace size; not gated)");
    }
    if regressed {
        if strict {
            eprintln!("bench_guard: parallel replay throughput regressed beyond threshold");
            return ExitCode::from(1);
        }
        eprintln!(
            "bench_guard: parallel replay throughput regressed beyond threshold \
             (warn-only; set WEC_BENCH_GUARD_STRICT=1 to gate)"
        );
    }
    ExitCode::SUCCESS
}
