//! The WISA-64 instruction set.
//!
//! A deliberately small RISC ISA (it only has to carry six workloads), plus
//! the superthreaded extensions from the paper's execution model.  Branch and
//! jump targets are absolute *instruction indices* into the text segment —
//! the machine's PC counts instructions, not bytes.

use crate::reg::{FReg, Reg};

/// Integer ALU operations (register-register and register-immediate forms).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum AluOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Sll,
    Srl,
    Sra,
    /// Set-less-than, signed: `rd = (rs1 as i64) < (rs2 as i64)`.
    Slt,
    /// Set-less-than, unsigned.
    Sltu,
}

impl AluOp {
    pub const ALL: [AluOp; 13] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::Div,
        AluOp::Rem,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Sll,
        AluOp::Srl,
        AluOp::Sra,
        AluOp::Slt,
        AluOp::Sltu,
    ];

    /// Assembler mnemonic (immediate forms append `i`).
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::Div => "div",
            AluOp::Rem => "rem",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Sll => "sll",
            AluOp::Srl => "srl",
            AluOp::Sra => "sra",
            AluOp::Slt => "slt",
            AluOp::Sltu => "sltu",
        }
    }
}

/// Floating-point operations on `f64` registers.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum FpuOp {
    Add,
    Sub,
    Mul,
    Div,
}

impl FpuOp {
    pub const ALL: [FpuOp; 4] = [FpuOp::Add, FpuOp::Sub, FpuOp::Mul, FpuOp::Div];

    pub fn mnemonic(self) -> &'static str {
        match self {
            FpuOp::Add => "fadd",
            FpuOp::Sub => "fsub",
            FpuOp::Mul => "fmul",
            FpuOp::Div => "fdiv",
        }
    }
}

/// Floating-point comparisons; the boolean result lands in an integer register.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum FCmpOp {
    Eq,
    Lt,
    Le,
}

impl FCmpOp {
    pub const ALL: [FCmpOp; 3] = [FCmpOp::Eq, FCmpOp::Lt, FCmpOp::Le];

    pub fn mnemonic(self) -> &'static str {
        match self {
            FCmpOp::Eq => "feq",
            FCmpOp::Lt => "flt",
            FCmpOp::Le => "fle",
        }
    }
}

/// Conditional-branch comparisons on integer registers.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum BranchCond {
    Eq,
    Ne,
    Lt,
    Ge,
    Ltu,
    Geu,
}

impl BranchCond {
    pub const ALL: [BranchCond; 6] = [
        BranchCond::Eq,
        BranchCond::Ne,
        BranchCond::Lt,
        BranchCond::Ge,
        BranchCond::Ltu,
        BranchCond::Geu,
    ];

    pub fn mnemonic(self) -> &'static str {
        match self {
            BranchCond::Eq => "beq",
            BranchCond::Ne => "bne",
            BranchCond::Lt => "blt",
            BranchCond::Ge => "bge",
            BranchCond::Ltu => "bltu",
            BranchCond::Geu => "bgeu",
        }
    }
}

/// Integer load widths.  `W` sign-extends, `B` zero-extends.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum LoadKind {
    /// 8-byte doubleword.
    D,
    /// 4-byte word, sign-extended.
    W,
    /// 1 byte, zero-extended.
    B,
}

impl LoadKind {
    #[inline]
    pub fn bytes(self) -> u64 {
        match self {
            LoadKind::D => 8,
            LoadKind::W => 4,
            LoadKind::B => 1,
        }
    }
}

/// Integer store widths.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum StoreKind {
    D,
    W,
    B,
}

impl StoreKind {
    #[inline]
    pub fn bytes(self) -> u64 {
        match self {
            StoreKind::D => 8,
            StoreKind::W => 4,
            StoreKind::B => 1,
        }
    }
}

/// Which functional unit class executes an instruction (paper Table 3 sizes
/// the per-TU pools of these).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum FuClass {
    IntAlu,
    IntMul,
    IntDiv,
    FpAlu,
    FpMul,
    FpDiv,
    /// Load/store unit — contends for L1 data-cache ports.
    Mem,
    /// Zero-latency at execute (direct jumps, nop, STA markers resolved at
    /// commit); still occupies an issue slot.
    None,
}

/// One WISA-64 instruction.
///
/// `target`/`body`/`seq` fields are absolute instruction indices.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Inst {
    /// `op rd, rs1, rs2`
    Alu {
        op: AluOp,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    /// `opi rd, rs1, imm`
    AluImm {
        op: AluOp,
        rd: Reg,
        rs1: Reg,
        imm: i32,
    },
    /// `li rd, imm` — load a 48-bit signed immediate.
    Li {
        rd: Reg,
        imm: i64,
    },
    /// `fop fd, fs1, fs2`
    Fpu {
        op: FpuOp,
        fd: FReg,
        fs1: FReg,
        fs2: FReg,
    },
    /// `fcmp rd, fs1, fs2`
    FCmp {
        op: FCmpOp,
        rd: Reg,
        fs1: FReg,
        fs2: FReg,
    },
    /// `cvtif fd, rs` — signed integer to double.
    CvtIF {
        fd: FReg,
        rs: Reg,
    },
    /// `cvtfi rd, fs` — double to signed integer (truncating).
    CvtFI {
        rd: Reg,
        fs: FReg,
    },
    /// `ld/lw/lbu rd, off(base)`
    Load {
        kind: LoadKind,
        rd: Reg,
        base: Reg,
        off: i32,
    },
    /// `fld fd, off(base)`
    FLoad {
        fd: FReg,
        base: Reg,
        off: i32,
    },
    /// `sd/sw/sb rs, off(base)`
    Store {
        kind: StoreKind,
        rs: Reg,
        base: Reg,
        off: i32,
    },
    /// `fsd fs, off(base)`
    FStore {
        fs: FReg,
        base: Reg,
        off: i32,
    },
    /// `bCC rs1, rs2, target`
    Branch {
        cond: BranchCond,
        rs1: Reg,
        rs2: Reg,
        target: u32,
    },
    /// `j target`
    Jump {
        target: u32,
    },
    /// `jal rd, target` — call; `rd` receives the return instruction index.
    Jal {
        rd: Reg,
        target: u32,
    },
    /// `jr rs` — indirect jump / return.
    Jr {
        rs: Reg,
    },
    Nop,
    /// Stop the machine (sequential mode only).
    Halt,

    // ------- superthreaded extensions (take effect at commit) -------
    /// Enter parallel region `region`; kills any leftover wrong threads.
    /// Falls through: the next instruction starts the first thread's body.
    Begin {
        region: u16,
    },
    /// Speculatively fork the successor thread at instruction `body`,
    /// forwarding the integer registers selected by `mask` (bit i = rI).
    Fork {
        mask: u32,
        body: u32,
    },
    /// This iteration satisfies the loop exit: kill (or mark wrong) all
    /// successor threads, then continue sequential execution at `seq`.
    Abort {
        seq: u32,
    },
    /// TSAG stage: announce a target-store address to downstream threads.
    TsAnnounce {
        base: Reg,
        off: i32,
    },
    /// TSAG stage complete (passes the TSAG_DONE flag down the ring).
    TsagDone,
    /// End of the thread body; the thread enters its write-back stage.
    ThreadEnd,
}

impl Inst {
    /// Destination integer register, if any (excluding the hardwired zero).
    pub fn dest_ireg(&self) -> Option<Reg> {
        let rd = match *self {
            Inst::Alu { rd, .. }
            | Inst::AluImm { rd, .. }
            | Inst::Li { rd, .. }
            | Inst::FCmp { rd, .. }
            | Inst::CvtFI { rd, .. }
            | Inst::Load { rd, .. }
            | Inst::Jal { rd, .. } => rd,
            _ => return None,
        };
        (!rd.is_zero()).then_some(rd)
    }

    /// Destination floating-point register, if any.
    pub fn dest_freg(&self) -> Option<FReg> {
        match *self {
            Inst::Fpu { fd, .. } | Inst::CvtIF { fd, .. } | Inst::FLoad { fd, .. } => Some(fd),
            _ => None,
        }
    }

    /// Integer source registers (up to two, in operand order).
    pub fn src_iregs(&self) -> [Option<Reg>; 2] {
        match *self {
            Inst::Alu { rs1, rs2, .. } => [Some(rs1), Some(rs2)],
            Inst::AluImm { rs1, .. } => [Some(rs1), None],
            Inst::CvtIF { rs, .. } => [Some(rs), None],
            Inst::Load { base, .. } | Inst::FLoad { base, .. } => [Some(base), None],
            Inst::Store { rs, base, .. } => [Some(rs), Some(base)],
            Inst::FStore { base, .. } => [Some(base), None],
            Inst::Branch { rs1, rs2, .. } => [Some(rs1), Some(rs2)],
            Inst::Jr { rs } => [Some(rs), None],
            Inst::TsAnnounce { base, .. } => [Some(base), None],
            _ => [None, None],
        }
    }

    /// Floating-point source registers (up to two).
    pub fn src_fregs(&self) -> [Option<FReg>; 2] {
        match *self {
            Inst::Fpu { fs1, fs2, .. } | Inst::FCmp { fs1, fs2, .. } => [Some(fs1), Some(fs2)],
            Inst::CvtFI { fs, .. } => [Some(fs), None],
            Inst::FStore { fs, .. } => [Some(fs), None],
            _ => [None, None],
        }
    }

    #[inline]
    pub fn is_load(&self) -> bool {
        matches!(self, Inst::Load { .. } | Inst::FLoad { .. })
    }

    #[inline]
    pub fn is_store(&self) -> bool {
        matches!(self, Inst::Store { .. } | Inst::FStore { .. })
    }

    #[inline]
    pub fn is_mem(&self) -> bool {
        self.is_load() || self.is_store()
    }

    /// Access width in bytes for memory operations.
    pub fn mem_bytes(&self) -> Option<u64> {
        match *self {
            Inst::Load { kind, .. } => Some(kind.bytes()),
            Inst::Store { kind, .. } => Some(kind.bytes()),
            Inst::FLoad { .. } | Inst::FStore { .. } => Some(8),
            _ => None,
        }
    }

    /// Address offset for memory operations and `tsannounce`.
    pub fn mem_offset(&self) -> Option<i32> {
        match *self {
            Inst::Load { off, .. }
            | Inst::FLoad { off, .. }
            | Inst::Store { off, .. }
            | Inst::FStore { off, .. }
            | Inst::TsAnnounce { off, .. } => Some(off),
            _ => None,
        }
    }

    /// Conditional branch?
    #[inline]
    pub fn is_cond_branch(&self) -> bool {
        matches!(self, Inst::Branch { .. })
    }

    /// Any instruction that can redirect the PC (for the fetch stage).
    #[inline]
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Inst::Branch { .. } | Inst::Jump { .. } | Inst::Jal { .. } | Inst::Jr { .. }
        )
    }

    /// Superthreaded extension instruction?
    #[inline]
    pub fn is_sta(&self) -> bool {
        matches!(
            self,
            Inst::Begin { .. }
                | Inst::Fork { .. }
                | Inst::Abort { .. }
                | Inst::TsAnnounce { .. }
                | Inst::TsagDone
                | Inst::ThreadEnd
        )
    }

    /// Which functional-unit class executes this instruction.
    pub fn fu_class(&self) -> FuClass {
        match *self {
            Inst::Alu { op, .. } | Inst::AluImm { op, .. } => match op {
                AluOp::Mul => FuClass::IntMul,
                AluOp::Div | AluOp::Rem => FuClass::IntDiv,
                _ => FuClass::IntAlu,
            },
            Inst::Li { .. } => FuClass::IntAlu,
            Inst::Fpu { op, .. } => match op {
                FpuOp::Add | FpuOp::Sub => FuClass::FpAlu,
                FpuOp::Mul => FuClass::FpMul,
                FpuOp::Div => FuClass::FpDiv,
            },
            Inst::FCmp { .. } | Inst::CvtIF { .. } | Inst::CvtFI { .. } => FuClass::FpAlu,
            Inst::Load { .. } | Inst::FLoad { .. } | Inst::Store { .. } | Inst::FStore { .. } => {
                FuClass::Mem
            }
            Inst::Branch { .. } | Inst::Jr { .. } => FuClass::IntAlu,
            // `tsannounce` computes an address.
            Inst::TsAnnounce { .. } => FuClass::IntAlu,
            Inst::Jump { .. }
            | Inst::Jal { .. }
            | Inst::Nop
            | Inst::Halt
            | Inst::Begin { .. }
            | Inst::Fork { .. }
            | Inst::Abort { .. }
            | Inst::TsagDone
            | Inst::ThreadEnd => FuClass::None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dest_zero_reg_is_dropped() {
        let i = Inst::AluImm {
            op: AluOp::Add,
            rd: Reg::ZERO,
            rs1: Reg(1),
            imm: 1,
        };
        assert_eq!(i.dest_ireg(), None);
        let i = Inst::AluImm {
            op: AluOp::Add,
            rd: Reg(3),
            rs1: Reg(1),
            imm: 1,
        };
        assert_eq!(i.dest_ireg(), Some(Reg(3)));
    }

    #[test]
    fn store_sources_include_data_and_base() {
        let s = Inst::Store {
            kind: StoreKind::D,
            rs: Reg(5),
            base: Reg(6),
            off: 8,
        };
        assert_eq!(s.src_iregs(), [Some(Reg(5)), Some(Reg(6))]);
        assert!(s.is_store() && s.is_mem() && !s.is_load());
        assert_eq!(s.mem_bytes(), Some(8));
    }

    #[test]
    fn fu_classes() {
        let mul = Inst::Alu {
            op: AluOp::Mul,
            rd: Reg(1),
            rs1: Reg(2),
            rs2: Reg(3),
        };
        assert_eq!(mul.fu_class(), FuClass::IntMul);
        let div = Inst::AluImm {
            op: AluOp::Rem,
            rd: Reg(1),
            rs1: Reg(2),
            imm: 3,
        };
        assert_eq!(div.fu_class(), FuClass::IntDiv);
        let fdiv = Inst::Fpu {
            op: FpuOp::Div,
            fd: FReg(0),
            fs1: FReg(1),
            fs2: FReg(2),
        };
        assert_eq!(fdiv.fu_class(), FuClass::FpDiv);
        assert_eq!(Inst::Nop.fu_class(), FuClass::None);
        assert_eq!(
            Inst::Load {
                kind: LoadKind::W,
                rd: Reg(1),
                base: Reg(2),
                off: 0
            }
            .fu_class(),
            FuClass::Mem
        );
    }

    #[test]
    fn sta_markers_classified() {
        assert!(Inst::Begin { region: 0 }.is_sta());
        assert!(Inst::Fork { mask: 1, body: 2 }.is_sta());
        assert!(Inst::Abort { seq: 9 }.is_sta());
        assert!(Inst::TsagDone.is_sta());
        assert!(Inst::ThreadEnd.is_sta());
        assert!(!Inst::Halt.is_sta());
    }

    #[test]
    fn control_classification() {
        assert!(Inst::Jump { target: 3 }.is_control());
        assert!(Inst::Jr { rs: Reg(31) }.is_control());
        let b = Inst::Branch {
            cond: BranchCond::Eq,
            rs1: Reg(1),
            rs2: Reg(0),
            target: 7,
        };
        assert!(b.is_control() && b.is_cond_branch());
        assert!(!Inst::Halt.is_control());
    }

    #[test]
    fn load_widths() {
        assert_eq!(LoadKind::D.bytes(), 8);
        assert_eq!(LoadKind::W.bytes(), 4);
        assert_eq!(LoadKind::B.bytes(), 1);
        assert_eq!(StoreKind::W.bytes(), 4);
    }
}
