//! Validators for the telemetry artifacts (used by tests and the CI smoke
//! job): the events JSONL schema, the time-series CSV, the histograms JSON,
//! and the Perfetto trace.
//!
//! The event schema is strict: every line must carry `cycle` and a known
//! `type`, exactly the fields that type declares, each with the right JSON
//! type.  That way a drifting emitter fails CI instead of producing files
//! tools half-understand.

use crate::json::{self, Json};

/// JSON type of a schema field.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FieldKind {
    U64,
    Bool,
    Str,
}

/// Field list per event type — the JSONL schema, in one place.
pub const EVENT_SCHEMA: &[(&str, &[(&str, FieldKind)])] = &[
    (
        "wrong_load_issue",
        &[
            ("tu", FieldKind::U64),
            ("addr", FieldKind::U64),
            ("wrong_thread", FieldKind::Bool),
        ],
    ),
    (
        "wec_fill",
        &[("tu", FieldKind::U64), ("addr", FieldKind::U64)],
    ),
    (
        "wec_hit",
        &[
            ("tu", FieldKind::U64),
            ("addr", FieldKind::U64),
            ("wrong_fetched", FieldKind::Bool),
            ("prefetched", FieldKind::Bool),
        ],
    ),
    (
        "victim_transfer",
        &[("tu", FieldKind::U64), ("addr", FieldKind::U64)],
    ),
    (
        "next_line_prefetch",
        &[("tu", FieldKind::U64), ("addr", FieldKind::U64)],
    ),
    (
        "l1_miss",
        &[
            ("tu", FieldKind::U64),
            ("addr", FieldKind::U64),
            ("wrong", FieldKind::Bool),
        ],
    ),
    (
        "l2_miss",
        &[("addr", FieldKind::U64), ("wrong", FieldKind::Bool)],
    ),
    (
        "pipeline_flush",
        &[
            ("tu", FieldKind::U64),
            ("pc", FieldKind::U64),
            ("new_pc", FieldKind::U64),
            ("squashed", FieldKind::U64),
        ],
    ),
    (
        "commit",
        &[
            ("tu", FieldKind::U64),
            ("seq", FieldKind::U64),
            ("pc", FieldKind::U64),
            ("op", FieldKind::Str),
        ],
    ),
    (
        "begin",
        &[("region", FieldKind::U64), ("head", FieldKind::U64)],
    ),
    (
        "fork",
        &[
            ("parent", FieldKind::U64),
            ("child", FieldKind::U64),
            ("tu", FieldKind::U64),
            ("deferred", FieldKind::Bool),
        ],
    ),
    (
        "thread_start",
        &[("id", FieldKind::U64), ("tu", FieldKind::U64)],
    ),
    ("abort", &[("id", FieldKind::U64)]),
    ("marked_wrong", &[("id", FieldKind::U64)]),
    ("killed", &[("id", FieldKind::U64), ("tu", FieldKind::U64)]),
    ("wrong_died", &[("id", FieldKind::U64)]),
    (
        "wb_start",
        &[("id", FieldKind::U64), ("words", FieldKind::U64)],
    ),
    ("retired", &[("id", FieldKind::U64), ("tu", FieldKind::U64)]),
    ("sequential", &[("tu", FieldKind::U64)]),
];

/// What a validated event stream contained.
#[derive(Clone, Debug, Default)]
pub struct EventReport {
    pub total: u64,
    /// Per-type counts, sorted by type name.
    pub counts: Vec<(String, u64)>,
}

impl EventReport {
    pub fn count_of(&self, name: &str) -> u64 {
        self.counts
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, n)| n)
            .unwrap_or(0)
    }
}

fn field_matches(v: &Json, kind: FieldKind) -> bool {
    match kind {
        FieldKind::U64 => v.as_u64().is_some(),
        FieldKind::Bool => v.as_bool().is_some(),
        FieldKind::Str => v.as_str().is_some(),
    }
}

/// Validate a JSONL event stream against [`EVENT_SCHEMA`].  Cycles must be
/// non-decreasing (the machine drains buffers in cycle order).
pub fn validate_events_jsonl(text: &str) -> Result<EventReport, String> {
    let mut report = EventReport::default();
    let mut last_cycle = 0u64;
    for (lineno, line) in text.lines().enumerate() {
        let ctx = |msg: String| format!("events.jsonl line {}: {msg}", lineno + 1);
        if line.trim().is_empty() {
            return Err(ctx("blank line".into()));
        }
        let v = json::parse(line).map_err(&ctx)?;
        let Json::Obj(fields) = &v else {
            return Err(ctx("not a JSON object".into()));
        };
        let cycle = v
            .get("cycle")
            .and_then(Json::as_u64)
            .ok_or_else(|| ctx("missing/invalid \"cycle\"".into()))?;
        if cycle < last_cycle {
            return Err(ctx(format!(
                "cycle {cycle} went backwards from {last_cycle}"
            )));
        }
        last_cycle = cycle;
        let ty = v
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| ctx("missing/invalid \"type\"".into()))?;
        let Some((_, schema)) = EVENT_SCHEMA.iter().find(|(name, _)| *name == ty) else {
            return Err(ctx(format!("unknown event type {ty:?}")));
        };
        for (name, kind) in schema.iter() {
            let fv = v
                .get(name)
                .ok_or_else(|| ctx(format!("{ty}: missing field {name:?}")))?;
            if !field_matches(fv, *kind) {
                return Err(ctx(format!("{ty}: field {name:?} has wrong type")));
            }
        }
        for (name, _) in fields {
            if name != "cycle" && name != "type" && !schema.iter().any(|(n, _)| n == name) {
                return Err(ctx(format!("{ty}: unexpected field {name:?}")));
            }
        }
        report.total += 1;
        match report.counts.iter_mut().find(|(k, _)| k == ty) {
            Some((_, n)) => *n += 1,
            None => report.counts.push((ty.to_string(), 1)),
        }
    }
    report.counts.sort();
    Ok(report)
}

/// Validate the time-series CSV: a `cycle`-first header and integer rows of
/// matching arity with strictly increasing cycles.  Returns the row count.
pub fn validate_timeseries_csv(text: &str) -> Result<usize, String> {
    let mut lines = text.lines();
    let header = lines.next().ok_or("timeseries.csv: empty file")?;
    let columns: Vec<&str> = header.split(',').collect();
    if columns.first() != Some(&"cycle") {
        return Err(format!(
            "timeseries.csv: first column must be \"cycle\", got {:?}",
            columns.first()
        ));
    }
    let mut rows = 0;
    let mut last_cycle = None::<u64>;
    for (lineno, line) in lines.enumerate() {
        let cells: Vec<&str> = line.split(',').collect();
        if cells.len() != columns.len() {
            return Err(format!(
                "timeseries.csv row {}: {} cells, header has {}",
                lineno + 1,
                cells.len(),
                columns.len()
            ));
        }
        let mut parsed = Vec::with_capacity(cells.len());
        for c in &cells {
            parsed.push(c.parse::<u64>().map_err(|_| {
                format!("timeseries.csv row {}: non-integer cell {c:?}", lineno + 1)
            })?);
        }
        if let Some(prev) = last_cycle {
            if parsed[0] <= prev {
                return Err(format!(
                    "timeseries.csv row {}: cycle {} not increasing",
                    lineno + 1,
                    parsed[0]
                ));
            }
        }
        last_cycle = Some(parsed[0]);
        rows += 1;
    }
    Ok(rows)
}

/// Validate the histograms JSON: an object of named histograms whose bucket
/// counts sum to their `count`.  Returns the histogram names.
pub fn validate_histograms_json(text: &str) -> Result<Vec<String>, String> {
    let v = json::parse(text).map_err(|e| format!("histograms.json: {e}"))?;
    let Json::Obj(fields) = &v else {
        return Err("histograms.json: not a JSON object".into());
    };
    let mut names = Vec::new();
    for (name, h) in fields {
        let count = h
            .get("count")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("histograms.json {name}: missing count"))?;
        let buckets = h
            .get("buckets")
            .and_then(Json::as_array)
            .ok_or_else(|| format!("histograms.json {name}: missing buckets"))?;
        let mut total = 0;
        for b in buckets {
            let pair = b
                .as_array()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| format!("histograms.json {name}: bucket not a pair"))?;
            total += pair[1]
                .as_u64()
                .ok_or_else(|| format!("histograms.json {name}: non-integer bucket count"))?;
        }
        if total != count {
            return Err(format!(
                "histograms.json {name}: buckets sum to {total}, count says {count}"
            ));
        }
        for key in ["sum", "min", "max"] {
            if h.get(key).and_then(Json::as_u64).is_none() {
                return Err(format!("histograms.json {name}: missing {key}"));
            }
        }
        names.push(name.clone());
    }
    Ok(names)
}

/// Validate a Chrome trace-event document: `traceEvents` array whose
/// entries carry a known phase, balanced `B`/`E` per track, timestamps
/// present on all non-metadata events.  Returns the event count.
pub fn validate_perfetto(text: &str) -> Result<u64, String> {
    let v = json::parse(text).map_err(|e| format!("perfetto: {e}"))?;
    let events = v
        .get("traceEvents")
        .and_then(Json::as_array)
        .ok_or("perfetto: missing traceEvents array")?;
    let mut depth: Vec<(u64, i64)> = Vec::new(); // (tid, open span depth)
    for (i, ev) in events.iter().enumerate() {
        let ctx = |msg: String| format!("perfetto event {i}: {msg}");
        if !ev.is_object() {
            return Err(ctx("not an object".into()));
        }
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| ctx("missing ph".into()))?;
        match ph {
            "M" => {}
            "B" | "E" | "i" | "C" | "X" => {
                if ev.get("ts").and_then(Json::as_u64).is_none() {
                    return Err(ctx(format!("phase {ph} missing ts")));
                }
                let tid = ev.get("tid").and_then(Json::as_u64).unwrap_or(0);
                let slot = match depth.iter_mut().find(|(t, _)| *t == tid) {
                    Some(s) => s,
                    None => {
                        depth.push((tid, 0));
                        depth.last_mut().unwrap()
                    }
                };
                match ph {
                    "B" => slot.1 += 1,
                    "E" => {
                        slot.1 -= 1;
                        if slot.1 < 0 {
                            return Err(ctx(format!("unbalanced E on tid {tid}")));
                        }
                    }
                    _ => {}
                }
            }
            other => return Err(ctx(format!("unknown phase {other:?}"))),
        }
    }
    for (tid, d) in depth {
        if d != 0 {
            return Err(format!("perfetto: {d} unclosed span(s) on tid {tid}"));
        }
    }
    Ok(events.len() as u64)
}

fn require_u64(v: &Json, key: &str, ctx: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("{ctx}: missing/invalid {key:?}"))
}

fn require_f64(v: &Json, key: &str, ctx: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("{ctx}: missing/invalid {key:?}"))
}

fn require_str<'a>(v: &'a Json, key: &str, ctx: &str) -> Result<&'a str, String> {
    v.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{ctx}: missing/invalid {key:?}"))
}

fn no_extra_fields(v: &Json, allowed: &[&str], ctx: &str) -> Result<(), String> {
    let Json::Obj(fields) = v else {
        return Err(format!("{ctx}: not a JSON object"));
    };
    for (name, _) in fields {
        if !allowed.contains(&name.as_str()) {
            return Err(format!("{ctx}: unexpected field {name:?}"));
        }
    }
    Ok(())
}

/// What a validated `progress.jsonl` stream contained.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProgressReport {
    pub starts: u64,
    pub finishes: u64,
}

/// Validate a `progress.jsonl` stream: every line is a `start` or `finish`
/// event with exactly the declared fields, `t_ms` non-decreasing, `cache`
/// one of `cold`/`disk`/`mem`/`spec` (the last when a demand request is
/// satisfied by a parked speculative result), and no more finishes than
/// starts + cached satisfactions can explain (finishes ≥ starts, since
/// cache hits emit finish-only lines).
pub fn validate_progress_jsonl(text: &str) -> Result<ProgressReport, String> {
    let mut report = ProgressReport::default();
    let mut last_t = 0u64;
    for (lineno, line) in text.lines().enumerate() {
        let ctx = format!("progress.jsonl line {}", lineno + 1);
        if line.trim().is_empty() {
            return Err(format!("{ctx}: blank line"));
        }
        let v = json::parse(line).map_err(|e| format!("{ctx}: {e}"))?;
        let event = require_str(&v, "event", &ctx)?;
        let t = require_u64(&v, "t_ms", &ctx)?;
        if t < last_t {
            return Err(format!("{ctx}: t_ms {t} went backwards from {last_t}"));
        }
        last_t = t;
        require_str(&v, "bench", &ctx)?;
        require_str(&v, "cfg", &ctx)?;
        require_u64(&v, "worker", &ctx)?;
        match event {
            "start" => {
                no_extra_fields(&v, &["event", "t_ms", "bench", "cfg", "worker"], &ctx)?;
                report.starts += 1;
            }
            "finish" => {
                let cache = require_str(&v, "cache", &ctx)?;
                if !["cold", "disk", "mem", "spec"].contains(&cache) {
                    return Err(format!("{ctx}: unknown cache source {cache:?}"));
                }
                require_u64(&v, "dur_ms", &ctx)?;
                require_u64(&v, "sim_cycles", &ctx)?;
                require_f64(&v, "kcps", &ctx)?;
                no_extra_fields(
                    &v,
                    &[
                        "event",
                        "t_ms",
                        "bench",
                        "cfg",
                        "worker",
                        "cache",
                        "dur_ms",
                        "sim_cycles",
                        "kcps",
                    ],
                    &ctx,
                )?;
                report.finishes += 1;
            }
            other => return Err(format!("{ctx}: unknown event {other:?}")),
        }
    }
    if report.finishes < report.starts {
        return Err(format!(
            "progress.jsonl: {} starts but only {} finishes",
            report.starts, report.finishes
        ));
    }
    Ok(report)
}

/// Validate a `run.json` manifest (`wec-run-manifest-v1`).  Returns the
/// number of metric points the manifest carries.
pub fn validate_run_json(text: &str) -> Result<usize, String> {
    let v = json::parse(text).map_err(|e| format!("run.json: {e}"))?;
    let ctx = "run.json";
    let schema = require_str(&v, "schema", ctx)?;
    if schema != "wec-run-manifest-v1" {
        return Err(format!("{ctx}: unknown schema {schema:?}"));
    }
    require_u64(&v, "scale", ctx)?;
    require_str(&v, "host", ctx)?;
    require_u64(&v, "sim_revision", ctx)?;
    require_f64(&v, "wall_s", ctx)?;
    no_extra_fields(
        &v,
        &[
            "schema",
            "scale",
            "host",
            "sim_revision",
            "wall_s",
            "simulations",
            "eta",
            "slowest",
            "tables",
            "metrics",
        ],
        ctx,
    )?;

    let sims = v
        .get("simulations")
        .ok_or_else(|| format!("{ctx}: missing \"simulations\""))?;
    let sctx = "run.json simulations";
    let lookups = require_u64(sims, "lookups", sctx)?;
    let cold = require_u64(sims, "cold", sctx)?;
    let disk = require_u64(sims, "disk_hits", sctx)?;
    let mem = require_u64(sims, "mem_hits", sctx)?;
    if cold + disk + mem != lookups {
        return Err(format!(
            "{sctx}: cold {cold} + disk {disk} + mem {mem} != lookups {lookups}"
        ));
    }
    let rate = require_f64(sims, "cache_hit_rate", sctx)?;
    if !(0.0..=1.0).contains(&rate) {
        return Err(format!("{sctx}: cache_hit_rate {rate} out of [0,1]"));
    }
    no_extra_fields(
        sims,
        &["lookups", "cold", "disk_hits", "mem_hits", "cache_hit_rate"],
        sctx,
    )?;

    let eta = v
        .get("eta")
        .ok_or_else(|| format!("{ctx}: missing \"eta\""))?;
    require_f64(eta, "mean_cold_ms", "run.json eta")?;
    require_f64(eta, "sim_cycles_per_sec", "run.json eta")?;
    no_extra_fields(eta, &["mean_cold_ms", "sim_cycles_per_sec"], "run.json eta")?;

    let slowest = v
        .get("slowest")
        .and_then(Json::as_array)
        .ok_or_else(|| format!("{ctx}: missing \"slowest\" array"))?;
    for (i, p) in slowest.iter().enumerate() {
        let pctx = format!("run.json slowest[{i}]");
        require_str(p, "bench", &pctx)?;
        require_str(p, "cfg", &pctx)?;
        let cache = require_str(p, "cache", &pctx)?;
        if !["cold", "disk", "mem"].contains(&cache) {
            return Err(format!("{pctx}: unknown cache source {cache:?}"));
        }
        require_u64(p, "dur_ms", &pctx)?;
        no_extra_fields(p, &["bench", "cfg", "cache", "dur_ms"], &pctx)?;
    }

    let tables = v
        .get("tables")
        .and_then(Json::as_array)
        .ok_or_else(|| format!("{ctx}: missing \"tables\" array"))?;
    for t in tables {
        if t.as_str().is_none() {
            return Err(format!("{ctx}: non-string table name"));
        }
    }

    let metrics = v
        .get("metrics")
        .ok_or_else(|| format!("{ctx}: missing \"metrics\""))?;
    let Json::Obj(points) = metrics else {
        return Err(format!("{ctx}: \"metrics\" is not an object"));
    };
    for (label, point) in points {
        let Json::Obj(kv) = point else {
            return Err(format!("{ctx}: metrics point {label:?} is not an object"));
        };
        for (metric, value) in kv {
            if value.as_u64().is_none() {
                return Err(format!(
                    "{ctx}: metrics point {label:?} field {metric:?} is not a u64"
                ));
            }
        }
    }
    Ok(points.len())
}

/// Validate a `profile.json` document (`wec-profile-v1`) against the
/// [`crate::profile::Phase`] set.  Returns the phase names.
pub fn validate_profile_json(text: &str) -> Result<Vec<String>, String> {
    let v = json::parse(text).map_err(|e| format!("profile.json: {e}"))?;
    let ctx = "profile.json";
    let schema = require_str(&v, "schema", ctx)?;
    if schema != "wec-profile-v1" {
        return Err(format!("{ctx}: unknown schema {schema:?}"));
    }
    let stride = require_u64(&v, "stride", ctx)?;
    if stride == 0 {
        return Err(format!("{ctx}: stride must be >= 1"));
    }
    let sampled = require_u64(&v, "sampled_cycles", ctx)?;
    let total = require_u64(&v, "total_cycles", ctx)?;
    if sampled > total {
        return Err(format!(
            "{ctx}: sampled_cycles {sampled} exceeds total_cycles {total}"
        ));
    }
    let wall = require_u64(&v, "wall_ns_sampled", ctx)?;
    no_extra_fields(
        &v,
        &[
            "schema",
            "stride",
            "sampled_cycles",
            "total_cycles",
            "wall_ns_sampled",
            "phases",
        ],
        ctx,
    )?;
    let phases = v
        .get("phases")
        .ok_or_else(|| format!("{ctx}: missing \"phases\""))?;
    let Json::Obj(fields) = phases else {
        return Err(format!("{ctx}: \"phases\" is not an object"));
    };
    let known: Vec<&str> = crate::profile::Phase::ALL
        .iter()
        .map(|p| p.name())
        .collect();
    let mut names = Vec::new();
    let mut ns_total = 0u64;
    for (name, ph) in fields {
        if !known.contains(&name.as_str()) {
            return Err(format!("{ctx}: unknown phase {name:?}"));
        }
        let pctx = format!("profile.json phase {name}");
        ns_total += require_u64(ph, "ns", &pctx)?;
        let share = require_f64(ph, "share", &pctx)?;
        if !(0.0..=1.0).contains(&share) {
            return Err(format!("{pctx}: share {share} out of [0,1]"));
        }
        no_extra_fields(ph, &["ns", "share"], &pctx)?;
        names.push(name.clone());
    }
    if names.len() != known.len() {
        return Err(format!(
            "{ctx}: {} phases present, schema declares {}",
            names.len(),
            known.len()
        ));
    }
    if ns_total != wall {
        return Err(format!(
            "{ctx}: phase ns sum to {ns_total}, wall_ns_sampled says {wall}"
        ));
    }
    Ok(names)
}

/// What a validated `wec-attribution-v1` document contained.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AttributionCheck {
    pub n_tus: u64,
    pub wec_fills: u64,
    pub useful: u64,
    pub wasted: u64,
    pub top_pcs: u64,
}

/// The eight lifecycle counters of one attribution totals object, checked
/// strictly: exactly the declared fields, the conservation invariant
/// `useful + wasted + victim_rescued + still_resident == wec_fills`, the
/// origin split summing to the same total, and `pollution_bytes` equal to
/// `wasted * block_bytes`.
fn attr_totals(v: &Json, block_bytes: u64, ctx: &str) -> Result<[u64; 8], String> {
    const KEYS: [&str; 8] = [
        "wec_fills",
        "fills_wrong",
        "fills_victim",
        "fills_prefetch",
        "useful",
        "wasted",
        "victim_rescued",
        "still_resident",
    ];
    let mut out = [0u64; 8];
    for (slot, key) in out.iter_mut().zip(KEYS) {
        *slot = require_u64(v, key, ctx)?;
    }
    let [fills, wrong, victim, prefetch, useful, wasted, rescued, resident] = out;
    if useful + wasted + rescued + resident != fills {
        return Err(format!(
            "{ctx}: conservation violated: {useful}+{wasted}+{rescued}+{resident} != {fills}"
        ));
    }
    if wrong + victim + prefetch != fills {
        return Err(format!(
            "{ctx}: origin split {wrong}+{victim}+{prefetch} != wec_fills {fills}"
        ));
    }
    let pollution = require_u64(v, "pollution_bytes", ctx)?;
    if pollution != wasted * block_bytes {
        return Err(format!(
            "{ctx}: pollution_bytes {pollution} != wasted {wasted} * block_bytes {block_bytes}"
        ));
    }
    no_extra_fields(
        v,
        &[
            "wec_fills",
            "fills_wrong",
            "fills_victim",
            "fills_prefetch",
            "useful",
            "wasted",
            "victim_rescued",
            "still_resident",
            "pollution_bytes",
        ],
        ctx,
    )?;
    Ok(out)
}

fn attr_set_array(v: &Json, key: &str, len: u64, ctx: &str) -> Result<u64, String> {
    let arr = v
        .get(key)
        .and_then(Json::as_array)
        .ok_or_else(|| format!("{ctx}: missing/invalid array {key:?}"))?;
    if arr.len() as u64 != len {
        return Err(format!(
            "{ctx}: {key:?} has {} entries, l1_sets says {len}",
            arr.len()
        ));
    }
    let mut sum = 0u64;
    for (i, e) in arr.iter().enumerate() {
        sum += e
            .as_u64()
            .ok_or_else(|| format!("{ctx}: {key:?}[{i}] is not a u64"))?;
    }
    Ok(sum)
}

/// Validate a `wec-attribution-v1` document (the speculation attribution
/// ledger's `attribution.json`).  Schema-strict like every validator
/// here, and enforces the ledger invariants per TU **and** globally:
/// conservation, origin split, per-TU totals summing to the global
/// totals, the timeliness histogram counting exactly the useful lines,
/// and set heatmaps consistent with the fill counters.
pub fn validate_attribution_json(text: &str) -> Result<AttributionCheck, String> {
    let ctx = "attribution.json";
    let v = json::parse(text).map_err(|e| format!("{ctx}: {e}"))?;
    let schema = require_str(&v, "schema", ctx)?;
    if schema != "wec-attribution-v1" {
        return Err(format!("{ctx}: unknown schema {schema:?}"));
    }
    let block_bytes = require_u64(&v, "block_bytes", ctx)?;
    let l1_sets = require_u64(&v, "l1_sets", ctx)?;
    let n_tus = require_u64(&v, "n_tus", ctx)?;
    if block_bytes == 0 || l1_sets == 0 || n_tus == 0 {
        return Err(format!(
            "{ctx}: degenerate geometry ({block_bytes} B blocks, {l1_sets} sets, {n_tus} TUs)"
        ));
    }
    let totals = v
        .get("totals")
        .ok_or_else(|| format!("{ctx}: missing \"totals\""))?;
    let global = attr_totals(totals, block_bytes, &format!("{ctx} totals"))?;
    let tus = v
        .get("tus")
        .and_then(Json::as_array)
        .ok_or_else(|| format!("{ctx}: missing \"tus\" array"))?;
    if tus.len() as u64 != n_tus {
        return Err(format!("{ctx}: {} TU rows, n_tus says {n_tus}", tus.len()));
    }
    let mut summed = [0u64; 8];
    for (i, tu) in tus.iter().enumerate() {
        let row = attr_totals(tu, block_bytes, &format!("{ctx} tus[{i}]"))?;
        for (s, r) in summed.iter_mut().zip(row) {
            *s += r;
        }
    }
    if summed != global {
        return Err(format!(
            "{ctx}: per-TU totals {summed:?} do not sum to the global totals {global:?}"
        ));
    }
    let timeliness = v
        .get("timeliness")
        .ok_or_else(|| format!("{ctx}: missing \"timeliness\""))?;
    let t_count = require_u64(timeliness, "count", &format!("{ctx} timeliness"))?;
    let buckets = timeliness
        .get("buckets")
        .and_then(Json::as_array)
        .ok_or_else(|| format!("{ctx} timeliness: missing buckets"))?;
    let mut b_total = 0u64;
    for b in buckets {
        let pair = b
            .as_array()
            .filter(|p| p.len() == 2)
            .ok_or_else(|| format!("{ctx} timeliness: bucket not a pair"))?;
        b_total += pair[1]
            .as_u64()
            .ok_or_else(|| format!("{ctx} timeliness: non-integer bucket count"))?;
    }
    if b_total != t_count {
        return Err(format!(
            "{ctx} timeliness: buckets sum to {b_total}, count says {t_count}"
        ));
    }
    let useful = global[4];
    if t_count != useful {
        return Err(format!(
            "{ctx}: timeliness count {t_count} != useful lines {useful}"
        ));
    }
    let top = v
        .get("top_pcs")
        .and_then(Json::as_array)
        .ok_or_else(|| format!("{ctx}: missing \"top_pcs\" array"))?;
    let mut prev: Option<(u64, u64, u64)> = None;
    let mut top_useful = 0u64;
    for (i, row) in top.iter().enumerate() {
        let rctx = format!("{ctx} top_pcs[{i}]");
        let pc = require_u64(row, "pc", &rctx)?;
        let u = require_u64(row, "useful", &rctx)?;
        let w = require_u64(row, "wasted", &rctx)?;
        require_u64(row, "median_timeliness", &rctx)?;
        let p = require_u64(row, "pollution_bytes", &rctx)?;
        if p != w * block_bytes {
            return Err(format!("{rctx}: pollution_bytes {p} != wasted {w} * block"));
        }
        no_extra_fields(
            row,
            &[
                "pc",
                "useful",
                "wasted",
                "median_timeliness",
                "pollution_bytes",
            ],
            &rctx,
        )?;
        // Sorted: useful desc, then wasted desc, then pc asc.
        if let Some((pu, pw, ppc)) = prev {
            if (u, w, std::cmp::Reverse(pc)) > (pu, pw, std::cmp::Reverse(ppc)) {
                return Err(format!("{rctx}: table not sorted by credit"));
            }
        }
        prev = Some((u, w, pc));
        top_useful += u;
    }
    if top_useful > useful {
        return Err(format!(
            "{ctx}: top_pcs claim {top_useful} useful lines, totals say {useful}"
        ));
    }
    let sets = v
        .get("sets")
        .ok_or_else(|| format!("{ctx}: missing \"sets\""))?;
    let sctx = format!("{ctx} sets");
    let acc = attr_set_array(sets, "l1_accesses", l1_sets, &sctx)?;
    let mis = attr_set_array(sets, "l1_misses", l1_sets, &sctx)?;
    if mis > acc {
        return Err(format!("{sctx}: {mis} misses exceed {acc} accesses"));
    }
    let side_fills = attr_set_array(sets, "side_fills", l1_sets, &sctx)?;
    attr_set_array(sets, "side_hits", l1_sets, &sctx)?;
    let victims = attr_set_array(sets, "victim_transfers", l1_sets, &sctx)?;
    if side_fills != global[1] + global[3] {
        return Err(format!(
            "{sctx}: side_fills sum {side_fills} != wrong {} + prefetch {}",
            global[1], global[3]
        ));
    }
    if victims != global[2] {
        return Err(format!(
            "{sctx}: victim_transfers sum {victims} != fills_victim {}",
            global[2]
        ));
    }
    no_extra_fields(
        sets,
        &[
            "l1_accesses",
            "l1_misses",
            "side_fills",
            "side_hits",
            "victim_transfers",
        ],
        &sctx,
    )?;
    no_extra_fields(
        &v,
        &[
            "schema",
            "block_bytes",
            "l1_sets",
            "n_tus",
            "totals",
            "tus",
            "timeliness",
            "top_pcs",
            "sets",
        ],
        ctx,
    )?;
    Ok(AttributionCheck {
        n_tus,
        wec_fills: global[0],
        useful,
        wasted: global[5],
        top_pcs: top.len() as u64,
    })
}

/// Validate the attribution summary object embedded in a job record:
/// either empty (`{}` — attribution off or not applicable) or exactly the
/// five lifecycle counters with conservation holding.
pub fn validate_attr_summary(v: &Json, ctx: &str) -> Result<(), String> {
    let Json::Obj(fields) = v else {
        return Err(format!("{ctx}: not a JSON object"));
    };
    if fields.is_empty() {
        return Ok(());
    }
    let fills = require_u64(v, "wec_fills", ctx)?;
    let useful = require_u64(v, "useful", ctx)?;
    let wasted = require_u64(v, "wasted", ctx)?;
    let rescued = require_u64(v, "victim_rescued", ctx)?;
    let resident = require_u64(v, "still_resident", ctx)?;
    if useful + wasted + rescued + resident != fills {
        return Err(format!(
            "{ctx}: conservation violated: {useful}+{wasted}+{rescued}+{resident} != {fills}"
        ));
    }
    no_extra_fields(
        v,
        &[
            "wec_fills",
            "useful",
            "wasted",
            "victim_rescued",
            "still_resident",
        ],
        ctx,
    )
}

/// Validate one `wec-job-record-v1` document (a serve-mode job record, as
/// returned by `GET /jobs/<id>` and logged to `jobs.jsonl`).  Strict like
/// every other validator here: exactly the declared fields, each with the
/// right type, with the cross-field invariants a consistent record obeys.
pub fn validate_job_record(v: &Json, ctx: &str) -> Result<(), String> {
    let schema = require_str(v, "schema", ctx)?;
    if schema != "wec-job-record-v1" {
        return Err(format!("{ctx}: unknown schema {schema:?}"));
    }
    require_u64(v, "id", ctx)?;
    let kind = require_str(v, "kind", ctx)?;
    if !["sim", "replay"].contains(&kind) {
        return Err(format!("{ctx}: unknown kind {kind:?}"));
    }
    require_str(v, "bench", ctx)?;
    require_u64(v, "scale", ctx)?;
    require_str(v, "cfg", ctx)?;
    let state = require_str(v, "state", ctx)?;
    if !["queued", "running", "done", "failed", "cancelled"].contains(&state) {
        return Err(format!("{ctx}: unknown state {state:?}"));
    }
    let source = require_str(v, "source", ctx)?;
    if !["none", "cold", "disk", "mem", "spec"].contains(&source) {
        return Err(format!("{ctx}: unknown source {source:?}"));
    }
    if state == "done" && source == "none" {
        return Err(format!("{ctx}: done job has no cache source"));
    }
    // `speculative` is emitted only by `--speculate` servers and only as
    // `true`; its absence means a plain demand job.
    let speculative = match v.get("speculative") {
        None => false,
        Some(Json::Bool(true)) => true,
        Some(_) => return Err(format!("{ctx}: \"speculative\" must be true when present")),
    };
    if state == "cancelled" {
        if !speculative {
            return Err(format!("{ctx}: cancelled job is not speculative"));
        }
        if source != "none" {
            return Err(format!("{ctx}: cancelled job carries source {source:?}"));
        }
    }
    let submissions = require_u64(v, "submissions", ctx)?;
    // A speculative job that was never claimed by a demand request has
    // zero submissions; every demand job has at least one.
    if submissions == 0 && !speculative {
        return Err(format!("{ctx}: submissions must be >= 1"));
    }
    require_u64(v, "worker", ctx)?;
    let submit = require_u64(v, "submit_t_ms", ctx)?;
    let start = require_u64(v, "start_t_ms", ctx)?;
    let finish = require_u64(v, "finish_t_ms", ctx)?;
    if start > 0 && start < submit {
        return Err(format!("{ctx}: start_t_ms {start} before submit {submit}"));
    }
    if finish > 0 && finish < start {
        return Err(format!("{ctx}: finish_t_ms {finish} before start {start}"));
    }
    require_u64(v, "dur_ms", ctx)?;
    require_u64(v, "sim_cycles", ctx)?;
    let error = require_str(v, "error", ctx)?;
    if state == "failed" && error.is_empty() {
        return Err(format!("{ctx}: failed job carries no error message"));
    }
    if state != "failed" && !error.is_empty() {
        return Err(format!("{ctx}: non-failed job carries error {error:?}"));
    }
    let metrics = v
        .get("metrics")
        .ok_or_else(|| format!("{ctx}: missing \"metrics\""))?;
    let Json::Obj(kv) = metrics else {
        return Err(format!("{ctx}: \"metrics\" is not an object"));
    };
    for (k, val) in kv {
        if val.as_u64().is_none() {
            return Err(format!("{ctx}: metric {k:?} is not a u64"));
        }
    }
    if state == "done" && kv.is_empty() {
        return Err(format!("{ctx}: done job has no metrics"));
    }
    let attribution = v
        .get("attribution")
        .ok_or_else(|| format!("{ctx}: missing \"attribution\""))?;
    validate_attr_summary(attribution, &format!("{ctx} attribution"))?;
    // `backend_id` is emitted only by daemons started with `--backend-id`
    // (sharded clusters); its absence is a single-node record.
    if v.get("backend_id").is_some() {
        let b = require_str(v, "backend_id", ctx)?;
        if b.is_empty() {
            return Err(format!("{ctx}: \"backend_id\" must be non-empty"));
        }
    }
    no_extra_fields(
        v,
        &[
            "schema",
            "id",
            "kind",
            "bench",
            "scale",
            "cfg",
            "state",
            "source",
            "submissions",
            "worker",
            "submit_t_ms",
            "start_t_ms",
            "finish_t_ms",
            "dur_ms",
            "sim_cycles",
            "speculative",
            "backend_id",
            "error",
            "metrics",
            "attribution",
        ],
        ctx,
    )
}

/// What a validated `jobs.jsonl` stream contained.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct JobsReport {
    pub total: u64,
    pub done: u64,
    pub failed: u64,
    pub cancelled: u64,
}

/// Validate a `jobs.jsonl` stream: one terminal `wec-job-record-v1` per
/// line (the server appends each job as it reaches `done`, `failed`, or —
/// for reclaimed speculations — `cancelled`).
pub fn validate_jobs_jsonl(text: &str) -> Result<JobsReport, String> {
    let mut report = JobsReport::default();
    for (lineno, line) in text.lines().enumerate() {
        let ctx = format!("jobs.jsonl line {}", lineno + 1);
        if line.trim().is_empty() {
            return Err(format!("{ctx}: blank line"));
        }
        let v = json::parse(line).map_err(|e| format!("{ctx}: {e}"))?;
        validate_job_record(&v, &ctx)?;
        match v.get("state").and_then(Json::as_str) {
            Some("done") => report.done += 1,
            Some("failed") => report.failed += 1,
            Some("cancelled") => report.cancelled += 1,
            other => {
                return Err(format!(
                    "{ctx}: non-terminal state {other:?} in the terminal log"
                ))
            }
        }
        report.total += 1;
    }
    Ok(report)
}

/// Validate a serve-stats document (the `GET /stats` payload and the
/// server's exit-time `stats.json`): `wec-serve-stats-v1`, or the
/// `wec-serve-stats-v2` superset a `--speculate` server emits.
pub fn validate_serve_stats_json(text: &str) -> Result<(), String> {
    let v = json::parse(text).map_err(|e| format!("stats.json: {e}"))?;
    validate_serve_stats(&v, "stats.json")
}

/// Validate an already-parsed serve-stats value (v1 or v2) — the same
/// document also rides embedded inside `wec-dashboard-data-v1`.  The v2
/// speculation block must conserve: every started speculation is exactly
/// one of hit, waste, cancelled, or still pending, and completions split
/// exactly across `cold`/`disk_hits`/`mem_hits`/`spec_hits`.
pub fn validate_serve_stats(v: &Json, ctx: &str) -> Result<(), String> {
    let schema = require_str(v, "schema", ctx)?;
    let v2 = match schema {
        "wec-serve-stats-v1" => false,
        "wec-serve-stats-v2" => true,
        _ => return Err(format!("{ctx}: unknown schema {schema:?}")),
    };
    require_u64(v, "uptime_ms", ctx)?;
    let workers = require_u64(v, "workers", ctx)?;
    if workers == 0 {
        return Err(format!("{ctx}: workers must be >= 1"));
    }
    let busy = require_u64(v, "busy_workers", ctx)?;
    if busy > workers {
        return Err(format!(
            "{ctx}: busy_workers {busy} exceeds workers {workers}"
        ));
    }
    v.get("draining")
        .and_then(Json::as_bool)
        .ok_or_else(|| format!("{ctx}: missing/invalid \"draining\""))?;
    // Optional in both versions: only `--backend-id` daemons stamp it.
    if v.get("backend_id").is_some() {
        let b = require_str(v, "backend_id", ctx)?;
        if b.is_empty() {
            return Err(format!("{ctx}: \"backend_id\" must be non-empty"));
        }
    }
    let top: &[&str] = if v2 {
        &[
            "schema",
            "backend_id",
            "uptime_ms",
            "workers",
            "busy_workers",
            "draining",
            "queue",
            "jobs",
            "cache",
            "spec",
            "throughput",
        ]
    } else {
        &[
            "schema",
            "backend_id",
            "uptime_ms",
            "workers",
            "busy_workers",
            "draining",
            "queue",
            "jobs",
            "cache",
            "throughput",
        ]
    };
    no_extra_fields(v, top, ctx)?;

    let queue = v
        .get("queue")
        .ok_or_else(|| format!("{ctx}: missing \"queue\""))?;
    let qctx = format!("{ctx} queue");
    let depth = require_u64(queue, "depth", &qctx)?;
    let cap = require_u64(queue, "cap", &qctx)?;
    if depth > cap {
        return Err(format!("{qctx}: depth {depth} exceeds cap {cap}"));
    }
    require_u64(queue, "rejected", &qctx)?;
    if v2 {
        let sdepth = require_u64(queue, "spec_depth", &qctx)?;
        let scap = require_u64(queue, "spec_cap", &qctx)?;
        if sdepth > scap {
            return Err(format!(
                "{qctx}: spec_depth {sdepth} exceeds spec_cap {scap}"
            ));
        }
        no_extra_fields(
            queue,
            &["depth", "cap", "rejected", "spec_depth", "spec_cap"],
            &qctx,
        )?;
    } else {
        no_extra_fields(queue, &["depth", "cap", "rejected"], &qctx)?;
    }

    let jobs = v
        .get("jobs")
        .ok_or_else(|| format!("{ctx}: missing \"jobs\""))?;
    let jctx = format!("{ctx} jobs");
    let submitted = require_u64(jobs, "submitted", &jctx)?;
    let deduped = require_u64(jobs, "deduped", &jctx)?;
    let completed = require_u64(jobs, "completed", &jctx)?;
    let failed = require_u64(jobs, "failed", &jctx)?;
    if deduped > submitted {
        return Err(format!(
            "{jctx}: deduped {deduped} exceeds submitted {submitted}"
        ));
    }
    if completed + failed > submitted {
        return Err(format!(
            "{jctx}: completed {completed} + failed {failed} exceeds submitted {submitted}"
        ));
    }
    no_extra_fields(
        jobs,
        &["submitted", "deduped", "completed", "failed"],
        &jctx,
    )?;

    let cache = v
        .get("cache")
        .ok_or_else(|| format!("{ctx}: missing \"cache\""))?;
    let cctx = format!("{ctx} cache");
    let cold = require_u64(cache, "cold", &cctx)?;
    let disk = require_u64(cache, "disk_hits", &cctx)?;
    let mem = require_u64(cache, "mem_hits", &cctx)?;
    let spec_hits = if v2 {
        let sh = require_u64(cache, "spec_hits", &cctx)?;
        no_extra_fields(
            cache,
            &["cold", "disk_hits", "mem_hits", "spec_hits"],
            &cctx,
        )?;
        sh
    } else {
        no_extra_fields(cache, &["cold", "disk_hits", "mem_hits"], &cctx)?;
        0
    };
    if cold + disk + mem + spec_hits != completed {
        return Err(format!(
            "{cctx}: cold {cold} + disk {disk} + mem {mem} + spec {spec_hits} \
             != completed {completed}"
        ));
    }

    if v2 {
        let sp = v
            .get("spec")
            .ok_or_else(|| format!("{ctx}: missing \"spec\""))?;
        let sctx = format!("{ctx} spec");
        let started = require_u64(sp, "started", &sctx)?;
        let hit = require_u64(sp, "hit", &sctx)?;
        require_u64(sp, "miss", &sctx)?;
        let waste = require_u64(sp, "waste", &sctx)?;
        let cancelled = require_u64(sp, "cancelled", &sctx)?;
        let pending = require_u64(sp, "pending", &sctx)?;
        if hit + waste + cancelled + pending != started {
            return Err(format!(
                "{sctx}: hit {hit} + waste {waste} + cancelled {cancelled} \
                 + pending {pending} != started {started}"
            ));
        }
        if spec_hits > hit {
            return Err(format!(
                "{sctx}: cache.spec_hits {spec_hits} exceeds spec.hit {hit}"
            ));
        }
        no_extra_fields(
            sp,
            &["started", "hit", "miss", "waste", "cancelled", "pending"],
            &sctx,
        )?;
    }

    let tp = v
        .get("throughput")
        .ok_or_else(|| format!("{ctx}: missing \"throughput\""))?;
    let tctx = format!("{ctx} throughput");
    require_f64(tp, "jobs_per_sec", &tctx)?;
    let util = require_f64(tp, "utilization", &tctx)?;
    if !(0.0..=1.0).contains(&util) {
        return Err(format!("{tctx}: utilization {util} out of [0,1]"));
    }
    no_extra_fields(tp, &["jobs_per_sec", "utilization"], &tctx)?;
    Ok(())
}

/// What a validated `wec-router-stats-v1` document contained.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RouterStatsReport {
    /// Backends in the ring (healthy or not).
    pub backends: u64,
    /// Backends whose embedded stats document was scraped live.
    pub scraped: u64,
    /// Cluster-wide completed jobs (the conserved ledger total).
    pub completed: u64,
}

/// Validate a `wec-router-stats-v1` document (the `wec_router` `GET
/// /stats` payload and its drain-time `router.json`).
pub fn validate_router_stats_json(text: &str) -> Result<RouterStatsReport, String> {
    let v = json::parse(text).map_err(|e| format!("router.json: {e}"))?;
    validate_router_stats(&v, "router.json")
}

/// Validate an already-parsed `wec-router-stats-v1` value.  The document
/// embeds one serve-stats document per live-scraped backend plus a
/// `cluster` roll-up, and the roll-up must *conserve*: every cluster
/// counter equals the sum of the corresponding counters across the
/// embedded backend ledgers (each of which is itself validated, so
/// `cold + disk + mem (+ spec_hits) == completed` holds per backend and —
/// re-checked here — cluster-wide), and the cluster `spec` block, present
/// iff any backend speculates, obeys `hit + waste + cancelled + pending
/// == started` in aggregate.
pub fn validate_router_stats(v: &Json, ctx: &str) -> Result<RouterStatsReport, String> {
    let schema = require_str(v, "schema", ctx)?;
    if schema != "wec-router-stats-v1" {
        return Err(format!("{ctx}: unknown schema {schema:?}"));
    }
    require_u64(v, "uptime_ms", ctx)?;
    v.get("draining")
        .and_then(Json::as_bool)
        .ok_or_else(|| format!("{ctx}: missing/invalid \"draining\""))?;
    no_extra_fields(
        v,
        &["schema", "uptime_ms", "draining", "router", "backends", "cluster"],
        ctx,
    )?;

    let router = v
        .get("router")
        .ok_or_else(|| format!("{ctx}: missing \"router\""))?;
    let rctx = format!("{ctx} router");
    require_u64(router, "requests", &rctx)?;
    require_u64(router, "proxied", &rctx)?;
    require_u64(router, "retries", &rctx)?;
    require_u64(router, "resharded", &rctx)?;
    require_u64(router, "rejected", &rctx)?;
    let hints_sent = require_u64(router, "hints_sent", &rctx)?;
    let hints_accepted = require_u64(router, "hints_accepted", &rctx)?;
    if hints_accepted > hints_sent {
        return Err(format!(
            "{rctx}: hints_accepted {hints_accepted} exceeds hints_sent {hints_sent}"
        ));
    }
    no_extra_fields(
        router,
        &[
            "requests",
            "proxied",
            "retries",
            "resharded",
            "rejected",
            "hints_sent",
            "hints_accepted",
        ],
        &rctx,
    )?;

    let Some(Json::Arr(backends)) = v.get("backends") else {
        return Err(format!("{ctx}: missing/invalid \"backends\" array"));
    };
    if backends.is_empty() {
        return Err(format!("{ctx}: \"backends\" is empty"));
    }
    // Sum the embedded backend ledgers; the cluster block must match.
    let (mut healthy, mut draining_n, mut dead) = (0u64, 0u64, 0u64);
    let mut scraped = 0u64;
    let mut any_spec = false;
    let mut sums = std::collections::HashMap::<&str, u64>::new();
    for (i, b) in backends.iter().enumerate() {
        let bctx = format!("{ctx} backends[{i}]");
        let id = require_str(b, "id", &bctx)?;
        if id.is_empty() {
            return Err(format!("{bctx}: \"id\" must be non-empty"));
        }
        require_str(b, "addr", &bctx)?;
        match require_str(b, "state", &bctx)? {
            "healthy" => healthy += 1,
            "draining" => draining_n += 1,
            "dead" => dead += 1,
            other => return Err(format!("{bctx}: unknown state {other:?}")),
        }
        require_u64(b, "consecutive_failures", &bctx)?;
        require_u64(b, "routed", &bctx)?;
        no_extra_fields(
            b,
            &["id", "addr", "state", "consecutive_failures", "routed", "stats"],
            &bctx,
        )?;
        let Some(stats) = b.get("stats") else {
            continue; // unreachable at scrape time; not in the roll-up
        };
        validate_serve_stats(stats, &format!("{bctx} stats"))?;
        scraped += 1;
        let jobs = stats.get("jobs").expect("validated above");
        let cache = stats.get("cache").expect("validated above");
        for (block, key) in [
            (jobs, "submitted"),
            (jobs, "deduped"),
            (jobs, "completed"),
            (jobs, "failed"),
            (cache, "cold"),
            (cache, "disk_hits"),
            (cache, "mem_hits"),
        ] {
            *sums.entry(key).or_default() += block.get(key).and_then(Json::as_u64).unwrap_or(0);
        }
        // v1 backends contribute zero speculative hits.
        *sums.entry("spec_hits").or_default() +=
            cache.get("spec_hits").and_then(Json::as_u64).unwrap_or(0);
        if let Some(sp) = stats.get("spec") {
            any_spec = true;
            for key in ["started", "hit", "miss", "waste", "cancelled", "pending"] {
                *sums.entry(key).or_default() += sp.get(key).and_then(Json::as_u64).unwrap_or(0);
            }
        }
    }

    let cluster = v
        .get("cluster")
        .ok_or_else(|| format!("{ctx}: missing \"cluster\""))?;
    let cl = format!("{ctx} cluster");
    let allowed: &[&str] = if any_spec {
        &["backends", "jobs", "cache", "spec", "throughput"]
    } else {
        &["backends", "jobs", "cache", "throughput"]
    };
    no_extra_fields(cluster, allowed, &cl)?;
    let cb = cluster
        .get("backends")
        .ok_or_else(|| format!("{cl}: missing \"backends\""))?;
    let cbctx = format!("{cl} backends");
    for (key, want) in [("healthy", healthy), ("draining", draining_n), ("dead", dead)] {
        let got = require_u64(cb, key, &cbctx)?;
        if got != want {
            return Err(format!(
                "{cbctx}: {key} {got} but the backends array counts {want}"
            ));
        }
    }
    no_extra_fields(cb, &["healthy", "draining", "dead"], &cbctx)?;

    let jobs = cluster
        .get("jobs")
        .ok_or_else(|| format!("{cl}: missing \"jobs\""))?;
    let jctx = format!("{cl} jobs");
    for key in ["submitted", "deduped", "completed", "failed"] {
        let got = require_u64(jobs, key, &jctx)?;
        let want = sums.get(key).copied().unwrap_or(0);
        if got != want {
            return Err(format!(
                "{jctx}: {key} {got} != sum of backend ledgers {want}"
            ));
        }
    }
    no_extra_fields(jobs, &["submitted", "deduped", "completed", "failed"], &jctx)?;

    let cache = cluster
        .get("cache")
        .ok_or_else(|| format!("{cl}: missing \"cache\""))?;
    let cctx = format!("{cl} cache");
    for key in ["cold", "disk_hits", "mem_hits", "spec_hits"] {
        let got = require_u64(cache, key, &cctx)?;
        let want = sums.get(key).copied().unwrap_or(0);
        if got != want {
            return Err(format!(
                "{cctx}: {key} {got} != sum of backend ledgers {want}"
            ));
        }
    }
    no_extra_fields(
        cache,
        &["cold", "disk_hits", "mem_hits", "spec_hits"],
        &cctx,
    )?;
    // The cluster-level form of the serve ledger invariant: the summed
    // source split covers every completed job exactly once.
    let completed = require_u64(jobs, "completed", &jctx)?;
    let split = ["cold", "disk_hits", "mem_hits", "spec_hits"]
        .iter()
        .map(|k| sums.get(*k).copied().unwrap_or(0))
        .sum::<u64>();
    if split != completed {
        return Err(format!(
            "{cl}: cache sources sum to {split} but completed is {completed}"
        ));
    }

    if any_spec {
        let sp = cluster
            .get("spec")
            .ok_or_else(|| format!("{cl}: speculating backends but no \"spec\" block"))?;
        let sctx = format!("{cl} spec");
        for key in ["started", "hit", "miss", "waste", "cancelled", "pending"] {
            let got = require_u64(sp, key, &sctx)?;
            let want = sums.get(key).copied().unwrap_or(0);
            if got != want {
                return Err(format!(
                    "{sctx}: {key} {got} != sum of backend ledgers {want}"
                ));
            }
        }
        let (started, hit, waste, cancelled, pending) = (
            require_u64(sp, "started", &sctx)?,
            require_u64(sp, "hit", &sctx)?,
            require_u64(sp, "waste", &sctx)?,
            require_u64(sp, "cancelled", &sctx)?,
            require_u64(sp, "pending", &sctx)?,
        );
        if hit + waste + cancelled + pending != started {
            return Err(format!(
                "{sctx}: hit {hit} + waste {waste} + cancelled {cancelled} \
                 + pending {pending} != started {started}"
            ));
        }
        no_extra_fields(
            sp,
            &["started", "hit", "miss", "waste", "cancelled", "pending"],
            &sctx,
        )?;
    } else if cluster.get("spec").is_some() {
        return Err(format!(
            "{cl}: \"spec\" block without any speculating backend"
        ));
    }

    let tp = cluster
        .get("throughput")
        .ok_or_else(|| format!("{cl}: missing \"throughput\""))?;
    let tctx = format!("{cl} throughput");
    require_f64(tp, "jobs_per_sec", &tctx)?;
    no_extra_fields(tp, &["jobs_per_sec"], &tctx)?;

    Ok(RouterStatsReport {
        backends: backends.len() as u64,
        scraped,
        completed,
    })
}

/// Validate an `access.jsonl` stream (`wec-access-log-v1`): one line per
/// answered HTTP request.  Timestamps are *not* required monotonic —
/// concurrent connections finish out of order.  Parse-failure lines are
/// logged with method `"-"`, path `"-"`, status 400, so those pass too.
/// Returns the request count.
pub fn validate_access_jsonl(text: &str) -> Result<u64, String> {
    let mut total = 0u64;
    for (lineno, line) in text.lines().enumerate() {
        let ctx = format!("access.jsonl line {}", lineno + 1);
        if line.trim().is_empty() {
            return Err(format!("{ctx}: blank line"));
        }
        let v = json::parse(line).map_err(|e| format!("{ctx}: {e}"))?;
        require_u64(&v, "t_ms", &ctx)?;
        let method = require_str(&v, "method", &ctx)?;
        if method.is_empty() {
            return Err(format!("{ctx}: empty method"));
        }
        let path = require_str(&v, "path", &ctx)?;
        if path.is_empty() {
            return Err(format!("{ctx}: empty path"));
        }
        let status = require_u64(&v, "status", &ctx)?;
        if !(100..=599).contains(&status) {
            return Err(format!("{ctx}: status {status} out of 100..=599"));
        }
        require_u64(&v, "dur_us", &ctx)?;
        require_u64(&v, "bytes", &ctx)?;
        no_extra_fields(
            &v,
            &["t_ms", "method", "path", "status", "dur_us", "bytes"],
            &ctx,
        )?;
        total += 1;
    }
    Ok(total)
}

/// Validate a `wec-dashboard-data-v1` document (the `GET /dashboard/data`
/// payload): the embedded stats snapshot, the sampler ring (t_ms
/// non-decreasing, rates finite, dedup rate a fraction), the per-endpoint
/// latency digests (bucket counts sum to the digest count), and the slim
/// recent-job rows.  Returns the number of ring samples.
pub fn validate_dashboard_data_json(text: &str) -> Result<usize, String> {
    let v = json::parse(text).map_err(|e| format!("dashboard.json: {e}"))?;
    let ctx = "dashboard.json";
    let schema = require_str(&v, "schema", ctx)?;
    if schema != "wec-dashboard-data-v1" {
        return Err(format!("{ctx}: unknown schema {schema:?}"));
    }
    require_u64(&v, "now_ms", ctx)?;
    no_extra_fields(
        &v,
        &["schema", "now_ms", "stats", "samples", "http", "jobs"],
        ctx,
    )?;

    let stats = v
        .get("stats")
        .ok_or_else(|| format!("{ctx}: missing \"stats\""))?;
    validate_serve_stats(stats, "dashboard.json stats")?;

    let samples = v
        .get("samples")
        .and_then(Json::as_array)
        .ok_or_else(|| format!("{ctx}: missing \"samples\" array"))?;
    let mut last_t = 0u64;
    for (i, s) in samples.iter().enumerate() {
        let sctx = format!("dashboard.json samples[{i}]");
        let t = require_u64(s, "t_ms", &sctx)?;
        if t < last_t {
            return Err(format!("{sctx}: t_ms {t} went backwards from {last_t}"));
        }
        last_t = t;
        require_u64(s, "queue_depth", &sctx)?;
        require_u64(s, "busy_workers", &sctx)?;
        require_u64(s, "outstanding", &sctx)?;
        for key in ["jobs_per_sec", "kcycles_per_sec"] {
            let r = require_f64(s, key, &sctx)?;
            if !r.is_finite() || r < 0.0 {
                return Err(format!("{sctx}: {key} {r} is not a finite rate"));
            }
        }
        let dedup = require_f64(s, "dedup_hit_rate", &sctx)?;
        if !(0.0..=1.0).contains(&dedup) {
            return Err(format!("{sctx}: dedup_hit_rate {dedup} out of [0,1]"));
        }
        // Present only when the sampled server runs with --speculate.
        if let Some(shr) = s.get("spec_hit_rate") {
            let shr = shr
                .as_f64()
                .ok_or_else(|| format!("{sctx}: spec_hit_rate is not a number"))?;
            if !(0.0..=1.0).contains(&shr) {
                return Err(format!("{sctx}: spec_hit_rate {shr} out of [0,1]"));
            }
        }
        no_extra_fields(
            s,
            &[
                "t_ms",
                "queue_depth",
                "busy_workers",
                "outstanding",
                "jobs_per_sec",
                "dedup_hit_rate",
                "kcycles_per_sec",
                "spec_hit_rate",
            ],
            &sctx,
        )?;
    }

    let http = v
        .get("http")
        .and_then(Json::as_array)
        .ok_or_else(|| format!("{ctx}: missing \"http\" array"))?;
    for (i, h) in http.iter().enumerate() {
        let hctx = format!("dashboard.json http[{i}]");
        let endpoint = require_str(h, "endpoint", &hctx)?;
        if endpoint.is_empty() {
            return Err(format!("{hctx}: empty endpoint"));
        }
        let count = require_u64(h, "count", &hctx)?;
        require_f64(h, "mean_us", &hctx)?;
        let p50 = require_u64(h, "p50_us", &hctx)?;
        let p99 = require_u64(h, "p99_us", &hctx)?;
        let max = require_u64(h, "max_us", &hctx)?;
        if p50 > p99 || p99 > max {
            return Err(format!(
                "{hctx}: quantiles out of order (p50 {p50}, p99 {p99}, max {max})"
            ));
        }
        let buckets = h
            .get("buckets")
            .and_then(Json::as_array)
            .ok_or_else(|| format!("{hctx}: missing \"buckets\" array"))?;
        let mut total = 0u64;
        for b in buckets {
            let pair = b
                .as_array()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| format!("{hctx}: bucket not a pair"))?;
            total += pair[1]
                .as_u64()
                .ok_or_else(|| format!("{hctx}: non-integer bucket count"))?;
        }
        if total != count {
            return Err(format!(
                "{hctx}: buckets sum to {total}, count says {count}"
            ));
        }
        no_extra_fields(
            h,
            &[
                "endpoint", "count", "mean_us", "p50_us", "p99_us", "max_us", "buckets",
            ],
            &hctx,
        )?;
    }

    let jobs = v
        .get("jobs")
        .and_then(Json::as_array)
        .ok_or_else(|| format!("{ctx}: missing \"jobs\" array"))?;
    for (i, j) in jobs.iter().enumerate() {
        let jctx = format!("dashboard.json jobs[{i}]");
        require_u64(j, "id", &jctx)?;
        let kind = require_str(j, "kind", &jctx)?;
        if !["sim", "replay"].contains(&kind) {
            return Err(format!("{jctx}: unknown kind {kind:?}"));
        }
        require_str(j, "bench", &jctx)?;
        require_str(j, "cfg", &jctx)?;
        let state = require_str(j, "state", &jctx)?;
        if !["queued", "running", "done", "failed", "cancelled"].contains(&state) {
            return Err(format!("{jctx}: unknown state {state:?}"));
        }
        let source = require_str(j, "source", &jctx)?;
        if !["none", "cold", "disk", "mem", "spec"].contains(&source) {
            return Err(format!("{jctx}: unknown source {source:?}"));
        }
        let speculative = match j.get("speculative") {
            None => false,
            Some(Json::Bool(true)) => true,
            Some(_) => {
                return Err(format!(
                    "{jctx}: \"speculative\" must be true when present"
                ))
            }
        };
        let submissions = require_u64(j, "submissions", &jctx)?;
        if submissions == 0 && !speculative {
            return Err(format!("{jctx}: submissions must be >= 1"));
        }
        require_u64(j, "worker", &jctx)?;
        require_u64(j, "dur_ms", &jctx)?;
        require_u64(j, "sim_cycles", &jctx)?;
        j.get("has_attr")
            .and_then(Json::as_bool)
            .ok_or_else(|| format!("{jctx}: missing boolean \"has_attr\""))?;
        no_extra_fields(
            j,
            &[
                "id",
                "kind",
                "bench",
                "cfg",
                "state",
                "source",
                "submissions",
                "worker",
                "dur_ms",
                "sim_cycles",
                "has_attr",
                "speculative",
            ],
            &jctx,
        )?;
    }
    Ok(samples.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::{AttrProbe, AttributionReport, FillOrigin};
    use crate::event::TraceEvent;

    #[test]
    fn emitted_attribution_satisfies_its_own_schema() {
        let mut p = AttrProbe::new(8, 64);
        p.note_pc(0x40);
        p.on_l1_demand(0x1000, false);
        p.on_side_fill(0x1000, 10, FillOrigin::Wrong);
        p.on_side_hit(0x1000, 90);
        p.on_side_fill(0x1040, 90, FillOrigin::Prefetch);
        p.on_side_fill(0x2000, 95, FillOrigin::Victim);
        p.on_side_evict(0x1040);
        let report = AttributionReport::from_probes([&p]);
        let check = validate_attribution_json(&report.to_json()).unwrap();
        assert_eq!(check.n_tus, 1);
        assert_eq!(check.wec_fills, 3);
        assert_eq!(check.useful, 1);
        assert_eq!(check.wasted, 1);
        assert_eq!(check.top_pcs, 1);
    }

    #[test]
    fn attribution_validator_rejects_broken_conservation() {
        let report = AttributionReport::from_probes([&AttrProbe::new(4, 64)]);
        let good = report.to_json();
        let bad = good.replacen("\"useful\":0", "\"useful\":1", 1);
        let err = validate_attribution_json(&bad).unwrap_err();
        assert!(err.contains("conservation"), "{err}");
        let bad = good.replacen(
            "\"schema\":\"wec-attribution-v1\"",
            "\"schema\":\"nope\"",
            1,
        );
        assert!(validate_attribution_json(&bad).is_err());
    }

    #[test]
    fn attr_summary_accepts_empty_and_enforces_conservation() {
        let v = json::parse("{}").unwrap();
        validate_attr_summary(&v, "t").unwrap();
        let v = json::parse(
            "{\"wec_fills\":3,\"useful\":1,\"wasted\":1,\"victim_rescued\":0,\"still_resident\":1}",
        )
        .unwrap();
        validate_attr_summary(&v, "t").unwrap();
        let v = json::parse(
            "{\"wec_fills\":3,\"useful\":2,\"wasted\":1,\"victim_rescued\":0,\"still_resident\":1}",
        )
        .unwrap();
        assert!(validate_attr_summary(&v, "t").is_err());
    }

    #[test]
    fn emitted_events_satisfy_their_own_schema() {
        // One of every variant, round-tripped through the validator.
        let all = vec![
            TraceEvent::WrongLoadIssue {
                tu: 1,
                addr: 64,
                wrong_thread: true,
            },
            TraceEvent::WecFill { tu: 1, addr: 64 },
            TraceEvent::WecHit {
                tu: 0,
                addr: 64,
                wrong_fetched: true,
                prefetched: false,
            },
            TraceEvent::VictimTransfer { tu: 2, addr: 128 },
            TraceEvent::NextLinePrefetch { tu: 2, addr: 192 },
            TraceEvent::L1Miss {
                tu: 0,
                addr: 256,
                wrong: false,
            },
            TraceEvent::L2Miss {
                addr: 256,
                wrong: true,
            },
            TraceEvent::PipelineFlush {
                tu: 3,
                pc: 10,
                new_pc: 20,
                squashed: 4,
            },
            TraceEvent::Commit {
                tu: 0,
                seq: 1,
                pc: 2,
                op: "nop".into(),
            },
            TraceEvent::Begin { region: 1, head: 5 },
            TraceEvent::Fork {
                parent: 5,
                child: 6,
                tu: 1,
                deferred: false,
            },
            TraceEvent::ThreadStart { id: 6, tu: 1 },
            TraceEvent::Abort { id: 5 },
            TraceEvent::MarkedWrong { id: 6 },
            TraceEvent::Killed { id: 7, tu: 2 },
            TraceEvent::WrongDied { id: 6 },
            TraceEvent::WbStart { id: 5, words: 8 },
            TraceEvent::Retired { id: 5, tu: 0 },
            TraceEvent::Sequential { tu: 0 },
        ];
        let mut text = String::new();
        for (i, ev) in all.iter().enumerate() {
            ev.write_jsonl(i as u64, &mut text);
        }
        let report = validate_events_jsonl(&text).unwrap();
        assert_eq!(report.total, all.len() as u64);
        assert_eq!(report.count_of("wec_fill"), 1);
        // Every variant name exists in the schema table.
        for ev in &all {
            assert!(
                EVENT_SCHEMA.iter().any(|(n, _)| *n == ev.name()),
                "{} missing from schema",
                ev.name()
            );
        }
        assert_eq!(EVENT_SCHEMA.len(), all.len(), "schema has untested entries");
    }

    #[test]
    fn rejects_malformed_streams() {
        assert!(validate_events_jsonl("not json\n").is_err());
        assert!(validate_events_jsonl("{\"cycle\":1}\n").is_err());
        assert!(validate_events_jsonl("{\"cycle\":1,\"type\":\"nope\"}\n").is_err());
        // Missing field.
        assert!(validate_events_jsonl("{\"cycle\":1,\"type\":\"wec_fill\",\"tu\":0}\n").is_err());
        // Extra field.
        assert!(validate_events_jsonl(
            "{\"cycle\":1,\"type\":\"wec_fill\",\"tu\":0,\"addr\":64,\"x\":1}\n"
        )
        .is_err());
        // Wrong type.
        assert!(validate_events_jsonl(
            "{\"cycle\":1,\"type\":\"wec_fill\",\"tu\":0,\"addr\":\"64\"}\n"
        )
        .is_err());
        // Cycle regression.
        assert!(validate_events_jsonl(
            "{\"cycle\":5,\"type\":\"abort\",\"id\":1}\n{\"cycle\":4,\"type\":\"abort\",\"id\":1}\n"
        )
        .is_err());
    }

    #[test]
    fn timeseries_validation() {
        assert_eq!(
            validate_timeseries_csv("cycle,a,b\n10,1,2\n20,3,4\n").unwrap(),
            2
        );
        assert!(validate_timeseries_csv("a,b\n1,2\n").is_err());
        assert!(validate_timeseries_csv("cycle,a\n10,1\n10,2\n").is_err());
        assert!(validate_timeseries_csv("cycle,a\n10,1,2\n").is_err());
        assert!(validate_timeseries_csv("cycle,a\n10,x\n").is_err());
    }

    #[test]
    fn histograms_validation() {
        let good = "{\"load_to_fill\":{\"count\":3,\"sum\":111,\"min\":5,\"max\":100,\"buckets\":[[4,2],[64,1]]}}";
        assert_eq!(
            validate_histograms_json(good).unwrap(),
            vec!["load_to_fill"]
        );
        let bad =
            "{\"h\":{\"count\":4,\"sum\":111,\"min\":5,\"max\":100,\"buckets\":[[4,2],[64,1]]}}";
        assert!(validate_histograms_json(bad).is_err());
    }

    #[test]
    fn progress_validation() {
        let mut w = crate::report::ProgressWriter::create(
            &std::env::temp_dir().join(format!("wec-progress-schema-{}.jsonl", std::process::id())),
        )
        .unwrap();
        w.start(1, "181.mcf", "orig/t8", 0).unwrap();
        w.finish(9, "181.mcf", "orig/t8", 0, "cold", 8, 1000)
            .unwrap();
        w.finish(9, "164.gzip", "orig/t8", 1, "disk", 0, 500)
            .unwrap();
        let text = std::fs::read_to_string(w.path()).unwrap();
        let r = validate_progress_jsonl(&text).unwrap();
        assert_eq!(
            r,
            ProgressReport {
                starts: 1,
                finishes: 2
            }
        );
        std::fs::remove_file(w.path()).unwrap();

        // Unknown event, bad cache source, extra field, time regression,
        // more starts than finishes.
        assert!(validate_progress_jsonl(
            "{\"event\":\"pause\",\"t_ms\":1,\"bench\":\"b\",\"cfg\":\"c\",\"worker\":0}\n"
        )
        .is_err());
        assert!(validate_progress_jsonl(
            "{\"event\":\"finish\",\"t_ms\":1,\"bench\":\"b\",\"cfg\":\"c\",\"worker\":0,\"cache\":\"warm\",\"dur_ms\":1,\"sim_cycles\":2,\"kcps\":2.0}\n"
        )
        .is_err());
        assert!(validate_progress_jsonl(
            "{\"event\":\"start\",\"t_ms\":1,\"bench\":\"b\",\"cfg\":\"c\",\"worker\":0,\"x\":1}\n"
        )
        .is_err());
        assert!(validate_progress_jsonl(
            "{\"event\":\"start\",\"t_ms\":5,\"bench\":\"b\",\"cfg\":\"c\",\"worker\":0}\n{\"event\":\"start\",\"t_ms\":4,\"bench\":\"b\",\"cfg\":\"c\",\"worker\":0}\n"
        )
        .is_err());
        assert!(validate_progress_jsonl(
            "{\"event\":\"start\",\"t_ms\":1,\"bench\":\"b\",\"cfg\":\"c\",\"worker\":0}\n"
        )
        .is_err());
    }

    #[test]
    fn run_manifest_validation() {
        let m = crate::report::RunManifest {
            scale: 1,
            host: "h".into(),
            sim_revision: 1,
            wall_s: 1.0,
            cold: 2,
            disk_hits: 1,
            mem_hits: 4,
            cold_sim_cycles: 100,
            cold_wall_ms: 10,
            slowest: vec![crate::report::SlowPoint {
                bench: "181.mcf".into(),
                cfg: "orig/t8".into(),
                cache: "cold",
                dur_ms: 7,
            }],
            tables: vec!["fig17".into()],
            metrics: vec![("181.mcf|orig/t8".into(), vec![("cycles".into(), 5)])],
        };
        assert_eq!(validate_run_json(&m.to_json()).unwrap(), 1);

        assert!(validate_run_json("{\"schema\":\"nope\"}").is_err());
        // Inconsistent lookup accounting.
        let broken = m.to_json().replace("\"lookups\":7", "\"lookups\":8");
        assert!(validate_run_json(&broken).is_err());
        // Non-integer metric value.
        let broken = m.to_json().replace("\"cycles\":5", "\"cycles\":5.5");
        assert!(validate_run_json(&broken).is_err());
    }

    #[test]
    fn profile_validation() {
        let mut p = crate::profile::CycleProfiler::new(64);
        let laps = crate::profile::PhaseNs {
            ns: [10, 20, 30, 40, 50, 60],
        };
        p.record(0, &laps);
        let text = p.report(64).to_json();
        let names = validate_profile_json(&text).unwrap();
        assert_eq!(names.len(), crate::profile::PHASE_COUNT);

        assert!(validate_profile_json("{\"schema\":\"nope\"}").is_err());
        // Wall total no longer matches the phase sum.
        let broken = text.replace("\"wall_ns_sampled\":210", "\"wall_ns_sampled\":211");
        assert!(validate_profile_json(&broken).is_err());
        // A phase goes missing.
        let broken = text.replace("\"exec\":{\"ns\":20,\"share\":0.095238},", "");
        assert!(validate_profile_json(&broken).is_err());
        // Sampled cannot exceed total.
        let broken = text.replace("\"total_cycles\":64", "\"total_cycles\":0");
        assert!(validate_profile_json(&broken).is_err());
    }

    fn job_record(state: &str, source: &str, error: &str, metrics: &str) -> String {
        format!(
            "{{\"schema\":\"wec-job-record-v1\",\"id\":3,\"kind\":\"sim\",\"bench\":\"181.mcf\",\
             \"scale\":1,\"cfg\":\"wth-wp-wec/t8\",\"state\":\"{state}\",\"source\":\"{source}\",\
             \"submissions\":2,\"worker\":1,\"submit_t_ms\":10,\"start_t_ms\":11,\
             \"finish_t_ms\":40,\"dur_ms\":29,\"sim_cycles\":48000,\"error\":\"{error}\",\
             \"metrics\":{metrics},\"attribution\":{{}}}}"
        )
    }

    #[test]
    fn job_record_validation() {
        let good = job_record("done", "cold", "", "{\"cycles\":48000}");
        validate_job_record(&json::parse(&good).unwrap(), "t").unwrap();
        let jsonl = format!("{good}\n{}\n", job_record("failed", "none", "boom", "{}"));
        assert_eq!(
            validate_jobs_jsonl(&jsonl).unwrap(),
            JobsReport {
                total: 2,
                done: 1,
                failed: 1,
                cancelled: 0
            }
        );

        // A queued record is valid over HTTP but not in the terminal log.
        let queued = job_record("queued", "none", "", "{}");
        validate_job_record(&json::parse(&queued).unwrap(), "t").unwrap();
        assert!(validate_jobs_jsonl(&format!("{queued}\n")).is_err());

        // Speculative records: an unclaimed completion keeps zero
        // submissions and source "spec"; a reclaimed one is "cancelled".
        let spec_done = job_record("done", "spec", "", "{\"cycles\":48000}")
            .replace("\"submissions\":2", "\"submissions\":0")
            .replace("\"sim_cycles\":48000", "\"sim_cycles\":48000,\"speculative\":true");
        validate_job_record(&json::parse(&spec_done).unwrap(), "t").unwrap();
        let spec_cancelled = job_record("cancelled", "none", "", "{}")
            .replace("\"submissions\":2", "\"submissions\":0")
            .replace("\"sim_cycles\":48000", "\"sim_cycles\":48000,\"speculative\":true");
        validate_job_record(&json::parse(&spec_cancelled).unwrap(), "t").unwrap();
        let report =
            validate_jobs_jsonl(&format!("{spec_done}\n{spec_cancelled}\n")).unwrap();
        assert_eq!(
            report,
            JobsReport {
                total: 2,
                done: 1,
                failed: 0,
                cancelled: 1
            }
        );
        // Zero submissions on a demand record, a cancelled demand record,
        // and speculative:false are all malformed.
        let bad = good.replace("\"submissions\":2", "\"submissions\":0");
        assert!(validate_job_record(&json::parse(&bad).unwrap(), "t").is_err());
        let bad = job_record("cancelled", "none", "", "{}");
        assert!(validate_job_record(&json::parse(&bad).unwrap(), "t").is_err());
        let bad = spec_done.replace("\"speculative\":true", "\"speculative\":false");
        assert!(validate_job_record(&json::parse(&bad).unwrap(), "t").is_err());

        // Done without a source, failed without an error, fractional
        // metric, unknown state, extra field.
        let bad = job_record("done", "none", "", "{\"cycles\":1}");
        assert!(validate_job_record(&json::parse(&bad).unwrap(), "t").is_err());
        let bad = job_record("failed", "none", "", "{}");
        assert!(validate_job_record(&json::parse(&bad).unwrap(), "t").is_err());
        let bad = job_record("done", "mem", "", "{\"ipc\":0.5}");
        assert!(validate_job_record(&json::parse(&bad).unwrap(), "t").is_err());
        let bad = job_record("paused", "none", "", "{}");
        assert!(validate_job_record(&json::parse(&bad).unwrap(), "t").is_err());
        let bad = good.replace("\"id\":3", "\"id\":3,\"x\":1");
        assert!(validate_job_record(&json::parse(&bad).unwrap(), "t").is_err());
        // Timestamps must be ordered.
        let bad = good.replace("\"finish_t_ms\":40", "\"finish_t_ms\":5");
        assert!(validate_job_record(&json::parse(&bad).unwrap(), "t").is_err());
        // The attribution summary must itself conserve.
        let bad = good.replace(
            "\"attribution\":{}",
            "\"attribution\":{\"wec_fills\":2,\"useful\":2,\"wasted\":1,\
             \"victim_rescued\":0,\"still_resident\":0}",
        );
        assert!(validate_job_record(&json::parse(&bad).unwrap(), "t").is_err());
        // And a record without it is incomplete.
        let bad = good.replace(",\"attribution\":{}", "");
        assert!(validate_job_record(&json::parse(&bad).unwrap(), "t").is_err());
    }

    #[test]
    fn serve_stats_validation() {
        let good = "{\"schema\":\"wec-serve-stats-v1\",\"uptime_ms\":1000,\"workers\":4,\
                    \"busy_workers\":1,\"draining\":false,\
                    \"queue\":{\"depth\":2,\"cap\":64,\"rejected\":1},\
                    \"jobs\":{\"submitted\":10,\"deduped\":3,\"completed\":5,\"failed\":1},\
                    \"cache\":{\"cold\":3,\"disk_hits\":1,\"mem_hits\":1},\
                    \"throughput\":{\"jobs_per_sec\":5.0,\"utilization\":0.25}}";
        validate_serve_stats_json(good).unwrap();

        assert!(validate_serve_stats_json("{\"schema\":\"nope\"}").is_err());
        // Busy workers cannot exceed the pool.
        let bad = good.replace("\"busy_workers\":1", "\"busy_workers\":9");
        assert!(validate_serve_stats_json(&bad).is_err());
        // Queue deeper than its own capacity.
        let bad = good.replace("\"depth\":2", "\"depth\":65");
        assert!(validate_serve_stats_json(&bad).is_err());
        // Cache split must account for every completed job.
        let bad = good.replace("\"cold\":3", "\"cold\":4");
        assert!(validate_serve_stats_json(&bad).is_err());
        // Utilization is a fraction.
        let bad = good.replace("\"utilization\":0.25", "\"utilization\":1.5");
        assert!(validate_serve_stats_json(&bad).is_err());
        // More terminal jobs than submissions.
        let bad = good.replace("\"submitted\":10", "\"submitted\":5");
        assert!(validate_serve_stats_json(&bad).is_err());
    }

    #[test]
    fn serve_stats_v2_validation() {
        let good = "{\"schema\":\"wec-serve-stats-v2\",\"uptime_ms\":1000,\"workers\":4,\
                    \"busy_workers\":1,\"draining\":false,\
                    \"queue\":{\"depth\":2,\"cap\":64,\"rejected\":1,\"spec_depth\":3,\"spec_cap\":16},\
                    \"jobs\":{\"submitted\":10,\"deduped\":3,\"completed\":5,\"failed\":1},\
                    \"cache\":{\"cold\":2,\"disk_hits\":1,\"mem_hits\":1,\"spec_hits\":1},\
                    \"spec\":{\"started\":7,\"hit\":2,\"miss\":2,\"waste\":1,\"cancelled\":1,\"pending\":3},\
                    \"throughput\":{\"jobs_per_sec\":5.0,\"utilization\":0.25}}";
        validate_serve_stats_json(good).unwrap();

        // v1 documents must not carry any of the v2 fields.
        let v1_leak = good.replace("wec-serve-stats-v2", "wec-serve-stats-v1");
        assert!(validate_serve_stats_json(&v1_leak).is_err());
        // The speculation ledger must conserve: started splits exactly
        // into hit + waste + cancelled + pending.
        let bad = good.replace("\"started\":7", "\"started\":8");
        assert!(validate_serve_stats_json(&bad).is_err());
        // Completions split across all four sources.
        let bad = good.replace("\"spec_hits\":1", "\"spec_hits\":2");
        assert!(validate_serve_stats_json(&bad).is_err());
        // Warm spec serves cannot exceed total spec hits.
        let bad = good
            .replace("\"spec_hits\":1", "\"spec_hits\":3")
            .replace("\"cold\":2", "\"cold\":0");
        assert!(validate_serve_stats_json(&bad).is_err());
        // The spec queue respects its own bound, and the block is required.
        let bad = good.replace("\"spec_depth\":3", "\"spec_depth\":17");
        assert!(validate_serve_stats_json(&bad).is_err());
        let bad = good.replace(
            "\"spec\":{\"started\":7,\"hit\":2,\"miss\":2,\"waste\":1,\"cancelled\":1,\"pending\":3},",
            "",
        );
        assert!(validate_serve_stats_json(&bad).is_err());
    }

    #[test]
    fn access_log_validation() {
        let good = "{\"t_ms\":120,\"method\":\"GET\",\"path\":\"/stats\",\"status\":200,\"dur_us\":85,\"bytes\":412}\n\
                    {\"t_ms\":100,\"method\":\"POST\",\"path\":\"/jobs\",\"status\":503,\"dur_us\":12,\"bytes\":40}\n\
                    {\"t_ms\":130,\"method\":\"-\",\"path\":\"-\",\"status\":400,\"dur_us\":3,\"bytes\":28}\n";
        // Out-of-order t_ms is fine: concurrent connections finish racily.
        assert_eq!(validate_access_jsonl(good).unwrap(), 3);

        assert!(validate_access_jsonl("not json\n").is_err());
        let line =
            "{\"t_ms\":1,\"method\":\"GET\",\"path\":\"/x\",\"status\":200,\"dur_us\":1,\"bytes\":2}";
        // Status outside the HTTP range, extra field, missing field.
        assert!(validate_access_jsonl(&line.replace(":200", ":99")).is_err());
        assert!(validate_access_jsonl(&line.replace("\"t_ms\":1", "\"t_ms\":1,\"x\":1")).is_err());
        assert!(validate_access_jsonl(&line.replace("\"bytes\":2", "\"b\":2")).is_err());
        assert!(validate_access_jsonl(&line.replace("\"GET\"", "\"\"")).is_err());
    }

    #[test]
    fn dashboard_data_validation() {
        let stats = "{\"schema\":\"wec-serve-stats-v1\",\"uptime_ms\":1000,\"workers\":4,\
                     \"busy_workers\":1,\"draining\":false,\
                     \"queue\":{\"depth\":2,\"cap\":64,\"rejected\":1},\
                     \"jobs\":{\"submitted\":10,\"deduped\":3,\"completed\":5,\"failed\":1},\
                     \"cache\":{\"cold\":3,\"disk_hits\":1,\"mem_hits\":1},\
                     \"throughput\":{\"jobs_per_sec\":5.0,\"utilization\":0.25}}";
        let good = format!(
            "{{\"schema\":\"wec-dashboard-data-v1\",\"now_ms\":1000,\"stats\":{stats},\
             \"samples\":[{{\"t_ms\":500,\"queue_depth\":1,\"busy_workers\":1,\"outstanding\":2,\
             \"jobs_per_sec\":2.5,\"dedup_hit_rate\":0.5,\"kcycles_per_sec\":100.0}},\
             {{\"t_ms\":1000,\"queue_depth\":0,\"busy_workers\":0,\"outstanding\":0,\
             \"jobs_per_sec\":0.0,\"dedup_hit_rate\":0.0,\"kcycles_per_sec\":0.0}}],\
             \"http\":[{{\"endpoint\":\"submit\",\"count\":3,\"mean_us\":80.5,\"p50_us\":63,\
             \"p99_us\":127,\"max_us\":130,\"buckets\":[[64,2],[128,1]]}}],\
             \"jobs\":[{{\"id\":1,\"kind\":\"sim\",\"bench\":\"181.mcf\",\"cfg\":\"orig/t8\",\
             \"state\":\"done\",\"source\":\"cold\",\"submissions\":2,\"worker\":0,\
             \"dur_ms\":30,\"sim_cycles\":48000,\"has_attr\":false}}]}}"
        );
        assert_eq!(validate_dashboard_data_json(&good).unwrap(), 2);

        assert!(validate_dashboard_data_json("{\"schema\":\"nope\"}").is_err());
        // Sampler time going backwards, dedup rate out of range, bucket
        // counts not summing, quantile inversion, bad embedded stats, and
        // an unknown slim-row state.
        assert!(
            validate_dashboard_data_json(&good.replace("\"t_ms\":1000", "\"t_ms\":400")).is_err()
        );
        assert!(validate_dashboard_data_json(
            &good.replace("\"dedup_hit_rate\":0.5", "\"dedup_hit_rate\":1.5")
        )
        .is_err());
        assert!(
            validate_dashboard_data_json(&good.replace("[[64,2],[128,1]]", "[[64,2]]")).is_err()
        );
        assert!(
            validate_dashboard_data_json(&good.replace("\"p99_us\":127", "\"p99_us\":999999"))
                .is_err()
        );
        assert!(validate_dashboard_data_json(&good.replace("\"cold\":3", "\"cold\":4")).is_err());
        assert!(validate_dashboard_data_json(
            &good.replace("\"state\":\"done\"", "\"state\":\"paused\"")
        )
        .is_err());

        // Speculation extensions: samples may carry spec_hit_rate (a
        // fraction), job rows may be flagged speculative with source
        // "spec" and zero submissions.
        let spec_good = good
            .replace(
                "\"dedup_hit_rate\":0.5,",
                "\"dedup_hit_rate\":0.5,\"spec_hit_rate\":0.25,",
            )
            .replace(
                "\"source\":\"cold\",\"submissions\":2",
                "\"source\":\"spec\",\"submissions\":0,\"speculative\":true",
            );
        assert_eq!(validate_dashboard_data_json(&spec_good).unwrap(), 2);
        assert!(validate_dashboard_data_json(
            &spec_good.replace("\"spec_hit_rate\":0.25", "\"spec_hit_rate\":1.25")
        )
        .is_err());
        assert!(validate_dashboard_data_json(
            &spec_good.replace("\"speculative\":true", "\"speculative\":false")
        )
        .is_err());
    }

    #[test]
    fn perfetto_validation_balances_spans() {
        let good = "{\"traceEvents\":[{\"ph\":\"B\",\"tid\":1,\"ts\":1},{\"ph\":\"E\",\"tid\":1,\"ts\":2}]}";
        assert_eq!(validate_perfetto(good).unwrap(), 2);
        let unbalanced = "{\"traceEvents\":[{\"ph\":\"B\",\"tid\":1,\"ts\":1}]}";
        assert!(validate_perfetto(unbalanced).is_err());
        let stray_end = "{\"traceEvents\":[{\"ph\":\"E\",\"tid\":1,\"ts\":1}]}";
        assert!(validate_perfetto(stray_end).is_err());
    }
}
