//! Deterministic input-data generators for the benchmark analogs.
//!
//! The paper used the MinneSPEC reduced inputs; these generators play the
//! same role — structured data of controlled size, seeded so every build of
//! a workload is identical.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Seeded RNG for a named workload (name keeps streams independent).
pub fn rng_for(name: &str, salt: u64) -> StdRng {
    let mut seed = [0u8; 32];
    for (i, b) in name.bytes().enumerate() {
        seed[i % 32] ^= b;
    }
    seed[24..32].copy_from_slice(&salt.to_le_bytes());
    StdRng::from_seed(seed)
}

/// A permutation-based linked structure: `next[i]` chains `n` nodes into
/// `chains` disjoint cycles-free lists; returns (next-index array, heads).
/// Terminators are `u64::MAX`.
pub fn linked_chains(rng: &mut StdRng, n: usize, chains: usize) -> (Vec<u64>, Vec<u64>) {
    assert!(chains >= 1 && chains <= n);
    let mut order: Vec<u64> = (0..n as u64).collect();
    // Fisher–Yates with the seeded RNG: chains walk the nodes in a shuffled
    // order, so consecutive pointer dereferences hit scattered blocks.
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        order.swap(i, j);
    }
    let mut next = vec![u64::MAX; n];
    let mut heads = Vec::with_capacity(chains);
    let per = n / chains;
    for c in 0..chains {
        let start = c * per;
        let end = if c == chains - 1 { n } else { start + per };
        heads.push(order[start]);
        for k in start..end - 1 {
            next[order[k] as usize] = order[k + 1];
        }
        next[order[end - 1] as usize] = u64::MAX;
    }
    (next, heads)
}

/// A single-cycle permutation: `perm[i]` visits every index exactly once
/// before returning to 0.  Chasing it is the classic cache-hostile pointer
/// walk (no spatial locality, next-line prefetching useless).
pub fn permutation_cycle(rng: &mut StdRng, n: usize) -> Vec<u64> {
    let mut order: Vec<u64> = (0..n as u64).collect();
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        order.swap(i, j);
    }
    let mut perm = vec![0u64; n];
    for k in 0..n {
        perm[order[k] as usize] = order[(k + 1) % n];
    }
    perm
}

/// A CSR sparse matrix pattern: `rows` rows with `nnz_per_row ± jitter`
/// column indices in `[0, cols)`, sorted per row. Returns (rowptr, colidx).
pub fn csr_pattern(
    rng: &mut StdRng,
    rows: usize,
    cols: usize,
    nnz_per_row: usize,
) -> (Vec<u64>, Vec<u64>) {
    let mut rowptr = Vec::with_capacity(rows + 1);
    let mut colidx = Vec::new();
    rowptr.push(0u64);
    for r in 0..rows {
        let jitter = rng.random_range(0..=nnz_per_row / 2);
        let nnz = (nnz_per_row - nnz_per_row / 4 + jitter).max(1);
        let mut cs: Vec<u64> = (0..nnz)
            .map(|_| {
                // Mix near-diagonal locality with scattered entries, like a
                // finite-element matrix (equake's smvp).
                if rng.random_bool(0.6) {
                    let lo = r.saturating_sub(8) as u64;
                    let hi = ((r + 8).min(cols - 1)) as u64;
                    rng.random_range(lo..=hi)
                } else {
                    rng.random_range(0..cols as u64)
                }
            })
            .collect();
        cs.sort_unstable();
        cs.dedup();
        colidx.extend_from_slice(&cs);
        rowptr.push(colidx.len() as u64);
    }
    (rowptr, colidx)
}

/// Pseudo-text over a small alphabet with repetition structure (for the
/// gzip analog's match finder and the parser analog's tokens).
pub fn pseudo_text(rng: &mut StdRng, len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        if !out.is_empty() && rng.random_bool(0.3) {
            // Copy an earlier phrase (this is what LZ77 exploits).
            let max_back = out.len().min(2048);
            let back = rng.random_range(1..=max_back);
            let n = rng.random_range(3..=18usize).min(back + 16);
            let start = out.len() - back;
            for k in 0..n {
                let b = out[start + k % back];
                out.push(b);
            }
        } else {
            let n = rng.random_range(2..=10);
            for _ in 0..n {
                out.push(b'a' + rng.random_range(0..16u8));
            }
        }
    }
    out.truncate(len);
    out
}

/// A hash-bucketed dictionary of fixed-width (8-byte) "words" with chained
/// collisions: returns (bucket-heads, next-links, packed word values).
/// Words are drawn from `text`-like byte material.
pub fn dictionary(
    rng: &mut StdRng,
    words: usize,
    buckets: usize,
) -> (Vec<u64>, Vec<u64>, Vec<u64>) {
    let mut heads = vec![u64::MAX; buckets];
    let mut next = vec![u64::MAX; words];
    let mut vals = Vec::with_capacity(words);
    for w in 0..words {
        let mut v: u64 = 0;
        for k in 0..8 {
            v |= u64::from(b'a' + rng.random_range(0..20u8)) << (8 * k);
        }
        vals.push(v);
        let bkt = hash64(v) as usize % buckets;
        next[w] = heads[bkt];
        heads[bkt] = w as u64;
    }
    (heads, next, vals)
}

/// The hash both the generator and the simulated code use (so the guest
/// program can find the right buckets): a xorshift-multiply mix that the
/// WISA-64 code reproduces in a few instructions.  The multiplier fits in
/// a 48-bit `li` immediate.
pub const HASH_MULT: u64 = 0x5851_F42D_4C95;

#[inline]
pub fn hash64(v: u64) -> u64 {
    let mut x = v;
    x ^= x >> 31;
    x = x.wrapping_mul(HASH_MULT);
    x ^= x >> 29;
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let a: Vec<u64> = (0..8)
            .map({
                let mut r = rng_for("x", 1);
                move |_| r.random()
            })
            .collect();
        let b: Vec<u64> = (0..8)
            .map({
                let mut r = rng_for("x", 1);
                move |_| r.random()
            })
            .collect();
        assert_eq!(a, b);
        let mut r2 = rng_for("y", 1);
        let c: u64 = r2.random();
        assert_ne!(a[0], c);
    }

    #[test]
    fn chains_partition_all_nodes() {
        let mut rng = rng_for("chains", 0);
        let (next, heads) = linked_chains(&mut rng, 100, 7);
        let mut seen = [false; 100];
        for &h in &heads {
            let mut p = h;
            while p != u64::MAX {
                assert!(!seen[p as usize], "node visited twice");
                seen[p as usize] = true;
                p = next[p as usize];
            }
        }
        assert!(seen.iter().all(|&s| s), "some node unreachable");
    }

    #[test]
    fn chains_heads_count() {
        let mut rng = rng_for("chains2", 0);
        let (_, heads) = linked_chains(&mut rng, 64, 64);
        assert_eq!(heads.len(), 64);
    }

    #[test]
    fn csr_is_well_formed() {
        let mut rng = rng_for("csr", 0);
        let (rowptr, colidx) = csr_pattern(&mut rng, 50, 50, 6);
        assert_eq!(rowptr.len(), 51);
        assert_eq!(*rowptr.last().unwrap() as usize, colidx.len());
        for r in 0..50 {
            let (lo, hi) = (rowptr[r] as usize, rowptr[r + 1] as usize);
            assert!(lo < hi, "row {r} empty");
            let row = &colidx[lo..hi];
            assert!(row.windows(2).all(|w| w[0] < w[1]), "row {r} not sorted");
            assert!(row.iter().all(|&c| c < 50));
        }
    }

    #[test]
    fn pseudo_text_length_and_alphabet() {
        let mut rng = rng_for("text", 0);
        let t = pseudo_text(&mut rng, 5000);
        assert_eq!(t.len(), 5000);
        assert!(t.iter().all(|&c| (b'a'..b'a' + 16).contains(&c)));
        // Repetition structure: some 4-gram repeats.
        let mut grams = std::collections::HashSet::new();
        let mut repeats = 0;
        for w in t.windows(4) {
            if !grams.insert(w.to_vec()) {
                repeats += 1;
            }
        }
        assert!(repeats > 1000, "text not repetitive enough: {repeats}");
    }

    #[test]
    fn dictionary_chains_reach_all_words() {
        let mut rng = rng_for("dict", 0);
        let (heads, next, vals) = dictionary(&mut rng, 200, 32);
        let mut seen = 0;
        for &h in &heads {
            let mut p = h;
            while p != u64::MAX {
                seen += 1;
                p = next[p as usize];
            }
        }
        assert_eq!(seen, 200);
        assert_eq!(vals.len(), 200);
    }

    #[test]
    fn hash_spreads() {
        let mut buckets = [0u32; 16];
        for v in 0..1000u64 {
            buckets[(hash64(v) % 16) as usize] += 1;
        }
        assert!(buckets.iter().all(|&c| c > 20), "{buckets:?}");
    }
}
